// Package park implements the PARK semantics for active rules
// (Gottlob, Moerkotte, Subrahmanian — EDBT 1996): a fixpoint semantics
// for event-condition-action rule sets over relational databases that
// smoothly integrates the inflationary fixpoint semantics of Kolaitis
// and Papadimitriou with pluggable conflict resolution.
//
// # Model
//
// A database instance is a set of ground atoms. An active rule
//
//	l1, ..., ln -> +l0     (or -l0)
//
// requests the insertion (deletion) of its head whenever every body
// literal is valid. Body literals are positive atoms, negated atoms
// (negation as failure), event literals +a / -a that observe
// insertions and deletions themselves (full ECA rules), or built-in
// comparisons (== and !=). When firable rules request both +a and -a,
// the evaluation is interrupted, a conflict resolution policy — the
// SELECT parameter of the semantics — picks a winner, the losing rule
// instances are blocked, and the inflationary computation restarts
// from the original database. The result is a single, deterministic,
// polynomial-time-computable database state.
//
// # Quick start
//
//	u := park.NewUniverse()
//	prog, err := park.ParseProgram(u, "rules", `
//	    emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
//	`)
//	db, err := park.ParseDatabase(u, "db", `
//	    emp(tom). payroll(tom, 100).
//	`)
//	eng, err := park.NewEngine(u, prog, park.Inertia(), park.Options{})
//	res, err := eng.Run(ctx, db, nil)
//	fmt.Println(park.FormatDatabase(u, res.Output)) // {emp(tom)}
//
// Conflict resolution strategies live alongside the engine: Inertia
// (keep the original status), Priority (rule priorities), Specificity
// (more specific rules win), Interactive, Voting (a panel of critics),
// Random, plus the Fallback and ProtectUpdates combinators. Any
// user-defined policy can be supplied through the Strategy interface.
//
// The package also exposes the baseline semantics the paper argues
// against (PostHoc, Inflationary, Sequential) for comparison, and a
// static analyzer (Analyze) reporting conflict potential,
// stratification and lints.
package park
