#!/usr/bin/env bash
# Two-process replication smoke test: start a real parkd leader and a
# real parkd follower, write through the leader's HTTP API, and
# assert the follower converges to the identical database with zero
# reported lag and rejects writes with 421. This exercises the paths
# an in-process test can't: separate processes, real sockets, flag
# parsing, and daemon startup/shutdown.
set -euo pipefail

LEADER_PORT="${LEADER_PORT:-7491}"
FOLLOWER_PORT="${FOLLOWER_PORT:-7492}"
WORK="$(mktemp -d)"
LEADER_URL="http://127.0.0.1:${LEADER_PORT}"
FOLLOWER_URL="http://127.0.0.1:${FOLLOWER_PORT}"

cleanup() {
    kill "${LEADER_PID:-}" "${FOLLOWER_PID:-}" 2>/dev/null || true
    wait "${LEADER_PID:-}" "${FOLLOWER_PID:-}" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/parkd" ./cmd/parkd

cat > "$WORK/rules.park" <<'RULES'
rule audit: +ev(X) -> +audit(X).
RULES

"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
# The follower runs at debug level with stderr captured: the trace
# correlation check below greps its log for a leader-originated trace
# ID (per-transaction records log at debug).
"$WORK/parkd" -dir "$WORK/follower" -follow "$LEADER_URL" \
    -log-level debug \
    -addr "127.0.0.1:${FOLLOWER_PORT}" 2> "$WORK/follower.log" &
FOLLOWER_PID=$!

wait_http() { # url
    for _ in $(seq 1 100); do
        if curl -sf "$1/v1/metrics" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke: $1 did not come up" >&2
    return 1
}
wait_http "$LEADER_URL"
wait_http "$FOLLOWER_URL"

# Write through the leader: each transaction fires the audit rule.
for i in 1 2 3 4 5; do
    curl -sf -X POST "$LEADER_URL/v1/transaction" \
        -d "{\"updates\": \"+ev(e${i}).\"}" > /dev/null
done

# The follower must reject writes with 421 and name the leader.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "$FOLLOWER_URL/v1/transaction" -d '{"updates": "+ev(rogue)."}')
if [ "$code" != "421" ]; then
    echo "smoke: follower write returned HTTP $code, want 421" >&2
    exit 1
fi
hint=$(curl -s -D - -o /dev/null -X POST "$FOLLOWER_URL/v1/transaction" \
    -d '{"updates": "+ev(rogue)."}' | tr -d '\r' | awk -F': ' '/^X-Park-Leader:/{print $2}')
if [ "$hint" != "$LEADER_URL" ]; then
    echo "smoke: X-Park-Leader = '$hint', want '$LEADER_URL'" >&2
    exit 1
fi

# Convergence: identical database on both nodes, zero lag.
for _ in $(seq 1 100); do
    leader_db=$(curl -sf "$LEADER_URL/v1/database")
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    if [ "$leader_db" = "$follower_db" ]; then break; fi
    sleep 0.1
done
if [ "$leader_db" != "$follower_db" ]; then
    echo "smoke: follower never converged" >&2
    echo "  leader:   $leader_db" >&2
    echo "  follower: $follower_db" >&2
    exit 1
fi
case "$leader_db" in
*'audit(e5)'*) ;;
*)  echo "smoke: leader database missing rule output: $leader_db" >&2
    exit 1 ;;
esac

lag=$(curl -sf "$FOLLOWER_URL/v1/metrics?format=prometheus" |
    awk '/^park_repl_follower_lag_seq /{print $2}')
if [ "$lag" != "0" ]; then
    echo "smoke: park_repl_follower_lag_seq = '$lag', want 0" >&2
    exit 1
fi

# Trace correlation: a write tagged with a client trace ID must be
# readable from the flight recorder on BOTH nodes, and the follower
# must log the leader-originated ID so one grep spans the fleet.
TRACE_ID="smoke-trace-$$"
curl -sf -X POST "$LEADER_URL/v1/transaction" \
    -H "X-Park-Trace-Id: ${TRACE_ID}" \
    -d '{"updates": "+ev(traced)."}' > /dev/null
tseq=$(curl -sf "$LEADER_URL/v1/txns" | grep -o '"seq":[0-9]*' | head -1 | cut -d: -f2)
leader_trace=$(curl -sf "$LEADER_URL/v1/txns/${tseq}/trace?format=text")
case "$leader_trace" in
*"trace ${TRACE_ID}"*) ;;
*)  echo "smoke: leader trace for txn $tseq missing ID ${TRACE_ID}:" >&2
    echo "$leader_trace" >&2
    exit 1 ;;
esac
follower_trace=""
for _ in $(seq 1 100); do
    follower_trace=$(curl -s "$FOLLOWER_URL/v1/txns/${tseq}/trace?format=text" || true)
    case "$follower_trace" in
    *"trace ${TRACE_ID}"*) break ;;
    esac
    sleep 0.1
done
case "$follower_trace" in
*"trace ${TRACE_ID}, leader"*) ;;
*)  echo "smoke: follower trace for txn $tseq missing leader-adopted ID:" >&2
    echo "$follower_trace" >&2
    exit 1 ;;
esac
for _ in $(seq 1 100); do
    if grep -q "traceId=${TRACE_ID}" "$WORK/follower.log"; then break; fi
    sleep 0.1
done
if ! grep -q "traceId=${TRACE_ID}" "$WORK/follower.log"; then
    echo "smoke: follower log never recorded traceId=${TRACE_ID}:" >&2
    tail -20 "$WORK/follower.log" >&2
    exit 1
fi
echo "smoke: trace ${TRACE_ID} correlated across leader API, follower recorder and follower log"

# Leader restart: the follower must reconnect and apply new commits
# without intervention.
kill "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
wait_http "$LEADER_URL"
curl -sf -X POST "$LEADER_URL/v1/transaction" \
    -d '{"updates": "+ev(after_restart)."}' > /dev/null
for _ in $(seq 1 200); do
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    case "$follower_db" in
    *'audit(after_restart)'*) break ;;
    esac
    sleep 0.1
done
case "$follower_db" in
*'audit(after_restart)'*) ;;
*)  echo "smoke: follower did not catch up after leader restart: $follower_db" >&2
    exit 1 ;;
esac

echo "smoke: leader/follower pair converged, writes rejected with 421, leader restart survived"

# Disk-fault drill: restart the leader with failpoints armed, poison
# its WAL fsync, and assert it degrades to read-only (503 +
# Retry-After on writes, reads keep serving on both nodes), then heal
# the "disk" and assert the background probe restores writes and
# replication with no further restart.
kill "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -failpoints -probe-interval 200ms \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
wait_http "$LEADER_URL"

curl -sf -X POST "$LEADER_URL/v1/debug/failpoint" \
    -d '{"name": "sync:wal.log"}' > /dev/null

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "$LEADER_URL/v1/transaction" -d '{"updates": "+ev(doomed)."}')
if [ "$code" != "503" ]; then
    echo "smoke: degraded leader write returned HTTP $code, want 503" >&2
    exit 1
fi
retry_after=$(curl -s -D - -o /dev/null -X POST "$LEADER_URL/v1/transaction" \
    -d '{"updates": "+ev(doomed)."}' | tr -d '\r' | awk -F': ' '/^Retry-After:/{print $2}')
if [ -z "$retry_after" ]; then
    echo "smoke: degraded 503 is missing Retry-After" >&2
    exit 1
fi

# Reads keep serving on the degraded leader and on the follower.
curl -sf "$LEADER_URL/v1/database" > /dev/null
follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
case "$follower_db" in
*'audit(after_restart)'*) ;;
*)  echo "smoke: follower reads broke during leader degradation: $follower_db" >&2
    exit 1 ;;
esac

hcode=$(curl -s -o /dev/null -w '%{http_code}' "$LEADER_URL/v1/healthz")
if [ "$hcode" != "503" ]; then
    echo "smoke: degraded healthz returned HTTP $hcode, want 503" >&2
    exit 1
fi

# Heal the disk; the probe must restore writes without a restart.
curl -sf -X POST "$LEADER_URL/v1/debug/failpoint" \
    -d '{"action": "clear-all"}' > /dev/null
for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "$LEADER_URL/v1/transaction" -d '{"updates": "+ev(healed)."}')
    if [ "$code" = "200" ]; then break; fi
    sleep 0.1
done
if [ "$code" != "200" ]; then
    echo "smoke: leader writes never recovered after heal (last HTTP $code)" >&2
    exit 1
fi
hcode=$(curl -s -o /dev/null -w '%{http_code}' "$LEADER_URL/v1/healthz")
if [ "$hcode" != "200" ]; then
    echo "smoke: healthz after heal returned HTTP $hcode, want 200" >&2
    exit 1
fi

# The healed write must replicate.
for _ in $(seq 1 200); do
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    case "$follower_db" in
    *'audit(healed)'*) break ;;
    esac
    sleep 0.1
done
case "$follower_db" in
*'audit(healed)'*) ;;
*)  echo "smoke: follower missed the post-heal write: $follower_db" >&2
    exit 1 ;;
esac

echo "smoke: disk-fault drill passed (degraded 503s, reads served, probe heal, replication resumed)"
