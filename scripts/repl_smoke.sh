#!/usr/bin/env bash
# Multi-process replication smoke test. Part 1 (two processes): start
# a real parkd leader and a real parkd follower, write through the
# leader's HTTP API, and assert the follower converges to the
# identical database with zero reported lag and rejects writes with
# 421. Part 2 (three processes): a replica set with -node-id/-peers,
# automatic election, a leader kill mid-run with promotion within the
# lease bound, and fencing of the restarted ex-leader. This exercises
# the paths an in-process test can't: separate processes, real
# sockets, flag parsing, and daemon startup/shutdown.
set -euo pipefail

LEADER_PORT="${LEADER_PORT:-7491}"
FOLLOWER_PORT="${FOLLOWER_PORT:-7492}"
CLUSTER_PORT1="${CLUSTER_PORT1:-7493}"
CLUSTER_PORT2="${CLUSTER_PORT2:-7494}"
CLUSTER_PORT3="${CLUSTER_PORT3:-7495}"
WORK="$(mktemp -d)"
LEADER_URL="http://127.0.0.1:${LEADER_PORT}"
FOLLOWER_URL="http://127.0.0.1:${FOLLOWER_PORT}"

cleanup() {
    kill "${LEADER_PID:-}" "${FOLLOWER_PID:-}" \
        "${N1_PID:-}" "${N2_PID:-}" "${N3_PID:-}" 2>/dev/null || true
    wait "${LEADER_PID:-}" "${FOLLOWER_PID:-}" \
        "${N1_PID:-}" "${N2_PID:-}" "${N3_PID:-}" 2>/dev/null || true
    if [ -n "${SMOKE_KEEP:-}" ]; then
        echo "smoke: workdir kept at $WORK" >&2
    else
        rm -rf "$WORK"
    fi
}
trap cleanup EXIT

go build -o "$WORK/parkd" ./cmd/parkd
go build -o "$WORK/parkcli" ./cmd/parkcli

cat > "$WORK/rules.park" <<'RULES'
rule audit: +ev(X) -> +audit(X).
RULES

"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
# The follower runs at debug level with stderr captured: the trace
# correlation check below greps its log for a leader-originated trace
# ID (per-transaction records log at debug).
"$WORK/parkd" -dir "$WORK/follower" -follow "$LEADER_URL" \
    -log-level debug \
    -addr "127.0.0.1:${FOLLOWER_PORT}" 2> "$WORK/follower.log" &
FOLLOWER_PID=$!

wait_http() { # url
    for _ in $(seq 1 100); do
        if curl -sf "$1/v1/metrics" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "smoke: $1 did not come up" >&2
    return 1
}
wait_http "$LEADER_URL"
wait_http "$FOLLOWER_URL"

# Write through the leader: each transaction fires the audit rule.
for i in 1 2 3 4 5; do
    curl -sf -X POST "$LEADER_URL/v1/transaction" \
        -d "{\"updates\": \"+ev(e${i}).\"}" > /dev/null
done

# The follower must reject writes with 421 and name the leader.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "$FOLLOWER_URL/v1/transaction" -d '{"updates": "+ev(rogue)."}')
if [ "$code" != "421" ]; then
    echo "smoke: follower write returned HTTP $code, want 421" >&2
    exit 1
fi
hint=$(curl -s -D - -o /dev/null -X POST "$FOLLOWER_URL/v1/transaction" \
    -d '{"updates": "+ev(rogue)."}' | tr -d '\r' | awk -F': ' '/^X-Park-Leader:/{print $2}')
if [ "$hint" != "$LEADER_URL" ]; then
    echo "smoke: X-Park-Leader = '$hint', want '$LEADER_URL'" >&2
    exit 1
fi

# Convergence: identical database on both nodes, zero lag.
for _ in $(seq 1 100); do
    leader_db=$(curl -sf "$LEADER_URL/v1/database")
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    if [ "$leader_db" = "$follower_db" ]; then break; fi
    sleep 0.1
done
if [ "$leader_db" != "$follower_db" ]; then
    echo "smoke: follower never converged" >&2
    echo "  leader:   $leader_db" >&2
    echo "  follower: $follower_db" >&2
    exit 1
fi
case "$leader_db" in
*'audit(e5)'*) ;;
*)  echo "smoke: leader database missing rule output: $leader_db" >&2
    exit 1 ;;
esac

lag=$(curl -sf "$FOLLOWER_URL/v1/metrics?format=prometheus" |
    awk '/^park_repl_follower_lag_seq /{print $2}')
if [ "$lag" != "0" ]; then
    echo "smoke: park_repl_follower_lag_seq = '$lag', want 0" >&2
    exit 1
fi

# Trace correlation: a write tagged with a client trace ID must be
# readable from the flight recorder on BOTH nodes, and the follower
# must log the leader-originated ID so one grep spans the fleet.
TRACE_ID="smoke-trace-$$"
curl -sf -X POST "$LEADER_URL/v1/transaction" \
    -H "X-Park-Trace-Id: ${TRACE_ID}" \
    -d '{"updates": "+ev(traced)."}' > /dev/null
tseq=$(curl -sf "$LEADER_URL/v1/txns" | grep -o '"seq":[0-9]*' | head -1 | cut -d: -f2)
leader_trace=$(curl -sf "$LEADER_URL/v1/txns/${tseq}/trace?format=text")
case "$leader_trace" in
*"trace ${TRACE_ID}"*) ;;
*)  echo "smoke: leader trace for txn $tseq missing ID ${TRACE_ID}:" >&2
    echo "$leader_trace" >&2
    exit 1 ;;
esac
follower_trace=""
for _ in $(seq 1 100); do
    follower_trace=$(curl -s "$FOLLOWER_URL/v1/txns/${tseq}/trace?format=text" || true)
    case "$follower_trace" in
    *"trace ${TRACE_ID}"*) break ;;
    esac
    sleep 0.1
done
case "$follower_trace" in
*"trace ${TRACE_ID}, leader"*) ;;
*)  echo "smoke: follower trace for txn $tseq missing leader-adopted ID:" >&2
    echo "$follower_trace" >&2
    exit 1 ;;
esac
for _ in $(seq 1 100); do
    if grep -q "traceId=${TRACE_ID}" "$WORK/follower.log"; then break; fi
    sleep 0.1
done
if ! grep -q "traceId=${TRACE_ID}" "$WORK/follower.log"; then
    echo "smoke: follower log never recorded traceId=${TRACE_ID}:" >&2
    tail -20 "$WORK/follower.log" >&2
    exit 1
fi
echo "smoke: trace ${TRACE_ID} correlated across leader API, follower recorder and follower log"

# Leader restart: the follower must reconnect and apply new commits
# without intervention.
kill "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
wait_http "$LEADER_URL"
curl -sf -X POST "$LEADER_URL/v1/transaction" \
    -d '{"updates": "+ev(after_restart)."}' > /dev/null
for _ in $(seq 1 200); do
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    case "$follower_db" in
    *'audit(after_restart)'*) break ;;
    esac
    sleep 0.1
done
case "$follower_db" in
*'audit(after_restart)'*) ;;
*)  echo "smoke: follower did not catch up after leader restart: $follower_db" >&2
    exit 1 ;;
esac

echo "smoke: leader/follower pair converged, writes rejected with 421, leader restart survived"

# Disk-fault drill: restart the leader with failpoints armed, poison
# its WAL fsync, and assert it degrades to read-only (503 +
# Retry-After on writes, reads keep serving on both nodes), then heal
# the "disk" and assert the background probe restores writes and
# replication with no further restart.
kill "$LEADER_PID"
wait "$LEADER_PID" 2>/dev/null || true
"$WORK/parkd" -dir "$WORK/leader" -program "$WORK/rules.park" \
    -failpoints -probe-interval 200ms \
    -addr "127.0.0.1:${LEADER_PORT}" &
LEADER_PID=$!
wait_http "$LEADER_URL"

curl -sf -X POST "$LEADER_URL/v1/debug/failpoint" \
    -d '{"name": "sync:wal.log"}' > /dev/null

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "$LEADER_URL/v1/transaction" -d '{"updates": "+ev(doomed)."}')
if [ "$code" != "503" ]; then
    echo "smoke: degraded leader write returned HTTP $code, want 503" >&2
    exit 1
fi
retry_after=$(curl -s -D - -o /dev/null -X POST "$LEADER_URL/v1/transaction" \
    -d '{"updates": "+ev(doomed)."}' | tr -d '\r' | awk -F': ' '/^Retry-After:/{print $2}')
if [ -z "$retry_after" ]; then
    echo "smoke: degraded 503 is missing Retry-After" >&2
    exit 1
fi

# Reads keep serving on the degraded leader and on the follower.
curl -sf "$LEADER_URL/v1/database" > /dev/null
follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
case "$follower_db" in
*'audit(after_restart)'*) ;;
*)  echo "smoke: follower reads broke during leader degradation: $follower_db" >&2
    exit 1 ;;
esac

hcode=$(curl -s -o /dev/null -w '%{http_code}' "$LEADER_URL/v1/healthz")
if [ "$hcode" != "503" ]; then
    echo "smoke: degraded healthz returned HTTP $hcode, want 503" >&2
    exit 1
fi

# Heal the disk; the probe must restore writes without a restart.
curl -sf -X POST "$LEADER_URL/v1/debug/failpoint" \
    -d '{"action": "clear-all"}' > /dev/null
for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "$LEADER_URL/v1/transaction" -d '{"updates": "+ev(healed)."}')
    if [ "$code" = "200" ]; then break; fi
    sleep 0.1
done
if [ "$code" != "200" ]; then
    echo "smoke: leader writes never recovered after heal (last HTTP $code)" >&2
    exit 1
fi
hcode=$(curl -s -o /dev/null -w '%{http_code}' "$LEADER_URL/v1/healthz")
if [ "$hcode" != "200" ]; then
    echo "smoke: healthz after heal returned HTTP $hcode, want 200" >&2
    exit 1
fi

# The healed write must replicate.
for _ in $(seq 1 200); do
    follower_db=$(curl -sf "$FOLLOWER_URL/v1/database")
    case "$follower_db" in
    *'audit(healed)'*) break ;;
    esac
    sleep 0.1
done
case "$follower_db" in
*'audit(healed)'*) ;;
*)  echo "smoke: follower missed the post-heal write: $follower_db" >&2
    exit 1 ;;
esac

echo "smoke: disk-fault drill passed (degraded 503s, reads served, probe heal, replication resumed)"

# ---------------------------------------------------------------------
# Replica-set drill: three cluster-mode parkd processes elect a leader
# by themselves, survive a leader kill with automatic promotion inside
# a bounded window, and fence the restarted ex-leader back into a
# follower. The lease is short (500 ms) so the drill finishes fast; the
# promotion bound asserted below is generous for loaded CI machines but
# still catches a broken election outright.
kill "$LEADER_PID" "$FOLLOWER_PID" 2>/dev/null || true
wait "$LEADER_PID" "$FOLLOWER_PID" 2>/dev/null || true

LEASE=500ms
N1_URL="http://127.0.0.1:${CLUSTER_PORT1}"
N2_URL="http://127.0.0.1:${CLUSTER_PORT2}"
N3_URL="http://127.0.0.1:${CLUSTER_PORT3}"
PEERS="n1=${N1_URL},n2=${N2_URL},n3=${N3_URL}"

start_member() { # id port — starts member $1 on port $2, echoes its PID
    # stdout AND stderr go to the log: the daemon must not inherit the
    # command-substitution pipe, or $(start_member ...) never returns.
    "$WORK/parkd" -dir "$WORK/$1" -program "$WORK/rules.park" \
        -node-id "$1" -advertise "http://127.0.0.1:$2" -peers "$PEERS" \
        -lease "$LEASE" -addr "127.0.0.1:$2" >> "$WORK/$1.log" 2>&1 &
    echo $!
}
N1_PID=$(start_member n1 "$CLUSTER_PORT1")
N2_PID=$(start_member n2 "$CLUSTER_PORT2")
N3_PID=$(start_member n3 "$CLUSTER_PORT3")

member_role() { # url — prints the member's healthz role ("" if down)
    # The trailing `|| true` keeps a down member (curl failure, no
    # match) from tripping set -e/pipefail in callers' assignments.
    curl -s "$1/v1/healthz" | grep -o '"role":"[a-z]*"' | cut -d'"' -f4 || true
}
member_leader_hint() { # url — prints who the member believes leads
    curl -s "$1/v1/healthz" | grep -o '"leaderUrl":"[^"]*"' | cut -d'"' -f4 || true
}
find_leader() { # urls... — prints the URL of the member claiming leadership
    for url in "$@"; do
        if [ "$(member_role "$url")" = "leader" ]; then
            echo "$url"
            return 0
        fi
    done
    return 1
}
wait_leader() { # tries urls... — polls at 100 ms until a leader appears
    tries=$1; shift
    for _ in $(seq 1 "$tries"); do
        if leader=$(find_leader "$@"); then echo "$leader"; return 0; fi
        sleep 0.1
    done
    echo "smoke: no leader elected among: $*" >&2
    return 1
}

CLUSTER_LEADER=$(wait_leader 150 "$N1_URL" "$N2_URL" "$N3_URL")
echo "smoke: replica set elected leader $CLUSTER_LEADER"

# Writes land on the leader; a follower answers 421 naming it. A
# follower that has not yet learned the election's winner answers 503
# (leaderless) for a moment, so poll until the 421 appears.
for i in 1 2 3; do
    curl -sf -X POST "$CLUSTER_LEADER/v1/transaction" \
        -d "{\"updates\": \"+ev(c${i}).\"}" > /dev/null
done
for url in "$N1_URL" "$N2_URL" "$N3_URL"; do
    if [ "$url" = "$CLUSTER_LEADER" ]; then continue; fi
    for _ in $(seq 1 100); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            "$url/v1/transaction" -d '{"updates": "+ev(rogue)."}')
        if [ "$code" = "421" ]; then break; fi
        sleep 0.1
    done
    if [ "$code" != "421" ]; then
        echo "smoke: cluster follower $url write returned HTTP $code, want 421" >&2
        exit 1
    fi
    hint=$(curl -s -D - -o /dev/null -X POST "$url/v1/transaction" \
        -d '{"updates": "+ev(rogue)."}' | tr -d '\r' | awk -F': ' '/^X-Park-Leader:/{print $2}')
    if [ "$hint" != "$CLUSTER_LEADER" ]; then
        echo "smoke: cluster follower $url X-Park-Leader = '$hint', want '$CLUSTER_LEADER'" >&2
        exit 1
    fi
done

# Kill the leader; the survivors must promote one of themselves. The
# bound (15 s of 100 ms polls) is ~30 leases — far beyond what a
# healthy election needs (a handful of leases) and exists only to
# separate "slow CI" from "election broken".
case "$CLUSTER_LEADER" in
"$N1_URL") kill "$N1_PID"; wait "$N1_PID" 2>/dev/null || true; OLD_PID_VAR=N1; OLD_ID=n1; OLD_PORT=$CLUSTER_PORT1 ;;
"$N2_URL") kill "$N2_PID"; wait "$N2_PID" 2>/dev/null || true; OLD_PID_VAR=N2; OLD_ID=n2; OLD_PORT=$CLUSTER_PORT2 ;;
"$N3_URL") kill "$N3_PID"; wait "$N3_PID" 2>/dev/null || true; OLD_PID_VAR=N3; OLD_ID=n3; OLD_PORT=$CLUSTER_PORT3 ;;
esac
SURVIVORS=""
for url in "$N1_URL" "$N2_URL" "$N3_URL"; do
    if [ "$url" != "$CLUSTER_LEADER" ]; then SURVIVORS="$SURVIVORS $url"; fi
done
started=$(date +%s)
# shellcheck disable=SC2086
NEW_LEADER=$(wait_leader 150 $SURVIVORS)
elapsed=$(( $(date +%s) - started ))
echo "smoke: promoted $NEW_LEADER ${elapsed}s after leader kill"

# Writes resume on the new leader and replicate to the other survivor.
# Retry briefly: right after promotion the leader may still be waiting
# for its ack quorum to reconnect, answering 503 until it does.
for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "$NEW_LEADER/v1/transaction" -d '{"updates": "+ev(after_failover)."}' || true)
    if [ "$code" = "200" ]; then break; fi
    sleep 0.1
done
if [ "$code" != "200" ]; then
    echo "smoke: writes never resumed on $NEW_LEADER (last HTTP $code)" >&2
    exit 1
fi
for url in $SURVIVORS; do
    for _ in $(seq 1 100); do
        db=$(curl -s "$url/v1/database" || true)
        case "$db" in *'audit(after_failover)'*) break ;; esac
        sleep 0.1
    done
    case "$db" in
    *'audit(after_failover)'*) ;;
    *)  echo "smoke: survivor $url missing post-failover write: $db" >&2
        exit 1 ;;
    esac
done

# Restart the ex-leader: it must rejoin as a follower of the new
# leader (fenced out of its old role), answer 421 naming the new
# leader, and converge to the new timeline.
eval "${OLD_PID_VAR}_PID=\$(start_member $OLD_ID $OLD_PORT)"
for _ in $(seq 1 150); do
    role=$(member_role "$CLUSTER_LEADER")
    hint=$(member_leader_hint "$CLUSTER_LEADER")
    if [ "$role" = "follower" ] && [ "$hint" = "$NEW_LEADER" ]; then break; fi
    sleep 0.1
done
if [ "$role" != "follower" ] || [ "$hint" != "$NEW_LEADER" ]; then
    echo "smoke: restarted ex-leader is role='$role' leaderUrl='$hint', want follower of $NEW_LEADER" >&2
    exit 1
fi
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    "$CLUSTER_LEADER/v1/transaction" -d '{"updates": "+ev(fenced)."}')
if [ "$code" != "421" ]; then
    echo "smoke: restarted ex-leader write returned HTTP $code, want 421" >&2
    exit 1
fi
for _ in $(seq 1 150); do
    db=$(curl -s "$CLUSTER_LEADER/v1/database" || true)
    case "$db" in *'audit(after_failover)'*) break ;; esac
    sleep 0.1
done
case "$db" in
*'audit(after_failover)'*) ;;
*)  echo "smoke: restarted ex-leader never converged: $db" >&2
    exit 1 ;;
esac

echo "smoke: replica-set drill passed (election, bounded promotion, write resume, ex-leader fenced to follower)"

# ---------------------------------------------------------------------
# Observability drill: every member serves the /v1/events lifecycle
# journal, the journals record the election story (campaign-won on the
# winner, leader-demoted on a superseded leader, vote-granted on the
# electorate), and `parkcli cluster status` asked at ANY member names
# the same leader. A leader-demoted event needs a live leader to step
# down — the kill above never journaled one — so the drill promotes the
# rejoined ex-leader: the current leader must demote itself on seeing
# the higher epoch and journal the demotion.

# Every member answers /v1/events.
for url in "$N1_URL" "$N2_URL" "$N3_URL"; do
    ecode=$(curl -s -o /dev/null -w '%{http_code}' "$url/v1/events")
    if [ "$ecode" != "200" ]; then
        echo "smoke: $url/v1/events returned HTTP $ecode, want 200" >&2
        exit 1
    fi
done

# The failover's winner journaled its own victory.
if ! curl -s "$NEW_LEADER/v1/events?type=campaign-won" | grep -q '"campaign-won"'; then
    echo "smoke: new leader $NEW_LEADER journal has no campaign-won event" >&2
    exit 1
fi

# Promote the rejoined ex-leader and wait for the takeover.
curl -sf -X POST "$CLUSTER_LEADER/v1/repl/promote" > /dev/null
for _ in $(seq 1 150); do
    if [ "$(member_role "$CLUSTER_LEADER")" = "leader" ]; then break; fi
    sleep 0.1
done
if [ "$(member_role "$CLUSTER_LEADER")" != "leader" ]; then
    echo "smoke: promoted ex-leader $CLUSTER_LEADER never took leadership" >&2
    exit 1
fi

# The superseded leader journaled its demotion; the promoted member
# journaled its win; some member journaled granting the winning vote.
for _ in $(seq 1 100); do
    if curl -s "$NEW_LEADER/v1/events?type=leader-demoted" | grep -q '"leader-demoted"'; then break; fi
    sleep 0.1
done
if ! curl -s "$NEW_LEADER/v1/events?type=leader-demoted" | grep -q '"leader-demoted"'; then
    echo "smoke: demoted leader $NEW_LEADER journal has no leader-demoted event" >&2
    exit 1
fi
if ! curl -s "$CLUSTER_LEADER/v1/events?type=campaign-won" | grep -q '"campaign-won"'; then
    echo "smoke: promoted member $CLUSTER_LEADER journal has no campaign-won event" >&2
    exit 1
fi
granted=""
for url in "$N1_URL" "$N2_URL" "$N3_URL"; do
    if curl -s "$url/v1/events?type=vote-granted" | grep -q '"vote-granted"'; then
        granted=1
    fi
done
if [ -z "$granted" ]; then
    echo "smoke: no member journaled a vote-granted event" >&2
    exit 1
fi

# parkcli cluster status: every member must merge the same view —
# full agreement on the promoted leader, nobody unreachable. Followers
# can lag the takeover by a lease or two, so poll.
for url in "$N1_URL" "$N2_URL" "$N3_URL"; do
    agreed=""
    for _ in $(seq 1 150); do
        cs=$("$WORK/parkcli" cluster status -url "$url" -json 2>/dev/null || true)
        if printf '%s' "$cs" | grep -q '"leaderAgreement": *true' &&
           printf '%s' "$cs" | grep -q '"partial": *false' &&
           printf '%s' "$cs" | grep -q "\"leaderId\": *\"${OLD_ID}\""; then
            agreed=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$agreed" ]; then
        echo "smoke: parkcli cluster status at $url never agreed on leader ${OLD_ID}:" >&2
        printf '%s\n' "$cs" >&2
        exit 1
    fi
done

echo "smoke: observability drill passed (/v1/events on every member, campaign-won + leader-demoted + vote-granted journaled, cluster status agrees on ${OLD_ID} everywhere)"
