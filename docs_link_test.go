package park_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinks walks README.md and docs/*.md and verifies that every
// relative markdown link points at a file that exists, and that links
// with fragments point at a real heading in the target document. It
// also checks bare "docs/FOO.md"-style mentions in prose, which this
// repo uses as cross-references.
func TestDocLinks(t *testing.T) {
	pages := []string{"README.md"}
	docPages, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	pages = append(pages, docPages...)
	if len(pages) < 2 {
		t.Fatalf("found only %v; doc layout changed?", pages)
	}

	mdLink := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	bareRef := regexp.MustCompile(`(?:docs/)?[A-Z][A-Z_]*\.md|docs/[a-zA-Z_]+\.md`)

	for _, page := range pages {
		raw, err := os.ReadFile(page)
		if err != nil {
			t.Fatal(err)
		}
		text := string(raw)
		dir := filepath.Dir(page)

		seen := map[string]bool{}
		check := func(ref string) {
			if seen[ref] {
				return
			}
			seen[ref] = true
			target, fragment, _ := strings.Cut(ref, "#")
			if target == "" {
				// Same-file anchor.
				if fragment != "" && !hasAnchor(text, fragment) {
					t.Errorf("%s: anchor #%s not found in same file", page, fragment)
				}
				return
			}
			// Resolve relative to the page's directory, falling back
			// to the repo root (prose mentions are root-relative).
			resolved := filepath.Join(dir, target)
			if _, err := os.Stat(resolved); err != nil {
				resolved = target
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q", page, ref)
					return
				}
			}
			if fragment != "" && strings.HasSuffix(resolved, ".md") {
				tgt, err := os.ReadFile(resolved)
				if err != nil {
					t.Errorf("%s: unreadable link target %q: %v", page, ref, err)
					return
				}
				if !hasAnchor(string(tgt), fragment) {
					t.Errorf("%s: link %q: no heading for anchor #%s in %s", page, ref, fragment, resolved)
				}
			}
		}

		for _, m := range mdLink.FindAllStringSubmatch(text, -1) {
			ref := m[1]
			if strings.Contains(ref, "://") || strings.HasPrefix(ref, "mailto:") {
				continue
			}
			check(ref)
		}
		for _, ref := range bareRef.FindAllString(text, -1) {
			check(ref)
		}
	}
}

// hasAnchor reports whether doc has a heading whose GitHub slug is
// fragment (lowercase, spaces to dashes, punctuation dropped).
func hasAnchor(doc, fragment string) bool {
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimSpace(strings.TrimLeft(line, "#"))
		if githubSlug(heading) == strings.ToLower(fragment) {
			return true
		}
	}
	return false
}

func githubSlug(heading string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		case r == ' ' || r == '-':
			sb.WriteByte('-')
		}
	}
	return sb.String()
}
