// Benchmarks regenerating the B-series experiments of DESIGN.md with
// the standard testing.B harness (cmd/parkbench prints the same
// measurements as tables). One benchmark family per experiment.
package park_test

import (
	"context"
	"fmt"
	"testing"

	park "repro"
	"repro/internal/workload"
)

// benchScenario parses once and evaluates once per iteration.
func benchScenario(b *testing.B, sc workload.Scenario, strat park.Strategy, opts park.Options) {
	b.Helper()
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, sc.Name, sc.Program)
	if err != nil {
		b.Fatal(err)
	}
	db, err := park.ParseDatabase(u, sc.Name, sc.Database)
	if err != nil {
		b.Fatal(err)
	}
	var ups []park.Update
	if sc.Updates != "" {
		if ups, err = park.ParseUpdates(u, sc.Name, sc.Updates); err != nil {
			b.Fatal(err)
		}
	}
	eng, err := park.NewEngine(u, prog, strat, opts)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, db, ups); err != nil {
			b.Fatal(err)
		}
	}
}

// B1 — polynomial data complexity: transitive closure sweep.
func BenchmarkB1TransitiveClosure(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchScenario(b, workload.TransitiveClosure(n, 20, 1), nil, park.Options{})
		})
	}
}

// B2 — restart count vs planted conflicts.
func BenchmarkB2ConflictLadder(b *testing.B) {
	for _, k := range []int{1, 4, 16, 32} {
		b.Run(fmt.Sprintf("ladder=%d", k), func(b *testing.B) {
			benchScenario(b, workload.ConflictLadder(k), nil, park.Options{})
		})
	}
	for _, k := range []int{16, 64} {
		b.Run(fmt.Sprintf("wide=%d", k), func(b *testing.B) {
			benchScenario(b, workload.WideConflicts(k), nil, park.Options{})
		})
	}
}

// B3 — conflict resolution strategy costs.
func BenchmarkB3Strategies(b *testing.B) {
	sc := workload.ConflictLadder(16)
	always := func(d park.Decision) park.Critic {
		return park.CriticFunc{CriticName: "const", Fn: func(*park.SelectInput) (park.Decision, error) { return d, nil }}
	}
	for _, s := range []struct {
		name  string
		strat park.Strategy
	}{
		{"inertia", park.Inertia()},
		{"priority", park.Priority(nil)},
		{"random", park.Random(1)},
		{"voting3", park.Voting(always(park.DecideInsert), always(park.DecideDelete), always(park.DecideDelete))},
		{"specificity", park.Specificity()},
	} {
		b.Run(s.name, func(b *testing.B) {
			benchScenario(b, sc, s.strat, park.Options{})
		})
	}
}

// B4 — PARK vs the naive post-hoc baseline on a conflict-bearing
// random program.
func BenchmarkB4ParkVsPostHoc(b *testing.B) {
	sc := workload.RandomProgram(10, 4, 4, 3)
	b.Run("park", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{})
	})
	b.Run("posthoc", func(b *testing.B) {
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "", sc.Program)
		if err != nil {
			b.Fatal(err)
		}
		db, err := park.ParseDatabase(u, "", sc.Database)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := park.PostHoc(ctx, u, prog, db, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// B5 — ablation: semi-naive vs naive Γ evaluation.
func BenchmarkB5Seminaive(b *testing.B) {
	for _, n := range []int{64, 256} {
		sc := workload.Chain(n)
		b.Run(fmt.Sprintf("seminaive/chain=%d", n), func(b *testing.B) {
			benchScenario(b, sc, nil, park.Options{})
		})
		b.Run(fmt.Sprintf("naive/chain=%d", n), func(b *testing.B) {
			benchScenario(b, sc, nil, park.Options{Naive: true})
		})
	}
}

// B6 — ablation: hash-indexed vs linear matching on a probe-dominated
// selective join.
func BenchmarkB6Indexing(b *testing.B) {
	sc := workload.SelectiveJoin(16000, 512, 1)
	b.Run("indexed", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{})
	})
	b.Run("linear", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{NoIndex: true})
	})
}

// B7 — ECA trigger-cascade scaling.
func BenchmarkB7Cascade(b *testing.B) {
	for _, depth := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("depth=%d/width=8", depth), func(b *testing.B) {
			benchScenario(b, workload.TriggerCascade(depth, 8), nil, park.Options{})
		})
	}
	for _, width := range []int{1, 64} {
		b.Run(fmt.Sprintf("depth=16/width=%d", width), func(b *testing.B) {
			benchScenario(b, workload.TriggerCascade(16, width), nil, park.Options{})
		})
	}
}

// B8 — the sequential baseline (one firing order) vs PARK on the same
// conflict-bearing program; the result-multiplicity measurement lives
// in cmd/parkbench (it is not a timing experiment).
func BenchmarkB8SequentialVsPark(b *testing.B) {
	prog := "p, !b -> +a.\np, !a -> +b.\n"
	db := "p."
	b.Run("park", func(b *testing.B) {
		benchScenario(b, workload.Scenario{Name: "mutex", Program: prog, Database: db}, nil, park.Options{})
	})
	b.Run("sequential", func(b *testing.B) {
		u := park.NewUniverse()
		p, err := park.ParseProgram(u, "", prog)
		if err != nil {
			b.Fatal(err)
		}
		d, err := park.ParseDatabase(u, "", db)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		seq := &park.SequentialBaseline{Seed: 1}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := seq.Run(ctx, u, p, d, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Realistic scenario benchmark: HR payroll maintenance at scale.
func BenchmarkHRPayroll(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("employees=%d", n), func(b *testing.B) {
			benchScenario(b, workload.HRPayroll(n, 10, 7), nil, park.Options{})
		})
	}
}

// B9 — ablation: blocking granularity (all conflicts per restart vs
// one).
func BenchmarkB9BlockingGranularity(b *testing.B) {
	sc := workload.WideConflicts(32)
	b.Run("all", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{})
	})
	b.Run("one", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{ResolveOne: true})
	})
}

// B10 — parallel full-step evaluation (speedup bounded by core
// count; see cmd/parkbench -id B10 for the honest single-core note).
func BenchmarkB10Parallel(b *testing.B) {
	sc := workload.SelectiveJoin(16000, 512, 1)
	b.Run("workers=1", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{NoIndex: true})
	})
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			benchScenario(b, sc, nil, park.Options{NoIndex: true, Parallel: w})
		})
	}
}

// Grid reachability: many redundant derivation paths stress per-step
// dedup (complements the chain and TC shapes).
func BenchmarkGridReachability(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchScenario(b, workload.Grid(n), nil, park.Options{})
		})
	}
}

// Explain-mode overhead: provenance retention cost on a busy run.
func BenchmarkExplainOverhead(b *testing.B) {
	sc := workload.TransitiveClosure(24, 20, 1)
	b.Run("plain", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{})
	})
	b.Run("explain", func(b *testing.B) {
		benchScenario(b, sc, nil, park.Options{Explain: true})
	})
}
