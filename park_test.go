package park_test

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	park "repro"
	"repro/internal/workload"
)

func TestEvalQuickstart(t *testing.T) {
	res, u, err := park.Eval(context.Background(), `
		p -> +q.
		p -> -a.
		q -> +a.
	`, `p.`, ``, park.Inertia(), park.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := park.FormatDatabase(u, res.Output); got != "{p, q}" {
		t.Fatalf("result = %s", got)
	}
}

func TestEvalParseErrors(t *testing.T) {
	if _, _, err := park.Eval(context.Background(), `p -> q.`, ``, ``, nil, park.Options{}); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, _, err := park.Eval(context.Background(), ``, `p(X).`, ``, nil, park.Options{}); err == nil {
		t.Fatal("bad database accepted")
	}
	if _, _, err := park.Eval(context.Background(), ``, ``, `p(a).`, nil, park.Options{}); err == nil {
		t.Fatal("bad updates accepted")
	}
}

func TestFacadeStrategies(t *testing.T) {
	prog := `
		rule r1 priority 1: p -> +a.
		rule r2 priority 2: p -> -a.
	`
	cases := []struct {
		name  string
		strat park.Strategy
		want  string
	}{
		{"inertia", park.Inertia(), "{p}"},
		{"priority", park.Priority(nil), "{p}"}, // delete side has higher priority
		{"specificity", park.Specificity(), "{p}"},
		{"random-seed3", park.Random(3), ""}, // outcome seed-dependent, just must run
		{"voting", park.Voting(
			park.CriticFunc{CriticName: "c1", Fn: func(*park.SelectInput) (park.Decision, error) { return park.DecideInsert, nil }},
		), "{a, p}"},
		{"interactive", park.Interactive(strings.NewReader("i\n"), &strings.Builder{}), "{a, p}"},
		{"fallback", park.Fallback(park.Inertia()), "{p}"},
		{"protect", park.ProtectUpdates(park.Inertia()), "{p}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, u, err := park.Eval(context.Background(), prog, `p.`, ``, tc.strat, park.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if tc.want != "" {
				if got := park.FormatDatabase(u, res.Output); got != tc.want {
					t.Fatalf("result = %s, want %s", got, tc.want)
				}
			}
		})
	}
}

func TestFacadeAnalyze(t *testing.T) {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "", `
		a(X) -> +f(X).
		b(X) -> -f(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rep := park.Analyze(u, prog)
	if rep.ConflictFree() {
		t.Fatal("conflict potential missed through facade")
	}
}

func TestFacadeBaselines(t *testing.T) {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "", `
		p -> +q.
		p -> -a.
		q -> +a.
		!a -> +r.
		a -> +s.
	`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := park.ParseDatabase(u, "", `p.`)
	if err != nil {
		t.Fatal(err)
	}
	post, _, err := park.PostHoc(context.Background(), u, prog, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := park.FormatDatabase(u, post); got != "{p, q, r, s}" {
		t.Fatalf("post-hoc = %s", got)
	}
	eng, err := park.NewEngine(u, prog, nil, park.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := park.FormatDatabase(u, res.Output); got != "{p, q, r}" {
		t.Fatalf("park = %s", got)
	}
}

func TestFormatUpdates(t *testing.T) {
	u := park.NewUniverse()
	ups, err := park.ParseUpdates(u, "", `+q(b). -p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if got := park.FormatUpdates(u, ups); got != "{+q(b), -p(a)}" {
		t.Fatalf("updates = %s", got)
	}
}

// evalScenario evaluates a generated workload scenario.
func evalScenario(t *testing.T, sc workload.Scenario, strat park.Strategy, opts park.Options) (*park.Result, *park.Universe) {
	t.Helper()
	res, u, err := park.Eval(context.Background(), sc.Program, sc.Database, sc.Updates, strat, opts)
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res, u
}

// Property: PARK is a deterministic function — repeated evaluation of
// random programs yields identical results, blocked sets and stats.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		sc := workload.RandomProgram(10, 4, 4, seed%1000)
		r1, u1 := evalScenario(t, sc, park.Inertia(), park.Options{})
		r2, u2 := evalScenario(t, sc, park.Inertia(), park.Options{})
		if park.FormatDatabase(u1, r1.Output) != park.FormatDatabase(u2, r2.Output) {
			return false
		}
		return r1.Stats == r2.Stats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the engine configurations (naive/semi-naive, indexed/
// linear) are observationally equivalent.
func TestQuickConfigEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		sc := workload.RandomProgram(10, 4, 4, seed%1000)
		base, u0 := evalScenario(t, sc, park.Inertia(), park.Options{})
		want := park.FormatDatabase(u0, base.Output)
		for _, opts := range []park.Options{{Naive: true}, {NoIndex: true}, {Naive: true, NoIndex: true}} {
			r, u := evalScenario(t, sc, park.Inertia(), opts)
			if park.FormatDatabase(u, r.Output) != want {
				return false
			}
			if r.Stats.Conflicts != base.Stats.Conflicts || r.Stats.Phases != base.Stats.Phases {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase count is exactly restarts+1 and every restart
// blocked at least one grounding (the termination argument).
func TestQuickTerminationBound(t *testing.T) {
	f := func(seed int64) bool {
		sc := workload.RandomProgram(12, 4, 3, seed%1000)
		r, _ := evalScenario(t, sc, park.Inertia(), park.Options{})
		restarts := r.Stats.Phases - 1
		return restarts >= 0 && r.Stats.BlockedInstances >= restarts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: on conflict-free programs (by static analysis) PARK
// equals the plain inflationary semantics — the §3 compatibility
// requirement.
func TestQuickConflictFreeEqualsInflationary(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 400 && checked < 40; seed++ {
		sc := workload.RandomProgram(8, 4, 4, seed)
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "", sc.Program)
		if err != nil {
			t.Fatal(err)
		}
		if !park.Analyze(u, prog).ConflictFree() {
			continue
		}
		checked++
		db, err := park.ParseDatabase(u, "", sc.Database)
		if err != nil {
			t.Fatal(err)
		}
		infl, err := park.Inflationary(context.Background(), u, prog, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := park.NewEngine(u, prog, nil, park.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Conflicts != 0 {
			t.Fatalf("seed %d: statically conflict-free program raised a conflict", seed)
		}
		a, b := park.FormatDatabase(u, infl), park.FormatDatabase(u, res.Output)
		if a != b {
			t.Fatalf("seed %d: inflationary %s != park %s", seed, a, b)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d conflict-free programs among 400 seeds", checked)
	}
}

// Property: consistently renaming constants renames the result — PARK
// is generic (isomorphism invariance).
func TestQuickRenamingIsomorphism(t *testing.T) {
	rename := func(s string) string {
		// Workload constants are k0..k9; map k<i> -> z<9-i>.
		var sb strings.Builder
		for i := 0; i < len(s); i++ {
			if s[i] == 'k' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9' {
				sb.WriteByte('z')
				sb.WriteByte('9' - (s[i+1] - '0'))
				i++
				continue
			}
			sb.WriteByte(s[i])
		}
		return sb.String()
	}
	f := func(seed int64) bool {
		sc := workload.RandomProgram(10, 4, 4, seed%1000)
		r1, u1 := evalScenario(t, sc, park.Inertia(), park.Options{})
		sc2 := sc
		sc2.Program = rename(sc.Program)
		sc2.Database = rename(sc.Database)
		r2, u2 := evalScenario(t, sc2, park.Inertia(), park.Options{})
		// Renaming does not preserve sort order, so compare as sets.
		asSet := func(s string) string {
			s = strings.Trim(s, "{}")
			parts := strings.Split(s, ", ")
			sort.Strings(parts)
			return strings.Join(parts, ", ")
		}
		return asSet(rename(park.FormatDatabase(u1, r1.Output))) == asSet(park.FormatDatabase(u2, r2.Output))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with no rules, PARK(∅, D, U) applies exactly the
// (non-conflicting) updates.
func TestQuickUpdateApplication(t *testing.T) {
	f := func(addMask, delMask uint8) bool {
		names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
		var db, ups strings.Builder
		want := map[string]bool{}
		for i, n := range names {
			inDB := i%2 == 0
			if inDB {
				db.WriteString(n + ". ")
			}
			add := addMask&(1<<i) != 0
			del := delMask&(1<<i) != 0
			if add {
				ups.WriteString("+" + n + ". ")
			}
			if del {
				ups.WriteString("-" + n + ". ")
			}
			switch {
			case add && del:
				want[n] = inDB // inertia keeps original status
			case add:
				want[n] = true
			case del:
				want[n] = false
			default:
				want[n] = inDB
			}
		}
		res, u, err := park.Eval(context.Background(), ``, db.String(), ups.String(), park.Inertia(), park.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := park.FormatDatabase(u, res.Output)
		for n, present := range want {
			has := strings.Contains(got, n)
			if has != present {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every conflict recorded in a run has non-empty sides and
// the blocked set contains exactly the losing groundings that were
// newly blocked.
func TestQuickConflictWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		sc := workload.RandomProgram(12, 3, 3, seed%1000)
		r, _ := evalScenario(t, sc, park.Inertia(), park.Options{})
		for _, rc := range r.Conflicts {
			if len(rc.Conflict.Ins) == 0 || len(rc.Conflict.Del) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: under ProtectUpdates, every update that does not clash
// with an opposite update in the same transaction is reflected in the
// result, regardless of what the (random) rules try to do.
func TestQuickProtectUpdatesWins(t *testing.T) {
	f := func(seed int64) bool {
		sc := workload.RandomProgram(8, 3, 3, seed%500)
		u := park.NewUniverse()
		prog, err := park.ParseProgram(u, "", sc.Program)
		if err != nil {
			t.Fatal(err)
		}
		db, err := park.ParseDatabase(u, "", sc.Database)
		if err != nil {
			t.Fatal(err)
		}
		ups, err := park.ParseUpdates(u, "", `+p0(k0). -p1(k1).`)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := park.NewEngine(u, prog, park.ProtectUpdates(park.Inertia()), park.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), db, ups)
		if err != nil {
			t.Fatal(err)
		}
		out := park.FormatDatabase(u, res.Output)
		return strings.Contains(out, "p0(k0)") && !strings.Contains(out, "p1(k1)")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The system layer is reachable from the facade: store + server +
// client, end to end.
func TestFacadeSystemLayer(t *testing.T) {
	store, err := park.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := park.NewServer(store)
	if err := srv.SetProgram(`-active(X) -> +audit(X).`); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := &park.Client{BaseURL: ts.URL}
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+active(tom).`); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Transact(ctx, `-active(tom).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Facts) != 1 || resp.Facts[0] != "audit(tom)" {
		t.Fatalf("facts = %v", resp.Facts)
	}
	// Backup through the facade type and restore into a new store.
	var buf strings.Builder
	if err := store.Backup(&buf); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := park.RestoreStore(dir2, strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	s2, err := park.OpenStore(dir2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 1 {
		t.Fatalf("restored store has %d facts", s2.Len())
	}
}
