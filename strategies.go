package park

import (
	"io"

	"repro/internal/resolve"
)

// Strategy combinator and policy types, re-exported from
// internal/resolve.
type (
	// PriorityStrategy resolves conflicts by rule priority (§5).
	PriorityStrategy = resolve.Priority
	// SpecificityStrategy prefers more specific rules (§5); partial,
	// compose with Fallback.
	SpecificityStrategy = resolve.Specificity
	// InteractiveStrategy asks the user on every conflict (§5).
	InteractiveStrategy = resolve.Interactive
	// VotingStrategy adopts the majority opinion of its critics (§5).
	VotingStrategy = resolve.Voting
	// RandomStrategy picks randomly with a fixed seed (§5).
	RandomStrategy = resolve.Random
	// FallbackStrategy chains partial strategies.
	FallbackStrategy = resolve.Fallback
	// ProtectUpdatesStrategy makes transaction updates unoverridable.
	ProtectUpdatesStrategy = resolve.ProtectUpdates
	// Critic is one voter of the voting scheme.
	Critic = resolve.Critic
	// CriticFunc adapts a function to Critic.
	CriticFunc = resolve.CriticFunc
)

// ErrUndecided is returned by partial strategies that abstain.
var ErrUndecided = resolve.ErrUndecided

// Inertia returns the principle-of-inertia strategy (§4.1): a
// conflicting atom keeps the status it had in the original database.
func Inertia() Strategy { return resolve.Inertia() }

// Priority returns the rule-priority strategy: the conflict side with
// the highest-priority rule wins; tieBreak (may be nil) handles equal
// maxima.
func Priority(tieBreak Strategy) Strategy { return resolve.Priority{TieBreak: tieBreak} }

// Specificity returns the specificity strategy backed by inertia for
// incomparable conflicts — the composition the paper suggests.
func Specificity() Strategy {
	return resolve.Fallback{Strategies: []Strategy{resolve.Specificity{}, resolve.Inertia()}}
}

// Interactive returns a strategy that prompts on w and reads
// insert/delete answers from r.
func Interactive(r io.Reader, w io.Writer) Strategy { return &resolve.Interactive{R: r, W: w} }

// Voting returns the critics-vote-majority strategy with inertia as
// the tie breaker.
func Voting(critics ...Critic) Strategy {
	return resolve.Fallback{Strategies: []Strategy{
		resolve.Voting{Critics: critics},
		resolve.Inertia(),
	}}
}

// Random returns a seeded random strategy (reproducible per seed).
func Random(seed int64) Strategy { return resolve.NewRandom(seed) }

// Fallback chains partial strategies: the first decision wins.
func Fallback(strategies ...Strategy) Strategy {
	return resolve.Fallback{Strategies: strategies}
}

// ProtectUpdates wraps a strategy so transaction updates always win
// conflicts against rules (§4.3).
func ProtectUpdates(inner Strategy) Strategy { return resolve.ProtectUpdates{Inner: inner} }

// Pre-built critics for the voting scheme (§5): recency prefers the
// new information, reliability trusts the higher-priority rule,
// conservative votes for the original database status, majority votes
// with the larger conflict side.
func RecencyCritic() Critic      { return resolve.RecencyCritic() }
func ReliabilityCritic() Critic  { return resolve.ReliabilityCritic() }
func ConservativeCritic() Critic { return resolve.ConservativeCritic() }
func MajorityCritic() Critic     { return resolve.MajorityCritic() }

// StandardPanel is a ready-made recency/reliability/conservative
// critic panel for Voting.
func StandardPanel() []Critic { return resolve.StandardPanel() }
