package park_test

import (
	"context"
	"fmt"
	"log"

	park "repro"
)

// The paper's §4.1 program P1: the conflicting actions on atom a are
// suppressed by the principle of inertia.
func ExampleEval() {
	res, u, err := park.Eval(context.Background(), `
		p -> +q.
		p -> -a.
		q -> +a.
	`, `p.`, ``, park.Inertia(), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(park.FormatDatabase(u, res.Output))
	fmt.Println("conflicts:", res.Stats.Conflicts)
	// Output:
	// {p, q}
	// conflicts: 1
}

// Full ECA rules: transaction updates trigger event literals.
func ExampleEngine_Run() {
	u := park.NewUniverse()
	prog, err := park.ParseProgram(u, "rules", `
		rule audit: -active(X) -> +audit(X).
		rule cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db, err := park.ParseDatabase(u, "db", `emp(tom). active(tom). payroll(tom, 100).`)
	if err != nil {
		log.Fatal(err)
	}
	ups, err := park.ParseUpdates(u, "tx", `-active(tom).`)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := park.NewEngine(u, prog, park.Inertia(), park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(park.FormatDatabase(u, res.Output))
	// Output:
	// {audit(tom), emp(tom)}
}

// Conjunctive queries run against any database instance.
func ExampleQuery() {
	u := park.NewUniverse()
	db, err := park.ParseDatabase(u, "db", `
		emp(tom). emp(ann). active(ann).
		sal(tom, 2500). sal(ann, 900).
	`)
	if err != nil {
		log.Fatal(err)
	}
	q, err := park.Query(u, db, `emp(X), sal(X, S), S >= 1000`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q)
	// Output:
	// X=tom, S=2500
}

// The trigger DDL compiles to active rules.
func ExampleParseTriggers() {
	u := park.NewUniverse()
	prog, err := park.ParseTriggers(u, "ddl", `
		CREATE TRIGGER audit PRIORITY 5
		  AFTER DELETE ON active(X)
		  WHEN dept(X, D)
		  DO INSERT audit(X, D);
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(prog.Rules[0].String(u))
	// Output:
	// -active(X), dept(X, D) -> +audit(X, D)
}

// A custom SELECT policy: the paper's §4.2 graph example decides per
// conflicting arc.
func ExampleStrategyFunc() {
	strategy := park.StrategyFunc{
		StrategyName: "no-loops",
		Fn: func(in *park.SelectInput) (park.Decision, error) {
			args := in.Universe.AtomArgs(in.Conflict.Atom)
			if args[0] == args[1] {
				return park.DecideDelete, nil // drop reflexive arcs
			}
			return park.DecideInsert, nil
		},
	}
	res, u, err := park.Eval(context.Background(), `
		rule build: p(X), p(Y) -> +q(X, Y).
		rule noloop: q(X, X) -> -q(X, X).
	`, `p(a). p(b).`, ``, strategy, park.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(park.FormatDatabase(u, res.Output))
	// Output:
	// {p(a), p(b), q(a, b), q(b, a)}
}
