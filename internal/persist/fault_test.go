package persist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// The randomized fault/crash harness. Each seeded schedule runs a
// concurrent group-commit workload while an injector arms random
// failpoints at the store's VFS callsites (WAL appends and fsyncs —
// torn, once, sticky, ENOSPC — snapshot writes, renames, probe
// files), then:
//
//  1. crash-cuts the on-disk files at a random offset no lower than
//     the WAL's durable floor (what fsync has covered — a real crash
//     cannot take back synced bytes) and reopens the copy, verifying
//     the recovered store is a prefix-consistent state: exactly the
//     fold of the first R committed transactions for some R, with
//     every acknowledged transaction included;
//  2. replicates the recovered store into a fresh follower through
//     ReplicaCut/ApplyReplicated and verifies convergence;
//  3. heals the live store (clears every failpoint), waits for the
//     degraded-mode probe to repair it, and verifies writes resume
//     and the final state matches the committed history exactly.
//
// Schedules and seeding are controlled by environment variables so CI
// can crank the count and any failure can be replayed:
//
//	PARK_FAULT_SCHEDULES  number of schedules (default 25, 5 in -short)
//	PARK_FAULT_SEED       run exactly one schedule with this seed
//
// Every failure message includes the schedule's seed.

// faultMenu is the set of failpoints the injector draws from. Between
// them they cover every VFS callsite the store has: WAL append/sync/
// truncate/open/read, snapshot create/append/sync/rename, probe
// create/append/sync, and the whole-disk wildcard.
var faultMenu = []struct {
	name string
	fp   Failpoint
}{
	{"sync:wal.log", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"sync:wal.log", Failpoint{Err: ErrInjected, Remaining: -1}},
	{"append:wal.log", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"append:wal.log", Failpoint{Err: ErrDiskFull, Remaining: -1}},
	{"append:wal.log", Failpoint{Err: ErrInjected, Remaining: 1, ShortWrite: 3}},
	{"append:*", Failpoint{Err: ErrDiskFull, Remaining: -1}},
	{"sync:*", Failpoint{Err: ErrInjected, Remaining: 2}},
	{"truncate:wal.log", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"open:wal.log", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"read:wal.log", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"create:snapshot-*.tmp", Failpoint{Err: ErrDiskFull, Remaining: 1}},
	{"append:snapshot-*.tmp", Failpoint{Err: ErrDiskFull, Remaining: 2}},
	{"sync:snapshot-*.tmp", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"rename:snapshot.park", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"create:health-*.probe", Failpoint{Err: ErrInjected, Remaining: 2}},
	{"append:health-*.probe", Failpoint{Err: ErrInjected, Remaining: 1}},
	{"sync:health-*.probe", Failpoint{Err: ErrInjected, Remaining: 2}},
}

func TestRandomFaultRecovery(t *testing.T) {
	schedules := 25
	if testing.Short() {
		schedules = 5
	}
	if v := os.Getenv("PARK_FAULT_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad PARK_FAULT_SCHEDULES %q", v)
		}
		schedules = n
	}
	baseSeed := time.Now().UnixNano()
	if v := os.Getenv("PARK_FAULT_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad PARK_FAULT_SEED %q", v)
		}
		baseSeed = n
		schedules = 1
	}
	t.Logf("fault harness: %d schedule(s), base seed %d; replay a failing schedule with PARK_FAULT_SEED=<seed>", schedules, baseSeed)

	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runFaultSchedule(t, seed)
		})
	}
}

// runFaultSchedule executes one seeded schedule end to end.
func runFaultSchedule(t *testing.T, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, WithFS(ffs), WithProbeInterval(2*time.Millisecond))
	if err != nil {
		t.Fatalf("[seed %d] open: %v", seed, err)
	}
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()

	// The subscription records the committed history in commit order;
	// the buffer exceeds the schedule's transaction count, so nothing
	// is ever dropped.
	events, cancelSub := s.Subscribe(4096)
	defer cancelSub()

	const writers = 4
	const opsPerWriter = 24

	// acked collects facts whose Apply returned success — the store
	// told the client they are durable.
	var ackedMu sync.Mutex
	var acked []string

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWriter; op++ {
				// One argument, so the literal matches the store's own
				// atom rendering exactly.
				fact := fmt.Sprintf("f(w%dn%d)", w, op)
				err := s.ApplyUpdates(ctx, mustUpdates(t, u, "+"+fact+"."))
				if err == nil {
					ackedMu.Lock()
					acked = append(acked, fact)
					ackedMu.Unlock()
				}
				// Degraded-mode rejections, injected I/O errors and
				// closed-queue errors are all legitimate outcomes under
				// fault injection; the invariant is only that a nil
				// error means durable.
			}
		}(w)
	}

	// An occasional checkpointer exercises the snapshot callsites
	// concurrently with commits.
	ckDone := make(chan struct{})
	go func() {
		defer close(ckDone)
		for i := 0; i < 6; i++ {
			time.Sleep(3 * time.Millisecond)
			_ = s.Checkpoint()
		}
	}()

	// The injector arms random faults from the menu while the workload
	// runs, occasionally clearing everything so progress resumes.
	injDone := make(chan struct{})
	go func() {
		defer close(injDone)
		localRnd := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 10; i++ {
			time.Sleep(time.Duration(localRnd.Intn(4)+1) * time.Millisecond)
			pick := faultMenu[localRnd.Intn(len(faultMenu))]
			ffs.SetFailpoint(pick.name, pick.fp)
			if localRnd.Intn(3) == 0 {
				time.Sleep(time.Duration(localRnd.Intn(3)+1) * time.Millisecond)
				ffs.ClearAll()
			}
		}
	}()

	wg.Wait()
	<-ckDone
	<-injDone

	// ---- Crash simulation ----------------------------------------
	// Under the commit lock (so no repair or checkpoint is mid-flight
	// and the copied pair is a point-in-time disk state), copy the
	// snapshot and a crash-cut of the WAL into a fresh directory. The
	// cut offset is drawn from [durable floor, size]: a real crash
	// can lose unsynced bytes but never synced ones.
	crashDir := t.TempDir()
	s.mu.Lock()
	snapData, snapErr := os.ReadFile(filepath.Join(dir, snapshotName))
	walData, walErr := os.ReadFile(filepath.Join(dir, walName))
	floor := ffs.SyncedSize("wal.log")
	s.mu.Unlock()
	if snapErr != nil && !errors.Is(snapErr, os.ErrNotExist) {
		t.Fatalf("[seed %d] read snapshot: %v", seed, snapErr)
	}
	if walErr != nil && !errors.Is(walErr, os.ErrNotExist) {
		t.Fatalf("[seed %d] read wal: %v", seed, walErr)
	}
	if floor > int64(len(walData)) {
		floor = int64(len(walData))
	}
	cut := floor
	if int64(len(walData)) > floor {
		cut = floor + rnd.Int63n(int64(len(walData))-floor+1)
	}
	if snapErr == nil {
		if err := os.WriteFile(filepath.Join(crashDir, snapshotName), snapData, 0o644); err != nil {
			t.Fatalf("[seed %d] %v", seed, err)
		}
	}
	if walErr == nil {
		if err := os.WriteFile(filepath.Join(crashDir, walName), walData[:cut], 0o644); err != nil {
			t.Fatalf("[seed %d] %v", seed, err)
		}
	}

	// ---- Heal the live store -------------------------------------
	ffs.ClearAll()
	deadline := time.Now().Add(10 * time.Second)
	for s.Health().Degraded && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if h := s.Health(); h.Degraded {
		t.Fatalf("[seed %d] store unrecoverable after faults cleared: %+v", seed, h)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, "+healed(yes).")); err != nil {
		t.Fatalf("[seed %d] write after heal: %v", seed, err)
	}

	// Drain the committed history. Notifications are synchronous with
	// the install, so after the final ack everything is buffered.
	var history []TxnRecord
drain:
	for {
		select {
		case txn := <-events:
			history = append(history, txn)
		default:
			break drain
		}
	}
	factSeq := make(map[string]int)
	for i, txn := range history {
		if i > 0 && txn.Seq != history[i-1].Seq+1 {
			t.Fatalf("[seed %d] committed history has a gap: %d then %d", seed, history[i-1].Seq, txn.Seq)
		}
		for _, f := range txn.Added {
			factSeq[f] = txn.Seq
		}
		if len(txn.Removed) != 0 {
			t.Fatalf("[seed %d] unexpected removal in txn %d", seed, txn.Seq)
		}
	}

	// The live state must be exactly the fold of the whole history.
	liveWant := make(map[string]bool, len(factSeq))
	for f := range factSeq {
		liveWant[f] = true
	}
	checkStateEquals(t, seed, "live store", s, liveWant)

	// Every acked fact must be in the committed history.
	ackedMu.Lock()
	ackedFacts := append([]string(nil), acked...)
	ackedMu.Unlock()
	for _, f := range ackedFacts {
		if _, ok := factSeq[f]; !ok {
			t.Fatalf("[seed %d] acked fact %s missing from committed history", seed, f)
		}
	}

	// ---- Recover the crash copy ----------------------------------
	rec, _, err := RepairOpen(crashDir)
	if err != nil {
		t.Fatalf("[seed %d] recovery of crash copy failed: %v", seed, err)
	}
	defer rec.Close()
	recSeq := rec.Seq()

	// Prefix consistency: the recovered state is the fold of exactly
	// the first recSeq transactions.
	want := make(map[string]bool)
	for f, fs := range factSeq {
		if fs <= recSeq {
			want[f] = true
		}
	}
	checkStateEquals(t, seed, fmt.Sprintf("recovered store (seq %d, cut %d/%d floor %d)", recSeq, cut, len(walData), floor), rec, want)

	// Durability: every fact acked before the crash copy was taken is
	// at or below the recovered sequence.
	for _, f := range ackedFacts {
		if factSeq[f] > recSeq {
			t.Fatalf("[seed %d] acked fact %s (seq %d) lost: crash copy recovered only through seq %d (cut %d, floor %d)",
				seed, f, factSeq[f], recSeq, cut, floor)
		}
	}

	// ---- Follower convergence ------------------------------------
	fdir := t.TempDir()
	fst, err := Open(fdir)
	if err != nil {
		t.Fatalf("[seed %d] follower open: %v", seed, err)
	}
	defer fst.Close()
	cutView, err := rec.ReplicaCut(true, 16)
	if err != nil {
		t.Fatalf("[seed %d] replica cut: %v", seed, err)
	}
	defer cutView.Cancel()
	var facts []string
	ru := rec.Universe()
	ids := append([]core.AID(nil), cutView.Snapshot.Atoms()...)
	ru.SortAtoms(ids)
	for _, id := range ids {
		facts = append(facts, ru.AtomString(id))
	}
	if err := fst.ResetToSnapshot(cutView.BaseSeq, cutView.BaseEpoch, facts, cutView.Epoch); err != nil {
		t.Fatalf("[seed %d] follower bootstrap: %v", seed, err)
	}
	for _, txn := range cutView.History {
		// History may predate the serving leader's epoch; the leader's
		// own epoch authorizes the relay (as the stream layer does).
		if err := fst.ApplyReplicatedFrom(txn, cutView.Epoch); err != nil {
			t.Fatalf("[seed %d] follower apply txn %d: %v", seed, txn.Seq, err)
		}
	}
	if err := fst.SyncWAL(); err != nil {
		t.Fatalf("[seed %d] follower sync: %v", seed, err)
	}
	if fst.Seq() != rec.Seq() {
		t.Fatalf("[seed %d] follower at seq %d, recovered leader at %d", seed, fst.Seq(), rec.Seq())
	}
	if got, wantS := renderDB(fst.Universe(), fst.Snapshot()), renderDB(ru, rec.Snapshot()); got != wantS {
		t.Fatalf("[seed %d] follower diverged:\n  follower: {%s}\n  leader:   {%s}", seed, got, wantS)
	}
}

// checkStateEquals asserts the store's fact set is exactly want.
func checkStateEquals(t *testing.T, seed int64, label string, s *Store, want map[string]bool) {
	t.Helper()
	db := s.Snapshot()
	u := s.Universe()
	got := make(map[string]bool, db.Len())
	for _, id := range db.Atoms() {
		got[u.AtomString(id)] = true
	}
	for f := range want {
		if !got[f] {
			t.Fatalf("[seed %d] %s missing committed fact %s", seed, label, f)
		}
	}
	for f := range got {
		if !want[f] {
			t.Fatalf("[seed %d] %s has fact %s outside the committed prefix", seed, label, f)
		}
	}
}
