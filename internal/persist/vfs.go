package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"syscall"
)

// This file is the store's filesystem seam. Every byte the store
// reads or writes goes through an FS implementation: production
// stores use the thin os wrapper returned by OSFS, and tests (plus
// parkd's -failpoints debug mode) wrap it in a FaultFS that can fail
// individual operations at named failpoints — fsyncs that error once
// or stick, ENOSPC on append, short (torn) writes, and so on. The
// degradation and recovery machinery in degrade.go exists because
// this seam made those faults reachable in tests.

// FS is the filesystem interface the store runs on. Implementations
// must be safe for concurrent use.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(name string) ([]byte, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Stat(name string) (os.FileInfo, error)
	ReadDir(name string) ([]os.DirEntry, error)
}

// File is the store's view of an open file: append-style writes,
// durability (Sync), and the truncate/seek pair recovery uses to drop
// a torn WAL tail.
type File interface {
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
	Seek(offset int64, whence int) (int64, error)
	Name() string
}

// osFS is the production FS: direct calls into the os package.
type osFS struct{}

// OSFS returns the production filesystem implementation.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

// ErrInjected is the default error injected by FaultFS failpoints; it
// stands in for a generic I/O error (EIO) from a failing disk.
var ErrInjected = errors.New("persist: injected I/O fault")

// ErrDiskFull is an injectable disk-full error; errors.Is matches
// syscall.ENOSPC, like the real thing.
var ErrDiskFull = fmt.Errorf("persist: injected fault: %w", syscall.ENOSPC)

// Failpoint describes one armed fault at a named callsite.
type Failpoint struct {
	// Err is the error the operation returns (default ErrInjected).
	Err error
	// Remaining is how many matching operations fail: n > 0 fails the
	// next n and then disarms, n < 0 is sticky (fails until cleared).
	// Zero is normalized to 1 (fail once).
	Remaining int
	// ShortWrite, on a write operation, writes this many bytes of the
	// payload before failing — a torn write. Ignored by other ops.
	ShortWrite int
}

// fileTrack records a file's write-tracking state across the life of
// a FaultFS: its current size and its durable floor (the size at the
// last successful Sync). The crash harness uses the floor to cut
// files at offsets a real crash could produce — synced bytes survive,
// anything past them is fair game.
type fileTrack struct {
	size, synced int64
}

// FaultFS wraps another FS with named failpoints. Operation names are
// "op:label" where op is one of open, read, append, sync, truncate,
// create, rename, remove, stat, readdir, mkdir and label is the file's
// base name (for temp files, the creation pattern — e.g.
// "snapshot-*.tmp"). A failpoint name may use the wildcard label "*"
// ("append:*") to match every file, modeling a whole-disk fault such
// as ENOSPC. Exact names take precedence over wildcards.
//
// The store's WAL callsites are append:wal.log, sync:wal.log,
// truncate:wal.log, open:wal.log and read:wal.log; the snapshot path
// is create:snapshot-*.tmp, append:snapshot-*.tmp,
// sync:snapshot-*.tmp and rename:snapshot.park; the degraded-mode
// disk probe uses create:health-*.probe, append:health-*.probe and
// sync:health-*.probe.
type FaultFS struct {
	inner FS

	mu     sync.Mutex
	points map[string]*Failpoint
	hits   map[string]int64
	tracks map[string]*fileTrack
}

// NewFaultFS wraps inner (OSFS() when nil) with an empty failpoint
// set.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{
		inner:  inner,
		points: make(map[string]*Failpoint),
		hits:   make(map[string]int64),
		tracks: make(map[string]*fileTrack),
	}
}

// SetFailpoint arms (or replaces) the failpoint at name.
func (f *FaultFS) SetFailpoint(name string, fp Failpoint) {
	if fp.Err == nil {
		fp.Err = ErrInjected
	}
	if fp.Remaining == 0 {
		fp.Remaining = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.points[name] = &fp
}

// Fail arms a sticky failpoint: every matching operation fails with
// err until Clear.
func (f *FaultFS) Fail(name string, err error) {
	f.SetFailpoint(name, Failpoint{Err: err, Remaining: -1})
}

// FailOnce arms a one-shot failpoint: the next matching operation
// fails with err, later ones succeed.
func (f *FaultFS) FailOnce(name string, err error) {
	f.SetFailpoint(name, Failpoint{Err: err, Remaining: 1})
}

// Clear disarms the failpoint at name (no-op if not armed).
func (f *FaultFS) Clear(name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.points, name)
}

// ClearAll disarms every failpoint.
func (f *FaultFS) ClearAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.points = make(map[string]*Failpoint)
}

// Active returns a copy of the currently armed failpoints.
func (f *FaultFS) Active() map[string]Failpoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]Failpoint, len(f.points))
	for name, fp := range f.points {
		out[name] = *fp
	}
	return out
}

// Hits returns how many times each callsite has executed (whether or
// not a fault fired), keyed by operation name. The fault harness uses
// it to confirm its schedules actually reach every callsite.
func (f *FaultFS) Hits() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.hits))
	for name, n := range f.hits {
		out[name] = n
	}
	return out
}

// Size returns the tracked size of the file with the given label (its
// base name), or 0 if never opened through this FS.
func (f *FaultFS) Size(label string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tr := f.tracks[label]; tr != nil {
		return tr.size
	}
	return 0
}

// SyncedSize returns the durable floor of the file with the given
// label: its size at the last successful Sync (0 before any). A
// simulated crash may cut the file anywhere at or past this offset —
// cutting below it would "lose" data the store was told is durable,
// which no real crash does.
func (f *FaultFS) SyncedSize(label string) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tr := f.tracks[label]; tr != nil {
		return tr.synced
	}
	return 0
}

// check records a callsite hit and reports the armed fault, if any:
// the injected error and (for writes) how many payload bytes to let
// through first.
func (f *FaultFS) check(op, label string) (err error, short int) {
	name := op + ":" + label
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hits[name]++
	fp := f.points[name]
	if fp == nil {
		fp = f.points[op+":*"]
	}
	if fp == nil {
		return nil, 0
	}
	if fp.Remaining > 0 {
		fp.Remaining--
		if fp.Remaining == 0 {
			// Disarm; the map entry may be shared with a wildcard name,
			// so find and delete whichever key holds this pointer.
			for k, v := range f.points {
				if v == fp {
					delete(f.points, k)
				}
			}
		}
	}
	return fp.Err, fp.ShortWrite
}

// track returns (creating) the write-tracking record for label,
// resetting it to the given size (a freshly opened file's on-disk
// length).
func (f *FaultFS) track(label string, size int64) *fileTrack {
	f.mu.Lock()
	defer f.mu.Unlock()
	tr := &fileTrack{size: size, synced: 0}
	f.tracks[label] = tr
	return tr
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := f.check("mkdir", filepath.Base(path)); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if err, _ := f.check("read", filepath.Base(name)); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.check("rename", filepath.Base(newpath)); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if err, _ := f.check("remove", filepath.Base(name)); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if err, _ := f.check("stat", filepath.Base(name)); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := f.check("readdir", filepath.Base(name)); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	label := filepath.Base(name)
	if err, _ := f.check("open", label); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	size := int64(0)
	if flag&os.O_TRUNC == 0 {
		if fi, err := f.inner.Stat(name); err == nil {
			size = fi.Size()
		}
	}
	return &faultFile{fs: f, f: file, label: label, track: f.track(label, size), pos: 0, size: size}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	// Temp files are labeled by their creation pattern ("snapshot-*.tmp"),
	// not the randomized final name, so failpoints stay addressable.
	if err, _ := f.check("create", pattern); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file, label: pattern, track: f.track(pattern, 0)}, nil
}

// faultFile routes per-file operations through the FaultFS failpoints
// and maintains the size / durable-floor bookkeeping.
type faultFile struct {
	fs    *FaultFS
	f     File
	label string
	track *fileTrack

	mu        sync.Mutex
	pos, size int64
}

func (w *faultFile) Name() string { return w.f.Name() }

func (w *faultFile) Write(p []byte) (int, error) {
	err, short := w.fs.check("append", w.label)
	if err != nil && short > 0 && short < len(p) {
		// Torn write: a prefix of the payload reaches the disk before
		// the error surfaces.
		n, werr := w.f.Write(p[:short])
		w.advance(n)
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	if err != nil {
		return 0, err
	}
	n, werr := w.f.Write(p)
	w.advance(n)
	return n, werr
}

// advance accounts n written bytes at the current position.
func (w *faultFile) advance(n int) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.pos += int64(n)
	if w.pos > w.size {
		w.size = w.pos
	}
	size := w.size
	w.mu.Unlock()
	w.fs.mu.Lock()
	w.track.size = size
	w.fs.mu.Unlock()
}

func (w *faultFile) Sync() error {
	if err, _ := w.fs.check("sync", w.label); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	size := w.size
	w.mu.Unlock()
	w.fs.mu.Lock()
	w.track.synced = size
	w.fs.mu.Unlock()
	return nil
}

func (w *faultFile) Truncate(size int64) error {
	if err, _ := w.fs.check("truncate", w.label); err != nil {
		return err
	}
	if err := w.f.Truncate(size); err != nil {
		return err
	}
	w.mu.Lock()
	w.size = size
	w.mu.Unlock()
	w.fs.mu.Lock()
	w.track.size = size
	if w.track.synced > size {
		w.track.synced = size
	}
	w.fs.mu.Unlock()
	return nil
}

func (w *faultFile) Seek(offset int64, whence int) (int64, error) {
	pos, err := w.f.Seek(offset, whence)
	if err == nil {
		w.mu.Lock()
		w.pos = pos
		w.mu.Unlock()
	}
	return pos, err
}

func (w *faultFile) Close() error {
	w.fs.check("close", w.label)
	return w.f.Close()
}
