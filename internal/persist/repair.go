package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrCorrupt is reported (via errors.Is) when recovery finds WAL
// corruption that is not a torn tail — wrong bytes rather than
// missing bytes. Open refuses to proceed past it; RepairOpen
// quarantines it.
var ErrCorrupt = errors.New("persist: WAL corruption")

// CorruptError pinpoints a corrupt WAL region found during recovery.
// It matches ErrCorrupt under errors.Is.
type CorruptError struct {
	// Path is the WAL file the corruption was found in.
	Path string
	// Offset is the byte offset of the first corrupt record.
	Offset int64
	// Reason describes what failed validation there.
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("%v in %s at offset %d: %s", ErrCorrupt, e.Path, e.Offset, e.Reason)
}

func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// RepairReport describes what RepairOpen salvaged and what it set
// aside.
type RepairReport struct {
	// RecoveredSeq is the last committed transaction sequence in the
	// recovered prefix; the store resumes from there.
	RecoveredSeq int
	// QuarantinedFile is the full path of the file holding the bytes
	// that were cut from the WAL (the corrupt region and everything
	// after it, since record framing is lost past the first bad
	// record).
	QuarantinedFile string
	// QuarantinedBytes is that file's length.
	QuarantinedBytes int64
	// Offset is where in the original WAL the quarantined region
	// began (the end of the last committed transaction).
	Offset int64
	// Reason is the validation failure that triggered the repair.
	Reason string
}

// RepairOpen opens a store whose WAL failed Open with ErrCorrupt: the
// committed prefix before the corruption is recovered as the store
// state, and the corrupt region (plus everything after it, whose
// framing is unrecoverable) is moved aside verbatim to
// wal.corrupt-<seq> in the store directory for offline forensics. The
// returned report says exactly what was kept and what was set aside;
// it is nil when the WAL turned out to be clean and no repair was
// needed.
//
// RepairOpen is deliberately a separate entry point rather than an
// Open option: discarding committed transactions must be an explicit
// operator decision, never a default.
func RepairOpen(dir string, opts ...Option) (*Store, *RepairReport, error) {
	return open(dir, true, opts...)
}

// quarantine moves the unrecoverable WAL region — everything at or
// past committedEnd, which includes the corrupt record and any
// unframeable bytes after it — into wal.corrupt-<seq>, durably, and
// logs a report. The caller then truncates the WAL to committedEnd.
func (s *Store) quarantine(walPath string, committedEnd int64, corrupt *CorruptError) (*RepairReport, error) {
	data, err := s.fs.ReadFile(walPath)
	if err != nil {
		return nil, fmt.Errorf("persist: quarantine: %w", err)
	}
	if committedEnd > int64(len(data)) {
		committedEnd = int64(len(data))
	}
	region := data[committedEnd:]
	qPath := filepath.Join(s.dir, fmt.Sprintf("wal.corrupt-%d", s.seq))
	q, err := s.fs.OpenFile(qPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: quarantine: %w", err)
	}
	if _, err := q.Write(region); err != nil {
		q.Close()
		return nil, fmt.Errorf("persist: quarantine: %w", err)
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return nil, fmt.Errorf("persist: quarantine: %w", err)
	}
	if err := q.Close(); err != nil {
		return nil, fmt.Errorf("persist: quarantine: %w", err)
	}
	report := &RepairReport{
		RecoveredSeq:     s.seq,
		QuarantinedFile:  qPath,
		QuarantinedBytes: int64(len(region)),
		Offset:           committedEnd,
		Reason:           corrupt.Reason,
	}
	s.cfg.logf("persist: WAL corruption at offset %d (%s): quarantined %d byte(s) to %s; store recovered through seq %d",
		corrupt.Offset, corrupt.Reason, report.QuarantinedBytes, qPath, s.seq)
	s.cfg.slogger.Warn("WAL corruption quarantined",
		"offset", corrupt.Offset, "reason", corrupt.Reason,
		"quarantinedBytes", report.QuarantinedBytes, "file", qPath, "recoveredSeq", s.seq)
	return report, nil
}
