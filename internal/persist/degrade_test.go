package persist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// waitHealthy polls until the store leaves degraded mode (the
// background probe repaired it) or the deadline passes.
func waitHealthy(t *testing.T, s *Store, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if !s.Health().Degraded {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("store still degraded after %v: %+v", within, s.Health())
}

func TestStickyFsyncFailureDegradesAndProbeRepairs(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, WithFS(ffs), WithProbeInterval(10*time.Millisecond), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()

	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}

	// Every WAL fsync now fails until cleared.
	ffs.Fail("sync:wal.log", ErrInjected)
	err = s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(b).`))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write during sticky fsync failure = %v, want ErrDegraded", err)
	}
	if h := s.Health(); !h.Degraded || h.Reason != "wal sync" {
		t.Fatalf("health = %+v, want degraded with reason \"wal sync\"", h)
	}

	// Reads keep working on the installed state. The failed write was
	// installed before its fsync failed; that is fine — it was never
	// acknowledged, and repair will make it durable.
	if got := renderDB(u, s.Snapshot()); !strings.Contains(got, "p(a)") {
		t.Fatalf("degraded read = {%s}, want p(a) present", got)
	}

	// Later writes fail fast with the same error, without touching the
	// disk.
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(c).`)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second write = %v, want ErrDegraded", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("checkpoint while degraded = %v, want ErrDegraded", err)
	}

	// Heal the disk: the background probe repairs the store and
	// restores writes with no restart.
	ffs.ClearAll()
	waitHealthy(t, s, 5*time.Second)
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(d).`)); err != nil {
		t.Fatalf("write after repair: %v", err)
	}

	// Nothing acknowledged was lost, and the repair checkpointed the
	// installed-but-unacknowledged p(b) too.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := renderDB(s2.Universe(), s2.Snapshot())
	for _, want := range []string{"p(a)", "p(b)", "p(d)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("reopened state = {%s}, want %s present", got, want)
		}
	}
}

func TestENOSPCDegradesWholeDisk(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, WithFS(ffs), WithProbeInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()

	// The wildcard failpoint models a full disk: every append on every
	// file fails with ENOSPC.
	ffs.Fail("append:*", ErrDiskFull)
	err = s.ApplyUpdates(ctx, mustUpdates(t, u, `+q(a).`))
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("write on full disk = %v, want ErrDegraded", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write on full disk = %v, want ENOSPC preserved in the chain", err)
	}
	// The probe cannot repair while the disk is still full: the probe
	// scratch write itself fails.
	time.Sleep(50 * time.Millisecond)
	if !s.Health().Degraded {
		t.Fatal("store repaired while the disk was still full")
	}

	ffs.ClearAll()
	waitHealthy(t, s, 5*time.Second)
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+q(b).`)); err != nil {
		t.Fatalf("write after space freed: %v", err)
	}
}

func TestTornWALAppendDegradesAndRepairKeepsState(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, WithFS(ffs), WithProbeInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()

	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}

	// One torn append: 3 bytes of the payload reach the disk, then the
	// write errors. The WAL is now at a dirty boundary, so the store
	// must degrade rather than keep appending.
	ffs.SetFailpoint("append:wal.log", Failpoint{Err: ErrInjected, Remaining: 1, ShortWrite: 3})
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(b).`)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("torn append = %v, want ErrDegraded", err)
	}

	waitHealthy(t, s, 5*time.Second)
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(c).`)); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	s.Close()

	// The repaired on-disk state replays cleanly: the torn bytes were
	// superseded by the repair's snapshot + fresh WAL.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := renderDB(s2.Universe(), s2.Snapshot())
	for _, want := range []string{"p(a)", "p(c)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("reopened state = {%s}, want %s present", got, want)
		}
	}
}

// TestMidWALCorruptionFailsOpenLoudly is the satellite coverage for
// corruption in a non-tail record: byte flips in the middle of the
// log must fail Open with ErrCorrupt (not silently recover a prefix),
// and RepairOpen must quarantine the region and recover the valid
// prefix before it.
func TestMidWALCorruptionFailsOpenLoudly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	ctx := context.Background()
	for _, up := range []string{`+p(a).`, `+p(b).`, `+p(c).`} {
		if err := s.ApplyUpdates(ctx, mustUpdates(t, u, up)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip a byte in the middle of the file — inside the second
	// transaction's region, with committed records on both sides.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-WAL corruption = %v, want ErrCorrupt", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Open error %v does not carry a *CorruptError", err)
	}

	s2, report, err := RepairOpen(dir)
	if err != nil {
		t.Fatalf("RepairOpen: %v", err)
	}
	defer s2.Close()
	if report == nil {
		t.Fatal("RepairOpen returned no report")
	}
	// The valid prefix holds at least the first transaction; the
	// quarantine holds the rest, byte-for-byte.
	got := renderDB(s2.Universe(), s2.Snapshot())
	if !strings.Contains(got, "p(a)") {
		t.Fatalf("recovered state = {%s}, want p(a) present", got)
	}
	if strings.Contains(got, "p(c)") {
		t.Fatalf("recovered state = {%s}; p(c) lies past the corruption and cannot be trusted", got)
	}
	q, err := os.ReadFile(report.QuarantinedFile)
	if err != nil {
		t.Fatal(err)
	}
	if want := data[report.Offset:]; string(q) != string(want) {
		t.Fatalf("quarantine file differs from the cut WAL region (%d vs %d bytes)", len(q), len(want))
	}
	if s2.Seq() != report.RecoveredSeq {
		t.Fatalf("store seq %d != report.RecoveredSeq %d", s2.Seq(), report.RecoveredSeq)
	}

	// Writes resume on the recovered prefix, and a plain Open works
	// again afterwards.
	if err := s2.ApplyUpdates(ctx, mustUpdates(t, s2.Universe(), `+p(z).`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatalf("Open after repair = %v, want success", err)
	}
	s3.Close()
}

// TestRepairOpenOnCleanStore asserts the escape hatch is a no-op when
// nothing is wrong: no report, no quarantine file, state intact.
func TestRepairOpenOnCleanStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, s.Universe(), `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, report, err := RepairOpen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if report != nil {
		t.Fatalf("RepairOpen on a clean store produced report %+v", report)
	}
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(a)" {
		t.Fatalf("state = {%s}, want {p(a)}", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal.corrupt-") {
			t.Fatalf("clean store grew quarantine file %s", e.Name())
		}
	}
}

// TestReplicaWritesGatedWhileDegraded asserts the replication write
// paths respect degraded mode and that ReplicaCut (a read) does not.
func TestReplicaWritesGatedWhileDegraded(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	s, err := Open(dir, WithFS(ffs), WithProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}

	ffs.Fail("sync:wal.log", ErrInjected)
	if err := s.SyncWAL(); err != nil {
		// Nothing pending: SyncWAL may legitimately be a no-op here.
		t.Logf("SyncWAL: %v", err)
	}
	// Force the degradation through a write.
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(b).`)); !errors.Is(err, ErrDegraded) {
		t.Fatalf("write = %v, want ErrDegraded", err)
	}

	if err := s.ApplyReplicated(TxnRecord{Seq: s.Seq() + 1, Added: []string{"p(x)"}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ApplyReplicated while degraded = %v, want ErrDegraded", err)
	}
	if err := s.ResetToSnapshot(100, 0, []string{"p(y)"}, 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("ResetToSnapshot while degraded = %v, want ErrDegraded", err)
	}
	cut, err := s.ReplicaCut(true, 8)
	if err != nil {
		t.Fatalf("ReplicaCut while degraded = %v, want success (replication reads keep serving)", err)
	}
	cut.Cancel()
}
