package persist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// TestConcurrentApply drives many committers and readers at once
// (run under -race in CI): every transaction must land exactly once,
// sequences must be dense and monotonic, and the state must survive
// a reopen. This exercises the whole pipeline — out-of-lock
// evaluation, optimistic retry, group commit — plus the lock-free
// read path.
func TestConcurrentApply(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.Instrument(reg)
	u := s.Universe()
	ctx := context.Background()

	const writers = 8
	const txnsPerWriter = 5
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				ups := mustUpdates(t, u, fmt.Sprintf("+c(w%d, i%d).", w, i))
				if err := s.ApplyUpdates(ctx, ups); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Concurrent readers on the copy-on-write path.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				db := s.Snapshot()
				if db.Len() > writers*txnsPerWriter {
					errs <- fmt.Errorf("snapshot has %d facts, max %d", db.Len(), writers*txnsPerWriter)
					return
				}
				_ = s.Len()
				_ = s.History()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := s.Len(); got != writers*txnsPerWriter {
		t.Fatalf("final state has %d facts, want %d", got, writers*txnsPerWriter)
	}
	hist := s.History()
	if len(hist) != writers*txnsPerWriter {
		t.Fatalf("history has %d entries, want %d", len(hist), writers*txnsPerWriter)
	}
	for i, txn := range hist {
		if txn.Seq != i+1 {
			t.Fatalf("history[%d].Seq = %d, want dense monotonic sequences", i, txn.Seq)
		}
	}

	// Durability: a reopen recovers the identical state.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != writers*txnsPerWriter {
		t.Fatalf("reopened state has %d facts, want %d", got, writers*txnsPerWriter)
	}
	if got := s2.Seq(); got != writers*txnsPerWriter {
		t.Fatalf("reopened seq = %d, want %d", got, writers*txnsPerWriter)
	}

	// The commit pipeline metrics must have recorded the traffic: every
	// durable acknowledgment is covered by some fsync.
	snap := reg.Snapshot()
	var fsyncs int64
	var batched uint64
	for _, c := range snap.Counters {
		if c.Name == "park_store_fsyncs_total" {
			fsyncs = c.Value
		}
	}
	for _, h := range snap.Histograms {
		if h.Name == "park_store_commit_batch_size" {
			batched = h.Count
		}
	}
	if fsyncs == 0 || batched == 0 {
		t.Fatalf("fsyncs = %d, batch observations = %d; want both > 0", fsyncs, batched)
	}
}

// TestConcurrentApplySerialized runs the same workload through the
// legacy serialized path (the B12 baseline) to keep it correct.
func TestConcurrentApplySerialized(t *testing.T) {
	s, err := Open(t.TempDir(), WithSerializedCommits())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				ups := mustUpdates(t, u, fmt.Sprintf("+c(w%d, i%d).", w, i))
				if err := s.ApplyUpdates(ctx, ups); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 12 {
		t.Fatalf("final state has %d facts, want 12", got)
	}
}

// TestApplyContextCanceledInQueue verifies backpressure honors the
// caller's context: with a full commit queue, admission fails with
// the context error instead of blocking forever.
func TestApplyContextCanceledInQueue(t *testing.T) {
	s, err := Open(t.TempDir(), WithCommitQueueDepth(1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Occupy the only slot.
	s.queue <- struct{}{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.ApplyUpdates(ctx, mustUpdates(t, s.Universe(), `+p.`))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	<-s.queue
}

// TestApplyClosedStore verifies the ErrClosed sentinel survives to
// callers so the server can map shutdown to 503 rather than 422.
func TestApplyClosedStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	ups := mustUpdates(t, u, `+p.`)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	err = s.ApplyUpdates(context.Background(), ups)
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply on closed store = %v, want ErrClosed", err)
	}
	if err := s.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint on closed store = %v, want ErrClosed", err)
	}
}

// TestEvaluationRunsOutsideCommitLock pins the tentpole property: a
// long-running evaluation must not block readers. We can't easily
// hold the engine mid-run, so instead assert structurally that a
// reader completes while a writer holds the commit queue and lock
// ordering allows snapshot access with s.mu held by someone else.
func TestEvaluationRunsOutsideCommitLock(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, s.Universe(), `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	// Hold the commit lock, as a committer does while installing.
	s.mu.Lock()
	done := make(chan int, 1)
	go func() { done <- s.Snapshot().Len() }()
	n := <-done
	s.mu.Unlock()
	if n != 1 {
		t.Fatalf("snapshot under held commit lock = %d facts, want 1", n)
	}
}
