// Package persist provides a durable database store for the PARK
// engine: the paper's §3 requires the semantics to be "easily
// implementable on top of a commercial DBMS", and this package is the
// minimal DBMS substrate the library ships instead — a snapshot file
// plus a checksummed write-ahead log of fact-level deltas, with
// crash recovery that tolerates torn tail writes.
//
// Layout inside the store directory:
//
//	snapshot.park   ground facts in the rule language (atomic rename)
//	wal.log         length- and CRC32-prefixed delta records
//
// Every transaction (Apply) evaluates PARK(P, D, U) on the current
// state, logs the resulting fact-level delta followed by a commit
// marker, fsyncs, and only then installs the new state — so a crash
// at any point recovers either the pre- or the post-transaction
// state, never a partial one. Delta records are absolute ("atom
// present"/"atom absent"), which additionally makes replay idempotent:
// a crash between Checkpoint's snapshot rename and its WAL truncation
// merely re-applies the old deltas on top of the new snapshot,
// converging to the same state (fault-injection-tested).
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/parser"
)

const (
	snapshotName = "snapshot.park"
	walName      = "wal.log"
	// recordHeader = payload length + CRC32, both little-endian uint32.
	recordHeader = 8
	// maxRecord guards recovery against garbage lengths.
	maxRecord = 1 << 20
)

// Store is a durable database instance. All methods are safe for
// concurrent use; transactions are serialized.
type Store struct {
	mu  sync.Mutex
	dir string
	u   *core.Universe
	db  *core.Database
	wal *os.File
	// walRecords counts records appended since the last checkpoint.
	walRecords int
	closed     bool

	// snapDB is the state at the last checkpoint (or Open snapshot);
	// history holds the per-transaction deltas since then. Together
	// they support StateAt time travel.
	snapDB  *core.Database
	history []TxnRecord

	// subsMu guards the transaction subscribers (see Subscribe).
	subsMu subscribers
}

// TxnRecord is one committed transaction's fact-level delta.
type TxnRecord struct {
	// Seq numbers transactions since the last checkpoint, from 1.
	Seq int
	// Added and Removed render the delta atoms in rule-language
	// syntax.
	Added   []string
	Removed []string
}

// Open opens (or creates) a store directory, recovering state from
// the snapshot and the write-ahead log. A torn record at the WAL tail
// (from a crash mid-append) is discarded; everything before it is
// recovered.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, u: core.NewUniverse(), db: core.NewDatabase()}

	snapPath := filepath.Join(dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		db, err := parser.ParseDatabase(s.u, snapPath, string(data))
		if err != nil {
			return nil, fmt.Errorf("persist: corrupt snapshot: %w", err)
		}
		s.db = db
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("persist: %w", err)
	}

	s.snapDB = s.db.Clone()

	walPath := filepath.Join(dir, walName)
	validLen, records, err := s.replayWAL(walPath)
	if err != nil {
		return nil, err
	}
	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	// Drop any torn tail so subsequent appends start at a clean
	// record boundary.
	if err := wal.Truncate(validLen); err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if _, err := wal.Seek(validLen, io.SeekStart); err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	s.wal = wal
	s.walRecords = records
	return s, nil
}

// replayWAL applies every committed transaction to s.db and rebuilds
// the transaction history. Records of an uncommitted trailing
// transaction (no commit marker — a crash mid-Apply) are discarded
// along with any torn or corrupt tail; the returned offset is the end
// of the last commit marker.
func (s *Store) replayWAL(path string) (int64, int, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("persist: %w", err)
	}
	off := int64(0)
	committedEnd := int64(0)
	committedRecords := 0
	records := 0
	var pending TxnRecord
	for int(off)+recordHeader <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 || length > maxRecord || int(off)+recordHeader+int(length) > len(data) {
			break // torn or garbage tail
		}
		payload := data[off+recordHeader : off+recordHeader+int64(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail
		}
		commit, err := s.applyRecord(payload, &pending)
		if err != nil {
			// A structurally valid but semantically bad record means
			// real corruption, not a torn write.
			return 0, 0, fmt.Errorf("persist: corrupt WAL record at offset %d: %w", off, err)
		}
		off += recordHeader + int64(length)
		records++
		if commit {
			committedEnd = off
			committedRecords = records
		}
	}
	// Roll back the uncommitted tail, if any, by replaying the
	// committed prefix over the snapshot.
	if committedEnd < off || len(pending.Added)+len(pending.Removed) > 0 {
		s.db = s.snapDB.Clone()
		s.history = nil
		pending = TxnRecord{}
		rep := data[:committedEnd]
		o := int64(0)
		for o < committedEnd {
			length := int64(binary.LittleEndian.Uint32(rep[o:]))
			payload := rep[o+recordHeader : o+recordHeader+length]
			if _, err := s.applyRecord(payload, &pending); err != nil {
				return 0, 0, fmt.Errorf("persist: corrupt WAL record at offset %d: %w", o, err)
			}
			o += recordHeader + length
		}
	}
	return committedEnd, committedRecords, nil
}

// applyRecord applies one record to the in-memory database, tracking
// the pending transaction delta. It reports whether the record was a
// commit marker.
func (s *Store) applyRecord(payload []byte, pending *TxnRecord) (bool, error) {
	if len(payload) == 1 && payload[0] == 'C' {
		pending.Seq = len(s.history) + 1
		s.history = append(s.history, *pending)
		*pending = TxnRecord{}
		return true, nil
	}
	if len(payload) < 2 {
		return false, errors.New("short record")
	}
	op := payload[0]
	atomText := string(payload[1:])
	id, err := s.internAtomText(atomText)
	if err != nil {
		return false, err
	}
	switch op {
	case '+':
		s.db.Add(id)
		pending.Added = append(pending.Added, atomText)
	case '-':
		s.db.Remove(id)
		pending.Removed = append(pending.Removed, atomText)
	default:
		return false, fmt.Errorf("unknown op %q", op)
	}
	return false, nil
}

// internAtomText parses a ground atom in rule-language syntax.
func (s *Store) internAtomText(text string) (core.AID, error) {
	db, err := parser.ParseDatabase(s.u, "wal", text+".")
	if err != nil {
		return -1, err
	}
	if db.Len() != 1 {
		return -1, fmt.Errorf("record %q is not a single atom", text)
	}
	return db.Atoms()[0], nil
}

// Universe returns the store's symbol universe. Programs evaluated
// against the store must be parsed into this universe.
func (s *Store) Universe() *core.Universe { return s.u }

// Snapshot returns a copy of the current database instance.
func (s *Store) Snapshot() *core.Database {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Clone()
}

// Len returns the current number of facts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Len()
}

// WALRecords returns the number of delta records since the last
// checkpoint (0 right after Open on a checkpointed store).
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// appendRecord writes one record; op 'C' with empty text is the
// commit marker.
func (s *Store) appendRecord(op byte, atomText string) error {
	payload := make([]byte, 1+len(atomText))
	payload[0] = op
	copy(payload[1:], atomText)
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := s.wal.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := s.wal.Write(payload); err != nil {
		return err
	}
	s.walRecords++
	return nil
}
