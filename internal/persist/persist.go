// Package persist provides a durable database store for the PARK
// engine: the paper's §3 requires the semantics to be "easily
// implementable on top of a commercial DBMS", and this package is the
// minimal DBMS substrate the library ships instead — a snapshot file
// plus a checksummed write-ahead log of fact-level deltas, with
// crash recovery that tolerates torn tail writes.
//
// Layout inside the store directory:
//
//	snapshot.park   ground facts in the rule language (atomic rename)
//	wal.log         length- and CRC32-prefixed delta records
//
// Concurrency model. The store runs a three-stage commit pipeline:
//
//  1. Apply evaluates PARK(P, D, U) on an immutable copy-on-write
//     snapshot of the current state, *outside* any lock. Because the
//     semantics is a pure function of (program, database, updates),
//     evaluation needs no mutual exclusion — only the install does.
//  2. Under a narrow commit lock the store revalidates that the base
//     state is still current (optimistic concurrency: if another
//     transaction committed meanwhile, the evaluation is retried on
//     the new state), appends the fact-level delta plus a commit
//     marker to the WAL, and installs the new state pointer.
//  3. Durability is acknowledged by WAL group commit: one fsync
//     covers every transaction appended since the previous fsync
//     (leader/follower — the first waiter syncs for the batch), so
//     concurrent committers amortize the dominant fsync cost.
//
// Reads (Snapshot, Query, Len, Backup) load the installed state
// pointer atomically and never take the commit lock: installed
// databases are immutable, so readers are wait-free with respect to
// writers. A bounded commit queue provides backpressure; admission
// respects the caller's context.
//
// A crash at any point recovers either the pre- or the
// post-transaction state, never a partial one: recovery discards
// deltas with no trailing commit marker, so atomicity is per
// transaction even when several transactions share one fsync. Delta
// records are absolute ("atom present"/"atom absent"), which
// additionally makes replay idempotent: a crash between Checkpoint's
// snapshot rename and its WAL truncation merely re-applies the old
// deltas on top of the new snapshot, converging to the same state
// (fault-injection-tested).
//
// Sequence numbers. Every committed transaction carries a global
// sequence number with three invariants the rest of the system leans
// on:
//
//  1. Dense and monotone: the first commit in a store's life is 1 and
//     each commit is exactly the predecessor plus one — there are no
//     gaps, so "the state at sequence N" names exactly one database.
//  2. Durable: the sequence is stored in each WAL commit marker and
//     in the snapshot header ("% park snapshot seq=N"), so it
//     survives restarts and checkpoints; recovery resumes the
//     numbering where the crashed process left off.
//  3. Order-defining: states are reconstructible at any sequence in
//     the retained window [baseSeq, seq] (StateAt, History), and the
//     replication layer (internal/repl) identifies a follower's
//     position solely by its sequence — resuming a stream is
//     "send me everything after N".
//
// Replication hooks. ReplicaCut takes a consistent cut (snapshot +
// history + live subscription, gapless by construction) for serving a
// replication stream; ApplyReplicated installs a leader-evaluated
// delta through the same WAL/commit path without re-running the
// engine; ResetToSnapshot adopts a leader snapshot wholesale; SyncWAL
// lets a follower batch durability across applied transactions. A
// store being replicated into must have no other writers.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/flight"
	"repro/internal/parser"
)

const (
	snapshotName = "snapshot.park"
	walName      = "wal.log"
	// recordHeader = payload length + CRC32, both little-endian uint32.
	recordHeader = 8
	// maxRecord guards recovery against garbage lengths.
	maxRecord = 1 << 20
	// snapshotSeqPrefix heads the snapshot file's first line, recording
	// the global transaction sequence at checkpoint time. It is a rule
	// language comment, so older readers parse the snapshot unchanged.
	snapshotSeqPrefix = "% park snapshot seq="
	// snapshotEpochKey extends the header with the leadership epoch
	// ("% park snapshot seq=N epoch=E"); snapshots written before
	// epochs existed omit it and parse as epoch 0.
	snapshotEpochKey = " epoch="
)

// ErrClosed is returned by operations on a closed store. Callers can
// match it with errors.Is to distinguish shutdown from engine errors.
var ErrClosed = errors.New("persist: store is closed")

// dbState is one installed database version. The database it points
// to is immutable: commits install a fresh dbState rather than
// mutating in place, so readers holding a dbState need no lock.
type dbState struct {
	db *core.Database
	// version increments on every install; Apply uses it to detect
	// that its evaluation base went stale (optimistic revalidation).
	version uint64
}

// Store is a durable database instance. All methods are safe for
// concurrent use. Transactions evaluate concurrently on immutable
// state snapshots; only the commit install is serialized, and WAL
// fsyncs are batched across concurrent committers (group commit).
type Store struct {
	dir string
	u   *core.Universe
	// fs is the filesystem seam (see vfs.go): OSFS in production,
	// FaultFS under fault injection.
	fs FS

	// state is the installed current database, read lock-free by
	// Snapshot/Query/Len/Backup. Replaced (never mutated) under mu.
	state atomic.Pointer[dbState]

	// seqMirror and epochMirror shadow seq/epoch for contexts that must
	// not take mu (enterDegraded can run with mu held). Updated at every
	// point seq/epoch change, under mu.
	seqMirror   atomic.Int64
	epochMirror atomic.Int64

	// mu is the narrow commit lock: it guards WAL appends, the
	// install of state, seq/history bookkeeping, and Checkpoint/Close.
	// The engine never runs under mu.
	mu sync.Mutex
	// walRecords counts records appended since the last checkpoint.
	walRecords int
	closed     bool
	wal        File
	// walErr is sticky: a failed append may leave a partial
	// transaction in the file, after which further appends could be
	// misattributed to the next commit marker. Subsequent commits fail
	// until the degraded-mode repair rotates the WAL (degrade.go).
	walErr error

	// seq is the global transaction sequence: monotonic across
	// checkpoints and restarts (persisted in commit markers and the
	// snapshot header). baseSeq is the sequence at the last
	// checkpoint; history[i].Seq == baseSeq+i+1.
	seq     int
	baseSeq int

	// epoch is the leadership epoch new commits are stamped with;
	// baseEpoch is the epoch recorded in the snapshot header. Epochs
	// are monotone for the lifetime of the directory: they advance via
	// BeginEpoch (promotion) or by applying a replicated transaction
	// from a newer leader (see epoch.go).
	epoch     int64
	baseEpoch int64
	// voteEpoch/voteFor are the node's most recent leader-election
	// vote, persisted as 'V' WAL records so a restarted node cannot
	// grant a second vote in the same epoch.
	voteEpoch int64
	voteFor   string
	// fence is the fencing floor replication authority is judged
	// against: the highest epoch this store has acknowledged in any
	// form — a commit marker, a BeginEpoch record, a granted vote, or
	// the authorizing leader epoch of a snapshot bootstrap. Unlike
	// epoch (which names the timeline of the applied tip and may
	// legitimately be lower, e.g. mid-bootstrap), fence never
	// regresses: once the store has promised itself to epoch N — by
	// voting in it or bootstrapping under its authority — frames
	// authorized by any older epoch are rejected (ErrFenced), even
	// though older-epoch *frames relayed by* the epoch-N leader still
	// apply (ApplyReplicatedFrom). Persisted as 'F' WAL records when it
	// exceeds what epoch and voteEpoch already imply. Invariant:
	// fence >= max(epoch, voteEpoch).
	fence int64

	// snapDB is the state at the last checkpoint (or Open snapshot);
	// history holds the per-transaction deltas since then. Together
	// they support StateAt time travel.
	snapDB  *core.Database
	history []TxnRecord

	// Group commit state, guarded by syncMu (lock order: mu before
	// syncMu; waitDurable takes only syncMu). LSNs are logical —
	// cumulative committed-transaction counts, never reset — so an
	// in-flight fsync straddling a checkpoint stays harmless.
	syncMu      sync.Mutex
	syncCond    *sync.Cond
	appendedLSN int64 // transactions appended to the WAL
	syncedLSN   int64 // transactions covered by fsync or checkpoint
	syncing     bool  // a leader is currently in wal.Sync
	syncErr     error // sticky fsync failure
	pendingTxns int64 // appended since the last fsync began

	// queue is the bounded commit-queue semaphore (backpressure).
	queue chan struct{}

	// flight is the transaction flight recorder's retention ring (last
	// K traces + slow traces); nil when disabled via WithTraceBuffer(0).
	// The commit path records through it but never blocks on it beyond
	// its short insert mutex.
	flight *flight.Ring

	// ev is the cluster event journal (nil-safe; see internal/events).
	// The store emits durability and timeline lifecycle events into it:
	// degraded enter/exit, fence raises, checkpoints, snapshot
	// bootstraps.
	ev *events.Log

	// profile is the rolling per-rule cost profile accumulated from
	// committed transactions' RunStats (profile.go).
	profile ruleProfile

	cfg config
	met storeMetrics

	// subsMu guards the transaction subscribers (see Subscribe).
	subsMu subscribers

	// closing is set at the start of Close so the degraded-mode probe
	// goroutine stops spawning or probing during shutdown.
	closing atomic.Bool

	// deg tracks degraded read-only mode (degrade.go). deg.mu is a
	// leaf lock — enterDegraded may run with mu or syncMu held — so it
	// must never be held while acquiring any other store lock.
	deg struct {
		mu     sync.Mutex
		down   bool
		reason string
		cause  error
		since  time.Time
		stop   chan struct{}
		done   chan struct{}
	}
}

// config collects Open options.
type config struct {
	serialized  bool
	queueDepth  int
	fs          FS
	probeEvery  time.Duration
	logf        func(format string, args ...any)
	slogger     *slog.Logger
	traceBuffer int
	slowThresh  time.Duration
	events      *events.Log
}

// Option configures Open.
type Option func(*config)

// WithSerializedCommits disables the concurrent commit pipeline:
// every transaction holds one store-wide lock across evaluation, WAL
// append and its own fsync. This reproduces the legacy fully
// serialized behavior and exists for benchmarking the pipeline
// against it (parkbench B12); production callers should not use it.
func WithSerializedCommits() Option {
	return func(c *config) { c.serialized = true }
}

// WithCommitQueueDepth bounds the number of transactions admitted
// into the commit pipeline at once (evaluating or waiting to
// install). Admission beyond the bound blocks, honoring the caller's
// context — this is the store's backpressure. Default 64.
func WithCommitQueueDepth(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.queueDepth = n
		}
	}
}

// WithFS runs the store on the given filesystem implementation
// instead of the real one. Tests use it to inject a FaultFS; parkd's
// -failpoints mode does the same in a live process.
func WithFS(fs FS) Option {
	return func(c *config) {
		if fs != nil {
			c.fs = fs
		}
	}
}

// WithProbeInterval sets how often the degraded store re-tests the
// disk for recovery (default 3s). Tests shorten it.
func WithProbeInterval(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.probeEvery = d
		}
	}
}

// WithLogf routes the store's operational log lines (degradation,
// disk probes, repair, WAL quarantine) to the given printf-style
// function. By default they are discarded.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(c *config) {
		if logf != nil {
			c.logf = logf
		}
	}
}

// WithSlog routes the store's structured log records (commit events at
// Debug, degradation and recovery at Warn/Info) to the given logger.
// By default they are discarded. WithLogf and WithSlog are independent
// sinks; configure one, not both, unless double logging is intended.
func WithSlog(l *slog.Logger) Option {
	return func(c *config) {
		if l != nil {
			c.slogger = l
		}
	}
}

// WithEvents routes the store's lifecycle events (degraded enter/exit,
// fence raises, checkpoints, snapshot bootstraps) into the given
// cluster event journal. A nil journal — the default — discards them.
func WithEvents(ev *events.Log) Option {
	return func(c *config) { c.events = ev }
}

// WithTraceBuffer sets K for the flight-recorder ring: the store keeps
// the last K transaction traces plus the last K slow ones (see
// internal/flight). 0 disables trace recording entirely; negative
// values are ignored. Default flight.DefaultRecent.
func WithTraceBuffer(k int) Option {
	return func(c *config) {
		if k >= 0 {
			c.traceBuffer = k
		}
	}
}

// WithSlowThreshold sets the wall-clock duration at which a
// transaction's trace is retained in the slow window regardless of
// recency. A negative threshold marks every trace slow (drills and
// tests). Default flight.DefaultSlowThreshold.
func WithSlowThreshold(d time.Duration) Option {
	return func(c *config) {
		if d != 0 {
			c.slowThresh = d
		}
	}
}

// TxnRecord is one committed transaction's fact-level delta.
type TxnRecord struct {
	// Seq is the global transaction sequence number: monotonic for
	// the lifetime of the store directory, across checkpoints and
	// restarts.
	Seq int
	// TraceID is the request-scoped correlation ID under which the
	// transaction committed (empty when the caller supplied none).
	// Replication ships it so a follower's applied-transaction log
	// correlates with the leader's request log. It is not persisted in
	// the WAL: recovery yields records with empty trace IDs.
	TraceID string `json:"traceId,omitempty"`
	// Epoch is the leadership epoch the transaction committed under.
	// It is persisted in the commit marker and shipped in replication
	// frames; ApplyReplicated rejects transactions whose epoch is older
	// than the store's (fencing). Stores from before epochs existed
	// carry epoch 0 everywhere.
	Epoch int64 `json:"epoch,omitempty"`
	// Added and Removed render the delta atoms in rule-language
	// syntax.
	Added   []string
	Removed []string
}

// Open opens (or creates) a store directory, recovering state from
// the snapshot and the write-ahead log. A torn record at the WAL tail
// (from a crash mid-append or mid-group-commit) is discarded;
// everything before it is recovered. Corruption that is not a torn
// tail — a checksum mismatch on a fully present record, a garbage
// length, a semantically invalid record — fails Open loudly with an
// error matching ErrCorrupt: silently dropping it would also drop
// every transaction behind it. RepairOpen is the explicit escape
// hatch.
func Open(dir string, opts ...Option) (*Store, error) {
	s, _, err := open(dir, false, opts...)
	return s, err
}

// open is the shared Open/RepairOpen implementation. With repair set,
// a corrupt WAL region is quarantined instead of failing.
func open(dir string, repair bool, opts ...Option) (*Store, *RepairReport, error) {
	cfg := config{
		queueDepth:  64,
		fs:          OSFS(),
		probeEvery:  3 * time.Second,
		logf:        func(string, ...any) {},
		slogger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		traceBuffer: flight.DefaultRecent,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	s := &Store{dir: dir, u: core.NewUniverse(), cfg: cfg, fs: cfg.fs, ev: cfg.events}
	if cfg.traceBuffer > 0 {
		s.flight = flight.NewRing(cfg.traceBuffer, cfg.slowThresh)
	}
	s.syncCond = sync.NewCond(&s.syncMu)
	s.queue = make(chan struct{}, cfg.queueDepth)
	db := core.NewDatabase()

	snapPath := filepath.Join(dir, snapshotName)
	if data, err := s.fs.ReadFile(snapPath); err == nil {
		text := string(data)
		s.baseSeq, s.baseEpoch = parseSnapshotHeader(text)
		s.seq, s.epoch = s.baseSeq, s.baseEpoch
		s.fence = s.baseEpoch
		db, err = parser.ParseDatabase(s.u, snapPath, text)
		if err != nil {
			return nil, nil, fmt.Errorf("persist: corrupt snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}

	s.snapDB = db.Clone()

	walPath := s.walPath()
	validLen, records, corrupt, err := s.replayWAL(walPath, db)
	if err != nil {
		return nil, nil, err
	}
	var report *RepairReport
	if corrupt != nil {
		if !repair {
			return nil, nil, fmt.Errorf("%w; record framing is lost past it, so any transaction after the corrupt region is unrecoverable — use RepairOpen to quarantine the region and recover the valid prefix (through seq %d)", corrupt, s.seq)
		}
		report, err = s.quarantine(walPath, validLen, corrupt)
		if err != nil {
			return nil, nil, err
		}
	}
	wal, err := s.fs.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	// Drop any torn (or quarantined) tail so subsequent appends start
	// at a clean record boundary.
	if err := wal.Truncate(validLen); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	if _, err := wal.Seek(validLen, io.SeekStart); err != nil {
		wal.Close()
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	s.wal = wal
	s.walRecords = records
	s.state.Store(&dbState{db: db, version: 1})
	s.seqMirror.Store(int64(s.seq))
	s.epochMirror.Store(s.epoch)
	return s, report, nil
}

// walPath returns the WAL file's full path.
func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

// parseSnapshotHeader reads the global sequence and leadership epoch
// from the snapshot header comment. Snapshots from before the header
// existed yield (0, 0); headers from before epochs existed yield
// epoch 0.
func parseSnapshotHeader(text string) (seq int, epoch int64) {
	if !strings.HasPrefix(text, snapshotSeqPrefix) {
		return 0, 0
	}
	line := text[len(snapshotSeqPrefix):]
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	seqPart := line
	if i := strings.Index(line, snapshotEpochKey); i >= 0 {
		seqPart = line[:i]
		e, err := strconv.ParseInt(strings.TrimSpace(line[i+len(snapshotEpochKey):]), 10, 64)
		if err == nil && e > 0 {
			epoch = e
		}
	}
	n, err := strconv.Atoi(strings.TrimSpace(seqPart))
	if err != nil || n < 0 {
		return 0, 0
	}
	return n, epoch
}

// replayWAL applies every committed transaction to db and rebuilds
// the transaction history. Records of an uncommitted trailing
// transaction (no commit marker — a crash mid-Apply) are discarded
// along with any torn tail; the returned offset is the end of the
// last commit marker.
//
// Torn and corrupt regions are distinguished: a crash tears the log
// by cutting appended bytes short (an incomplete header, a payload
// extending past EOF, or a zero length from a pre-allocated page), so
// anything else — a garbage length, a checksum mismatch on a fully
// present payload, a structurally valid but semantically invalid
// record — is real corruption and is reported as a *CorruptError
// rather than silently treated as a tail. The replayed state is the
// committed prefix before the corruption either way; the caller
// decides whether that prefix is acceptable (RepairOpen) or the open
// must fail (Open).
func (s *Store) replayWAL(path string, db *core.Database) (int64, int, *CorruptError, error) {
	data, err := s.fs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil, nil
	}
	if err != nil {
		return 0, 0, nil, fmt.Errorf("persist: %w", err)
	}
	off := int64(0)
	committedEnd := int64(0)
	committedRecords := 0
	records := 0
	var corrupt *CorruptError
	var pending TxnRecord
	for int(off)+recordHeader <= len(data) {
		length := binary.LittleEndian.Uint32(data[off:])
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length == 0 {
			break // torn tail (zero-filled or cut mid-header)
		}
		if length > maxRecord {
			corrupt = &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("record length %d exceeds maximum %d", length, maxRecord)}
			break
		}
		if int(off)+recordHeader+int(length) > len(data) {
			break // torn tail: payload cut short by a crash
		}
		payload := data[off+recordHeader : off+recordHeader+int64(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			// The payload is fully present, so this is not a short
			// write: the bytes themselves are wrong.
			corrupt = &CorruptError{Path: path, Offset: off,
				Reason: "record checksum mismatch on fully present payload"}
			break
		}
		commit, err := s.applyRecord(db, payload, &pending)
		if err != nil {
			corrupt = &CorruptError{Path: path, Offset: off,
				Reason: fmt.Sprintf("semantically invalid record: %v", err)}
			break
		}
		off += recordHeader + int64(length)
		records++
		if commit {
			committedEnd = off
			committedRecords = records
		}
	}
	// Roll back the uncommitted tail, if any, by replaying the
	// committed prefix over the snapshot.
	if committedEnd < off || len(pending.Added)+len(pending.Removed) > 0 {
		*db = *s.snapDB.Clone()
		s.history = nil
		s.seq = s.baseSeq
		s.epoch = s.baseEpoch
		s.fence = s.baseEpoch
		s.voteEpoch, s.voteFor = 0, ""
		pending = TxnRecord{}
		rep := data[:committedEnd]
		o := int64(0)
		for o < committedEnd {
			length := int64(binary.LittleEndian.Uint32(rep[o:]))
			payload := rep[o+recordHeader : o+recordHeader+length]
			if _, err := s.applyRecord(db, payload, &pending); err != nil {
				return 0, 0, nil, fmt.Errorf("persist: corrupt WAL record at offset %d: %w", o, err)
			}
			o += recordHeader + length
		}
	}
	return committedEnd, committedRecords, corrupt, nil
}

// applyRecord applies one record to db, tracking the pending
// transaction delta. It reports whether the record completed a
// committed unit (a commit marker, or a self-committing epoch/vote
// record).
func (s *Store) applyRecord(db *core.Database, payload []byte, pending *TxnRecord) (bool, error) {
	if seq, epoch, ok := commitMarker(payload); ok {
		if seq == 0 {
			// Legacy marker without a sequence: number consecutively.
			seq = s.seq + 1
		}
		if epoch > s.epoch {
			s.epoch = epoch
		}
		if epoch > s.fence {
			s.fence = epoch
		}
		if seq <= s.baseSeq {
			// The transaction is already folded into the snapshot (a
			// crash hit between Checkpoint's rename and its WAL
			// truncation). The replay above was idempotent; just don't
			// duplicate the history entry.
			*pending = TxnRecord{}
			return true, nil
		}
		if seq <= s.seq {
			return false, fmt.Errorf("commit sequence %d not after %d", seq, s.seq)
		}
		s.seq = seq
		pending.Seq = seq
		pending.Epoch = epoch
		s.history = append(s.history, *pending)
		*pending = TxnRecord{}
		return true, nil
	}
	if len(payload) >= 9 && (payload[0] == 'E' || payload[0] == 'V' || payload[0] == 'F') {
		// Epoch, vote and fence records stand alone between
		// transactions (their writers hold the commit lock), so one
		// inside an open delta means the log is damaged.
		if len(pending.Added)+len(pending.Removed) > 0 {
			return false, fmt.Errorf("%c record inside an open transaction", payload[0])
		}
		epoch := int64(binary.LittleEndian.Uint64(payload[1:9]))
		switch payload[0] {
		case 'E':
			if len(payload) != 9 {
				return false, errors.New("malformed epoch record")
			}
			if epoch > s.epoch {
				s.epoch = epoch
			}
		case 'V':
			s.voteEpoch, s.voteFor = epoch, string(payload[9:])
		case 'F':
			if len(payload) != 9 {
				return false, errors.New("malformed fence record")
			}
		}
		if epoch > s.fence {
			s.fence = epoch
		}
		return true, nil
	}
	if len(payload) < 2 {
		return false, errors.New("short record")
	}
	op := payload[0]
	atomText := string(payload[1:])
	id, err := s.internAtomText(atomText)
	if err != nil {
		return false, err
	}
	switch op {
	case '+':
		db.Add(id)
		pending.Added = append(pending.Added, atomText)
	case '-':
		db.Remove(id)
		pending.Removed = append(pending.Removed, atomText)
	default:
		return false, fmt.Errorf("unknown op %q", op)
	}
	return false, nil
}

// commitMarker decodes a commit-marker payload. Current markers are
// 'C' followed by the global sequence and the leadership epoch (8
// bytes little-endian each); markers from before epochs existed are
// 'C' plus the sequence alone (epoch 0), and legacy markers are a
// bare 'C' reporting seq 0 (numbered by the caller).
func commitMarker(payload []byte) (seq int, epoch int64, ok bool) {
	if len(payload) == 0 || payload[0] != 'C' {
		return 0, 0, false
	}
	switch len(payload) {
	case 1:
		return 0, 0, true
	case 9:
		return int(binary.LittleEndian.Uint64(payload[1:])), 0, true
	case 17:
		return int(binary.LittleEndian.Uint64(payload[1:9])),
			int64(binary.LittleEndian.Uint64(payload[9:17])), true
	}
	return 0, 0, false
}

// internAtomText parses a ground atom in rule-language syntax.
func (s *Store) internAtomText(text string) (core.AID, error) {
	db, err := parser.ParseDatabase(s.u, "wal", text+".")
	if err != nil {
		return -1, err
	}
	if db.Len() != 1 {
		return -1, fmt.Errorf("record %q is not a single atom", text)
	}
	return db.Atoms()[0], nil
}

// Flight returns the store's flight-recorder ring, or nil when trace
// recording is disabled (WithTraceBuffer(0)). The ring is safe for
// concurrent use; the server layer reads it directly.
func (s *Store) Flight() *flight.Ring { return s.flight }

// Universe returns the store's symbol universe. Programs evaluated
// against the store must be parsed into this universe; the universe
// is safe for concurrent interning, so request parsing never needs
// the store lock.
func (s *Store) Universe() *core.Universe { return s.u }

// current returns the installed state, wait-free.
func (s *Store) current() *dbState { return s.state.Load() }

// Snapshot returns a copy of the current database instance. It never
// blocks on writers: the installed state is immutable and the clone
// happens outside any lock.
func (s *Store) Snapshot() *core.Database {
	return s.current().db.Clone()
}

// Len returns the current number of facts, without locking.
func (s *Store) Len() int {
	return s.current().db.Len()
}

// Seq returns the global sequence number of the most recent
// committed transaction (0 for a fresh store).
func (s *Store) Seq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WALRecords returns the number of delta records since the last
// checkpoint (0 right after Open on a checkpointed store).
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// appendRecord writes one record; callers hold s.mu. Op 'C' with
// empty text is the legacy commit marker (tests exercise recovery of
// pre-sequence WALs through this path).
func (s *Store) appendRecord(op byte, atomText string) error {
	payload := make([]byte, 1+len(atomText))
	payload[0] = op
	copy(payload[1:], atomText)
	return s.appendPayload(payload)
}

// appendCommitMarker writes a commit marker carrying the global
// sequence and the leadership epoch; callers hold s.mu. Epoch-0
// stores keep writing the 9-byte pre-epoch marker so their WALs stay
// readable by older binaries.
func (s *Store) appendCommitMarker(seq int, epoch int64) error {
	if epoch == 0 {
		payload := make([]byte, 9)
		payload[0] = 'C'
		binary.LittleEndian.PutUint64(payload[1:], uint64(seq))
		return s.appendPayload(payload)
	}
	payload := make([]byte, 17)
	payload[0] = 'C'
	binary.LittleEndian.PutUint64(payload[1:9], uint64(seq))
	binary.LittleEndian.PutUint64(payload[9:17], uint64(epoch))
	return s.appendPayload(payload)
}

// appendEpochRecord writes a self-committing epoch record ('E' plus
// the epoch, 8 bytes little-endian); callers hold s.mu. It makes a
// promotion durable even when no transaction commits under the new
// epoch before the next crash.
func (s *Store) appendEpochRecord(epoch int64) error {
	payload := make([]byte, 9)
	payload[0] = 'E'
	binary.LittleEndian.PutUint64(payload[1:], uint64(epoch))
	return s.appendPayload(payload)
}

// appendVoteRecord writes a self-committing vote record ('V', epoch,
// voted-for node ID); callers hold s.mu.
func (s *Store) appendVoteRecord(epoch int64, nodeID string) error {
	payload := make([]byte, 9+len(nodeID))
	payload[0] = 'V'
	binary.LittleEndian.PutUint64(payload[1:9], uint64(epoch))
	copy(payload[9:], nodeID)
	return s.appendPayload(payload)
}

// appendFenceRecord writes a self-committing fence record ('F' plus
// the epoch, 8 bytes little-endian); callers hold s.mu. It makes the
// fencing floor durable when it exceeds what the epoch and vote
// records already imply (a snapshot bootstrap authorized by a leader
// epoch above both).
func (s *Store) appendFenceRecord(epoch int64) error {
	payload := make([]byte, 9)
	payload[0] = 'F'
	binary.LittleEndian.PutUint64(payload[1:], uint64(epoch))
	return s.appendPayload(payload)
}

// reseedElectionRecords re-appends the durable vote and fence records
// after the WAL was truncated or rotated (checkpoint, repair,
// snapshot bootstrap), then fsyncs them: the single-vote-per-epoch
// rule and the fencing floor must survive a restart no matter when
// the log was last rewritten. Callers hold s.mu and have just put the
// WAL at a clean record boundary.
func (s *Store) reseedElectionRecords() error {
	appended := false
	if s.voteEpoch > 0 {
		if err := s.appendVoteRecord(s.voteEpoch, s.voteFor); err != nil {
			return err
		}
		appended = true
	}
	if s.fence > s.epoch && s.fence > s.voteEpoch {
		// Neither the snapshot header (epoch) nor the vote record
		// would restore the floor on replay; write it explicitly.
		if err := s.appendFenceRecord(s.fence); err != nil {
			return err
		}
		appended = true
	}
	if appended {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) appendPayload(payload []byte) error {
	if s.walErr != nil {
		return s.walErr
	}
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := s.wal.Write(hdr[:]); err != nil {
		s.walErr = err
		return err
	}
	if _, err := s.wal.Write(payload); err != nil {
		s.walErr = err
		return err
	}
	s.walRecords++
	return nil
}
