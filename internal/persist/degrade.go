package persist

import (
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/events"
)

// Degraded read-only mode. A store that cannot promise durability —
// a failed WAL fsync, ENOSPC on append, a torn write that left the
// log at a dirty boundary — used to poison itself until process
// restart. Instead it now transitions to an explicit degraded state:
//
//   - Every write path (Apply, ApplyReplicated, Checkpoint,
//     ResetToSnapshot) fails fast with an error matching ErrDegraded.
//   - Every read path (Snapshot, Query, Len, Backup, History,
//     StateAt, ReplicaCut and the subscription fan-out) keeps
//     working: the installed in-memory state is intact, so replicas
//     keep streaming and read traffic keeps being served.
//   - A background probe re-tests the disk every probe interval
//     (write + fsync of a scratch file in the store directory) and,
//     on success, repairs the store: the current state is written as
//     a durable snapshot, the WAL is rotated to a fresh, verified
//     file, and writes come back — no restart, no data loss for any
//     acknowledged transaction.
//
// The transition is deliberately one-way per incident: only a
// successful repair (which re-proves fsync on the actual WAL file)
// clears it, never a lucky later write.

// ErrDegraded is reported (via errors.Is) by write operations while
// the store is in degraded read-only mode after a durability failure.
// The HTTP layer maps it to 503 with a Retry-After hint.
var ErrDegraded = errors.New("persist: store degraded to read-only (durability failure)")

// Health is a point-in-time view of the store's durability state.
type Health struct {
	// Degraded reports whether the store is in read-only mode.
	Degraded bool
	// Reason names the operation whose failure degraded the store
	// (e.g. "wal sync", "wal append"); empty when healthy.
	Reason string
	// Cause is the underlying error text; empty when healthy.
	Cause string
	// Since is when the store degraded; zero when healthy.
	Since time.Time
	// ProbeEvery is the configured disk re-probe interval.
	ProbeEvery time.Duration
}

// Health returns the store's current durability state.
func (s *Store) Health() Health {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	h := Health{ProbeEvery: s.cfg.probeEvery}
	if s.deg.down {
		h.Degraded = true
		h.Reason = s.deg.reason
		h.Since = s.deg.since
		if s.deg.cause != nil {
			h.Cause = s.deg.cause.Error()
		}
	}
	return h
}

// degradedErr returns a descriptive error matching ErrDegraded when
// the store is degraded, nil otherwise. Write paths call it on entry
// to fail fast without touching the disk.
func (s *Store) degradedErr() error {
	s.deg.mu.Lock()
	defer s.deg.mu.Unlock()
	if !s.deg.down {
		return nil
	}
	return fmt.Errorf("%w: %s since %s: %v",
		ErrDegraded, s.deg.reason, s.deg.since.Format(time.RFC3339), s.deg.cause)
}

// enterDegraded switches the store into degraded read-only mode (if
// it is not already there) and starts the background disk probe. It
// takes only the degrade lock, so it is safe to call from any commit
// path, including ones holding s.mu or no lock at all.
func (s *Store) enterDegraded(reason string, cause error) {
	if s.closing.Load() {
		return
	}
	s.deg.mu.Lock()
	if s.deg.down {
		s.deg.mu.Unlock()
		return
	}
	s.deg.down = true
	s.deg.reason = reason
	s.deg.cause = cause
	s.deg.since = time.Now()
	stop := make(chan struct{})
	done := make(chan struct{})
	s.deg.stop, s.deg.done = stop, done
	s.deg.mu.Unlock()

	s.met.setDegraded(true)
	s.met.incDegrade()
	seq, epoch := s.seqMirror.Load(), s.epochMirror.Load()
	s.cfg.logf("persist: store degraded to read-only (%s: %v); probing disk every %v",
		reason, cause, s.cfg.probeEvery)
	s.cfg.slogger.Warn("store degraded to read-only",
		"reason", reason, "cause", cause.Error(), "probeEvery", s.cfg.probeEvery,
		"seq", seq, "epoch", epoch)
	s.ev.Emit(events.Event{
		Type:     events.DegradedEnter,
		Epoch:    epoch,
		StoreSeq: int(seq),
		Detail:   fmt.Sprintf("%s: %v", reason, cause),
	})
	go s.probeLoop(stop, done)
}

// exitDegraded clears the degraded state after a successful repair.
func (s *Store) exitDegraded() {
	s.deg.mu.Lock()
	down := s.deg.down
	since := s.deg.since
	s.deg.down = false
	s.deg.reason, s.deg.cause = "", nil
	s.deg.mu.Unlock()
	if down {
		s.met.setDegraded(false)
		seq, epoch := s.seqMirror.Load(), s.epochMirror.Load()
		s.cfg.logf("persist: disk recovered after %v; write availability restored",
			time.Since(since).Round(time.Millisecond))
		s.cfg.slogger.Info("disk recovered; write availability restored",
			"degradedFor", time.Since(since).Round(time.Millisecond),
			"seq", seq, "epoch", epoch)
		s.ev.Emit(events.Event{
			Type:     events.DegradedExit,
			Epoch:    epoch,
			StoreSeq: int(seq),
			Detail:   fmt.Sprintf("degraded for %v", time.Since(since).Round(time.Millisecond)),
		})
	}
}

// probeLoop periodically re-tests the disk while the store is
// degraded. Each attempt first proves the directory accepts a durable
// scratch write, then runs the full repair (snapshot + WAL rotation,
// which re-proves fsync on the WAL itself). The loop exits on
// successful repair, on stop, or when the store closes.
func (s *Store) probeLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(s.cfg.probeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		if s.closing.Load() {
			return
		}
		s.met.incProbe()
		if err := s.probeDisk(); err != nil {
			s.cfg.logf("persist: disk probe failed: %v", err)
			s.cfg.slogger.Debug("disk probe failed", "cause", err.Error())
			continue
		}
		if err := s.repair(); err != nil {
			if errors.Is(err, ErrClosed) {
				return
			}
			s.cfg.logf("persist: repair after disk probe failed: %v", err)
			s.cfg.slogger.Debug("repair after disk probe failed", "cause", err.Error())
			continue
		}
		s.met.incProbeSuccess()
		s.exitDegraded()
		return
	}
}

// probeDisk tests the store directory with a scratch write + fsync,
// the minimal proof that the disk accepts durable writes again.
func (s *Store) probeDisk() error {
	f, err := s.fs.CreateTemp(s.dir, "health-*.probe")
	if err != nil {
		return err
	}
	name := f.Name()
	defer s.fs.Remove(name)
	if _, err := f.Write([]byte("park disk probe\n")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// repair restores write availability after the disk recovers: it
// writes the current in-memory state as a durable snapshot (making
// every installed transaction — acknowledged or not — durable at
// once), then replaces the poisoned WAL file with a fresh one and
// fsyncs it, proving the log itself accepts durability again. Only
// when all of that succeeds are the sticky append/sync errors
// cleared and group-commit waiters released.
func (s *Store) repair() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	db := s.current().db
	if err := s.writeSnapshotLocked(db, s.seq, s.epoch); err != nil {
		return err
	}
	walPath := s.walPath()
	wal, err := s.fs.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: repair: %w", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return fmt.Errorf("persist: repair: wal fsync still failing: %w", err)
	}
	old := s.wal
	s.wal = wal
	// The old handle may have unsyncable dirty pages; closing it is
	// best-effort. An in-flight group-commit fsync that raced the swap
	// detects it (waitDurable compares handles) and ignores the error.
	old.Close()
	s.walErr = nil
	s.walRecords = 0
	// The rotation dropped the durable vote and fence records;
	// re-append them so the single-vote-per-epoch rule and the fencing
	// floor still hold across a restart.
	if err := s.reseedElectionRecords(); err != nil {
		return fmt.Errorf("persist: repair: %w", err)
	}
	s.snapDB = db.Clone()
	s.history = nil
	s.baseSeq = s.seq
	s.baseEpoch = s.epoch
	s.syncMu.Lock()
	s.syncErr = nil
	if s.appendedLSN > s.syncedLSN {
		// Everything ever appended is covered by the snapshot now.
		s.syncedLSN = s.appendedLSN
	}
	s.pendingTxns = 0
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	s.cfg.logf("persist: repaired store at seq %d (snapshot rewritten, WAL rotated)", s.seq)
	s.cfg.slogger.Info("store repaired", "seq", s.seq)
	return nil
}

// stopProbe halts the background probe, if one is running, and waits
// for it to exit. Close calls it after releasing the store lock.
func (s *Store) stopProbe() {
	s.deg.mu.Lock()
	stop, done := s.deg.stop, s.deg.done
	s.deg.stop = nil
	s.deg.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
