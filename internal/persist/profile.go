package persist

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// This file is the store's rolling per-rule cost profile: the
// cumulative per-rule counters (groundings, fires, match nanoseconds,
// conflict wins/losses, blocked instances) of every transaction
// committed since the store opened, keyed by rule label. It is the
// baseline dataset a future discrimination-network matcher will be
// measured against — "which rules cost what today" — and is served at
// GET /v1/rules/stats.
//
// Accumulation happens in recordTrace (commit.go), after the install
// and outside every store lock, so the profile never sits on the
// commit-ordering critical path. A transaction's update rules (the
// synthetic "update:±atom" rules appended to form P_U) have names
// unique to that transaction; folding each into the map would grow it
// without bound, so they are aggregated under one "(updates)" bucket.

// UpdateRulesLabel is the profile bucket aggregating every synthetic
// per-transaction update rule of P_U.
const UpdateRulesLabel = "(updates)"

// RuleProfileEntry is one rule's cumulative cost profile.
type RuleProfileEntry struct {
	// Rule is the rule label: its declared name, its positional
	// "rule#i" fallback, or UpdateRulesLabel for the aggregated
	// transaction update rules.
	Rule string `json:"rule"`
	// Txns counts the committed transactions in which the rule was
	// part of P_U (for update rules: transactions carrying updates).
	Txns int64 `json:"txns"`
	// Groundings / Fires / MatchNanos / ConflictWins / ConflictLosses /
	// Blocked sum the corresponding core.RuleStat counters across those
	// transactions.
	Groundings     int64 `json:"groundings"`
	Fires          int64 `json:"fires"`
	MatchNanos     int64 `json:"matchNanos"`
	ConflictWins   int64 `json:"conflictWins"`
	ConflictLosses int64 `json:"conflictLosses"`
	Blocked        int64 `json:"blocked"`
}

// ruleProfile is the concurrency-safe accumulator behind RuleProfile.
type ruleProfile struct {
	mu      sync.Mutex
	byLabel map[string]*RuleProfileEntry
	txns    int64
}

// record folds one committed transaction's per-rule counters into the
// profile. Indexes < len(prog.Rules) are the program's own rules
// (labelled by RuleLabel); the rest are the transaction's update
// rules, aggregated under UpdateRulesLabel.
func (p *ruleProfile) record(prog *core.Program, stats []core.RuleStat) {
	if len(stats) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.byLabel == nil {
		p.byLabel = make(map[string]*RuleProfileEntry)
	}
	p.txns++
	touched := make(map[*RuleProfileEntry]struct{}, len(stats))
	for i, st := range stats {
		label := UpdateRulesLabel
		if i < len(prog.Rules) {
			label = prog.RuleLabel(i)
		}
		e := p.byLabel[label]
		if e == nil {
			e = &RuleProfileEntry{Rule: label}
			p.byLabel[label] = e
		}
		if _, dup := touched[e]; !dup {
			// Once per transaction per label: update rules (and program
			// rules sharing a name) fold into one bucket.
			touched[e] = struct{}{}
			e.Txns++
		}
		e.Groundings += st.Groundings
		e.Fires += st.Fires
		e.MatchNanos += st.MatchNanos
		e.ConflictWins += st.ConflictWins
		e.ConflictLosses += st.ConflictLosses
		e.Blocked += st.Blocked
	}
}

// snapshot returns the profile entries ranked by cumulative match
// cost (descending, ties broken by label), plus the transaction count.
func (p *ruleProfile) snapshot() ([]RuleProfileEntry, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RuleProfileEntry, 0, len(p.byLabel))
	for _, e := range p.byLabel {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MatchNanos != out[j].MatchNanos {
			return out[i].MatchNanos > out[j].MatchNanos
		}
		return out[i].Rule < out[j].Rule
	})
	return out, p.txns
}

// RuleProfile returns the rolling per-rule cost profile accumulated
// from every transaction committed since the store opened, ranked by
// cumulative match nanoseconds (most expensive first), and the number
// of transactions profiled. The profile is in-memory only: it resets
// on restart.
func (s *Store) RuleProfile() ([]RuleProfileEntry, int64) {
	return s.profile.snapshot()
}
