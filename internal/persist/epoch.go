package persist

import (
	"errors"
	"fmt"

	"repro/internal/events"
)

// This file is the store-side substrate for leader-election fencing
// (internal/repl's lease/epoch protocol). An epoch names one
// leadership term: promotions begin a new, strictly larger epoch
// (durably, via BeginEpoch), every commit marker records the epoch it
// committed under, and replication authority is judged against the
// store's fencing floor (FenceEpoch) — the highest epoch it has
// acknowledged by any means, including a granted vote — so a deposed
// leader's writes can never reach a store that has promised itself to
// the new term. Election votes are durable too (RecordVote),
// preventing a restarted node from granting two votes in one epoch.

// ErrFenced matches (via errors.Is) the rejection of a replicated
// transaction from a deposed leadership epoch.
var ErrFenced = errors.New("persist: fenced: transaction from a deposed epoch")

// FencedError reports a replicated transaction rejected by epoch
// fencing. It matches ErrFenced.
type FencedError struct {
	// Seq and TxnEpoch identify the rejected transaction (TxnEpoch is
	// the higher of the frame's own epoch and the serving leader's).
	Seq      int
	TxnEpoch int64
	// StoreEpoch is the store's fencing floor: the newer epoch it has
	// already acknowledged (by commit, promotion, vote or bootstrap).
	StoreEpoch int64
}

func (e *FencedError) Error() string {
	return fmt.Sprintf("persist: fenced: txn %d carries epoch %d but the store is at epoch %d",
		e.Seq, e.TxnEpoch, e.StoreEpoch)
}

func (e *FencedError) Is(target error) bool { return target == ErrFenced }

// SnapshotFencedError reports a snapshot bootstrap rejected by epoch
// fencing: the leader serving the snapshot advertised an epoch behind
// the store's, so it is deposed and must not replace the local
// timeline. It matches ErrFenced.
type SnapshotFencedError struct {
	// Seq is the snapshot's global sequence.
	Seq int
	// LeaderEpoch is the serving leader's advertised current epoch.
	LeaderEpoch int64
	// StoreEpoch is the store's fencing floor: the newer epoch it has
	// already acknowledged (by commit, promotion, vote or bootstrap).
	StoreEpoch int64
}

func (e *SnapshotFencedError) Error() string {
	return fmt.Sprintf("persist: fenced: snapshot at seq %d from a leader at epoch %d but the store is at epoch %d",
		e.Seq, e.LeaderEpoch, e.StoreEpoch)
}

func (e *SnapshotFencedError) Is(target error) bool { return target == ErrFenced }

// Epoch returns the leadership epoch the store currently stamps
// commits with (0 for a store that has never seen an election).
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Epochs returns the current epoch together with the epoch recorded
// in the snapshot header (the epoch of the state at BaseSeq).
func (s *Store) Epochs() (epoch, baseEpoch int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch, s.baseEpoch
}

// FenceEpoch returns the store's fencing floor: the highest epoch it
// has acknowledged through a commit marker, a BeginEpoch, a granted
// vote, or the authorizing leader of a snapshot bootstrap. It never
// regresses — in particular it stays high while Epoch temporarily
// drops during a bootstrap onto a pre-promotion snapshot — and
// replication frames whose serving leader is below it are rejected
// (ErrFenced). Always >= Epoch.
func (s *Store) FenceEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fence
}

// BeginEpoch durably advances the store to the given leadership epoch
// before any transaction commits under it: the epoch record is
// appended to the WAL and fsynced through the group-commit machinery.
// A promotion must call it first, so that even a promotion followed
// immediately by a crash leaves a store that fences the old leader.
// The epoch must be strictly greater than the current one; re-begins
// of the current epoch are no-ops.
func (s *Store) BeginEpoch(epoch int64) error {
	if err := s.degradedErr(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if epoch <= s.epoch {
		cur := s.epoch
		s.mu.Unlock()
		if epoch == cur {
			return nil
		}
		return fmt.Errorf("persist: epoch %d is not after current epoch %d", epoch, cur)
	}
	if err := s.appendEpochRecord(epoch); err != nil {
		s.enterDegraded("wal append", err)
		s.mu.Unlock()
		return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
	}
	s.epoch = epoch
	s.epochMirror.Store(epoch)
	raised := epoch > s.fence
	if raised {
		s.fence = epoch
	}
	s.met.setEpoch(epoch)
	s.syncMu.Lock()
	s.appendedLSN++
	s.pendingTxns++
	lsn := s.appendedLSN
	s.syncMu.Unlock()
	seq := s.seq
	s.mu.Unlock()
	s.cfg.slogger.Info("epoch begun", "epoch", epoch, "seq", seq)
	if raised {
		s.ev.Emit(events.Event{
			Type:     events.FenceRaised,
			Epoch:    epoch,
			StoreSeq: seq,
			Detail:   "epoch begun (promotion)",
		})
	}
	return s.waitDurable(lsn)
}

// RecordVote durably records that this node voted for nodeID in the
// given election epoch. The write is fsynced before RecordVote
// returns, so a vote already granted survives a crash — the
// single-vote-per-epoch rule holds across restarts. A vote for an
// epoch at or below an already-recorded vote's is rejected, EXCEPT
// the exact re-vote (same epoch, same candidate), which succeeds
// idempotently without a new WAL record: a candidate whose vote
// request committed durably but whose response was lost must be able
// to reacquire the vote on retry instead of burning the epoch.
//
// Granting a vote also raises the store's fencing floor to the voted
// epoch: from this moment, replication frames authorized by any older
// epoch are rejected (ErrFenced), so a deposed leader cannot collect
// this node's applies or acks for writes the voted-for candidate's
// timeline will not contain.
func (s *Store) RecordVote(epoch int64, nodeID string) error {
	if err := s.degradedErr(); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if epoch == s.voteEpoch && nodeID == s.voteFor {
		// Idempotent re-grant: the vote is already durable.
		s.mu.Unlock()
		return nil
	}
	if epoch <= s.voteEpoch {
		cur := s.voteEpoch
		s.mu.Unlock()
		return fmt.Errorf("persist: vote for epoch %d is not after last voted epoch %d", epoch, cur)
	}
	if err := s.appendVoteRecord(epoch, nodeID); err != nil {
		s.enterDegraded("wal append", err)
		s.mu.Unlock()
		return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
	}
	s.voteEpoch, s.voteFor = epoch, nodeID
	raised := epoch > s.fence
	if raised {
		s.fence = epoch
	}
	s.syncMu.Lock()
	s.appendedLSN++
	s.pendingTxns++
	lsn := s.appendedLSN
	s.syncMu.Unlock()
	seq := s.seq
	s.mu.Unlock()
	if raised {
		s.ev.Emit(events.Event{
			Type:     events.FenceRaised,
			Epoch:    epoch,
			StoreSeq: seq,
			Peer:     nodeID,
			Detail:   "vote granted",
		})
	}
	return s.waitDurable(lsn)
}

// LastVote returns the most recent durable election vote: the epoch
// voted in and the node voted for ((0, "") when the node has never
// voted).
func (s *Store) LastVote() (epoch int64, nodeID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.voteEpoch, s.voteFor
}
