package persist

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
)

// Apply runs one transaction: PARK(P, current state, updates) under
// the given strategy and options, durably logs the fact-level delta,
// and installs the result as the new current state. On error the
// store is unchanged. A durability failure (failed WAL append or
// fsync) degrades the store to read-only — Apply and later writes
// fail with errors matching ErrDegraded until the background disk
// probe repairs it (see degrade.go). It returns the engine result
// (whose Output is the new state).
//
// Apply is safe to call from many goroutines. Evaluation runs on an
// immutable snapshot outside the store lock; if another transaction
// commits first, the evaluation is retried on the new state
// (optimistic concurrency). Durability is acknowledged through group
// commit: one fsync covers every transaction installed since the
// previous fsync.
func (s *Store) Apply(ctx context.Context, prog *core.Program, updates []core.Update, strategy core.Strategy, opts core.Options) (*core.Result, error) {
	res, _, err := s.ApplyTxn(ctx, prog, updates, strategy, opts)
	return res, err
}

// CommitInfo locates a committed transaction in the global order: its
// sequence number and the leadership epoch it committed under. A
// transaction that changed nothing has Seq 0 — it was never assigned
// a sequence.
type CommitInfo struct {
	Seq   int
	Epoch int64
}

// ApplyTxn is Apply plus the commit coordinates of the installed
// transaction. The server layer uses the sequence to wait for
// replication acknowledgement before answering a cluster write.
func (s *Store) ApplyTxn(ctx context.Context, prog *core.Program, updates []core.Update, strategy core.Strategy, opts core.Options) (*core.Result, CommitInfo, error) {
	if err := s.degradedErr(); err != nil {
		return nil, CommitInfo{}, err
	}
	if err := s.acquireSlot(ctx); err != nil {
		return nil, CommitInfo{}, err
	}
	defer s.releaseSlot()
	if s.cfg.serialized {
		return s.applySerialized(ctx, prog, updates, strategy, opts)
	}

	traceID := flight.TraceID(ctx)
	for {
		if err := ctx.Err(); err != nil {
			return nil, CommitInfo{}, err
		}
		base := s.current()
		// Attach a fresh flight recorder per attempt (a retry re-runs
		// the evaluation, so the previous attempt's events are stale).
		// A caller-supplied tracer wins: the engine takes one tracer,
		// and explicit tracing is rarer and more deliberate.
		attemptOpts := opts
		var rec *flight.Recorder
		if s.flight != nil && opts.Tracer == nil {
			rec = flight.NewRecorder(s.u)
			attemptOpts.Tracer = rec
		}
		eng, err := core.NewEngine(s.u, prog, strategy, attemptOpts)
		if err != nil {
			return nil, CommitInfo{}, err
		}
		// Evaluate outside the lock: base.db is immutable, the engine
		// never mutates its input, and the universe interns safely
		// under concurrency.
		res, err := eng.Run(ctx, base.db, updates)
		if err != nil {
			return nil, CommitInfo{}, err
		}
		added, removed := splitDiff(base.db, res.Output)

		lockStart := time.Now()
		s.mu.Lock()
		s.met.observeLockWait(time.Since(lockStart))
		if s.closed {
			s.mu.Unlock()
			return nil, CommitInfo{}, ErrClosed
		}
		if cur := s.current(); cur.version != base.version {
			// A concurrent commit changed the base state under us:
			// the evaluation may be stale, so redo it on the new state.
			s.mu.Unlock()
			s.met.incRetry()
			continue
		}
		if len(added)+len(removed) == 0 {
			// Nothing changed; no WAL traffic, no history entry, no
			// version bump needed (installing the same facts).
			s.mu.Unlock()
			return res, CommitInfo{}, nil
		}
		txn, lsn, err := s.installLocked(base, res.Output, added, removed, traceID)
		s.mu.Unlock()
		if err != nil {
			s.enterDegraded("wal append", err)
			return nil, CommitInfo{}, fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
		}
		s.recordTrace(rec, prog, txn, res)
		// The state is installed (later transactions already build on
		// it); acknowledge the caller only once the batch is durable.
		if err := s.waitDurable(lsn); err != nil {
			return nil, CommitInfo{}, fmt.Errorf("persist: wal sync: %w", err)
		}
		return res, CommitInfo{Seq: txn.Seq, Epoch: txn.Epoch}, nil
	}
}

// recordTrace publishes the attempt's flight trace (if recording was
// on), folds the run's per-rule counters into the rolling rule
// profile, and emits the structured commit record. It runs after the
// install, outside every store lock: name resolution, the ring insert
// and the profile fold are off the commit-ordering critical path.
func (s *Store) recordTrace(rec *flight.Recorder, prog *core.Program, txn TxnRecord, res *core.Result) {
	wall := res.RunStats.Wall
	if rec != nil && s.flight != nil {
		s.flight.Insert(rec.Finish(txn.Seq, txn.TraceID, wall.Seconds()))
	}
	s.profile.record(prog, res.RunStats.Rules)
	s.cfg.slogger.Debug("txn committed",
		"seq", txn.Seq,
		"traceId", txn.TraceID,
		"wallMs", float64(wall.Microseconds())/1000,
		"added", len(txn.Added),
		"removed", len(txn.Removed),
		"phases", res.RunStats.Restarts+1,
	)
}

// splitDiff computes the fact-level delta old -> new.
func splitDiff(before, after *core.Database) (added, removed []core.AID) {
	for _, up := range core.Diff(before, after) {
		if up.Op == core.OpInsert {
			added = append(added, up.Atom)
		} else {
			removed = append(removed, up.Atom)
		}
	}
	return added, removed
}

// installLocked appends the delta and commit marker to the WAL,
// records the transaction in history, and installs the new state.
// Callers hold s.mu. The returned LSN is the logical position the
// caller must wait on for durability.
func (s *Store) installLocked(base *dbState, output *core.Database, added, removed []core.AID, traceID string) (TxnRecord, int64, error) {
	txn := TxnRecord{Seq: s.seq + 1, Epoch: s.epoch, TraceID: traceID}
	for _, id := range added {
		text := s.u.AtomString(id)
		txn.Added = append(txn.Added, text)
		if err := s.appendRecord('+', text); err != nil {
			return txn, 0, err
		}
	}
	for _, id := range removed {
		text := s.u.AtomString(id)
		txn.Removed = append(txn.Removed, text)
		if err := s.appendRecord('-', text); err != nil {
			return txn, 0, err
		}
	}
	if err := s.appendCommitMarker(txn.Seq, txn.Epoch); err != nil {
		return txn, 0, err
	}
	s.seq = txn.Seq
	s.seqMirror.Store(int64(txn.Seq))
	s.history = append(s.history, txn)
	s.state.Store(&dbState{db: output.Clone(), version: base.version + 1})
	// Notify here (in commit order) rather than after the fsync:
	// concurrent committers complete their durability waits out of
	// order, and subscribers rely on seeing monotonic sequences.
	s.notify(txn)

	s.syncMu.Lock()
	s.appendedLSN++
	s.pendingTxns++
	lsn := s.appendedLSN
	s.syncMu.Unlock()
	return txn, lsn, nil
}

// waitDurable blocks until an fsync (or checkpoint) covers the given
// logical LSN. The first waiter becomes the group-commit leader: it
// captures the current batch and syncs once for all of it; followers
// wait on the condition variable. A failed fsync is sticky — the WAL
// can no longer promise durability — so it degrades the store to
// read-only and every commit waiting on it fails with ErrDegraded;
// the background probe repairs the store and clears the error.
//
// The leader syncs whatever handle s.wal holds at sync time. The
// degraded-mode repair can rotate that handle concurrently (it
// snapshots the state and swaps in a fresh WAL), so on failure the
// leader re-checks the handle: an error from the pre-rotation file is
// stale — the repair's snapshot already covers every appended
// transaction — and must not poison the repaired store.
func (s *Store) waitDurable(lsn int64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	for {
		if s.syncedLSN >= lsn {
			return nil
		}
		if s.syncErr != nil {
			return s.syncErr
		}
		if !s.syncing {
			s.syncing = true
			target := s.appendedLSN
			batch := s.pendingTxns
			s.pendingTxns = 0
			s.syncMu.Unlock()

			s.mu.Lock()
			w := s.wal
			s.mu.Unlock()
			err := w.Sync()
			stale := false
			if err != nil {
				s.mu.Lock()
				stale = s.wal != w
				s.mu.Unlock()
			}

			s.syncMu.Lock()
			s.syncing = false
			s.met.observeBatch(batch)
			if err != nil && !stale {
				s.syncErr = fmt.Errorf("%w; %w", err, ErrDegraded)
			} else if target > s.syncedLSN {
				s.syncedLSN = target
			}
			s.syncCond.Broadcast()
			if err != nil && !stale {
				s.enterDegraded("wal sync", err)
			}
			continue
		}
		s.syncCond.Wait()
	}
}

// applySerialized is the legacy commit path (WithSerializedCommits):
// one lock held across evaluation, append and a per-transaction
// fsync. Kept for benchmarking the pipeline against it.
func (s *Store) applySerialized(ctx context.Context, prog *core.Program, updates []core.Update, strategy core.Strategy, opts core.Options) (*core.Result, CommitInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, CommitInfo{}, ErrClosed
	}
	base := s.current()
	var rec *flight.Recorder
	if s.flight != nil && opts.Tracer == nil {
		rec = flight.NewRecorder(s.u)
		opts.Tracer = rec
	}
	eng, err := core.NewEngine(s.u, prog, strategy, opts)
	if err != nil {
		return nil, CommitInfo{}, err
	}
	res, err := eng.Run(ctx, base.db, updates)
	if err != nil {
		return nil, CommitInfo{}, err
	}
	added, removed := splitDiff(base.db, res.Output)
	if len(added)+len(removed) == 0 {
		return res, CommitInfo{}, nil
	}
	txn, _, err := s.installLocked(base, res.Output, added, removed, flight.TraceID(ctx))
	if err != nil {
		s.enterDegraded("wal append", err)
		return nil, CommitInfo{}, fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
	}
	s.recordTrace(rec, prog, txn, res)
	if err := s.wal.Sync(); err != nil {
		s.syncMu.Lock()
		s.syncErr = fmt.Errorf("%w; %w", err, ErrDegraded)
		s.syncMu.Unlock()
		s.enterDegraded("wal sync", err)
		return nil, CommitInfo{}, fmt.Errorf("persist: wal sync: %w; %w", err, ErrDegraded)
	}
	s.syncMu.Lock()
	if s.appendedLSN > s.syncedLSN {
		s.syncedLSN = s.appendedLSN
	}
	s.met.observeBatch(s.pendingTxns)
	s.pendingTxns = 0
	s.syncMu.Unlock()
	return res, CommitInfo{Seq: txn.Seq, Epoch: txn.Epoch}, nil
}

// acquireSlot admits one transaction into the bounded commit
// pipeline, waiting (context-aware) when the queue is full.
func (s *Store) acquireSlot(ctx context.Context) error {
	select {
	case s.queue <- struct{}{}:
		return nil
	default:
	}
	start := time.Now()
	select {
	case s.queue <- struct{}{}:
		s.met.observeQueueWait(time.Since(start))
		return nil
	case <-ctx.Done():
		s.met.observeQueueWait(time.Since(start))
		return ctx.Err()
	}
}

func (s *Store) releaseSlot() { <-s.queue }
