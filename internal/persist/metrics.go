package persist

import (
	"time"

	"repro/internal/metrics"
)

// BatchBuckets are the histogram bucket bounds for group-commit batch
// sizes (transactions per fsync).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// storeMetrics holds the commit-pipeline instruments. All fields are
// optional (nil when the store is not instrumented), so every method
// is nil-safe; a bare library store pays only a nil check per event.
type storeMetrics struct {
	fsyncs    *metrics.Counter   // park_store_fsyncs_total
	retries   *metrics.Counter   // park_store_commit_retries_total
	batchSize *metrics.Histogram // park_store_commit_batch_size
	queueWait *metrics.Histogram // park_store_commit_queue_wait_seconds
	lockWait  *metrics.Histogram // park_store_commit_lock_wait_seconds
}

// Instrument registers the store's commit-pipeline metrics in reg and
// starts recording into them. Call once, before serving traffic.
func (s *Store) Instrument(reg *metrics.Registry) {
	s.met = storeMetrics{
		fsyncs: reg.Counter("park_store_fsyncs_total",
			"WAL fsyncs issued; with group commit one fsync covers a batch of transactions."),
		retries: reg.Counter("park_store_commit_retries_total",
			"Transactions re-evaluated because a concurrent commit changed their base state."),
		batchSize: reg.Histogram("park_store_commit_batch_size",
			"Transactions made durable per fsync (group-commit batch size).", BatchBuckets),
		queueWait: reg.Histogram("park_store_commit_queue_wait_seconds",
			"Time transactions waited for admission to the bounded commit queue.", nil),
		lockWait: reg.Histogram("park_store_commit_lock_wait_seconds",
			"Time committers waited for the install lock.", nil),
	}
}

// observeBatch records one completed fsync and its batch size.
func (m *storeMetrics) observeBatch(n int64) {
	if m.fsyncs != nil {
		m.fsyncs.Inc()
	}
	if m.batchSize != nil && n > 0 {
		m.batchSize.Observe(float64(n))
	}
}

func (m *storeMetrics) incRetry() {
	if m.retries != nil {
		m.retries.Inc()
	}
}

func (m *storeMetrics) observeQueueWait(d time.Duration) {
	if m.queueWait != nil {
		m.queueWait.Observe(d.Seconds())
	}
}

func (m *storeMetrics) observeLockWait(d time.Duration) {
	if m.lockWait != nil {
		m.lockWait.Observe(d.Seconds())
	}
}
