package persist

import (
	"time"

	"repro/internal/metrics"
)

// BatchBuckets are the histogram bucket bounds for group-commit batch
// sizes (transactions per fsync).
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// storeMetrics holds the commit-pipeline instruments. All fields are
// optional (nil when the store is not instrumented), so every method
// is nil-safe; a bare library store pays only a nil check per event.
type storeMetrics struct {
	fsyncs    *metrics.Counter   // park_store_fsyncs_total
	retries   *metrics.Counter   // park_store_commit_retries_total
	batchSize *metrics.Histogram // park_store_commit_batch_size
	queueWait *metrics.Histogram // park_store_commit_queue_wait_seconds
	lockWait  *metrics.Histogram // park_store_commit_lock_wait_seconds

	degraded      *metrics.Gauge   // park_store_degraded
	degradeEvents *metrics.Counter // park_store_degrade_events_total
	probes        *metrics.Counter // park_store_disk_probes_total
	probeOK       *metrics.Counter // park_store_disk_probe_successes_total

	fenced *metrics.Counter // park_store_fenced_txns_total
	epoch  *metrics.Gauge   // park_store_epoch
}

// Instrument registers the store's commit-pipeline metrics in reg and
// starts recording into them. Call once, before serving traffic.
func (s *Store) Instrument(reg *metrics.Registry) {
	s.met = storeMetrics{
		fsyncs: reg.Counter("park_store_fsyncs_total",
			"WAL fsyncs issued; with group commit one fsync covers a batch of transactions."),
		retries: reg.Counter("park_store_commit_retries_total",
			"Transactions re-evaluated because a concurrent commit changed their base state."),
		batchSize: reg.Histogram("park_store_commit_batch_size",
			"Transactions made durable per fsync (group-commit batch size).", BatchBuckets),
		queueWait: reg.Histogram("park_store_commit_queue_wait_seconds",
			"Time transactions waited for admission to the bounded commit queue.", nil),
		lockWait: reg.Histogram("park_store_commit_lock_wait_seconds",
			"Time committers waited for the install lock.", nil),
		degraded: reg.Gauge("park_store_degraded",
			"1 while the store is in degraded read-only mode after a durability failure, else 0."),
		degradeEvents: reg.Counter("park_store_degrade_events_total",
			"Transitions into degraded read-only mode."),
		probes: reg.Counter("park_store_disk_probes_total",
			"Disk re-probe attempts made while degraded."),
		probeOK: reg.Counter("park_store_disk_probe_successes_total",
			"Disk probes that succeeded and led to a completed repair."),
		fenced: reg.Counter("park_store_fenced_txns_total",
			"Replicated transactions rejected because they carried a deposed leadership epoch."),
		epoch: reg.Gauge("park_store_epoch",
			"Leadership epoch the store stamps commits with."),
	}
	if s.Health().Degraded {
		s.met.degraded.Set(1)
	}
	s.met.epoch.Set(s.Epoch())
}

// observeBatch records one completed fsync and its batch size.
func (m *storeMetrics) observeBatch(n int64) {
	if m.fsyncs != nil {
		m.fsyncs.Inc()
	}
	if m.batchSize != nil && n > 0 {
		m.batchSize.Observe(float64(n))
	}
}

func (m *storeMetrics) incRetry() {
	if m.retries != nil {
		m.retries.Inc()
	}
}

func (m *storeMetrics) observeQueueWait(d time.Duration) {
	if m.queueWait != nil {
		m.queueWait.Observe(d.Seconds())
	}
}

func (m *storeMetrics) observeLockWait(d time.Duration) {
	if m.lockWait != nil {
		m.lockWait.Observe(d.Seconds())
	}
}

// setDegraded flips the degraded gauge.
func (m *storeMetrics) setDegraded(down bool) {
	if m.degraded != nil {
		if down {
			m.degraded.Set(1)
		} else {
			m.degraded.Set(0)
		}
	}
}

func (m *storeMetrics) incDegrade() {
	if m.degradeEvents != nil {
		m.degradeEvents.Inc()
	}
}

func (m *storeMetrics) incProbe() {
	if m.probes != nil {
		m.probes.Inc()
	}
}

func (m *storeMetrics) incProbeSuccess() {
	if m.probeOK != nil {
		m.probeOK.Inc()
	}
}

func (m *storeMetrics) incFenced() {
	if m.fenced != nil {
		m.fenced.Inc()
	}
}

// setEpoch publishes the store's current leadership epoch.
func (m *storeMetrics) setEpoch(epoch int64) {
	if m.epoch != nil {
		m.epoch.Set(epoch)
	}
}
