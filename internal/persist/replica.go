package persist

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/parser"
)

// This file is the store-side substrate for streaming replication
// (internal/repl). A leader serves a follower the pair
// (snapshot-at-checkpoint, transaction tail); the follower installs
// leader-committed transactions through ApplyReplicated, which
// preserves every invariant of the local commit path — in particular
// the global sequence stays dense and monotone, so a replica's state
// at sequence N is exactly the leader's state at sequence N.

// ReplicaCut is a consistent view of the store for starting a
// replication stream: the checkpoint state, the committed transactions
// since it, the current sequence, and a subscription registered
// atomically with the copy — a transaction committed after the cut is
// delivered on Events, a transaction committed before it is in
// History, and no transaction is in neither.
type ReplicaCut struct {
	// BaseSeq is the global sequence of the last checkpoint; Snapshot
	// (when requested) is the state at exactly that sequence.
	BaseSeq int
	// Seq is the newest committed sequence at cut time.
	Seq int
	// BaseEpoch is the leadership epoch of the state at BaseSeq;
	// Epoch is the store's epoch at cut time. History carries each
	// transaction's own epoch, so the leader can check that a resuming
	// follower's timeline agrees with its own (see internal/repl).
	BaseEpoch int64
	Epoch     int64
	// Snapshot is the checkpoint state (immutable — do not mutate);
	// nil unless the cut was taken with withSnapshot.
	Snapshot *core.Database
	// History holds the committed deltas in (BaseSeq, Seq], oldest
	// first.
	History []TxnRecord
	// Events delivers transactions committed after the cut, in commit
	// order. The subscription drops when the consumer falls behind
	// (see Subscribe); a consumer that observes a sequence gap must
	// restart from a fresh cut.
	Events <-chan TxnRecord
	// Cancel releases the subscription. Always call it.
	Cancel func()
}

// ReplicaCut captures a consistent replication cut. The subscription
// is registered under the commit lock, so the History copy and the
// Events stream tile the transaction sequence exactly. withSnapshot
// additionally exposes the checkpoint state (needed when the consumer
// resumes from before BaseSeq, or not at all); buffer sizes the
// subscription channel.
func (s *Store) ReplicaCut(withSnapshot bool, buffer int) (*ReplicaCut, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	cut := &ReplicaCut{BaseSeq: s.baseSeq, Seq: s.seq, BaseEpoch: s.baseEpoch, Epoch: s.epoch}
	if withSnapshot {
		// snapDB is replaced, never mutated, so handing out the
		// pointer is safe; the caller renders it outside the lock.
		cut.Snapshot = s.snapDB
	}
	cut.History = make([]TxnRecord, len(s.history))
	copy(cut.History, s.history)
	// Lock order mu -> subsMu matches the notify path, so registering
	// while holding mu cannot race a commit's fan-out.
	cut.Events, cut.Cancel = s.Subscribe(buffer)
	return cut, nil
}

// ApplyReplicated installs one leader-committed transaction delta at
// exactly txn.Seq, bypassing rule evaluation: replication ships
// results, not programs, because PARK(P, D, U) is a pure function the
// leader already computed. The transaction must be the next in
// sequence (txn.Seq == Seq()+1); a transaction at or below the current
// sequence is skipped idempotently (stream resume overlap), and a gap
// is an error — the follower must re-resume from its actual sequence.
//
// The delta is WAL-logged with the leader's sequence in the commit
// marker, but not fsynced: a replica batches durability through
// SyncWAL, because a crash that loses the un-synced tail merely makes
// it re-request those transactions from the leader.
//
// Fencing: the frame is judged by the AUTHORITY it arrives under, not
// by the epoch stamped inside it — ApplyReplicated authorizes the
// frame by its own epoch, ApplyReplicatedFrom by the serving leader's
// current epoch (from stream heartbeats). An authority below the
// store's fencing floor (FenceEpoch: the highest epoch it has
// committed under, voted in, or bootstrapped from) is rejected with
// an error matching ErrFenced, whatever its sequence — it comes from
// a deposed leader and must not be applied, skipped, or used to
// advance the stream. A transaction from a newer epoch advances the
// store's epoch (durably, via its commit marker).
func (s *Store) ApplyReplicated(txn TxnRecord) error {
	return s.ApplyReplicatedFrom(txn, txn.Epoch)
}

// ApplyReplicatedFrom is ApplyReplicated under an explicit authority:
// leaderEpoch is the serving leader's CURRENT epoch, learned from its
// stream heartbeats. The distinction matters after a failover — the
// new leader's stream legitimately relays frames that committed under
// older epochs (the shared prefix), and those must apply even on a
// store whose fencing floor already names the new epoch (it voted, or
// it is mid-bootstrap); conversely a deposed leader's live tail
// carries its own stale epoch as authority and is rejected however
// its frames are stamped.
func (s *Store) ApplyReplicatedFrom(txn TxnRecord, leaderEpoch int64) error {
	if err := s.degradedErr(); err != nil {
		return err
	}
	auth := leaderEpoch
	if txn.Epoch > auth {
		// A relay may ship frames newer than its last heartbeat; the
		// frame's own epoch is then the better claim.
		auth = txn.Epoch
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if auth < s.fence {
		s.met.incFenced()
		return &FencedError{Seq: txn.Seq, TxnEpoch: auth, StoreEpoch: s.fence}
	}
	if txn.Seq <= s.seq {
		return nil
	}
	if txn.Seq != s.seq+1 {
		return fmt.Errorf("persist: replication gap: store at seq %d, got txn %d", s.seq, txn.Seq)
	}
	// Intern (and thereby validate) every atom before touching the
	// WAL, so a malformed frame cannot leave a partial transaction.
	addIDs := make([]core.AID, len(txn.Added))
	for i, text := range txn.Added {
		id, err := s.internAtomText(text)
		if err != nil {
			return fmt.Errorf("persist: replicated txn %d: %w", txn.Seq, err)
		}
		addIDs[i] = id
	}
	remIDs := make([]core.AID, len(txn.Removed))
	for i, text := range txn.Removed {
		id, err := s.internAtomText(text)
		if err != nil {
			return fmt.Errorf("persist: replicated txn %d: %w", txn.Seq, err)
		}
		remIDs[i] = id
	}
	if auth > s.fence {
		// This stream's authority names a newer epoch than any we have
		// acknowledged; raise the fencing floor ahead of the delta.
		// When the frame's own commit marker will carry auth, that
		// marker restores the floor on replay by itself; otherwise
		// (heartbeat ahead of the relayed frames) write it explicitly
		// — fence records stand alone between transactions.
		if auth > txn.Epoch {
			if err := s.appendFenceRecord(auth); err != nil {
				s.enterDegraded("wal append", err)
				return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
			}
		}
		s.fence = auth
		s.ev.Emit(events.Event{
			Type:     events.FenceRaised,
			Epoch:    auth,
			StoreSeq: s.seq,
			TraceID:  txn.TraceID,
			Detail:   "replication stream authority",
		})
	}
	for _, text := range txn.Added {
		if err := s.appendRecord('+', text); err != nil {
			s.enterDegraded("wal append", err)
			return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
		}
	}
	for _, text := range txn.Removed {
		if err := s.appendRecord('-', text); err != nil {
			s.enterDegraded("wal append", err)
			return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
		}
	}
	if err := s.appendCommitMarker(txn.Seq, txn.Epoch); err != nil {
		s.enterDegraded("wal append", err)
		return fmt.Errorf("persist: wal append: %w; %w", err, ErrDegraded)
	}
	cur := s.current()
	db := cur.db.Clone()
	for _, id := range addIDs {
		db.Add(id)
	}
	for _, id := range remIDs {
		db.Remove(id)
	}
	rec := TxnRecord{Seq: txn.Seq, Epoch: txn.Epoch, TraceID: txn.TraceID}
	rec.Added = append(rec.Added, txn.Added...)
	rec.Removed = append(rec.Removed, txn.Removed...)
	s.seq = txn.Seq
	s.seqMirror.Store(int64(txn.Seq))
	if txn.Epoch > s.epoch {
		s.epoch = txn.Epoch
		s.epochMirror.Store(txn.Epoch)
		s.met.setEpoch(txn.Epoch)
	}
	s.history = append(s.history, rec)
	s.state.Store(&dbState{db: db, version: cur.version + 1})
	s.notify(rec)
	s.syncMu.Lock()
	s.appendedLSN++
	s.pendingTxns++
	s.syncMu.Unlock()
	// The trace ID is the leader's: one identifier follows the
	// transaction from the originating request to every replica's log.
	s.cfg.slogger.Debug("replicated txn applied",
		"seq", rec.Seq,
		"traceId", rec.TraceID,
		"added", len(rec.Added),
		"removed", len(rec.Removed),
	)
	return nil
}

// SyncWAL makes every transaction appended so far durable, through the
// same group-commit machinery as Apply (a no-op when nothing is
// pending). Replicas call it at batch boundaries instead of per
// transaction.
func (s *Store) SyncWAL() error {
	s.syncMu.Lock()
	lsn := s.appendedLSN
	s.syncMu.Unlock()
	if lsn == 0 {
		return nil
	}
	return s.waitDurable(lsn)
}

// ResetToSnapshot replaces the entire store state with a leader
// snapshot taken at the given global sequence and epoch: the facts
// become the new checkpoint (written durably, atomic rename), the WAL
// restarts empty, and the sequence jumps to seq. This is the replica
// bootstrap path — used when the store has no state, or when its
// sequence falls outside the leader's retained window (including the
// divergence case where the replica is ahead of a deposed or restored
// leader: the current leader wins and the divergent tail is
// discarded).
//
// leaderEpoch is the serving leader's CURRENT epoch (from the stream's
// heartbeat), and it is the authorization for the reset: a bootstrap
// from a leader whose epoch is behind the store's fencing floor comes
// from a deposed leader and is rejected with an error matching
// ErrFenced. An authorized bootstrap adopts the snapshot's epoch even
// when it is LOWER than the store's — the snapshot may predate the
// promotion that raised the leader's epoch, and the replayed history
// re-advances the epoch through its own commit markers — but the
// FENCING FLOOR never regresses: it is raised to leaderEpoch and kept
// (durably, via a fence record in the fresh WAL), so if the stream
// breaks mid-catch-up the store still refuses the deposed leader's
// frames and snapshots, and the node's discovery still excludes it.
// The catch-up replay itself is not wedged by the kept floor because
// the new leader's stream applies through ApplyReplicatedFrom under
// leaderEpoch's authority.
func (s *Store) ResetToSnapshot(seq int, epoch int64, facts []string, leaderEpoch int64) error {
	if seq < 0 {
		return fmt.Errorf("persist: negative snapshot sequence %d", seq)
	}
	if epoch < 0 {
		return fmt.Errorf("persist: negative snapshot epoch %d", epoch)
	}
	if err := s.degradedErr(); err != nil {
		return err
	}
	var sb strings.Builder
	for _, f := range facts {
		sb.WriteString(f)
		sb.WriteString(".\n")
	}
	db, err := parser.ParseDatabase(s.u, "replica-snapshot", sb.String())
	if err != nil {
		return fmt.Errorf("persist: replica snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if leaderEpoch < s.fence {
		s.met.incFenced()
		return &SnapshotFencedError{Seq: seq, LeaderEpoch: leaderEpoch, StoreEpoch: s.fence}
	}
	if err := s.writeSnapshotLocked(db, seq, epoch); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	// The WAL is empty and at a clean boundary again; a previous
	// append failure no longer poisons durability.
	s.walErr = nil
	s.walRecords = 0
	s.snapDB = db.Clone()
	s.history = nil
	s.seq = seq
	s.seqMirror.Store(int64(seq))
	s.baseSeq = seq
	s.epoch = epoch
	s.epochMirror.Store(epoch)
	s.baseEpoch = epoch
	if leaderEpoch > s.fence {
		s.fence = leaderEpoch
	}
	// Truncating the WAL dropped the durable vote and fence records;
	// re-append (and fsync) them so the single-vote-per-epoch rule and
	// the fencing floor still hold across a restart — the floor in
	// particular must not regress to the snapshot's (possibly
	// pre-promotion) epoch while the catch-up is in flight.
	if err := s.reseedElectionRecords(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	s.met.setEpoch(epoch)
	cur := s.current()
	s.state.Store(&dbState{db: db, version: cur.version + 1})
	s.cfg.slogger.Info("bootstrapped from leader snapshot",
		"seq", seq, "epoch", epoch, "leaderEpoch", leaderEpoch, "facts", len(facts))
	s.ev.Emit(events.Event{
		Type:     events.SnapshotBootstrap,
		Epoch:    epoch,
		StoreSeq: seq,
		Detail:   fmt.Sprintf("adopted leader snapshot (%d facts, authority epoch %d)", len(facts), leaderEpoch),
	})
	// Anything previously appended is superseded by the durable
	// snapshot; release group-commit waiters.
	s.syncMu.Lock()
	if s.appendedLSN > s.syncedLSN {
		s.syncedLSN = s.appendedLSN
	}
	s.pendingTxns = 0
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	return nil
}
