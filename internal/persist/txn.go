package persist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/parser"
)

// Apply runs one transaction: PARK(P, current state, updates) under
// the given strategy and options, durably logs the fact-level delta,
// and installs the result as the new current state. On error the
// store is unchanged. It returns the engine result (whose Output is
// the new state).
func (s *Store) Apply(ctx context.Context, prog *core.Program, updates []core.Update, strategy core.Strategy, opts core.Options) (*core.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("persist: store is closed")
	}
	eng, err := core.NewEngine(s.u, prog, strategy, opts)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(ctx, s.db, updates)
	if err != nil {
		return nil, err
	}
	// Fact-level delta old -> new.
	var added, removed []core.AID
	for _, up := range core.Diff(s.db, res.Output) {
		if up.Op == core.OpInsert {
			added = append(added, up.Atom)
		} else {
			removed = append(removed, up.Atom)
		}
	}
	// Durability: delta records followed by a commit marker, then one
	// fsync. Recovery discards deltas with no trailing marker, so a
	// crash anywhere in this sequence preserves atomicity. No-change
	// transactions are not logged (and get no history entry).
	if len(added)+len(removed) > 0 {
		txn := TxnRecord{Seq: len(s.history) + 1}
		for _, id := range added {
			text := s.u.AtomString(id)
			txn.Added = append(txn.Added, text)
			if err := s.appendRecord('+', text); err != nil {
				return nil, fmt.Errorf("persist: wal append: %w", err)
			}
		}
		for _, id := range removed {
			text := s.u.AtomString(id)
			txn.Removed = append(txn.Removed, text)
			if err := s.appendRecord('-', text); err != nil {
				return nil, fmt.Errorf("persist: wal append: %w", err)
			}
		}
		if err := s.appendRecord('C', ""); err != nil {
			return nil, fmt.Errorf("persist: wal append: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return nil, fmt.Errorf("persist: wal sync: %w", err)
		}
		s.history = append(s.history, txn)
		s.notify(txn)
	}
	s.db = res.Output.Clone()
	return res, nil
}

// History returns the committed transactions since the last
// checkpoint, oldest first. Transactions that changed nothing are not
// recorded.
func (s *Store) History() []TxnRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TxnRecord, len(s.history))
	copy(out, s.history)
	return out
}

// StateAt reconstructs the database as of transaction seq (0 = the
// state at the last checkpoint / Open snapshot). It errors if seq is
// out of range.
func (s *Store) StateAt(seq int) (*core.Database, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq < 0 || seq > len(s.history) {
		return nil, fmt.Errorf("persist: transaction %d out of range [0, %d]", seq, len(s.history))
	}
	db := s.snapDB.Clone()
	for _, txn := range s.history[:seq] {
		for _, text := range txn.Added {
			id, err := s.internAtomText(text)
			if err != nil {
				return nil, err
			}
			db.Add(id)
		}
		for _, text := range txn.Removed {
			id, err := s.internAtomText(text)
			if err != nil {
				return nil, err
			}
			db.Remove(id)
		}
	}
	return db, nil
}

// ApplyUpdates is Apply with an empty program: it durably applies raw
// updates (conflicting pairs within the update set are resolved by
// the strategy, defaulting to inertia).
func (s *Store) ApplyUpdates(ctx context.Context, updates []core.Update) error {
	_, err := s.Apply(ctx, &core.Program{}, updates, nil, core.Options{})
	return err
}

// Query evaluates a conjunctive query against the current state.
func (s *Store) Query(q *core.Query, yield func(binding []core.Sym) bool) error {
	s.mu.Lock()
	db := s.db.Clone()
	s.mu.Unlock()
	return core.EvalQuery(s.u, db, q, yield)
}

// Checkpoint writes the current state as a new snapshot (atomically,
// via temp file + rename) and truncates the write-ahead log.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("persist: store is closed")
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	ids := append([]core.AID(nil), s.db.Atoms()...)
	s.u.SortAtoms(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(tmp, "%s.\n", s.u.AtomString(id)); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	s.walRecords = 0
	s.snapDB = s.db.Clone()
	s.history = nil
	return nil
}

// Close syncs and closes the store. Further operations fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return fmt.Errorf("persist: %w", err)
	}
	return s.wal.Close()
}

// Backup streams a consistent snapshot of the current state (sorted
// ground facts in rule-language syntax) to w. The result is a valid
// snapshot/database file.
func (s *Store) Backup(w io.Writer) error {
	s.mu.Lock()
	db := s.db.Clone()
	s.mu.Unlock()
	ids := append([]core.AID(nil), db.Atoms()...)
	s.u.SortAtoms(ids)
	bw := bufio.NewWriter(w)
	for _, id := range ids {
		if _, err := fmt.Fprintf(bw, "%s.\n", s.u.AtomString(id)); err != nil {
			return fmt.Errorf("persist: backup: %w", err)
		}
	}
	return bw.Flush()
}

// Restore initializes a NEW store directory from a backup stream. It
// refuses to overwrite an existing snapshot or WAL.
func Restore(dir string, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	snapPath := filepath.Join(dir, snapshotName)
	walPath := filepath.Join(dir, walName)
	for _, path := range []string{snapPath, walPath} {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("persist: restore target %s already exists", path)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("persist: restore: %w", err)
	}
	// Validate before writing: the backup must parse as a database.
	if _, err := parser.ParseDatabase(core.NewUniverse(), "backup", string(data)); err != nil {
		return fmt.Errorf("persist: invalid backup: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "restore-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return os.Rename(tmpName, snapPath)
}
