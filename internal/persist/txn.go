package persist

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/parser"
)

// History returns the committed transactions since the last
// checkpoint, oldest first, with their global sequence numbers.
// Transactions that changed nothing are not recorded.
func (s *Store) History() []TxnRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TxnRecord, len(s.history))
	copy(out, s.history)
	return out
}

// BaseSeq returns the global sequence number of the last checkpoint:
// StateAt(BaseSeq()) is the checkpoint state, and history covers
// (BaseSeq(), Seq()].
func (s *Store) BaseSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.baseSeq
}

// StateAt reconstructs the database as of global transaction sequence
// seq. The earliest reachable state is the last checkpoint
// (seq == BaseSeq()); the latest is the current state (seq == Seq()).
// It errors if seq is outside that window.
func (s *Store) StateAt(seq int) (*core.Database, error) {
	s.mu.Lock()
	base := s.baseSeq
	hist := make([]TxnRecord, len(s.history))
	copy(hist, s.history)
	snap := s.snapDB.Clone()
	s.mu.Unlock()
	if seq < base || seq > base+len(hist) {
		return nil, fmt.Errorf("persist: transaction %d out of range [%d, %d]", seq, base, base+len(hist))
	}
	db := snap
	for _, txn := range hist {
		if txn.Seq > seq {
			break
		}
		for _, text := range txn.Added {
			id, err := s.internAtomText(text)
			if err != nil {
				return nil, err
			}
			db.Add(id)
		}
		for _, text := range txn.Removed {
			id, err := s.internAtomText(text)
			if err != nil {
				return nil, err
			}
			db.Remove(id)
		}
	}
	return db, nil
}

// ApplyUpdates is Apply with an empty program: it durably applies raw
// updates (conflicting pairs within the update set are resolved by
// the strategy, defaulting to inertia).
func (s *Store) ApplyUpdates(ctx context.Context, updates []core.Update) error {
	_, err := s.Apply(ctx, &core.Program{}, updates, nil, core.Options{})
	return err
}

// Query evaluates a conjunctive query against the current state. It
// runs on the installed copy-on-write snapshot and never waits on
// writers.
func (s *Store) Query(q *core.Query, yield func(binding []core.Sym) bool) error {
	return core.EvalQuery(s.u, s.current().db, q, yield)
}

// Checkpoint writes the current state as a new snapshot (atomically,
// via temp file + rename) and truncates the write-ahead log. The
// snapshot header records the global sequence, so sequence numbers
// keep increasing across checkpoints. In-flight group-commit waiters
// are released: the snapshot made their transactions durable. A
// checkpoint I/O failure (disk full, failed fsync) degrades the store
// to read-only; the on-disk pair stays consistent either way, because
// replay over the surviving snapshot is idempotent.
func (s *Store) Checkpoint() error {
	if err := s.degradedErr(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	db := s.current().db
	if err := s.writeSnapshotLocked(db, s.seq, s.epoch); err != nil {
		s.enterDegraded("checkpoint snapshot", err)
		return fmt.Errorf("%w; %w", err, ErrDegraded)
	}
	if err := s.wal.Truncate(0); err != nil {
		s.enterDegraded("checkpoint wal truncate", err)
		return fmt.Errorf("persist: %w; %w", err, ErrDegraded)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		s.enterDegraded("checkpoint wal seek", err)
		return fmt.Errorf("persist: %w; %w", err, ErrDegraded)
	}
	s.walRecords = 0
	// The truncation dropped the durable vote and fence records;
	// re-append them so the single-vote-per-epoch rule and the fencing
	// floor still hold across a restart.
	if err := s.reseedElectionRecords(); err != nil {
		s.enterDegraded("checkpoint wal reseed", err)
		return fmt.Errorf("persist: %w; %w", err, ErrDegraded)
	}
	s.snapDB = db.Clone()
	s.history = nil
	s.baseSeq = s.seq
	s.baseEpoch = s.epoch
	s.cfg.slogger.Info("checkpoint written", "seq", s.seq, "epoch", s.epoch)
	s.ev.Emit(events.Event{
		Type:     events.Checkpoint,
		Epoch:    s.epoch,
		StoreSeq: s.seq,
	})
	// Every appended transaction is in the durable snapshot now;
	// release any committers still waiting on an fsync. (LSNs are
	// logical counts, so an fsync in flight across this point settles
	// harmlessly.)
	s.syncMu.Lock()
	if s.appendedLSN > s.syncedLSN {
		s.syncedLSN = s.appendedLSN
	}
	s.pendingTxns = 0
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	return nil
}

// writeSnapshotLocked durably writes db as the snapshot file (temp
// file + fsync + atomic rename) with seq and epoch in the header
// comment. Epoch-0 stores keep the pre-epoch header format so their
// snapshots stay readable by older binaries. Callers hold s.mu.
func (s *Store) writeSnapshotLocked(db *core.Database, seq int, epoch int64) error {
	tmp, err := s.fs.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	defer s.fs.Remove(tmpName)
	header := fmt.Sprintf("%s%d\n", snapshotSeqPrefix, seq)
	if epoch > 0 {
		header = fmt.Sprintf("%s%d%s%d\n", snapshotSeqPrefix, seq, snapshotEpochKey, epoch)
	}
	if _, err := io.WriteString(tmp, header); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	ids := append([]core.AID(nil), db.Atoms()...)
	s.u.SortAtoms(ids)
	for _, id := range ids {
		if _, err := fmt.Fprintf(tmp, "%s.\n", s.u.AtomString(id)); err != nil {
			tmp.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := s.fs.Rename(tmpName, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// Close syncs and closes the store. Further operations fail with
// ErrClosed. Committers still waiting for group commit are released
// by the final sync.
func (s *Store) Close() error {
	// Stop the degraded-mode probe before taking the store lock: its
	// repair path acquires s.mu, so waiting for it under the lock
	// would deadlock.
	s.closing.Store(true)
	s.stopProbe()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.wal.Sync()
	closeErr := s.wal.Close()
	s.syncMu.Lock()
	if syncErr != nil {
		s.syncErr = syncErr
	} else if s.appendedLSN > s.syncedLSN {
		s.syncedLSN = s.appendedLSN
	}
	s.syncCond.Broadcast()
	s.syncMu.Unlock()
	if syncErr != nil {
		return fmt.Errorf("persist: %w", syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("persist: %w", closeErr)
	}
	return nil
}

// Backup streams a consistent snapshot of the current state (sorted
// ground facts in rule-language syntax) to w. The result is a valid
// snapshot/database file. Backup reads the installed copy-on-write
// state and never blocks writers.
func (s *Store) Backup(w io.Writer) error {
	db := s.current().db
	ids := append([]core.AID(nil), db.Atoms()...)
	s.u.SortAtoms(ids)
	bw := bufio.NewWriter(w)
	for _, id := range ids {
		if _, err := fmt.Fprintf(bw, "%s.\n", s.u.AtomString(id)); err != nil {
			return fmt.Errorf("persist: backup: %w", err)
		}
	}
	return bw.Flush()
}

// Restore initializes a NEW store directory from a backup stream. It
// refuses to overwrite an existing snapshot or WAL.
func Restore(dir string, r io.Reader) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	snapPath := filepath.Join(dir, snapshotName)
	walPath := filepath.Join(dir, walName)
	for _, path := range []string{snapPath, walPath} {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("persist: restore target %s already exists", path)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("persist: restore: %w", err)
	}
	// Validate before writing: the backup must parse as a database.
	if _, err := parser.ParseDatabase(core.NewUniverse(), "backup", string(data)); err != nil {
		return fmt.Errorf("persist: invalid backup: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "restore-*.tmp")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return os.Rename(tmpName, snapPath)
}
