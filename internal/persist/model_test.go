package persist

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// Model-based test: random sequences of transactions, checkpoints and
// reopens must keep the store equal to a trivial in-memory model of
// applied updates.
func TestStoreAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()

			model := map[string]bool{}
			atoms := []string{"p(a)", "p(b)", "q(a, b)", "q(b, a)", "flag", "r(c)"}
			ctx := context.Background()

			for step := 0; step < 60; step++ {
				switch rng.Intn(10) {
				case 0: // checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				case 1: // reopen (simulated restart)
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					s, err = Open(dir)
					if err != nil {
						t.Fatal(err)
					}
				default: // transaction with 1-3 random updates
					n := 1 + rng.Intn(3)
					var ups []core.Update
					applied := map[string]bool{}
					for k := 0; k < n; k++ {
						atom := atoms[rng.Intn(len(atoms))]
						ins := rng.Intn(2) == 0
						op := "-"
						if ins {
							op = "+"
						}
						ups = append(ups, mustUpdates(t, s.Universe(), op+atom+".")...)
						// Model semantics for conflicting updates in
						// one transaction: inertia keeps the pre-state;
						// same-direction duplicates are idempotent.
						if prev, dup := applied[atom]; dup {
							if prev != ins {
								// conflict: revert to pre-transaction
								// status; mark so later updates in this
								// txn still apply... PARK resolves all
								// update conflicts against D, so the
								// pair cancels entirely.
								applied[atom] = ins
								continue
							}
							continue
						}
						applied[atom] = ins
					}
					// Re-derive the transaction's effect the way PARK
					// does: an atom with both +u and -u keeps its
					// database status (inertia); otherwise the update
					// applies.
					plus := map[string]bool{}
					minus := map[string]bool{}
					for _, up := range ups {
						text := s.Universe().AtomString(up.Atom)
						if up.Op == core.OpInsert {
							plus[text] = true
						} else {
							minus[text] = true
						}
					}
					if err := s.ApplyUpdates(ctx, ups); err != nil {
						t.Fatal(err)
					}
					for atom := range plus {
						if !minus[atom] {
							model[atom] = true
						}
					}
					for atom := range minus {
						if !plus[atom] {
							delete(model, atom)
						}
					}
				}
				// Compare store and model.
				got := map[string]bool{}
				u := s.Universe()
				for _, id := range s.Snapshot().Atoms() {
					got[u.AtomString(id)] = true
				}
				for atom := range model {
					if !got[atom] {
						t.Fatalf("step %d: model has %s, store does not", step, atom)
					}
				}
				for atom := range got {
					if !model[atom] {
						t.Fatalf("step %d: store has %s, model does not", step, atom)
					}
				}
			}
		})
	}
}

// TestCrashDuringGroupCommit simulates a crash at every byte offset
// of a WAL written by concurrent committers sharing fsyncs: recovery
// must land exactly on a committed-transaction boundary — each
// transaction is recovered entirely or not at all, even when several
// transactions shared one group-commit fsync and the torn tail cuts a
// batch in half.
func TestCrashDuringGroupCommit(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	ctx := context.Background()

	// Concurrent committers so the WAL really is written through the
	// group-commit path (batches of >1 when the scheduler cooperates).
	const writers = 6
	const txnsPerWriter = 3
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				// Each transaction adds one atom and removes the
				// writer's previous one, so the WAL carries both '+'
				// and '-' records inside group-commit batches.
				src := fmt.Sprintf("+t(w%d, i%d).", w, i)
				if i > 0 {
					src += fmt.Sprintf(" -t(w%d, i%d).", w, i-1)
				}
				if err := s.ApplyUpdates(ctx, mustUpdates(t, u, src)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("committer failed")
	}
	// The commit order on disk is the history order.
	hist := s.History()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}

	// expected[k] renders the state after the first k transactions.
	expected := make([]string, len(hist)+1)
	model := map[string]bool{}
	render := func() string {
		var atoms []string
		for a := range model {
			atoms = append(atoms, a)
		}
		sort.Strings(atoms)
		return strings.Join(atoms, ", ")
	}
	expected[0] = render()
	for k, txn := range hist {
		for _, a := range txn.Added {
			model[a] = true
		}
		for _, a := range txn.Removed {
			delete(model, a)
		}
		expected[k+1] = render()
	}

	// commitEnds[k] is the byte offset just past the k-th commit
	// marker: the recovery points.
	var commitEnds []int64
	off := int64(0)
	for int(off)+recordHeader <= len(wal) {
		length := int64(binary.LittleEndian.Uint32(wal[off:]))
		payload := wal[off+recordHeader : off+recordHeader+length]
		off += recordHeader + length
		if _, _, ok := commitMarker(payload); ok {
			commitEnds = append(commitEnds, off)
		}
	}
	if len(commitEnds) != len(hist) {
		t.Fatalf("WAL has %d commit markers, history has %d entries", len(commitEnds), len(hist))
	}

	// Crash at every byte offset (torn tail of arbitrary length).
	for cut := int64(0); cut <= int64(len(wal)); cut++ {
		// The longest committed prefix entirely below the cut.
		k := sort.Search(len(commitEnds), func(i int) bool { return commitEnds[i] > cut })
		crashDir := t.TempDir()
		snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
		if err == nil {
			if werr := os.WriteFile(filepath.Join(crashDir, snapshotName), snap, 0o644); werr != nil {
				t.Fatal(werr)
			}
		}
		if err := os.WriteFile(filepath.Join(crashDir, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Open(crashDir)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		got := renderDB(rec.Universe(), rec.Snapshot())
		if got != expected[k] {
			t.Fatalf("cut %d: recovered {%s}, want first %d txns {%s}", cut, got, k, expected[k])
		}
		recHist := rec.History()
		if len(recHist) != k {
			t.Fatalf("cut %d: recovered %d history entries, want %d", cut, len(recHist), k)
		}
		for i, txn := range recHist {
			if txn.Seq != hist[i].Seq {
				t.Fatalf("cut %d: history[%d].Seq = %d, want %d", cut, i, txn.Seq, hist[i].Seq)
			}
		}
		rec.Close()
	}
}

// Consistency: a transaction through the store equals a direct engine
// run over the store's snapshot.
func TestApplyMatchesDirectEngine(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		u := s.Universe()
		ctx := context.Background()
		if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p0(k0). +p1(k1). +p2(k0).`)); err != nil {
			t.Fatal(err)
		}
		progSrc := fmt.Sprintf("rule r0: p0(X) -> +p%d(X).\nrule r1: p1(X) -> -p%d(X).\n", seed%3, (seed+1)%3)
		prog := mustProgram(t, u, progSrc)
		ups := mustUpdates(t, u, `+p0(k1).`)

		before := s.Snapshot()
		eng, err := core.NewEngine(u, prog, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eng.Run(ctx, before, ups)
		if err != nil {
			t.Fatal(err)
		}
		viaStore, err := s.Apply(ctx, prog, ups, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if renderDB(u, direct.Output) != renderDB(u, viaStore.Output) {
			t.Fatalf("seed %d: direct {%s} != store {%s}", seed,
				renderDB(u, direct.Output), renderDB(u, viaStore.Output))
		}
		if renderDB(u, s.Snapshot()) != renderDB(u, direct.Output) {
			t.Fatalf("seed %d: installed state diverges", seed)
		}
		s.Close()
	}
}
