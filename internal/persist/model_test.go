package persist

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Model-based test: random sequences of transactions, checkpoints and
// reopens must keep the store equal to a trivial in-memory model of
// applied updates.
func TestStoreAgainstModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()

			model := map[string]bool{}
			atoms := []string{"p(a)", "p(b)", "q(a, b)", "q(b, a)", "flag", "r(c)"}
			ctx := context.Background()

			for step := 0; step < 60; step++ {
				switch rng.Intn(10) {
				case 0: // checkpoint
					if err := s.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				case 1: // reopen (simulated restart)
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					s, err = Open(dir)
					if err != nil {
						t.Fatal(err)
					}
				default: // transaction with 1-3 random updates
					n := 1 + rng.Intn(3)
					var ups []core.Update
					applied := map[string]bool{}
					for k := 0; k < n; k++ {
						atom := atoms[rng.Intn(len(atoms))]
						ins := rng.Intn(2) == 0
						op := "-"
						if ins {
							op = "+"
						}
						ups = append(ups, mustUpdates(t, s.Universe(), op+atom+".")...)
						// Model semantics for conflicting updates in
						// one transaction: inertia keeps the pre-state;
						// same-direction duplicates are idempotent.
						if prev, dup := applied[atom]; dup {
							if prev != ins {
								// conflict: revert to pre-transaction
								// status; mark so later updates in this
								// txn still apply... PARK resolves all
								// update conflicts against D, so the
								// pair cancels entirely.
								applied[atom] = ins
								continue
							}
							continue
						}
						applied[atom] = ins
					}
					// Re-derive the transaction's effect the way PARK
					// does: an atom with both +u and -u keeps its
					// database status (inertia); otherwise the update
					// applies.
					plus := map[string]bool{}
					minus := map[string]bool{}
					for _, up := range ups {
						text := s.Universe().AtomString(up.Atom)
						if up.Op == core.OpInsert {
							plus[text] = true
						} else {
							minus[text] = true
						}
					}
					if err := s.ApplyUpdates(ctx, ups); err != nil {
						t.Fatal(err)
					}
					for atom := range plus {
						if !minus[atom] {
							model[atom] = true
						}
					}
					for atom := range minus {
						if !plus[atom] {
							delete(model, atom)
						}
					}
				}
				// Compare store and model.
				got := map[string]bool{}
				u := s.Universe()
				for _, id := range s.Snapshot().Atoms() {
					got[u.AtomString(id)] = true
				}
				for atom := range model {
					if !got[atom] {
						t.Fatalf("step %d: model has %s, store does not", step, atom)
					}
				}
				for atom := range got {
					if !model[atom] {
						t.Fatalf("step %d: store has %s, model does not", step, atom)
					}
				}
			}
		})
	}
}

// Consistency: a transaction through the store equals a direct engine
// run over the store's snapshot.
func TestApplyMatchesDirectEngine(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		u := s.Universe()
		ctx := context.Background()
		if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p0(k0). +p1(k1). +p2(k0).`)); err != nil {
			t.Fatal(err)
		}
		progSrc := fmt.Sprintf("rule r0: p0(X) -> +p%d(X).\nrule r1: p1(X) -> -p%d(X).\n", seed%3, (seed+1)%3)
		prog := mustProgram(t, u, progSrc)
		ups := mustUpdates(t, u, `+p0(k1).`)

		before := s.Snapshot()
		eng, err := core.NewEngine(u, prog, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := eng.Run(ctx, before, ups)
		if err != nil {
			t.Fatal(err)
		}
		viaStore, err := s.Apply(ctx, prog, ups, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if renderDB(u, direct.Output) != renderDB(u, viaStore.Output) {
			t.Fatalf("seed %d: direct {%s} != store {%s}", seed,
				renderDB(u, direct.Output), renderDB(u, viaStore.Output))
		}
		if renderDB(u, s.Snapshot()) != renderDB(u, direct.Output) {
			t.Fatalf("seed %d: installed state diverges", seed)
		}
		s.Close()
	}
}
