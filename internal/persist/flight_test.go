package persist

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/flight"
)

// TestApplyRecordsFlightTrace checks that every committed transaction
// leaves a resolved trace in the store's flight ring, stamped with the
// request's trace ID from the context.
func TestApplyRecordsFlightTrace(t *testing.T) {
	var logBuf bytes.Buffer
	s, err := Open(t.TempDir(),
		WithSlog(slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	prog := mustProgram(t, u, `
		rule r1 priority 1: p -> +a.
		rule r2 priority 2: p -> +q.
		rule r3 priority 3: a -> -q.
	`)
	ctx := flight.WithTraceID(context.Background(), "trace-abc")
	if _, err := s.Apply(ctx, prog, mustUpdates(t, u, `+p.`), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	ring := s.Flight()
	if ring == nil {
		t.Fatal("flight ring disabled by default")
	}
	tr := ring.Get(s.Seq())
	if tr == nil {
		t.Fatalf("no trace recorded for seq %d", s.Seq())
	}
	if tr.TraceID != "trace-abc" || tr.Origin != "local" {
		t.Fatalf("trace header = %+v; want traceId trace-abc, origin local", tr)
	}
	if tr.Conflicts == 0 || len(tr.Events) == 0 {
		t.Fatalf("trace is empty: %+v", tr)
	}
	// The structured commit log carries the same correlation ID.
	if !strings.Contains(logBuf.String(), "traceId=trace-abc") {
		t.Fatalf("commit log missing trace ID:\n%s", logBuf.String())
	}
	// The history record carries it too.
	hist := s.History()
	if len(hist) == 0 || hist[len(hist)-1].TraceID != "trace-abc" {
		t.Fatalf("history record missing trace ID: %+v", hist)
	}
}

// TestTraceBufferDisabled checks WithTraceBuffer(0) turns recording
// off entirely: no ring, no recorder on the engine's critical path.
func TestTraceBufferDisabled(t *testing.T) {
	s, err := Open(t.TempDir(), WithTraceBuffer(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	if _, err := s.Apply(context.Background(), mustProgram(t, u, `p -> +a.`),
		mustUpdates(t, u, `+p.`), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if s.Flight() != nil {
		t.Fatal("Flight() should be nil when tracing is disabled")
	}
}

// TestApplyReplicatedPropagatesTraceID checks a replica's history and
// subscription records keep the leader's trace ID.
func TestApplyReplicatedPropagatesTraceID(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	events, cancel := s.Subscribe(4)
	defer cancel()
	err = s.ApplyReplicated(TxnRecord{Seq: 1, TraceID: "leader-trace", Added: []string{"p(a)"}})
	if err != nil {
		t.Fatal(err)
	}
	rec := <-events
	if rec.TraceID != "leader-trace" {
		t.Fatalf("subscription record trace ID = %q, want leader-trace", rec.TraceID)
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].TraceID != "leader-trace" {
		t.Fatalf("history = %+v", hist)
	}
}

// TestCallerTracerWins checks that an explicit caller tracer suppresses
// the flight recorder for that transaction (the engine takes one
// tracer) without disturbing recording for other transactions.
func TestCallerTracerWins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := s.Universe()
	prog := mustProgram(t, u, `p -> +a.`)
	var sb strings.Builder
	tracer := &core.TextTracer{W: &sb, U: u}
	if _, err := s.Apply(context.Background(), prog, mustUpdates(t, u, `+p.`), nil,
		core.Options{Tracer: tracer}); err != nil {
		t.Fatal(err)
	}
	if sb.Len() == 0 {
		t.Fatal("caller tracer saw no events")
	}
	if tr := s.Flight().Get(s.Seq()); tr != nil {
		t.Fatalf("flight trace recorded despite caller tracer: %+v", tr)
	}
	if _, err := s.Apply(context.Background(), prog, mustUpdates(t, u, `+q.`), nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if tr := s.Flight().Get(s.Seq()); tr == nil {
		t.Fatal("recording did not resume after the traced transaction")
	}
}
