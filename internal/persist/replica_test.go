package persist

import (
	"context"
	"testing"

	"repro/internal/core"
)

// applyN commits n single-fact transactions fact0..fact{n-1}.
func applyN(t *testing.T, s *Store, n int) {
	t.Helper()
	u := s.Universe()
	for i := 0; i < n; i++ {
		ups := mustUpdates(t, u, "+fact"+string(rune('a'+i))+"(x).")
		if _, err := s.Apply(context.Background(), &core.Program{}, ups, nil, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestApplyReplicatedSequencing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Added: []string{"q(b)"}, Removed: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s.Universe(), s.Snapshot()); got != "q(b)" {
		t.Fatalf("db = %q, want q(b)", got)
	}
	if s.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", s.Seq())
	}
	// Replays of already-applied sequences are idempotent no-ops.
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Added: []string{"stale(x)"}}); err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s.Universe(), s.Snapshot()); got != "q(b)" {
		t.Fatalf("db after replay = %q, want q(b)", got)
	}
	// A sequence gap is an error, not a silent skip.
	if err := s.ApplyReplicated(TxnRecord{Seq: 4, Added: []string{"r(c)"}}); err == nil {
		t.Fatal("gap (2 -> 4) accepted")
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyReplicatedDurable pins that replicated transactions go
// through the WAL: after SyncWAL and a reopen, the state and sequence
// survive.
func TestApplyReplicatedDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range []string{"p(a)", "q(b)", "r(c)"} {
		if err := s.ApplyReplicated(TxnRecord{Seq: i + 1, Added: []string{f}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 3 {
		t.Fatalf("seq after reopen = %d, want 3", s2.Seq())
	}
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(a), q(b), r(c)" {
		t.Fatalf("db after reopen = %q", got)
	}
}

func TestResetToSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, s, 3)
	// A reset discards local state entirely and adopts the leader's
	// snapshot and sequence.
	if err := s.ResetToSnapshot(42, 0, []string{"lead(a)", "lead(b)"}, 0); err != nil {
		t.Fatal(err)
	}
	if s.Seq() != 42 {
		t.Fatalf("seq = %d, want 42", s.Seq())
	}
	if got := renderDB(s.Universe(), s.Snapshot()); got != "lead(a), lead(b)" {
		t.Fatalf("db = %q", got)
	}
	if len(s.History()) != 0 {
		t.Fatalf("history not cleared: %v", s.History())
	}
	// Replication continues from the adopted sequence...
	if err := s.ApplyReplicated(TxnRecord{Seq: 43, Added: []string{"lead(c)"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// ...and everything survives a restart.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 43 {
		t.Fatalf("seq after reopen = %d, want 43", s2.Seq())
	}
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "lead(a), lead(b), lead(c)" {
		t.Fatalf("db after reopen = %q", got)
	}
}

// TestReplicaCutTiles pins the consistency contract of ReplicaCut:
// history and the live event channel tile the sequence with no gap
// and no overlap, even with commits racing the cut.
func TestReplicaCutTiles(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	applyN(t, s, 3)

	cut, err := s.ReplicaCut(true, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer cut.Cancel()
	if cut.BaseSeq != 0 || cut.Seq != 3 {
		t.Fatalf("cut = [%d, %d], want [0, 3]", cut.BaseSeq, cut.Seq)
	}
	if cut.Snapshot == nil {
		t.Fatal("cut has no snapshot despite withSnapshot=true")
	}
	if len(cut.History) != 3 {
		t.Fatalf("history len = %d, want 3", len(cut.History))
	}
	// Commits after the cut arrive only on the channel, starting at
	// exactly Seq+1.
	applyN(t, s, 5)
	want := cut.Seq + 1
	for i := 0; i < 2; i++ {
		txn := <-cut.Events
		if txn.Seq != want {
			t.Fatalf("event seq = %d, want %d", txn.Seq, want)
		}
		want++
	}
}
