package persist

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestBeginEpochDurable proves a promotion survives a restart even
// when no transaction ever commits under the new epoch.
func TestBeginEpochDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", got)
	}
	if err := s.BeginEpoch(3); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if err := s.BeginEpoch(3); err != nil {
		t.Fatalf("re-begin of current epoch should be a no-op, got %v", err)
	}
	if err := s.BeginEpoch(2); err == nil {
		t.Fatal("BeginEpoch(2) after epoch 3 should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != 3 {
		t.Fatalf("recovered epoch = %d, want 3", got)
	}
}

// TestEpochInCommitMarkers proves local commits stamp the current
// epoch and that the epoch rides the commit marker through recovery
// and checkpoints.
func TestEpochInCommitMarkers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, s.Universe(), `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].Epoch != 5 {
		t.Fatalf("history = %+v, want one txn at epoch 5", hist)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 5 {
		t.Fatalf("recovered epoch = %d, want 5", got)
	}
	if hist := r.History(); len(hist) != 1 || hist[0].Epoch != 5 {
		t.Fatalf("recovered history = %+v, want one txn at epoch 5", hist)
	}
	// Checkpoint folds the epoch into the snapshot header.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	epoch, baseEpoch := c.Epochs()
	if epoch != 5 || baseEpoch != 5 {
		t.Fatalf("post-checkpoint epochs = (%d, %d), want (5, 5)", epoch, baseEpoch)
	}
}

// TestApplyReplicatedFencing proves the fencing rule: transactions
// from a deposed epoch are rejected with ErrFenced, newer epochs are
// adopted, and the idempotent-skip path never masks a fenced frame.
func TestApplyReplicatedFencing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch after epoch-1 txn = %d, want 1 (adopted)", got)
	}
	// A newer epoch deposes epoch 1...
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Epoch: 4, Added: []string{"q(b)"}}); err != nil {
		t.Fatal(err)
	}
	// ...after which epoch-1 frames are fenced, even stale ones that
	// the idempotent skip would otherwise swallow.
	err = s.ApplyReplicated(TxnRecord{Seq: 3, Epoch: 1, Added: []string{"stale(x)"}})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("next-seq deposed txn: got %v, want ErrFenced", err)
	}
	var fe *FencedError
	if !errors.As(err, &fe) || fe.TxnEpoch != 1 || fe.StoreEpoch != 4 {
		t.Fatalf("FencedError = %+v", err)
	}
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 1, Added: []string{"p(a)"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-seq deposed txn: got %v, want ErrFenced", err)
	}
	// Same-epoch replay of an applied seq still skips idempotently.
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Epoch: 4, Added: []string{"q(b)"}}); err != nil {
		t.Fatalf("idempotent same-epoch replay: %v", err)
	}
	// The fenced fact never became visible.
	for _, txt := range renderDBAtoms(s.Universe(), s.Snapshot()) {
		if strings.Contains(txt, "stale") {
			t.Fatalf("fenced fact visible in state: %s", renderDB(s.Universe(), s.Snapshot()))
		}
	}
}

// TestRecordVoteDurable proves the single-vote-per-epoch rule holds
// across a restart.
func TestRecordVoteDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch, id := s.LastVote(); epoch != 0 || id != "" {
		t.Fatalf("fresh store vote = (%d, %q)", epoch, id)
	}
	if err := s.RecordVote(2, "node-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVote(2, "node-c"); err == nil {
		t.Fatal("second vote in epoch 2 should fail")
	}
	if err := s.RecordVote(3, "node-c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if epoch, id := r.LastVote(); epoch != 3 || id != "node-c" {
		t.Fatalf("recovered vote = (%d, %q), want (3, %q)", epoch, id, "node-c")
	}
	if err := r.RecordVote(3, "node-b"); err == nil {
		t.Fatal("re-vote in epoch 3 after restart should fail")
	}
}

// TestResetToSnapshotEpochAuthorization proves the bootstrap fencing
// rule: a deposed leader (stream epoch behind the store's) cannot
// reset the store at all, while a current leader may — including onto
// a snapshot whose own epoch is LOWER than the store's, because the
// snapshot can predate the promotion and the replayed history
// re-advances the epoch (the regression test for the bootstrap
// livelock where a restarted follower fenced the new leader's own
// pre-promotion history).
func TestResetToSnapshotEpochAuthorization(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.BeginEpoch(7); err != nil {
		t.Fatal(err)
	}
	// Deposed leader (epoch 4 < 7): refused, state untouched.
	err = s.ResetToSnapshot(10, 4, []string{"p(a)"}, 4)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-leader reset = %v, want ErrFenced", err)
	}
	if got := s.Epoch(); got != 7 {
		t.Fatalf("epoch after refused reset = %d, want 7", got)
	}
	// Current leader (epoch 8 >= 7) serving a pre-promotion snapshot
	// (epoch 4): authorized, and the store ADOPTS the older epoch so
	// the history replay that follows is not fenced.
	if err := s.ResetToSnapshot(10, 4, []string{"p(a)"}, 8); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 4 {
		t.Fatalf("epoch after authorized reset = %d, want 4 (adopted)", got)
	}
	// Replaying the leader's history advances the epoch back up
	// through the replayed commit markers.
	if err := s.ApplyReplicated(TxnRecord{Seq: 11, Epoch: 8, Added: []string{"p(b)"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 8 {
		t.Fatalf("epoch after replayed txn = %d, want 8", got)
	}
	// A newer-epoch snapshot adopts forward too.
	if err := s.ResetToSnapshot(12, 9, []string{"p(c)"}, 9); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 9 {
		t.Fatalf("epoch after newer-epoch reset = %d, want 9", got)
	}
}

// TestSnapshotHeaderParsing pins the header format, including both
// pre-epoch forms.
func TestSnapshotHeaderParsing(t *testing.T) {
	cases := []struct {
		text  string
		seq   int
		epoch int64
	}{
		{"% park snapshot seq=12\np(a).\n", 12, 0},
		{"% park snapshot seq=12 epoch=3\np(a).\n", 12, 3},
		{"p(a).\n", 0, 0},
		{"% park snapshot seq=bogus\n", 0, 0},
		{"% park snapshot seq=12 epoch=bogus\n", 12, 0},
	}
	for _, tc := range cases {
		seq, epoch := parseSnapshotHeader(tc.text)
		if seq != tc.seq || epoch != tc.epoch {
			t.Errorf("parseSnapshotHeader(%q) = (%d, %d), want (%d, %d)",
				tc.text, seq, epoch, tc.seq, tc.epoch)
		}
	}
}

// renderDBAtoms is a tiny helper for the fencing test.
func renderDBAtoms(u *core.Universe, db *core.Database) []string {
	ids := append([]core.AID(nil), db.Atoms()...)
	u.SortAtoms(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = u.AtomString(id)
	}
	return out
}
