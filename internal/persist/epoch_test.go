package persist

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestBeginEpochDurable proves a promotion survives a restart even
// when no transaction ever commits under the new epoch.
func TestBeginEpochDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", got)
	}
	if err := s.BeginEpoch(3); err != nil {
		t.Fatalf("BeginEpoch: %v", err)
	}
	if err := s.BeginEpoch(3); err != nil {
		t.Fatalf("re-begin of current epoch should be a no-op, got %v", err)
	}
	if err := s.BeginEpoch(2); err == nil {
		t.Fatal("BeginEpoch(2) after epoch 3 should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Epoch(); got != 3 {
		t.Fatalf("recovered epoch = %d, want 3", got)
	}
}

// TestEpochInCommitMarkers proves local commits stamp the current
// epoch and that the epoch rides the commit marker through recovery
// and checkpoints.
func TestEpochInCommitMarkers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginEpoch(5); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, s.Universe(), `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].Epoch != 5 {
		t.Fatalf("history = %+v, want one txn at epoch 5", hist)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 5 {
		t.Fatalf("recovered epoch = %d, want 5", got)
	}
	if hist := r.History(); len(hist) != 1 || hist[0].Epoch != 5 {
		t.Fatalf("recovered history = %+v, want one txn at epoch 5", hist)
	}
	// Checkpoint folds the epoch into the snapshot header.
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	epoch, baseEpoch := c.Epochs()
	if epoch != 5 || baseEpoch != 5 {
		t.Fatalf("post-checkpoint epochs = (%d, %d), want (5, 5)", epoch, baseEpoch)
	}
}

// TestApplyReplicatedFencing proves the fencing rule: transactions
// from a deposed epoch are rejected with ErrFenced, newer epochs are
// adopted, and the idempotent-skip path never masks a fenced frame.
func TestApplyReplicatedFencing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch after epoch-1 txn = %d, want 1 (adopted)", got)
	}
	// A newer epoch deposes epoch 1...
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Epoch: 4, Added: []string{"q(b)"}}); err != nil {
		t.Fatal(err)
	}
	// ...after which epoch-1 frames are fenced, even stale ones that
	// the idempotent skip would otherwise swallow.
	err = s.ApplyReplicated(TxnRecord{Seq: 3, Epoch: 1, Added: []string{"stale(x)"}})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("next-seq deposed txn: got %v, want ErrFenced", err)
	}
	var fe *FencedError
	if !errors.As(err, &fe) || fe.TxnEpoch != 1 || fe.StoreEpoch != 4 {
		t.Fatalf("FencedError = %+v", err)
	}
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 1, Added: []string{"p(a)"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-seq deposed txn: got %v, want ErrFenced", err)
	}
	// Same-epoch replay of an applied seq still skips idempotently.
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Epoch: 4, Added: []string{"q(b)"}}); err != nil {
		t.Fatalf("idempotent same-epoch replay: %v", err)
	}
	// The fenced fact never became visible.
	for _, txt := range renderDBAtoms(s.Universe(), s.Snapshot()) {
		if strings.Contains(txt, "stale") {
			t.Fatalf("fenced fact visible in state: %s", renderDB(s.Universe(), s.Snapshot()))
		}
	}
}

// TestRecordVoteDurable proves the single-vote-per-epoch rule holds
// across a restart.
func TestRecordVoteDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if epoch, id := s.LastVote(); epoch != 0 || id != "" {
		t.Fatalf("fresh store vote = (%d, %q)", epoch, id)
	}
	if err := s.RecordVote(2, "node-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVote(2, "node-c"); err == nil {
		t.Fatal("second vote in epoch 2 should fail")
	}
	if err := s.RecordVote(3, "node-c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if epoch, id := r.LastVote(); epoch != 3 || id != "node-c" {
		t.Fatalf("recovered vote = (%d, %q), want (3, %q)", epoch, id, "node-c")
	}
	if err := r.RecordVote(3, "node-b"); err == nil {
		t.Fatal("re-vote in epoch 3 after restart should fail")
	}
}

// TestResetToSnapshotEpochAuthorization proves the bootstrap fencing
// rule: a deposed leader (stream epoch behind the store's) cannot
// reset the store at all, while a current leader may — including onto
// a snapshot whose own epoch is LOWER than the store's, because the
// snapshot can predate the promotion and the replayed history
// re-advances the epoch (the regression test for the bootstrap
// livelock where a restarted follower fenced the new leader's own
// pre-promotion history).
func TestResetToSnapshotEpochAuthorization(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.BeginEpoch(7); err != nil {
		t.Fatal(err)
	}
	// Deposed leader (epoch 4 < 7): refused, state untouched.
	err = s.ResetToSnapshot(10, 4, []string{"p(a)"}, 4)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-leader reset = %v, want ErrFenced", err)
	}
	if got := s.Epoch(); got != 7 {
		t.Fatalf("epoch after refused reset = %d, want 7", got)
	}
	// Current leader (epoch 8 >= 7) serving a pre-promotion snapshot
	// (epoch 4): authorized, and the store ADOPTS the older epoch so
	// the history replay that follows is not fenced.
	if err := s.ResetToSnapshot(10, 4, []string{"p(a)"}, 8); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 4 {
		t.Fatalf("epoch after authorized reset = %d, want 4 (adopted)", got)
	}
	// Replaying the leader's history advances the epoch back up
	// through the replayed commit markers.
	if err := s.ApplyReplicated(TxnRecord{Seq: 11, Epoch: 8, Added: []string{"p(b)"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 8 {
		t.Fatalf("epoch after replayed txn = %d, want 8", got)
	}
	// A newer-epoch snapshot adopts forward too.
	if err := s.ResetToSnapshot(12, 9, []string{"p(c)"}, 9); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 9 {
		t.Fatalf("epoch after newer-epoch reset = %d, want 9", got)
	}
}

// TestVoteRaisesFenceDurably proves a granted vote raises the fencing
// floor — so the deposed leader can no longer replicate here — and
// that the floor survives a restart even though no commit ever carried
// the voted epoch.
func TestVoteRaisesFenceDurably(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Old leader at epoch 1 replicates normally.
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if got := s.FenceEpoch(); got != 1 {
		t.Fatalf("fence after epoch-1 txn = %d, want 1", got)
	}
	// Vote for a candidate in epoch 2: the floor rises immediately,
	// while the applied-tip epoch stays at 1.
	if err := s.RecordVote(2, "node-b"); err != nil {
		t.Fatal(err)
	}
	if got := s.FenceEpoch(); got != 2 {
		t.Fatalf("fence after vote = %d, want 2", got)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch after vote = %d, want 1 (votes do not move the tip)", got)
	}
	// The old epoch-1 leader keeps streaming: fenced, both as a frame
	// stamp and as a stream authority.
	if err := s.ApplyReplicated(TxnRecord{Seq: 2, Epoch: 1, Added: []string{"lost(x)"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("old-leader frame after vote = %v, want ErrFenced", err)
	}
	if err := s.ApplyReplicatedFrom(TxnRecord{Seq: 2, Epoch: 1, Added: []string{"lost(x)"}}, 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("old-leader stream after vote = %v, want ErrFenced", err)
	}
	// The voted-for winner's stream (authority 2) may relay epoch-1
	// history it committed before promoting.
	if err := s.ApplyReplicatedFrom(TxnRecord{Seq: 2, Epoch: 1, Added: []string{"p(b)"}}, 2); err != nil {
		t.Fatalf("new-leader relay after vote: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.FenceEpoch(); got != 2 {
		t.Fatalf("recovered fence = %d, want 2", got)
	}
	if err := r.ApplyReplicated(TxnRecord{Seq: 3, Epoch: 1, Added: []string{"lost(y)"}}); !errors.Is(err, ErrFenced) {
		t.Fatalf("old-leader frame after restart = %v, want ErrFenced", err)
	}
}

// TestRecordVoteIdempotentRegrant proves the exact re-vote (same
// epoch, same candidate) succeeds idempotently — a candidate whose
// grant was durable but whose response was lost can reacquire it —
// including after a restart, while any other re-vote still fails.
func TestRecordVoteIdempotentRegrant(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVote(4, "node-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVote(4, "node-b"); err != nil {
		t.Fatalf("idempotent re-grant: %v", err)
	}
	if err := s.RecordVote(4, "node-c"); err == nil {
		t.Fatal("re-vote for a DIFFERENT candidate in epoch 4 should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.RecordVote(4, "node-b"); err != nil {
		t.Fatalf("idempotent re-grant after restart: %v", err)
	}
	if err := r.RecordVote(4, "node-c"); err == nil {
		t.Fatal("re-vote for a different candidate after restart should fail")
	}
	if epoch, id := r.LastVote(); epoch != 4 || id != "node-b" {
		t.Fatalf("vote after re-grants = (%d, %q), want (4, %q)", epoch, id, "node-b")
	}
}

// TestResetToSnapshotKeepsFenceFloor proves a bootstrap onto a
// pre-promotion snapshot regresses the applied-tip epoch but NOT the
// fencing floor — durably — so a deposed leader cannot slip back in
// through the gap (the reviewer's bootstrap-regression scenario).
func TestResetToSnapshotKeepsFenceFloor(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BeginEpoch(7); err != nil {
		t.Fatal(err)
	}
	// The epoch-8 winner bootstraps us from a snapshot taken before its
	// promotion (snapshot epoch 4).
	if err := s.ResetToSnapshot(10, 4, []string{"p(a)"}, 8); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 4 {
		t.Fatalf("epoch after reset = %d, want 4 (snapshot tip)", got)
	}
	if got := s.FenceEpoch(); got != 8 {
		t.Fatalf("fence after reset = %d, want 8 (authorizing leader)", got)
	}
	// The deposed epoch-7 leader cannot exploit the regressed tip.
	if err := s.ApplyReplicatedFrom(TxnRecord{Seq: 11, Epoch: 7, Added: []string{"lost(x)"}}, 7); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-leader frame mid-bootstrap = %v, want ErrFenced", err)
	}
	if err := s.ResetToSnapshot(12, 7, []string{"q(b)"}, 7); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-leader re-bootstrap = %v, want ErrFenced", err)
	}
	// The epoch-8 leader's own catch-up stream is not wedged: it relays
	// pre-promotion history under its current authority.
	if err := s.ApplyReplicatedFrom(TxnRecord{Seq: 11, Epoch: 4, Added: []string{"p(b)"}}, 8); err != nil {
		t.Fatalf("new-leader history relay: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The floor survives a restart mid-catch-up: the bootstrap wrote it
	// as a fence record beyond what the snapshot header restores.
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.FenceEpoch(); got != 8 {
		t.Fatalf("recovered fence = %d, want 8", got)
	}
	if err := r.ApplyReplicatedFrom(TxnRecord{Seq: 12, Epoch: 7, Added: []string{"lost(y)"}}, 7); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed-leader frame after restart = %v, want ErrFenced", err)
	}
}

// TestCheckpointPreservesElectionRecords proves a checkpoint's WAL
// truncation does not drop the durable vote or the fencing floor — the
// single-vote rule and fencing must hold across checkpoint + restart.
func TestCheckpointPreservesElectionRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyReplicated(TxnRecord{Seq: 1, Epoch: 2, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordVote(5, "node-b"); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if epoch, id := r.LastVote(); epoch != 5 || id != "node-b" {
		t.Fatalf("vote after checkpoint+restart = (%d, %q), want (5, %q)", epoch, id, "node-b")
	}
	if err := r.RecordVote(5, "node-c"); err == nil {
		t.Fatal("re-vote in epoch 5 after checkpoint+restart should fail")
	}
	if got := r.FenceEpoch(); got != 5 {
		t.Fatalf("fence after checkpoint+restart = %d, want 5", got)
	}
	if err := r.ApplyReplicatedFrom(TxnRecord{Seq: 2, Epoch: 2, Added: []string{"lost(x)"}}, 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("old-leader frame after checkpoint+restart = %v, want ErrFenced", err)
	}
}

// TestSnapshotHeaderParsing pins the header format, including both
// pre-epoch forms.
func TestSnapshotHeaderParsing(t *testing.T) {
	cases := []struct {
		text  string
		seq   int
		epoch int64
	}{
		{"% park snapshot seq=12\np(a).\n", 12, 0},
		{"% park snapshot seq=12 epoch=3\np(a).\n", 12, 3},
		{"p(a).\n", 0, 0},
		{"% park snapshot seq=bogus\n", 0, 0},
		{"% park snapshot seq=12 epoch=bogus\n", 12, 0},
	}
	for _, tc := range cases {
		seq, epoch := parseSnapshotHeader(tc.text)
		if seq != tc.seq || epoch != tc.epoch {
			t.Errorf("parseSnapshotHeader(%q) = (%d, %d), want (%d, %d)",
				tc.text, seq, epoch, tc.seq, tc.epoch)
		}
	}
}

// renderDBAtoms is a tiny helper for the fencing test.
func renderDBAtoms(u *core.Universe, db *core.Database) []string {
	ids := append([]core.AID(nil), db.Atoms()...)
	u.SortAtoms(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = u.AtomString(id)
	}
	return out
}
