package persist

import "sync"

// subscriber is one registered transaction listener.
type subscriber struct {
	ch chan TxnRecord
}

// subscribers is guarded by the store mutex via the subMu embedded
// here (separate from s.mu so notifications never contend with long
// transactions' engine work — Apply holds s.mu while notifying, but
// registration does not need it).
type subscribers struct {
	mu   sync.Mutex
	subs map[int]*subscriber
	next int
}

// Subscribe registers a listener for committed transactions. Every
// transaction that changes the database is sent to the returned
// channel after it is durably committed. The channel has the given
// buffer; if a subscriber falls behind, notifications for it are
// DROPPED (the store never blocks on slow listeners) — consumers that
// need a complete log should read History instead. cancel
// unregisters and closes the channel.
func (s *Store) Subscribe(buffer int) (events <-chan TxnRecord, cancel func()) {
	if buffer < 1 {
		buffer = 1
	}
	s.subsMu.mu.Lock()
	defer s.subsMu.mu.Unlock()
	if s.subsMu.subs == nil {
		s.subsMu.subs = make(map[int]*subscriber)
	}
	id := s.subsMu.next
	s.subsMu.next++
	sub := &subscriber{ch: make(chan TxnRecord, buffer)}
	s.subsMu.subs[id] = sub
	var once sync.Once
	return sub.ch, func() {
		once.Do(func() {
			s.subsMu.mu.Lock()
			delete(s.subsMu.subs, id)
			s.subsMu.mu.Unlock()
			close(sub.ch)
		})
	}
}

// notify fans a committed transaction out to the subscribers,
// dropping for any whose buffer is full.
func (s *Store) notify(txn TxnRecord) {
	s.subsMu.mu.Lock()
	defer s.subsMu.mu.Unlock()
	for _, sub := range s.subsMu.subs {
		select {
		case sub.ch <- txn:
		default: // slow subscriber: drop
		}
	}
}
