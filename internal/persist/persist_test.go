package persist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func renderDB(u *core.Universe, d *core.Database) string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = u.AtomString(id)
	}
	return strings.Join(parts, ", ")
}

func mustUpdates(t *testing.T, u *core.Universe, src string) []core.Update {
	t.Helper()
	ups, err := parser.ParseUpdates(u, "", src)
	if err != nil {
		t.Fatal(err)
	}
	return ups
}

func mustProgram(t *testing.T, u *core.Universe, src string) *core.Program {
	t.Helper()
	p, err := parser.ParseProgram(u, "", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpenEmpty(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 || s.WALRecords() != 0 {
		t.Fatalf("fresh store: len=%d wal=%d", s.Len(), s.WALRecords())
	}
}

func TestApplyAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	prog := mustProgram(t, u, `emp(X), !active(X), payroll(X) -> -payroll(X).`)
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+emp(tom). +payroll(tom). +active(tom).`)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Apply(context.Background(), prog, mustUpdates(t, u, `-active(tom).`), nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "emp(tom)"
	if got := renderDB(u, res.Output); got != want {
		t.Fatalf("state = {%s}, want {%s}", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must be fully recovered from the WAL alone.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != want {
		t.Fatalf("recovered state = {%s}, want {%s}", got, want)
	}
}

func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a). +p(b). +q(a, b).`)); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() == 0 {
		t.Fatal("no WAL records before checkpoint")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALRecords() != 0 {
		t.Fatalf("wal records after checkpoint = %d", s.WALRecords())
	}
	// The snapshot file exists and parses as facts.
	snap, err := os.ReadFile(filepath.Join(dir, snapshotName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "q(a, b).") {
		t.Fatalf("snapshot content:\n%s", snap)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(a), p(b), q(a, b)" {
		t.Fatalf("state after checkpoint reopen = {%s}", got)
	}
	if s2.WALRecords() != 0 {
		t.Fatalf("wal records after reopen = %d", s2.WALRecords())
	}
}

func TestCheckpointThenMoreTransactions(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(b). -p(a).`)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(b)" {
		t.Fatalf("state = {%s}, want {p(b)}", got)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a). +p(b).`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: garbage half-record at the tail.
	walPath := filepath.Join(dir, walName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0, 0, 1, 2}); err != nil { // claims 42 bytes, provides 0
		t.Fatal(err)
	}
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(a), p(b)" {
		t.Fatalf("recovered state = {%s}", got)
	}
	// The torn tail must have been truncated away so new appends work.
	if err := s2.ApplyUpdates(context.Background(), mustUpdates(t, s2.Universe(), `+p(c).`)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := renderDB(s3.Universe(), s3.Snapshot()); got != "p(a), p(b), p(c)" {
		t.Fatalf("state after torn-tail round trip = {%s}", got)
	}
}

func TestCRCCorruptionStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(b).`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip a payload byte of the second record.
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A checksum mismatch on a fully present record is corruption, not
	// a torn tail: Open must refuse rather than silently discard it.
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt WAL = %v, want ErrCorrupt", err)
	}

	// RepairOpen quarantines the corrupt region and recovers the
	// committed prefix.
	s2, report, err := RepairOpen(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "p(a)" {
		t.Fatalf("recovered state = {%s}, want {p(a)}", got)
	}
	if report == nil {
		t.Fatal("RepairOpen returned no repair report")
	}
	if report.RecoveredSeq != 1 {
		t.Fatalf("report.RecoveredSeq = %d, want 1", report.RecoveredSeq)
	}
	if report.QuarantinedBytes == 0 {
		t.Fatal("report quarantined no bytes")
	}
	if q, err := os.ReadFile(report.QuarantinedFile); err != nil {
		t.Fatalf("quarantine file: %v", err)
	} else if int64(len(q)) != report.QuarantinedBytes {
		t.Fatalf("quarantine file has %d bytes, report says %d", len(q), report.QuarantinedBytes)
	}

	// The store is writable again after repair.
	if err := s2.ApplyUpdates(context.Background(), mustUpdates(t, s2.Universe(), `+p(c).`)); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
}

func TestFailedTransactionLeavesStoreUnchanged(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	// A failing strategy aborts the transaction.
	prog := mustProgram(t, u, `p(X) -> +a(X). p(X) -> -a(X).`)
	bad := core.StrategyFunc{StrategyName: "bad", Fn: func(*core.SelectInput) (core.Decision, error) {
		return 0, os.ErrInvalid
	}}
	if _, err := s.Apply(context.Background(), prog, nil, bad, core.Options{}); err == nil {
		t.Fatal("failing strategy did not abort")
	}
	if got := renderDB(u, s.Snapshot()); got != "p(a)" {
		t.Fatalf("state changed by failed txn: {%s}", got)
	}
}

func TestStoreQuery(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+emp(tom). +emp(ann). +active(ann).`)); err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(u, "", `emp(X), !active(X)`)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := s.Query(q, func(b []core.Sym) bool { rows++; return true }); err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Fatalf("rows = %d", rows)
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Close()
	if err := s.ApplyUpdates(context.Background(), nil); err == nil {
		t.Fatal("apply on closed store succeeded")
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotName), []byte("p(X)."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// A crash between a transaction's delta records and its commit marker
// must roll the whole transaction back on recovery (atomicity).
func TestUncommittedTransactionRolledBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Append a valid delta record with NO commit marker, simulating a
	// crash mid-Apply.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.appendRecord('+', "p(b)"); err != nil {
		t.Fatal(err)
	}
	if err := s2.appendRecord('-', "p(a)"); err != nil {
		t.Fatal(err)
	}
	s2.wal.Sync()
	s2.wal.Close() // bypass Close() bookkeeping, like a crash

	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if got := renderDB(s3.Universe(), s3.Snapshot()); got != "p(a)" {
		t.Fatalf("recovered state = {%s}, want the pre-transaction {p(a)}", got)
	}
	if len(s3.History()) != 1 {
		t.Fatalf("history = %d entries, want 1", len(s3.History()))
	}
	// The store must accept new transactions cleanly after rollback.
	if err := s3.ApplyUpdates(context.Background(), mustUpdates(t, s3.Universe(), `+p(c).`)); err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s3.Universe(), s3.Snapshot()); got != "p(a), p(c)" {
		t.Fatalf("state after rollback + new txn = {%s}", got)
	}
}

func TestHistoryAndStateAt(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(b). -p(a).`)); err != nil {
		t.Fatal(err)
	}
	// A no-op transaction is not recorded.
	if err := s.ApplyUpdates(ctx, nil); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist) != 2 {
		t.Fatalf("history = %d entries, want 2", len(hist))
	}
	if hist[0].Seq != 1 || len(hist[0].Added) != 1 || hist[0].Added[0] != "p(a)" {
		t.Fatalf("txn 1 = %+v", hist[0])
	}
	if hist[1].Seq != 2 || len(hist[1].Removed) != 1 {
		t.Fatalf("txn 2 = %+v", hist[1])
	}
	for seq, want := range map[int]string{0: "", 1: "p(a)", 2: "p(b)"} {
		db, err := s.StateAt(seq)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderDB(u, db); got != want {
			t.Fatalf("StateAt(%d) = {%s}, want {%s}", seq, got, want)
		}
	}
	if _, err := s.StateAt(3); err == nil {
		t.Fatal("StateAt(3) accepted")
	}
	if _, err := s.StateAt(-1); err == nil {
		t.Fatal("StateAt(-1) accepted")
	}

	// History survives reopen (rebuilt from the WAL)...
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.History()) != 2 {
		t.Fatalf("reopened history = %d", len(s2.History()))
	}
	// ...and is cleared by a checkpoint (the snapshot collapses it),
	// but the global sequence does NOT reset: the checkpoint becomes
	// the new base.
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if len(s2.History()) != 0 {
		t.Fatalf("history after checkpoint = %d", len(s2.History()))
	}
	if s2.BaseSeq() != 2 || s2.Seq() != 2 {
		t.Fatalf("after checkpoint base/seq = %d/%d, want 2/2", s2.BaseSeq(), s2.Seq())
	}
	db, err := s2.StateAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s2.Universe(), db); got != "p(b)" {
		t.Fatalf("StateAt(2) after checkpoint = {%s}", got)
	}
	// Pre-checkpoint sequences are no longer reconstructable...
	if _, err := s2.StateAt(1); err == nil {
		t.Fatal("StateAt(1) accepted after checkpoint")
	}
	s2.Close()
}

// TestSeqMonotonicAcrossCheckpoint is the regression test for the
// sequence-reset bug: transaction sequence numbers used to restart at
// 1 after every checkpoint, so /v1/watch consumers and ?at=N time
// travel saw duplicate, ambiguous sequences.
func TestSeqMonotonicAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	ctx := context.Background()
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(b).`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(c).`)); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist) != 1 || hist[0].Seq != 3 {
		t.Fatalf("post-checkpoint history = %+v, want one entry with Seq 3", hist)
	}
	// The sequence survives a restart, too: the snapshot header and
	// the commit markers both carry it.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 3 || s2.BaseSeq() != 2 {
		t.Fatalf("reopened seq/base = %d/%d, want 3/2", s2.Seq(), s2.BaseSeq())
	}
	if err := s2.ApplyUpdates(ctx, mustUpdates(t, s2.Universe(), `+p(d).`)); err != nil {
		t.Fatal(err)
	}
	if got := s2.History(); len(got) != 2 || got[1].Seq != 4 {
		t.Fatalf("history after reopen+apply = %+v, want Seqs 3, 4", got)
	}
	// Time travel by global sequence across the checkpoint boundary.
	db, err := s2.StateAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s2.Universe(), db); got != "p(a), p(b), p(c)" {
		t.Fatalf("StateAt(3) = {%s}", got)
	}
}

func TestBackupRestore(t *testing.T) {
	s, _ := Open(t.TempDir())
	u := s.Universe()
	if err := s.ApplyUpdates(context.Background(), mustUpdates(t, u, `+p(a). +q(a, b). +flag.`)); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := s.Backup(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !strings.Contains(buf.String(), "q(a, b).") {
		t.Fatalf("backup content:\n%s", buf.String())
	}

	dir := t.TempDir()
	if err := Restore(dir, strings.NewReader(buf.String())); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != "flag, p(a), q(a, b)" {
		t.Fatalf("restored state = {%s}", got)
	}
	// Restore refuses to overwrite.
	if err := Restore(dir, strings.NewReader("x.\n")); err == nil {
		t.Fatal("restore over existing store succeeded")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := Restore(dir, strings.NewReader("p(X) -> +q(X).")); err == nil {
		t.Fatal("rules accepted as backup")
	}
	if err := Restore(dir, strings.NewReader("p(")); err == nil {
		t.Fatal("garbage accepted as backup")
	}
	// The failed restores must not leave a snapshot behind.
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err == nil {
		t.Fatal("snapshot written despite invalid backup")
	}
}

func TestSubscribe(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()

	events, cancel := s.Subscribe(4)
	defer cancel()

	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(a).`)); err != nil {
		t.Fatal(err)
	}
	// No-op transactions produce no event.
	if err := s.ApplyUpdates(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `-p(a). +p(b).`)); err != nil {
		t.Fatal(err)
	}

	txn1 := <-events
	if txn1.Seq != 1 || len(txn1.Added) != 1 || txn1.Added[0] != "p(a)" {
		t.Fatalf("event 1 = %+v", txn1)
	}
	txn2 := <-events
	if txn2.Seq != 2 || len(txn2.Removed) != 1 {
		t.Fatalf("event 2 = %+v", txn2)
	}
	select {
	case e := <-events:
		t.Fatalf("unexpected event %+v", e)
	default:
	}

	// After cancel, no more events and the channel closes.
	cancel()
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+p(c).`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-events; ok {
		t.Fatal("event after cancel")
	}
}

func TestSubscribeSlowConsumerDrops(t *testing.T) {
	s, _ := Open(t.TempDir())
	defer s.Close()
	u := s.Universe()
	ctx := context.Background()
	events, cancel := s.Subscribe(1)
	defer cancel()
	for i := 0; i < 5; i++ {
		if err := s.ApplyUpdates(ctx, mustUpdates(t, u, "+x"+string(rune('a'+i))+".")); err != nil {
			t.Fatal(err)
		}
	}
	// Only the first event fits the buffer; the rest were dropped and
	// the store never blocked.
	first := <-events
	if first.Seq != 1 {
		t.Fatalf("first buffered event seq = %d", first.Seq)
	}
	select {
	case e := <-events:
		// At most one more could have been buffered after the read
		// raced the writers; with sequential ApplyUpdates above there
		// is none.
		t.Fatalf("unexpected second event %+v", e)
	default:
	}
}

// Crash between Checkpoint's snapshot rename and WAL truncation: on
// reopen the full old WAL replays on top of the new snapshot. Delta
// records are absolute (+atom / -atom), so the double application
// converges to the same state.
func TestCheckpointCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	u := s.Universe()
	ctx := context.Background()
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `+a. +b.`)); err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyUpdates(ctx, mustUpdates(t, u, `-a. +c.`)); err != nil {
		t.Fatal(err)
	}
	// Save the pre-checkpoint WAL bytes.
	walPath := filepath.Join(dir, walName)
	oldWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := renderDB(u, s.Snapshot())
	s.Close()
	// Simulate the crash: the snapshot is new but the WAL truncation
	// "did not happen".
	if err := os.WriteFile(walPath, oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != want {
		t.Fatalf("state after checkpoint crash = {%s}, want {%s}", got, want)
	}
	// The store keeps working (new transactions, another checkpoint).
	if err := s2.ApplyUpdates(ctx, mustUpdates(t, s2.Universe(), `+d.`)); err != nil {
		t.Fatal(err)
	}
	if err := s2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := renderDB(s2.Universe(), s2.Snapshot()); got != want+", d" {
		t.Fatalf("state = {%s}", got)
	}
}
