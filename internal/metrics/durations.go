package metrics

import (
	"sort"
	"sync"
	"time"
)

// Durations is a concurrency-safe recorder of duration samples with
// exact quantiles. It exists so that every tool reporting latency
// percentiles — parkbench's B-series tables and parkload's
// BENCH_*.json trajectories — computes them from one implementation,
// and a p99 in one report means the same thing as a p99 in another.
//
// Samples are kept exactly (no bucketing); the intended scale is a
// benchmark run's worth of observations (up to a few million), where
// an exact sort is both affordable and free of the resolution
// artifacts a fixed-bucket histogram would add to tail quantiles.
// Observe is safe from any goroutine; the read side (Quantile, Mean,
// Max, Snapshot) sorts lazily under the same lock.
type Durations struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewDurations returns an empty recorder with capacity hint n.
func NewDurations(n int) *Durations {
	return &Durations{samples: make([]time.Duration, 0, n)}
}

// Observe records one duration sample.
func (d *Durations) Observe(v time.Duration) {
	d.mu.Lock()
	d.samples = append(d.samples, v)
	d.sorted = false
	d.mu.Unlock()
}

// Count returns the number of recorded samples.
func (d *Durations) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.samples)
}

// sortLocked sorts the sample slice if needed. Callers hold d.mu.
func (d *Durations) sortLocked() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) as the value at
// index floor(q·(n−1)) of the sorted samples. Zero samples yield 0.
// This is the exact convention parkbench's B12 table has always
// used, now shared by every reporting tool.
func (d *Durations) Quantile(q float64) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return 0
	}
	d.sortLocked()
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return d.samples[int(q*float64(len(d.samples)-1))]
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (d *Durations) Mean() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// Max returns the largest sample (0 when empty).
func (d *Durations) Max() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.samples) == 0 {
		return 0
	}
	d.sortLocked()
	return d.samples[len(d.samples)-1]
}

// DurationSummary is the standard percentile summary the benchmark
// tools report. All fields are durations; JSON encoders that want
// milliseconds should convert explicitly rather than rely on
// time.Duration's integer-nanosecond marshaling.
type DurationSummary struct {
	Count              int
	Mean, Max          time.Duration
	P50, P90, P95, P99 time.Duration
}

// Summary computes the standard summary in one pass over the sorted
// samples.
func (d *Durations) Summary() DurationSummary {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := DurationSummary{Count: len(d.samples)}
	if len(d.samples) == 0 {
		return s
	}
	d.sortLocked()
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	s.Mean = sum / time.Duration(len(d.samples))
	s.Max = d.samples[len(d.samples)-1]
	at := func(q float64) time.Duration {
		return d.samples[int(q*float64(len(d.samples)-1))]
	}
	s.P50, s.P90, s.P95, s.P99 = at(0.50), at(0.90), at(0.95), at(0.99)
	return s
}
