package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("park_test_total", "test counter")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// A second lookup under the same name/labels returns the same
	// instrument, not a fresh one.
	if again := reg.Counter("park_test_total", "test counter"); again.Value() != workers*per {
		t.Fatalf("re-lookup returned a different counter (value %d)", again.Value())
	}
	c.Add(-5) // negative adds are ignored
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter after Add(-5) = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("park_test_gauge", "test gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("park_test_seconds", "test histogram", []float64{0.01, 0.1, 1})
	// Bounds are inclusive upper bounds: an observation exactly on a
	// bound lands in that bound's bucket.
	for _, v := range []float64{0.005, 0.01, 0.05, 0.1, 0.5, 1, 2} {
		h.Observe(v)
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %d, want 1", len(snap.Histograms))
	}
	hv := snap.Histograms[0]
	if hv.Count != 7 {
		t.Fatalf("count = %d, want 7", hv.Count)
	}
	wantSum := 0.005 + 0.01 + 0.05 + 0.1 + 0.5 + 1 + 2
	if math.Abs(hv.Sum-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", hv.Sum, wantSum)
	}
	// Cumulative counts: <=0.01 → 2, <=0.1 → 4, <=1 → 6, +Inf → 7.
	wantCum := []uint64{2, 4, 6}
	for i, b := range hv.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket le=%v count = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("park_test_conc_seconds", "test", []float64{1})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if math.Abs(h.Sum()-0.5*workers*per) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum(), 0.5*workers*per)
	}
}

// TestSnapshotVsResetRace exercises concurrent Observe/Inc, Snapshot
// and Reset; under -race this verifies every access is synchronized.
func TestSnapshotVsResetRace(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("park_race_total", "race test")
	h := reg.Histogram("park_race_seconds", "race test", nil)
	g := reg.Gauge("park_race_gauge", "race test")
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = reg.Snapshot()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.Reset()
		}
	}()
	// Let the snapshot/reset goroutines finish, then stop the writer.
	wgDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(wgDone)
	}()
	for i := 0; i < 2; i++ {
		_ = reg.Snapshot()
	}
	close(done)
	<-wgDone
	// After a final reset, everything must read zero.
	reg.Reset()
	snap := reg.Snapshot()
	for _, mv := range append(snap.Counters, snap.Gauges...) {
		if mv.Value != 0 {
			t.Fatalf("%s = %d after reset, want 0", mv.Name, mv.Value)
		}
	}
	for _, hv := range snap.Histograms {
		if hv.Count != 0 || hv.Sum != 0 {
			t.Fatalf("%s count=%d sum=%v after reset, want zeros", hv.Name, hv.Count, hv.Sum)
		}
	}
}

func TestLabelsDistinguishChildren(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("park_http_requests_total", "reqs", L("endpoint", "/v1/query"), L("code", "200"))
	b := reg.Counter("park_http_requests_total", "reqs", L("endpoint", "/v1/query"), L("code", "400"))
	// Same labels in a different order resolve to the same child.
	a2 := reg.Counter("park_http_requests_total", "reqs", L("code", "200"), L("endpoint", "/v1/query"))
	a.Inc()
	a.Inc()
	b.Inc()
	if a2.Value() != 2 {
		t.Fatalf("label order changed child identity: %d", a2.Value())
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 2 {
		t.Fatalf("children = %d, want 2", len(snap.Counters))
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("park_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering park_x as a gauge did not panic")
		}
	}()
	reg.Gauge("park_x", "x")
}

func TestPrometheusRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("park_reqs_total", "Requests served.", L("endpoint", "/v1/query")).Add(3)
	reg.Gauge("park_inflight", "In-flight requests.").Set(1)
	h := reg.Histogram("park_lat_seconds", "Latency.", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE park_reqs_total counter",
		`park_reqs_total{endpoint="/v1/query"} 3`,
		"# TYPE park_inflight gauge",
		"park_inflight 1",
		"# TYPE park_lat_seconds histogram",
		`park_lat_seconds_bucket{le="0.5"} 1`,
		`park_lat_seconds_bucket{le="1"} 2`,
		`park_lat_seconds_bucket{le="+Inf"} 3`,
		"park_lat_seconds_sum 5.9",
		"park_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("park_esc_total", "", L("path", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("escaping wrong:\n%s", sb.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("park_j_total", "j").Add(7)
	reg.Histogram("park_j_seconds", "j", []float64{1}).Observe(0.5)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("round-trip counters = %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("round-trip histograms = %+v", snap.Histograms)
	}
}
