package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestDurationsEmpty(t *testing.T) {
	d := NewDurations(0)
	if d.Count() != 0 || d.Quantile(0.99) != 0 || d.Mean() != 0 || d.Max() != 0 {
		t.Fatalf("empty recorder must read all-zero: %+v", d.Summary())
	}
	if s := d.Summary(); s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestDurationsQuantiles(t *testing.T) {
	d := NewDurations(100)
	// 1ms..100ms, inserted out of order to exercise the lazy sort.
	for i := 100; i >= 1; i-- {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	// floor(q·(n−1)) convention: index floor(0.5·99) = 49 → 50ms.
	if got := d.Quantile(0.50); got != 50*time.Millisecond {
		t.Errorf("p50 = %v, want 50ms", got)
	}
	if got := d.Quantile(0.99); got != 99*time.Millisecond {
		t.Errorf("p99 = %v, want 99ms", got)
	}
	if got := d.Quantile(0); got != 1*time.Millisecond {
		t.Errorf("p0 = %v, want 1ms", got)
	}
	if got := d.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v, want 100ms", got)
	}
	// Out-of-range q clamps.
	if d.Quantile(-1) != d.Quantile(0) || d.Quantile(2) != d.Quantile(1) {
		t.Error("out-of-range quantiles must clamp to [0, 1]")
	}
	if got := d.Max(); got != 100*time.Millisecond {
		t.Errorf("max = %v, want 100ms", got)
	}
	if got := d.Mean(); got != 50500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
	s := d.Summary()
	if s.Count != 100 || s.P50 != 50*time.Millisecond || s.P99 != 99*time.Millisecond ||
		s.Max != 100*time.Millisecond || s.Mean != 50500*time.Microsecond {
		t.Errorf("summary = %+v", s)
	}
}

func TestDurationsSingleSample(t *testing.T) {
	d := NewDurations(1)
	d.Observe(7 * time.Millisecond)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := d.Quantile(q); got != 7*time.Millisecond {
			t.Errorf("Quantile(%v) = %v, want 7ms", q, got)
		}
	}
}

// TestDurationsConcurrent exercises Observe from many goroutines with
// interleaved reads; run under -race this is the data-race net.
func TestDurationsConcurrent(t *testing.T) {
	d := NewDurations(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				d.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = d.Quantile(0.5)
				}
			}
		}(g)
	}
	wg.Wait()
	if d.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", d.Count())
	}
	if got := d.Max(); got != 999*time.Microsecond {
		t.Fatalf("max = %v, want 999µs", got)
	}
}
