// Package metrics provides dependency-free process metrics for the
// PARK system: atomic counters, gauges and fixed-bucket latency
// histograms, organized in a Registry that can snapshot itself to a
// JSON-friendly structure or render the Prometheus text exposition
// format.
//
// The package exists so that the engine's Δ/ω machinery (phases,
// restarts, conflicts, Γ steps — §4/§5 of the paper) and the HTTP
// layer serving it can be observed in production without pulling in
// an external metrics dependency: everything here is standard
// library only, and every mutation is a single atomic operation, so
// instruments are safe to update from any goroutine (including the
// engine's parallel Γ workers' fold-in path).
//
// Usage:
//
//	reg := metrics.NewRegistry()
//	txns := reg.Counter("park_engine_transactions_total",
//	    "Transactions evaluated.")
//	lat := reg.Histogram("park_http_request_seconds",
//	    "Request latency.", metrics.DefBuckets,
//	    metrics.L("endpoint", "/v1/transaction"))
//	txns.Inc()
//	lat.Observe(0.004)
//	snap := reg.Snapshot()       // JSON-marshalable
//	reg.WritePrometheus(w)       // text exposition format
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bucket upper bounds,
// in seconds. They span 100µs to 10s, which covers everything from a
// trivial no-conflict transaction to a pathological restart storm.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Label is one name=value dimension attached to a metric child (for
// example endpoint="/v1/transaction").
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative increments are ignored (counters are
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram of float64 observations
// (typically seconds). Buckets are defined by their inclusive upper
// bounds; an implicit +Inf bucket catches the rest. All methods are
// safe for concurrent use.
type Histogram struct {
	bounds []float64       // sorted, strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric kinds, also used as the Prometheus TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family groups the children of one metric name (one per distinct
// label set).
type family struct {
	name    string
	help    string
	kind    string
	buckets []float64 // histogram families only

	mu       sync.Mutex
	children map[string]any // label key -> *Counter | *Gauge | *Histogram
	labels   map[string][]Label
}

// Registry holds a set of named metric families. The zero value is
// not usable; create registries with NewRegistry. All methods are
// safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes a label set into a canonical map key.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteByte('\x00')
		sb.WriteString(l.Value)
		sb.WriteByte('\x00')
	}
	return sb.String()
}

// getFamily returns the family for name, creating it on first use. It
// panics when name was already registered with a different kind —
// that is a programming error, like registering two flags with one
// name.
func (r *Registry) getFamily(name, help, kind string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, buckets: buckets,
			children: make(map[string]any),
			labels:   make(map[string][]Label),
		}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// child returns the family child for the label set, creating it with
// mk on first use.
func (f *family) child(labels []Label, mk func() any) any {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.labels[key] = append([]Label(nil), labels...)
	}
	return c
}

// Counter returns (creating on first use) the counter with the given
// name and label set. The help string of the first registration
// wins.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.getFamily(name, help, kindCounter, nil)
	return f.child(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns (creating on first use) the gauge with the given name
// and label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.getFamily(name, help, kindGauge, nil)
	return f.child(labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns (creating on first use) the histogram with the
// given name, bucket upper bounds and label set. The buckets of the
// first registration win; nil means DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.getFamily(name, help, kindHistogram, buckets)
	return f.child(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// Reset zeroes every registered metric value, keeping the
// registrations (names, labels, buckets) intact. Concurrent updates
// during a reset are not lost atomically as a set — each instrument
// resets independently — but no individual update is torn.
func (r *Registry) Reset() {
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		for _, c := range f.children {
			switch m := c.(type) {
			case *Counter:
				m.v.Store(0)
			case *Gauge:
				m.v.Store(0)
			case *Histogram:
				for i := range m.counts {
					m.counts[i].Store(0)
				}
				m.count.Store(0)
				m.sum.Store(0)
			}
		}
		f.mu.Unlock()
	}
}

// snapshotFamilies returns the families in registration order.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.families[name])
	}
	return out
}

// MetricValue is one counter or gauge reading in a Snapshot.
type MetricValue struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// Bucket is one cumulative histogram bucket reading: the number of
// observations with value <= UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// HistogramValue is one histogram reading in a Snapshot. Buckets are
// cumulative over the finite upper bounds; Count is the total
// observation count (the implicit +Inf bucket).
type HistogramValue struct {
	Name    string   `json:"name"`
	Labels  []Label  `json:"labels,omitempty"`
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

// Snapshot is a point-in-time copy of every registered metric,
// suitable for JSON encoding. Entries are ordered by metric
// registration order, then by label set, so children of one family
// are always contiguous.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot reads every metric. Values are read atomically per
// instrument (the snapshot as a whole is not a consistent cut, which
// is the usual contract for scrape-style metrics).
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			labels := f.labels[k]
			switch m := f.children[k].(type) {
			case *Counter:
				snap.Counters = append(snap.Counters, MetricValue{Name: f.name, Labels: labels, Value: m.Value()})
			case *Gauge:
				snap.Gauges = append(snap.Gauges, MetricValue{Name: f.name, Labels: labels, Value: m.Value()})
			case *Histogram:
				hv := HistogramValue{Name: f.name, Labels: labels, Count: m.Count(), Sum: m.Sum()}
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					hv.Buckets = append(hv.Buckets, Bucket{UpperBound: b, Count: cum})
				}
				snap.Histograms = append(snap.Histograms, hv)
			}
		}
		f.mu.Unlock()
	}
	return snap
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders {k="v",...} (empty string for no labels), with
// extra appended last.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way Prometheus expects (no
// exponent surprises for the common cases).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4): HELP and TYPE lines per family,
// then one sample line per child, with histograms expanded into
// cumulative _bucket{le=...}, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Re-group the snapshot by family for HELP/TYPE headers.
	r.mu.Lock()
	help := make(map[string]string, len(r.families))
	kind := make(map[string]string, len(r.families))
	for name, f := range r.families {
		help[name] = f.help
		kind[name] = f.kind
	}
	r.mu.Unlock()

	var sb strings.Builder
	writeHeader := func(name string) {
		if h := help[name]; h != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, kind[name])
	}
	last := ""
	for _, mv := range snap.Counters {
		if mv.Name != last {
			writeHeader(mv.Name)
			last = mv.Name
		}
		fmt.Fprintf(&sb, "%s%s %d\n", mv.Name, promLabels(mv.Labels), mv.Value)
	}
	last = ""
	for _, mv := range snap.Gauges {
		if mv.Name != last {
			writeHeader(mv.Name)
			last = mv.Name
		}
		fmt.Fprintf(&sb, "%s%s %d\n", mv.Name, promLabels(mv.Labels), mv.Value)
	}
	last = ""
	for _, hv := range snap.Histograms {
		if hv.Name != last {
			writeHeader(hv.Name)
			last = hv.Name
		}
		for _, b := range hv.Buckets {
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", hv.Name,
				promLabels(hv.Labels, L("le", formatFloat(b.UpperBound))), b.Count)
		}
		fmt.Fprintf(&sb, "%s_bucket%s %d\n", hv.Name, promLabels(hv.Labels, L("le", "+Inf")), hv.Count)
		fmt.Fprintf(&sb, "%s_sum%s %s\n", hv.Name, promLabels(hv.Labels), formatFloat(hv.Sum))
		fmt.Fprintf(&sb, "%s_count%s %d\n", hv.Name, promLabels(hv.Labels), hv.Count)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
