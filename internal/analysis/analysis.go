// Package analysis provides static analysis of active-rule programs:
// the predicate dependency graph, stratification with respect to
// negation, detection of conflict potential (predicates that rules can
// both insert and delete — the situations where the SELECT policy can
// be invoked at runtime), and style lints. The safety conditions of
// §2 themselves are enforced by core.Program.Validate; this package
// layers program-level diagnostics on top.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// EdgeKind classifies a dependency edge by the body literal that
// induces it.
type EdgeKind uint8

const (
	// EdgePos is a positive body literal dependency.
	EdgePos EdgeKind = iota
	// EdgeNeg is a negated body literal dependency.
	EdgeNeg
	// EdgeEvent is an event literal (±p) dependency.
	EdgeEvent
)

func (k EdgeKind) String() string {
	switch k {
	case EdgePos:
		return "positive"
	case EdgeNeg:
		return "negative"
	case EdgeEvent:
		return "event"
	}
	return "?"
}

// Edge is one dependency: the head predicate of a rule depends on a
// body predicate.
type Edge struct {
	From core.Sym // body predicate
	To   core.Sym // head predicate
	Kind EdgeKind
	Rule int // rule index inducing the edge
}

// DepGraph is the predicate dependency graph of a program.
type DepGraph struct {
	Preds []core.Sym
	Edges []Edge

	index map[core.Sym]int
	succ  map[core.Sym][]int // indexes into Edges, keyed by From
}

// BuildDepGraph constructs the dependency graph of a program.
func BuildDepGraph(p *core.Program) *DepGraph {
	g := &DepGraph{index: make(map[core.Sym]int), succ: make(map[core.Sym][]int)}
	addPred := func(s core.Sym) {
		if _, ok := g.index[s]; !ok {
			g.index[s] = len(g.Preds)
			g.Preds = append(g.Preds, s)
		}
	}
	for ri := range p.Rules {
		r := &p.Rules[ri]
		addPred(r.Head.Pred)
		for _, lit := range r.Body {
			if lit.Kind.Builtin() {
				continue
			}
			addPred(lit.Atom.Pred)
			kind := EdgePos
			switch lit.Kind {
			case core.LitNeg:
				kind = EdgeNeg
			case core.LitEvIns, core.LitEvDel:
				kind = EdgeEvent
			}
			e := Edge{From: lit.Atom.Pred, To: r.Head.Pred, Kind: kind, Rule: ri}
			g.succ[e.From] = append(g.succ[e.From], len(g.Edges))
			g.Edges = append(g.Edges, e)
		}
	}
	return g
}

// SCCs returns the strongly connected components of the graph in
// reverse topological order (Tarjan's algorithm), each sorted by
// predicate symbol.
func (g *DepGraph) SCCs() [][]core.Sym {
	n := len(g.Preds)
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = -1
	}
	var stack []int
	var sccs [][]core.Sym
	counter := 0

	var strong func(v int)
	strong = func(v int) {
		indexOf[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, ei := range g.succ[g.Preds[v]] {
			w := g.index[g.Edges[ei].To]
			if indexOf[w] < 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexOf[w] < low[v] {
				low[v] = indexOf[w]
			}
		}
		if low[v] == indexOf[v] {
			var comp []core.Sym
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, g.Preds[w])
				if w == v {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
			sccs = append(sccs, comp)
		}
	}
	for v := 0; v < n; v++ {
		if indexOf[v] < 0 {
			strong(v)
		}
	}
	return sccs
}

// Stratify computes a stratification with respect to negation: strata
// of predicates such that positive dependencies stay within or above
// their stratum and negative dependencies strictly descend. It
// reports ok=false when the program has recursion through negation
// (some SCC contains a negative edge), in which case strata is nil.
// Event edges are treated like positive edges for this purpose.
func (g *DepGraph) Stratify() (strata [][]core.Sym, ok bool) {
	sccs := g.SCCs()
	comp := make(map[core.Sym]int)
	for i, c := range sccs {
		for _, p := range c {
			comp[p] = i
		}
	}
	for _, e := range g.Edges {
		if e.Kind == EdgeNeg && comp[e.From] == comp[e.To] {
			return nil, false
		}
	}
	// Longest-path layering over the SCC DAG: stratum(to) >=
	// stratum(from) for positive edges, strictly greater for negative
	// ones. The DAG is acyclic, so the relaxation below terminates.
	level := make([]int, len(sccs))
	changed := true
	for changed {
		changed = false
		for _, e := range g.Edges {
			cf, ct := comp[e.From], comp[e.To]
			if cf == ct {
				continue
			}
			min := level[cf]
			if e.Kind == EdgeNeg {
				min++
			}
			if level[ct] < min {
				level[ct] = min
				changed = true
			}
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	strata = make([][]core.Sym, maxLevel+1)
	for i, c := range sccs {
		strata[level[i]] = append(strata[level[i]], c...)
	}
	for _, s := range strata {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return strata, true
}

// Report is the result of analyzing a program.
type Report struct {
	// ConflictPredicates lists predicates some rules insert and other
	// rules delete — the only predicates on which runtime conflicts
	// (and hence SELECT invocations) are possible.
	ConflictPredicates []core.Sym
	// Stratified reports absence of recursion through negation.
	Stratified bool
	// Strata is a stratification when Stratified (nil otherwise).
	Strata [][]core.Sym
	// Recursive reports whether any predicate depends on itself
	// (through any edge kind).
	Recursive bool
	// UsesEvents reports whether any rule has an event literal.
	UsesEvents bool
	// Pairs lists the statically unifiable (insert, delete) rule head
	// pairs — the rule-level refinement of ConflictPredicates.
	Pairs []ConflictPair
	// Warnings are style lints (duplicate names, unused predicates,
	// duplicate rules, ...).
	Warnings []string
}

// ConflictFree is a convenience: no predicate has conflict potential,
// so PARK coincides with the inflationary fixpoint semantics and the
// SELECT policy is never invoked.
func (r *Report) ConflictFree() bool { return len(r.ConflictPredicates) == 0 }

// Analyze builds the full report for a validated program.
func Analyze(u *core.Universe, p *core.Program) *Report {
	rep := &Report{}
	g := BuildDepGraph(p)

	// Conflict potential.
	insHeads := make(map[core.Sym]bool)
	delHeads := make(map[core.Sym]bool)
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Op == core.OpInsert {
			insHeads[r.Head.Pred] = true
		} else {
			delHeads[r.Head.Pred] = true
		}
		for _, lit := range r.Body {
			if lit.Kind == core.LitEvIns || lit.Kind == core.LitEvDel {
				rep.UsesEvents = true
			}
		}
	}
	for pred := range insHeads {
		if delHeads[pred] {
			rep.ConflictPredicates = append(rep.ConflictPredicates, pred)
		}
	}
	sort.Slice(rep.ConflictPredicates, func(i, j int) bool {
		return u.Syms.Name(rep.ConflictPredicates[i]) < u.Syms.Name(rep.ConflictPredicates[j])
	})

	rep.Strata, rep.Stratified = g.Stratify()

	// Recursion: any SCC with more than one predicate, or a self-loop.
	for _, c := range g.SCCs() {
		if len(c) > 1 {
			rep.Recursive = true
		}
	}
	if !rep.Recursive {
		for _, e := range g.Edges {
			if e.From == e.To {
				rep.Recursive = true
				break
			}
		}
	}

	rep.Pairs = PotentialConflictPairs(u, p)
	rep.Warnings = lint(u, p)
	for _, pair := range RedundantRules(u, p) {
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"rule %s is subsumed by rule %s (same action whenever it fires)",
			p.RuleLabel(pair[1]), p.RuleLabel(pair[0])))
	}
	return rep
}

// lint returns style warnings for a program.
func lint(u *core.Universe, p *core.Program) []string {
	var warns []string
	names := make(map[string]int)
	bodies := make(map[string]int)
	headPreds := make(map[core.Sym]bool)
	bodyPreds := make(map[core.Sym]bool)
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Name != "" {
			if prev, ok := names[r.Name]; ok {
				warns = append(warns, fmt.Sprintf("rule %s (index %d) duplicates the name of rule index %d", r.Name, i, prev))
			} else {
				names[r.Name] = i
			}
		}
		s := r.String(u)
		if prev, ok := bodies[s]; ok {
			warns = append(warns, fmt.Sprintf("rule index %d is identical to rule index %d: %s", i, prev, s))
		} else {
			bodies[s] = i
		}
		headPreds[r.Head.Pred] = true
		for _, lit := range r.Body {
			if !lit.Kind.Builtin() {
				bodyPreds[lit.Atom.Pred] = true
			}
		}
	}
	var derivedUnused []string
	for pred := range headPreds {
		if !bodyPreds[pred] {
			derivedUnused = append(derivedUnused, u.Syms.Name(pred))
		}
	}
	sort.Strings(derivedUnused)
	for _, n := range derivedUnused {
		// Purely informational: output-only predicates are common and
		// fine, but a typo in a predicate name shows up here.
		warns = append(warns, fmt.Sprintf("predicate %s is derived but never read by any rule body", n))
	}
	return warns
}
