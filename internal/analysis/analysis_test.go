package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func parse(t *testing.T, src string) (*core.Universe, *core.Program) {
	t.Helper()
	u := core.NewUniverse()
	p, err := parser.ParseProgram(u, "", src)
	if err != nil {
		t.Fatal(err)
	}
	return u, p
}

func names(u *core.Universe, syms []core.Sym) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = u.Syms.Name(s)
	}
	return out
}

func TestDepGraphEdges(t *testing.T) {
	u, p := parse(t, `
		a(X), !b(X) -> +c(X).
		+d(X) -> -c(X).
	`)
	_ = u
	g := BuildDepGraph(p)
	if len(g.Preds) != 4 {
		t.Fatalf("preds = %d, want 4", len(g.Preds))
	}
	kinds := map[EdgeKind]int{}
	for _, e := range g.Edges {
		kinds[e.Kind]++
	}
	if kinds[EdgePos] != 1 || kinds[EdgeNeg] != 1 || kinds[EdgeEvent] != 1 {
		t.Fatalf("edge kinds = %v", kinds)
	}
}

func TestSCCs(t *testing.T) {
	u, p := parse(t, `
		a(X) -> +b(X).
		b(X) -> +a2(X).
		a2(X) -> +a(X).
		c(X) -> +d(X).
	`)
	g := BuildDepGraph(p)
	sccs := g.SCCs()
	var big []string
	for _, c := range sccs {
		if len(c) > 1 {
			big = names(u, c)
		}
	}
	if len(big) != 3 {
		t.Fatalf("recursive SCC = %v, want a/a2/b", big)
	}
}

func TestStratifyPositiveRecursion(t *testing.T) {
	_, p := parse(t, `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`)
	g := BuildDepGraph(p)
	strata, ok := g.Stratify()
	if !ok {
		t.Fatal("positive recursion reported as unstratified")
	}
	if len(strata) != 1 {
		t.Fatalf("strata = %v", strata)
	}
}

func TestStratifyNegation(t *testing.T) {
	u, p := parse(t, `
		base(X) -> +a(X).
		base(X), !a(X) -> +b(X).
	`)
	g := BuildDepGraph(p)
	strata, ok := g.Stratify()
	if !ok {
		t.Fatal("stratifiable program reported as unstratified")
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %d, want 2", len(strata))
	}
	// b must be strictly above a.
	levelOf := map[string]int{}
	for i, s := range strata {
		for _, n := range names(u, s) {
			levelOf[n] = i
		}
	}
	if levelOf["b"] <= levelOf["a"] {
		t.Fatalf("levels = %v", levelOf)
	}
}

func TestStratifyRecursionThroughNegation(t *testing.T) {
	_, p := parse(t, `
		p(X), !q(X) -> +r(X).
		r(X) -> +q(X).
		q(X) -> +r2(X).
		r2(X), !r(X) -> +q(X).
	`)
	g := BuildDepGraph(p)
	if _, ok := g.Stratify(); ok {
		t.Fatal("recursion through negation not detected")
	}
}

func TestAnalyzeConflictPotential(t *testing.T) {
	u, p := parse(t, `
		a(X) -> +flag(X).
		b(X) -> -flag(X).
		c(X) -> +other(X).
	`)
	rep := Analyze(u, p)
	if rep.ConflictFree() {
		t.Fatal("conflict potential missed")
	}
	if got := names(u, rep.ConflictPredicates); len(got) != 1 || got[0] != "flag" {
		t.Fatalf("conflict preds = %v", got)
	}
}

func TestAnalyzeConflictFree(t *testing.T) {
	u, p := parse(t, `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`)
	rep := Analyze(u, p)
	if !rep.ConflictFree() {
		t.Fatalf("conflict preds = %v", names(u, rep.ConflictPredicates))
	}
	if !rep.Recursive {
		t.Fatal("recursion missed")
	}
	if rep.UsesEvents {
		t.Fatal("events misreported")
	}
}

func TestAnalyzeEvents(t *testing.T) {
	u, p := parse(t, `+a(X) -> +b(X).`)
	rep := Analyze(u, p)
	if !rep.UsesEvents {
		t.Fatal("events missed")
	}
}

func TestLints(t *testing.T) {
	u, p := parse(t, `
		rule r1: a(X) -> +b(X).
		rule r1: c(X) -> +d(X).
		a(X) -> +b(X).
	`)
	rep := Analyze(u, p)
	joined := strings.Join(rep.Warnings, "\n")
	if !strings.Contains(joined, "duplicates the name") {
		t.Fatalf("duplicate name lint missing:\n%s", joined)
	}
	if !strings.Contains(joined, "identical to rule") {
		t.Fatalf("duplicate rule lint missing:\n%s", joined)
	}
	if !strings.Contains(joined, "derived but never read") {
		t.Fatalf("write-only predicate lint missing:\n%s", joined)
	}
}

func TestSelfLoopRecursion(t *testing.T) {
	u, p := parse(t, `a(X), a2(X) -> +a(X).`)
	rep := Analyze(u, p)
	if !rep.Recursive {
		t.Fatal("self-loop recursion missed")
	}
}
