package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func TestPotentialConflictPairs(t *testing.T) {
	u, p := parse(t, `
		rule i1: a(X) -> +f(X, X).
		rule d1: b(X, Y) -> -f(X, Y).
		rule d2: b(X, Y) -> -f(c, d).
		rule i2: a(X) -> +g(X).
	`)
	pairs := PotentialConflictPairs(u, p)
	// i1 vs d1: f(X, X) unifies with f(X', Y').
	// i1 vs d2: f(X, X) does NOT unify with f(c, d) (X = c clashes
	// with X = d). g has no deleting rule. So exactly one pair.
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v, want exactly i1/d1", pairs)
	}
	if pairs[0].Insert != 0 || pairs[0].Delete != 1 {
		t.Fatalf("pair 0 = %+v", pairs[0])
	}
}

func TestConflictPairConstants(t *testing.T) {
	u, p := parse(t, `
		rule i1: a(X) -> +f(X, c).
		rule d1: b(X) -> -f(d, X).
		rule d2: b(X) -> -f(d, e).
	`)
	pairs := PotentialConflictPairs(u, p)
	// f(X, c) vs f(d, X'): X=d, X'=c -> unify, example f(d, c).
	// f(X, c) vs f(d, e): c != e -> no.
	if len(pairs) != 1 {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].Example != "f(d, c)" {
		t.Fatalf("example = %q, want f(d, c)", pairs[0].Example)
	}
}

func TestConflictPairPropositional(t *testing.T) {
	u, p := parse(t, `
		p -> +flag.
		q -> -flag.
	`)
	pairs := PotentialConflictPairs(u, p)
	if len(pairs) != 1 || pairs[0].Example != "flag" {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestConflictPairNoneForConflictFree(t *testing.T) {
	u, p := parse(t, `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`)
	if pairs := PotentialConflictPairs(u, p); len(pairs) != 0 {
		t.Fatalf("pairs = %+v", pairs)
	}
}

// Static pairs are a sound over-approximation: every runtime conflict
// involves groundings of some reported pair.
func TestConflictPairsSound(t *testing.T) {
	srcs := []string{
		`p(X), p(Y) -> +q(X, Y).
		 q(X, X) -> -q(X, X).`,
		`rule r1: s0 -> +c1. rule r2: s0 -> -c1.`,
	}
	for _, src := range srcs {
		u := core.NewUniverse()
		p, err := parser.ParseProgram(u, "", src)
		if err != nil {
			t.Fatal(err)
		}
		pairs := PotentialConflictPairs(u, p)
		if len(pairs) == 0 {
			t.Fatalf("no pairs for conflict-bearing program %q", src)
		}
	}
}

func TestRedundantRules(t *testing.T) {
	u, p := parse(t, `
		rule general: bird(X) -> +flies(X).
		rule special: bird(X), young(X) -> +flies(X).
		rule other: bird(X), young(X) -> -flies(X).
		rule diffhead: bird(X) -> +flies(tweety).
	`)
	red := RedundantRules(u, p)
	if len(red) != 1 || red[0] != [2]int{0, 1} {
		t.Fatalf("redundant = %v, want [[0 1]]", red)
	}
	rep := Analyze(u, p)
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "subsumed by rule general") {
			found = true
		}
	}
	if !found {
		t.Fatalf("redundancy warning missing: %v", rep.Warnings)
	}
}

func TestRedundantRulesHeadShape(t *testing.T) {
	// Same body subsumption but different head shapes: not redundant.
	u, p := parse(t, `
		rule r1: p(X, Y) -> +q(X, Y).
		rule r2: p(X, Y) -> +q(X, X).
	`)
	if red := RedundantRules(u, p); len(red) != 0 {
		t.Fatalf("redundant = %v, want none", red)
	}
}

func TestRedundantRulesHeadAware(t *testing.T) {
	// Bodies mutually subsume but heads project different variables:
	// neither rule is redundant.
	u, p := parse(t, `
		rule r1: e(X, Y) -> +q(X).
		rule r2: e(X, Y) -> +q(Y).
	`)
	if red := RedundantRules(u, p); len(red) != 0 {
		t.Fatalf("redundant = %v, want none (heads project different vars)", red)
	}
	// But a genuinely covered projection is caught: r4 is r3
	// restricted to a subset.
	u2, p2 := parse(t, `
		rule r3: e(X, Y) -> +q(Y).
		rule r4: e(X, Y), f(X) -> +q(Y).
	`)
	red := RedundantRules(u2, p2)
	if len(red) != 1 || red[0] != [2]int{0, 1} {
		t.Fatalf("redundant = %v, want [[0 1]]", red)
	}
}
