package analysis

import (
	"repro/internal/core"
	"repro/internal/resolve"
)

// ConflictPair names two rules whose heads can clash at runtime: an
// inserting rule and a deleting rule whose head atoms unify. This is
// the static over-approximation of the paper's runtime conflicts —
// every conflict triple (a, ins, del) pairs groundings of some pair
// reported here, so a program with no pairs never invokes SELECT.
type ConflictPair struct {
	// Insert and Delete are rule indexes into the analyzed program.
	Insert int
	Delete int
	// Example is a most-general unifier instance of the two heads,
	// rendered with the inserting rule's variable names where
	// possible, e.g. "q(X, X)".
	Example string
}

// PotentialConflictPairs returns every (insert, delete) rule pair
// with unifiable heads, ordered by rule indexes.
func PotentialConflictPairs(u *core.Universe, p *core.Program) []ConflictPair {
	var pairs []ConflictPair
	for i := range p.Rules {
		ri := &p.Rules[i]
		if ri.Op != core.OpInsert {
			continue
		}
		for j := range p.Rules {
			rj := &p.Rules[j]
			if rj.Op != core.OpDelete || rj.Head.Pred != ri.Head.Pred {
				continue
			}
			if example, ok := unifyHeads(u, ri, rj); ok {
				pairs = append(pairs, ConflictPair{Insert: i, Delete: j, Example: example})
			}
		}
	}
	return pairs
}

// headTerm is a term tagged with which rule's variable space it lives
// in (0 = insert rule, 1 = delete rule).
type headTerm struct {
	side int
	term core.Term
}

// unifyHeads unifies the head atoms of two rules (with disjoint
// variable spaces) and renders one most-general instance.
func unifyHeads(u *core.Universe, a, b *core.Rule) (string, bool) {
	if len(a.Head.Args) != len(b.Head.Args) {
		return "", false
	}
	// Union-find style bindings: each variable (side, index) maps to a
	// representative headTerm; constants are terminal.
	type key struct {
		side int
		v    int
	}
	binding := make(map[key]headTerm)

	var resolve func(t headTerm) headTerm
	resolve = func(t headTerm) headTerm {
		for t.term.IsVar() {
			nxt, ok := binding[key{t.side, t.term.Var()}]
			if !ok {
				return t
			}
			t = nxt
		}
		return t
	}
	var unify func(x, y headTerm) bool
	unify = func(x, y headTerm) bool {
		x, y = resolve(x), resolve(y)
		switch {
		case x.term.IsVar() && y.term.IsVar():
			if x.side == y.side && x.term.Var() == y.term.Var() {
				return true
			}
			binding[key{x.side, x.term.Var()}] = y
			return true
		case x.term.IsVar():
			binding[key{x.side, x.term.Var()}] = y
			return true
		case y.term.IsVar():
			binding[key{y.side, y.term.Var()}] = x
			return true
		default:
			return x.term.Const() == y.term.Const()
		}
	}
	for k := range a.Head.Args {
		if !unify(headTerm{0, a.Head.Args[k]}, headTerm{1, b.Head.Args[k]}) {
			return "", false
		}
	}

	// Render one instance of the unified head using the insert rule's
	// names for representative variables.
	name := func(t headTerm) string {
		t = resolve(t)
		if !t.term.IsVar() {
			return u.Syms.Name(t.term.Const())
		}
		r := a
		if t.side == 1 {
			r = b
		}
		n := "V"
		if t.term.Var() < len(r.VarNames) && r.VarNames[t.term.Var()] != "" {
			n = r.VarNames[t.term.Var()]
		}
		if t.side == 1 {
			n += "'"
		}
		return n
	}
	out := u.Syms.Name(a.Head.Pred)
	if len(a.Head.Args) > 0 {
		out += "("
		for k := range a.Head.Args {
			if k > 0 {
				out += ", "
			}
			out += name(headTerm{0, a.Head.Args[k]})
		}
		out += ")"
	}
	return out, true
}

// RedundantRules reports rules that are subsumed by another rule with
// the same action: rule j is redundant when some other rule i has a
// substitution θ under which every body literal of iθ occurs in j's
// body AND iθ's head equals j's head — so whenever an instance of j
// fires, the corresponding instance of i fires with the same effect.
// Such rules are dead weight (though harmless under set semantics).
//
// The head constraint is enforced by running the θ-subsumption check
// on augmented rules whose body carries the head atom as a sentinel
// pseudo-literal: θ must then map i's head onto j's head.
func RedundantRules(u *core.Universe, p *core.Program) [][2]int {
	var out [][2]int
	for j := range p.Rules {
		rj := augmentWithHead(&p.Rules[j])
		for i := range p.Rules {
			if i == j {
				continue
			}
			if p.Rules[i].Op != p.Rules[j].Op {
				continue
			}
			if resolve.Subsumes(augmentWithHead(&p.Rules[i]), rj) {
				out = append(out, [2]int{i, j})
				break
			}
		}
	}
	return out
}

// headSentinelKind marks the pseudo-literal carrying a rule head in
// augmentWithHead. No parser-produced literal ever has this kind, so
// the sentinel can only be matched against another sentinel.
const headSentinelKind = core.LitKind(250)

// augmentWithHead copies the rule with its head appended to the body
// as a sentinel literal.
func augmentWithHead(r *core.Rule) *core.Rule {
	c := *r
	c.Body = append(append([]core.Literal(nil), r.Body...), core.Literal{Kind: headSentinelKind, Atom: r.Head})
	return &c
}
