package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// Runner drives scenarios against a live server.
type Runner struct {
	// Client targets the server under load (setup, teardown, metric
	// snapshots).
	Client *server.Client
	// ProfileURL, when non-empty, is the base URL of a pprof handler
	// (usually the same server with /debug/pprof mounted); the runner
	// collects a CPU profile spanning the measured window and
	// attributes samples to endpoints via their pprof labels.
	ProfileURL string
	// Logf reports progress; nil silences it.
	Logf func(format string, args ...any)

	// Execute overrides the HTTP executor — tests use it to stand in a
	// stubbed (e.g. deliberately slow) server. The default performs
	// the real request and returns its status code.
	Execute func(ctx context.Context, kind, body string) (status int, err error)

	httpOnce   sync.Once
	httpClient *http.Client
}

// job is one scheduled arrival.
type job struct {
	i         int64
	scheduled time.Time
}

// Run executes one scenario: install program and data, register
// timers, warm up, measure for the scenario's duration at its target
// rate, tear the timers down, and summarize.
func (r *Runner) Run(ctx context.Context, sc *Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := r.setup(ctx, sc); err != nil {
		return nil, err
	}
	defer r.teardown(sc)

	if w := sc.WarmupParsed(); w > 0 {
		r.logf("  warmup %v at %.0f ops/s", w, sc.Rate)
		r.drive(ctx, sc, w)
	}

	before, err := r.counterSums()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: metrics before: %w", sc.Name, err)
	}
	window := sc.DurationParsed()
	r.logf("  measuring %v at %.0f ops/s", window, sc.Rate)

	// The CPU profile spans the measured window; collection runs
	// concurrently with the load.
	profCh := r.startProfile(ctx, window)

	res := r.drive(ctx, sc, window)

	after, err := r.counterSums()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: metrics after: %w", sc.Name, err)
	}
	res.Name, res.Family, res.Description = sc.Name, sc.Family, sc.Description
	res.ServerDelta = counterDelta(before, after)
	if profCh != nil {
		prof := <-profCh
		res.CPUSeconds, res.CPUNote = prof.seconds, prof.note
	} else {
		res.CPUNote = "no profile endpoint configured"
	}
	return res, nil
}

// setup installs the scenario's program, seed facts, setup updates
// and timers.
func (r *Runner) setup(ctx context.Context, sc *Scenario) error {
	if sc.Program != "" {
		if _, err := r.Client.SetProgram(ctx, sc.Program, sc.Strategy); err != nil {
			return fmt.Errorf("scenario %q: install program: %w", sc.Name, err)
		}
	}
	for i, chunk := range chunkFacts(sc.Database, 500) {
		if _, err := r.Client.Transact(ctx, chunk); err != nil {
			return fmt.Errorf("scenario %q: seed chunk %d: %w", sc.Name, i, err)
		}
	}
	for i, ups := range sc.Setup {
		if _, err := r.Client.Transact(ctx, ups); err != nil {
			return fmt.Errorf("scenario %q: setup[%d]: %w", sc.Name, i, err)
		}
	}
	for _, t := range sc.Timers {
		_, err := r.Client.CreateTimer(ctx, server.TimerRequest{
			Name: t.Name, Every: t.Every, Updates: t.Updates, Count: t.Count,
		})
		if err != nil {
			return fmt.Errorf("scenario %q: timer %q: %w", sc.Name, t.Name, err)
		}
	}
	return nil
}

// teardown removes the scenario's timers so the next scenario starts
// from a quiet server. Best-effort: the run is already over.
func (r *Runner) teardown(sc *Scenario) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, t := range sc.Timers {
		if _, err := r.Client.DeleteTimer(ctx, t.Name); err != nil {
			r.logf("  teardown: delete timer %q: %v", t.Name, err)
		}
	}
}

// drive runs the op mix at the scenario's rate for the window and
// collects the result. The arrival loop is open: ops are dispatched
// on the pacer's timetable whether or not earlier ops finished, and
// latency runs from the scheduled slot, so time spent queueing for a
// free worker counts.
func (r *Runner) drive(ctx context.Context, sc *Scenario, window time.Duration) *ScenarioResult {
	workers := sc.Workers
	if workers <= 0 {
		workers = 16
	}
	exec := r.Execute
	if exec == nil {
		exec = r.httpExecute
	}
	rng := newOpRand(sc.Seed)
	picks := opPicker(sc.Ops)

	// The job channel is sized for every arrival in the window so the
	// dispatcher never blocks on slow workers — blocking would close
	// the loop and re-introduce coordinated omission.
	expected := int64(sc.Rate*window.Seconds()) + int64(workers) + 1
	jobs := make(chan job, expected)

	var (
		mu       sync.Mutex
		lats     = metrics.NewDurations(int(expected))
		kindLats = map[string]*metrics.Durations{}
		status   = map[string]int64{}
		errs     int64
		done     int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				op := picks(j.i)
				mu.Lock()
				body, err := expandTemplate(op.Body, j.i, rng)
				mu.Unlock()
				var code int
				if err == nil {
					code, err = exec(ctx, op.Kind, body)
				}
				lat := time.Since(j.scheduled)
				mu.Lock()
				lats.Observe(lat)
				kl := kindLats[op.Kind]
				if kl == nil {
					kl = metrics.NewDurations(1024)
					kindLats[op.Kind] = kl
				}
				kl.Observe(lat)
				if err != nil {
					errs++
					status["error"]++
				} else {
					status[fmt.Sprintf("%d", code)]++
				}
				done++
				mu.Unlock()
			}
		}()
	}

	pacer := NewPacer(time.Now(), sc.Rate)
	scheduled := pacer.Arrivals(ctx, window, func(i int64, sched time.Time) {
		jobs <- job{i: i, scheduled: sched}
	})
	close(jobs)
	wg.Wait()
	elapsed := time.Since(pacer.Start)

	res := &ScenarioResult{
		OfferedRate:     float64(scheduled) / window.Seconds(),
		AchievedRate:    float64(done) / elapsed.Seconds(),
		DurationSeconds: window.Seconds(),
		Scheduled:       scheduled,
		Ops:             done,
		Errors:          errs,
		Status:          status,
		Latency:         latencySummary(lats.Summary()),
	}
	if len(kindLats) > 0 {
		res.KindLatency = map[string]LatencySummary{}
		for kind, d := range kindLats {
			res.KindLatency[kind] = latencySummary(d.Summary())
		}
	}
	return res
}

// opPicker deals ops from the weighted mix deterministically: op i
// takes the i-th slot of a weight-proportional round-robin cycle, so
// a 3:1 mix is exactly 3:1 in every window and reruns replay the same
// op sequence.
func opPicker(ops []Op) func(i int64) Op {
	var cycle []Op
	for _, op := range ops {
		for k := 0; k < op.Weight; k++ {
			cycle = append(cycle, op)
		}
	}
	return func(i int64) Op { return cycle[i%int64(len(cycle))] }
}

// httpExecute performs one real operation and returns the HTTP status.
func (r *Runner) httpExecute(ctx context.Context, kind, body string) (int, error) {
	r.httpOnce.Do(func() {
		r.httpClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}
	})
	var (
		method, path string
		payload      io.Reader
	)
	switch kind {
	case "transaction":
		method, path = http.MethodPost, "/v1/transaction"
		data, _ := json.Marshal(server.TransactionRequest{Updates: body})
		payload = bytes.NewReader(data)
	case "query":
		method, path = http.MethodPost, "/v1/query"
		data, _ := json.Marshal(server.QueryRequest{Query: body})
		payload = bytes.NewReader(data)
	case "database":
		method, path = http.MethodGet, "/v1/database"
	default:
		return 0, fmt.Errorf("unknown op kind %q", kind)
	}
	req, err := http.NewRequestWithContext(ctx, method, r.Client.BaseURL+path, payload)
	if err != nil {
		return 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.httpClient.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reused; the runner only needs the
	// status code.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	return resp.StatusCode, nil
}

// counterSums snapshots the server's park_* counters summed across
// labels per metric name.
func (r *Runner) counterSums() (map[string]int64, error) {
	snap, err := r.Client.Metrics(context.Background())
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, mv := range snap.Counters {
		if strings.HasPrefix(mv.Name, "park_engine_") ||
			strings.HasPrefix(mv.Name, "park_store_") ||
			strings.HasPrefix(mv.Name, "park_timer_") {
			out[mv.Name] += mv.Value
		}
	}
	return out, nil
}

// counterDelta subtracts snapshots, keeping metrics that moved.
func counterDelta(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// profileResult is the CPU attribution of one measured window.
type profileResult struct {
	seconds map[string]float64
	note    string
}

// startProfile kicks off the concurrent CPU-profile collection, or
// returns nil when no profile endpoint is configured.
func (r *Runner) startProfile(ctx context.Context, window time.Duration) <-chan profileResult {
	if r.ProfileURL == "" {
		return nil
	}
	secs := int(window.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	ch := make(chan profileResult, 1)
	go func() {
		url := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", r.ProfileURL, secs)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			ch <- profileResult{note: fmt.Sprintf("profile request: %v", err)}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			ch <- profileResult{note: fmt.Sprintf("profile fetch: %v", err)}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil || resp.StatusCode != http.StatusOK {
			ch <- profileResult{note: fmt.Sprintf("profile fetch: HTTP %d %v", resp.StatusCode, err)}
			return
		}
		prof, err := ParseCPUByLabel(data, "endpoint")
		if err != nil {
			ch <- profileResult{note: err.Error()}
			return
		}
		seconds := map[string]float64{}
		for k, d := range prof.ByValue {
			seconds[k] = d.Seconds()
		}
		ch <- profileResult{seconds: seconds,
			note: fmt.Sprintf("%.2fs CPU sampled over a %ds profile window", prof.Total.Seconds(), secs)}
	}()
	return ch
}

// chunkFacts turns a fact listing ("emp(e0). active(e0).") into
// update sets of at most n insertions each.
func chunkFacts(db string, n int) []string {
	var chunks []string
	var sb strings.Builder
	count := 0
	for _, stmt := range strings.Split(db, ".") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		sb.WriteString("+")
		sb.WriteString(stmt)
		sb.WriteString(". ")
		if count++; count == n {
			chunks = append(chunks, sb.String())
			sb.Reset()
			count = 0
		}
	}
	if count > 0 {
		chunks = append(chunks, sb.String())
	}
	return chunks
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
