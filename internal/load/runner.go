package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/server"
)

// Runner drives scenarios against a live server.
type Runner struct {
	// Client targets the server under load (setup, teardown, metric
	// snapshots).
	Client *server.Client
	// ProfileURL, when non-empty, is the base URL of a pprof handler
	// (usually the same server with /debug/pprof mounted); the runner
	// collects a CPU profile spanning the measured window and
	// attributes samples to endpoints via their pprof labels.
	ProfileURL string
	// Logf reports progress; nil silences it.
	Logf func(format string, args ...any)

	// Execute overrides the HTTP executor — tests use it to stand in a
	// stubbed (e.g. deliberately slow) server. The default performs
	// the real request and returns its status code.
	Execute func(ctx context.Context, kind, body string) (status int, err error)

	// FollowLeader makes the executor chase a replica set's leader
	// across a failover: a 421 answer is retried once against the URL
	// in its X-Park-Leader header, and a connection error triggers
	// leader re-discovery through /v1/healthz on Members. The
	// discovered leader becomes the target for subsequent ops, so a
	// mid-run failover shows up as a latency/error blip, not a dead
	// run.
	FollowLeader bool
	// Members lists every member's base URL for re-discovery; only
	// consulted when FollowLeader is set.
	Members []string

	httpOnce   sync.Once
	httpClient *http.Client

	targetMu     sync.Mutex
	target       string     // current write target; Client.BaseURL until retargeted
	retargets    []Retarget // log of target changes, for failover reports
	measureStart time.Time  // when the measured window began
}

// Retarget records one leader change the executor followed.
type Retarget struct {
	// At is when the new target took effect.
	At time.Time
	// URL is the new leader's base URL.
	URL string
	// Via says how the leader was found: "421" (X-Park-Leader header)
	// or "healthz" (re-discovery after a connection failure).
	Via string
}

// MeasureStart returns when the measured window began; zero until
// measurement starts. Failover drills use it to place external
// events (the leader kill) on the result's Timeline.
func (r *Runner) MeasureStart() time.Time {
	r.targetMu.Lock()
	defer r.targetMu.Unlock()
	return r.measureStart
}

// Retargets returns the leader changes the executor followed, in
// order. Empty unless FollowLeader is set and a failover happened.
func (r *Runner) Retargets() []Retarget {
	r.targetMu.Lock()
	defer r.targetMu.Unlock()
	return append([]Retarget(nil), r.retargets...)
}

// targetURL is the executor's current base URL.
func (r *Runner) targetURL() string {
	if !r.FollowLeader {
		return r.Client.BaseURL
	}
	r.targetMu.Lock()
	defer r.targetMu.Unlock()
	if r.target == "" {
		r.target = r.Client.BaseURL
	}
	return r.target
}

// setTarget points subsequent ops at url. Concurrent workers race to
// report the same leader; only an actual change is logged.
func (r *Runner) setTarget(url, via string) {
	if url == "" {
		return
	}
	r.targetMu.Lock()
	changed := url != r.target
	if changed {
		r.target = url
		r.retargets = append(r.retargets, Retarget{At: time.Now(), URL: url, Via: via})
	}
	r.targetMu.Unlock()
	if changed {
		r.logf("  retargeted to leader %s (via %s)", url, via)
	}
}

// discoverLeader polls /v1/healthz across Members and returns the
// first leader URL any reachable member reports, or "".
func (r *Runner) discoverLeader(ctx context.Context) string {
	for _, m := range r.Members {
		hctx, cancel := context.WithTimeout(ctx, time.Second)
		h, err := (&server.Client{BaseURL: m, HTTPClient: r.httpClient}).Healthz(hctx)
		cancel()
		if err != nil || h.Cluster == nil {
			continue
		}
		if h.Cluster.LeaderURL != "" {
			return h.Cluster.LeaderURL
		}
	}
	return ""
}

// job is one scheduled arrival.
type job struct {
	i         int64
	scheduled time.Time
}

// Run executes one scenario: install program and data, register
// timers, warm up, measure for the scenario's duration at its target
// rate, tear the timers down, and summarize.
func (r *Runner) Run(ctx context.Context, sc *Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := r.setup(ctx, sc); err != nil {
		return nil, err
	}
	defer r.teardown(sc)

	if w := sc.WarmupParsed(); w > 0 {
		r.logf("  warmup %v at %.0f ops/s", w, sc.Rate)
		if _, err := r.drive(ctx, sc, w); err != nil {
			return nil, fmt.Errorf("scenario %q: warmup: %w", sc.Name, err)
		}
	}

	before, err := r.counterSums()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: metrics before: %w", sc.Name, err)
	}
	evCursor := r.eventCursor()
	window := sc.DurationParsed()
	r.logf("  measuring %v at %.0f ops/s", window, sc.Rate)

	// The CPU profile spans the measured window; collection runs
	// concurrently with the load.
	profCh := r.startProfile(ctx, window)

	r.targetMu.Lock()
	r.measureStart = time.Now()
	r.targetMu.Unlock()
	res, err := r.drive(ctx, sc, window)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
	}

	after, err := r.counterSums()
	if err != nil {
		return nil, fmt.Errorf("scenario %q: metrics after: %w", sc.Name, err)
	}
	res.Name, res.Family, res.Description = sc.Name, sc.Family, sc.Description
	res.ServerDelta = counterDelta(before, after)
	res.EventDelta = r.eventDelta(evCursor)
	if profCh != nil {
		prof := <-profCh
		res.CPUSeconds, res.CPUNote = prof.seconds, prof.note
	} else {
		res.CPUNote = "no profile endpoint configured"
	}
	return res, nil
}

// setup installs the scenario's program, seed facts, setup updates
// and timers.
func (r *Runner) setup(ctx context.Context, sc *Scenario) error {
	if sc.Program != "" {
		if _, err := r.Client.SetProgram(ctx, sc.Program, sc.Strategy); err != nil {
			return fmt.Errorf("scenario %q: install program: %w", sc.Name, err)
		}
	}
	for i, chunk := range chunkFacts(sc.Database, 500) {
		if _, err := r.Client.Transact(ctx, chunk); err != nil {
			return fmt.Errorf("scenario %q: seed chunk %d: %w", sc.Name, i, err)
		}
	}
	for i, ups := range sc.Setup {
		if _, err := r.Client.Transact(ctx, ups); err != nil {
			return fmt.Errorf("scenario %q: setup[%d]: %w", sc.Name, i, err)
		}
	}
	for _, t := range sc.Timers {
		_, err := r.Client.CreateTimer(ctx, server.TimerRequest{
			Name: t.Name, Every: t.Every, Updates: t.Updates, Count: t.Count,
		})
		if err != nil {
			return fmt.Errorf("scenario %q: timer %q: %w", sc.Name, t.Name, err)
		}
	}
	return nil
}

// teardown removes the scenario's timers so the next scenario starts
// from a quiet server. Best-effort: the run is already over.
func (r *Runner) teardown(sc *Scenario) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, t := range sc.Timers {
		if _, err := r.Client.DeleteTimer(ctx, t.Name); err != nil {
			r.logf("  teardown: delete timer %q: %v", t.Name, err)
		}
	}
}

// drive runs the op mix at the scenario's rate for the window and
// collects the result. The arrival loop is open: ops are dispatched
// on the pacer's timetable whether or not earlier ops finished, and
// latency runs from the scheduled slot, so time spent queueing for a
// free worker counts.
func (r *Runner) drive(ctx context.Context, sc *Scenario, window time.Duration) (*ScenarioResult, error) {
	// Validate has already vetted sc.Rate; the pacer re-checks so a
	// caller that skips Run cannot start an unpaced burst.
	pacer, err := NewPacer(time.Now(), sc.Rate)
	if err != nil {
		return nil, err
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = 16
	}
	exec := r.Execute
	if exec == nil {
		exec = r.httpExecute
	}
	rng := newOpRand(sc.Seed)
	picks := opPicker(sc.Ops)

	// The job channel is sized for every arrival in the window so the
	// dispatcher never blocks on slow workers — blocking would close
	// the loop and re-introduce coordinated omission.
	expected := int64(sc.Rate*window.Seconds()) + int64(workers) + 1
	jobs := make(chan job, expected)

	var (
		mu       sync.Mutex
		lats     = metrics.NewDurations(int(expected))
		kindLats = map[string]*metrics.Durations{}
		status   = map[string]int64{}
		timeline []TimelineBucket
		errs     int64
		done     int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				op := picks(j.i)
				mu.Lock()
				body, err := expandTemplate(op.Body, j.i, rng)
				mu.Unlock()
				var code int
				if err == nil {
					code, err = exec(ctx, op.Kind, body)
				}
				lat := time.Since(j.scheduled)
				ok := err == nil && code >= 200 && code < 300
				sec := int(time.Since(pacer.Start) / time.Second)
				mu.Lock()
				lats.Observe(lat)
				kl := kindLats[op.Kind]
				if kl == nil {
					kl = metrics.NewDurations(1024)
					kindLats[op.Kind] = kl
				}
				kl.Observe(lat)
				if err != nil {
					errs++
					status["error"]++
				} else {
					status[fmt.Sprintf("%d", code)]++
				}
				for len(timeline) <= sec {
					timeline = append(timeline, TimelineBucket{Second: len(timeline)})
				}
				if ok {
					timeline[sec].Ok++
				} else {
					timeline[sec].Other++
				}
				done++
				mu.Unlock()
			}
		}()
	}

	scheduled := pacer.Arrivals(ctx, window, func(i int64, sched time.Time) {
		jobs <- job{i: i, scheduled: sched}
	})
	close(jobs)
	wg.Wait()
	elapsed := time.Since(pacer.Start)

	res := &ScenarioResult{
		OfferedRate:     float64(scheduled) / window.Seconds(),
		AchievedRate:    float64(done) / elapsed.Seconds(),
		DurationSeconds: window.Seconds(),
		Scheduled:       scheduled,
		Ops:             done,
		Errors:          errs,
		Status:          status,
		Latency:         latencySummary(lats.Summary()),
		Timeline:        timeline,
	}
	if len(kindLats) > 0 {
		res.KindLatency = map[string]LatencySummary{}
		for kind, d := range kindLats {
			res.KindLatency[kind] = latencySummary(d.Summary())
		}
	}
	return res, nil
}

// opPicker deals ops from the weighted mix deterministically: op i
// takes the i-th slot of a weight-proportional round-robin cycle, so
// a 3:1 mix is exactly 3:1 in every window and reruns replay the same
// op sequence.
func opPicker(ops []Op) func(i int64) Op {
	var cycle []Op
	for _, op := range ops {
		for k := 0; k < op.Weight; k++ {
			cycle = append(cycle, op)
		}
	}
	return func(i int64) Op { return cycle[i%int64(len(cycle))] }
}

// httpExecute performs one real operation and returns the HTTP
// status. With FollowLeader it chases the current leader: one retry
// per leader change, bounded so a flapping cluster cannot trap an op.
func (r *Runner) httpExecute(ctx context.Context, kind, body string) (int, error) {
	r.httpOnce.Do(func() {
		r.httpClient = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		}}
	})
	var (
		method, path string
		data         []byte
	)
	switch kind {
	case "transaction":
		method, path = http.MethodPost, "/v1/transaction"
		data, _ = json.Marshal(server.TransactionRequest{Updates: body})
	case "query":
		method, path = http.MethodPost, "/v1/query"
		data, _ = json.Marshal(server.QueryRequest{Query: body})
	case "database":
		method, path = http.MethodGet, "/v1/database"
	default:
		return 0, fmt.Errorf("unknown op kind %q", kind)
	}
	base := r.targetURL()
	for attempt := 0; ; attempt++ {
		code, leader, err := r.doOnce(ctx, method, base+path, data)
		if !r.FollowLeader || attempt >= 2 || ctx.Err() != nil {
			return code, err
		}
		switch {
		case err != nil:
			// Connection failure: the target is likely the dead leader.
			// Ask the surviving members who leads now.
			if next := r.discoverLeader(ctx); next != "" && next != base {
				r.setTarget(next, "healthz")
				base = next
				continue
			}
			return code, err
		case code == http.StatusMisdirectedRequest && leader != "":
			// A follower answered: it told us where the leader is.
			r.setTarget(leader, "421")
			base = leader
			continue
		}
		return code, nil
	}
}

// doOnce performs one HTTP attempt, returning the status code and any
// X-Park-Leader redirect hint.
func (r *Runner) doOnce(ctx context.Context, method, url string, data []byte) (code int, leader string, err error) {
	var payload io.Reader
	if data != nil {
		payload = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, payload)
	if err != nil {
		return 0, "", err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.httpClient.Do(req)
	if err != nil {
		return 0, "", err
	}
	// Drain so the connection is reused; the runner only needs the
	// status code and the leader hint.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Park-Leader"), nil
}

// counterSums snapshots the park_* counters summed across labels per
// metric name. With FollowLeader the snapshot comes from the current
// leader — after a failover the original target may be dead.
func (r *Runner) counterSums() (map[string]int64, error) {
	c := r.Client
	if r.FollowLeader {
		c = &server.Client{BaseURL: r.targetURL(), HTTPClient: r.Client.HTTPClient}
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		return nil, err
	}
	out := map[string]int64{}
	for _, mv := range snap.Counters {
		if strings.HasPrefix(mv.Name, "park_engine_") ||
			strings.HasPrefix(mv.Name, "park_store_") ||
			strings.HasPrefix(mv.Name, "park_timer_") {
			out[mv.Name] += mv.Value
		}
	}
	return out, nil
}

// eventCursor snapshots the target's event-journal sequence, or -1
// when the target serves no /v1/events (journal disabled or an older
// server). Like counterSums it reads the current leader under
// FollowLeader.
func (r *Runner) eventCursor() int64 {
	c := r.Client
	if r.FollowLeader {
		c = &server.Client{BaseURL: r.targetURL(), HTTPClient: r.Client.HTTPClient}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Events(ctx, 0, nil, 1)
	if err != nil {
		return -1
	}
	return resp.LastSeq
}

// eventDelta counts the journal events recorded since the cursor, by
// type. A -1 cursor (no journal at window start) yields nil; evicted
// events are reported under "(evicted)" so a hot journal is visible
// rather than silently undercounted.
func (r *Runner) eventDelta(cursor int64) map[string]int64 {
	if cursor < 0 {
		return nil
	}
	c := r.Client
	if r.FollowLeader {
		c = &server.Client{BaseURL: r.targetURL(), HTTPClient: r.Client.HTTPClient}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := c.Events(ctx, cursor, nil, 0)
	if err != nil {
		return nil
	}
	out := map[string]int64{}
	for _, e := range resp.Events {
		out[string(e.Type)]++
	}
	if resp.Missed > 0 {
		out["(evicted)"] = resp.Missed
	}
	return out
}

// counterDelta subtracts snapshots, keeping metrics that moved.
func counterDelta(before, after map[string]int64) map[string]int64 {
	out := map[string]int64{}
	for name, v := range after {
		if d := v - before[name]; d != 0 {
			out[name] = d
		}
	}
	return out
}

// profileResult is the CPU attribution of one measured window.
type profileResult struct {
	seconds map[string]float64
	note    string
}

// startProfile kicks off the concurrent CPU-profile collection, or
// returns nil when no profile endpoint is configured.
func (r *Runner) startProfile(ctx context.Context, window time.Duration) <-chan profileResult {
	if r.ProfileURL == "" {
		return nil
	}
	secs := int(window.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	ch := make(chan profileResult, 1)
	go func() {
		url := fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", r.ProfileURL, secs)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			ch <- profileResult{note: fmt.Sprintf("profile request: %v", err)}
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			ch <- profileResult{note: fmt.Sprintf("profile fetch: %v", err)}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		if err != nil || resp.StatusCode != http.StatusOK {
			ch <- profileResult{note: fmt.Sprintf("profile fetch: HTTP %d %v", resp.StatusCode, err)}
			return
		}
		prof, err := ParseCPUByLabel(data, "endpoint")
		if err != nil {
			ch <- profileResult{note: err.Error()}
			return
		}
		seconds := map[string]float64{}
		for k, d := range prof.ByValue {
			seconds[k] = d.Seconds()
		}
		ch <- profileResult{seconds: seconds,
			note: fmt.Sprintf("%.2fs CPU sampled over a %ds profile window", prof.Total.Seconds(), secs)}
	}()
	return ch
}

// chunkFacts turns a fact listing ("emp(e0). active(e0).") into
// update sets of at most n insertions each.
func chunkFacts(db string, n int) []string {
	var chunks []string
	var sb strings.Builder
	count := 0
	for _, stmt := range strings.Split(db, ".") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		sb.WriteString("+")
		sb.WriteString(stmt)
		sb.WriteString(". ")
		if count++; count == n {
			chunks = append(chunks, sb.String())
			sb.Reset()
			count = 0
		}
	}
	if count > 0 {
		chunks = append(chunks, sb.String())
	}
	return chunks
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}
