package load

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/server"
)

// newLoadTestServer spawns an in-process leader with the pprof
// profile handler mounted, the same shape cmd/parkload uses.
func newLoadTestServer(t *testing.T) *server.Client {
	t.Helper()
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := server.New(store)
	t.Cleanup(srv.StopStreams)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &server.Client{BaseURL: ts.URL}
}

// TestRunnerOpenLoopAgainstSlowStub: with a stubbed server that takes
// 40ms per op and only 2 workers, a 200 ops/s schedule still offers
// the full arrival count, the achieved rate lags, and latency —
// measured from the scheduled slot — shows the queueing delay a
// closed-loop harness would hide.
func TestRunnerOpenLoopAgainstSlowStub(t *testing.T) {
	sc := Scenario{
		Name: "slow-stub", Family: "test",
		Ops:      []Op{{Kind: "transaction", Weight: 1, Body: "+a(x${n})."}},
		Rate:     200,
		Duration: "500ms",
		Workers:  2,
	}
	r := &Runner{
		Client: &server.Client{BaseURL: "http://stub.invalid"},
		Execute: func(ctx context.Context, kind, body string) (int, error) {
			time.Sleep(40 * time.Millisecond)
			return 200, nil
		},
	}
	res, err := r.drive(context.Background(), &sc, sc.DurationParsed())
	if err != nil {
		t.Fatal(err)
	}
	wantSched := int64(sc.Rate * sc.DurationParsed().Seconds()) // 100
	if res.Scheduled < wantSched-5 || res.Scheduled > wantSched+5 {
		t.Fatalf("scheduled %d arrivals, want ~%d (open loop must not slow down)", res.Scheduled, wantSched)
	}
	if res.Ops != res.Scheduled {
		t.Fatalf("completed %d of %d (drive drains the queue)", res.Ops, res.Scheduled)
	}
	if res.AchievedRate >= res.OfferedRate {
		t.Fatalf("achieved %.0f >= offered %.0f under a slow server", res.AchievedRate, res.OfferedRate)
	}
	// 100 arrivals through 2 workers at 40ms each: the last op waits
	// ~2s for a worker. Queueing must dominate the p99.
	if res.Latency.P99 < 500 {
		t.Fatalf("p99 = %.0fms; queueing delay is missing from latency (coordinated omission)", res.Latency.P99)
	}
	if res.Latency.P50 > res.Latency.P95 || res.Latency.P95 > res.Latency.P99 {
		t.Fatalf("quantiles out of order: %+v", res.Latency)
	}
	if res.Status["200"] != res.Ops {
		t.Fatalf("status = %v", res.Status)
	}
}

// TestRunnerEndToEnd drives a small mixed scenario, with a timer,
// against a real in-process server and checks the whole result shape:
// status counts, latency, server-side counter deltas and CPU
// attribution by endpoint label.
func TestRunnerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end load run")
	}
	c := newLoadTestServer(t)
	sc := Scenario{
		Name: "e2e", Family: "test",
		Description: "small mixed run for the runner test",
		Program: `
			rule track: +val(K, V) -> +seen(K).
			rule obs: +tick(X) -> +ticked(X).
		`,
		Database: "boot(b0). boot(b1).",
		Timers:   []TimerSpec{{Name: "beat", Every: "20ms", Updates: "+tick(t${n})."}},
		Ops: []Op{
			{Kind: "transaction", Weight: 2, Body: "+val(k${nmod:20}, v${n})."},
			{Kind: "query", Weight: 1, Body: "seen(K)"},
			{Kind: "database", Weight: 1},
		},
		Rate:     100,
		Duration: "1s",
		Warmup:   "100ms",
		Workers:  8,
	}
	r := &Runner{Client: c, ProfileURL: c.BaseURL}
	res, err := r.Run(context.Background(), &sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops < 50 {
		t.Fatalf("completed only %d ops", res.Ops)
	}
	if res.Errors != 0 || res.Status["200"] != res.Ops {
		t.Fatalf("errors=%d status=%v", res.Errors, res.Status)
	}
	if res.Latency.Count != res.Ops || res.Latency.P99 <= 0 {
		t.Fatalf("latency = %+v", res.Latency)
	}
	if res.KindLatency["transaction"].Count == 0 || res.KindLatency["query"].Count == 0 {
		t.Fatalf("kind latency = %+v", res.KindLatency)
	}
	// The server-side deltas saw the transactions and the timer.
	if res.ServerDelta["park_engine_transactions_total"] < res.KindLatency["transaction"].Count {
		t.Fatalf("engine txn delta = %v", res.ServerDelta)
	}
	if res.ServerDelta["park_timer_fires_total"] == 0 {
		t.Fatalf("timer never fired during the run: %v", res.ServerDelta)
	}
	// The timer was torn down.
	timers, err := c.Timers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(timers) != 0 {
		t.Fatalf("timers left behind: %+v", timers)
	}
	// CPU attribution came back from the pprof endpoint. On an idle
	// box the 1s profile may contain few samples; require the parse
	// to have succeeded (note says "sampled"), not a minimum burn.
	if !strings.Contains(res.CPUNote, "sampled") {
		t.Fatalf("cpu attribution failed: note=%q seconds=%v", res.CPUNote, res.CPUSeconds)
	}

	// The result marshals into a report that validates.
	rep := Report{
		Schema:    ReportSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: "go-test",
		Scenarios: []ScenarioResult{*res},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateReport(data); err != nil {
		t.Fatalf("generated report invalid: %v\n%s", err, data)
	}
}

func TestChunkFacts(t *testing.T) {
	chunks := chunkFacts("a(x). b(y).\nc(z).", 2)
	if len(chunks) != 2 {
		t.Fatalf("chunks = %q", chunks)
	}
	if chunks[0] != "+a(x). +b(y). " || chunks[1] != "+c(z). " {
		t.Fatalf("chunks = %q", chunks)
	}
	if got := chunkFacts("", 10); got != nil {
		t.Fatalf("empty db chunks = %q", got)
	}
}

func TestOpPicker(t *testing.T) {
	pick := opPicker([]Op{
		{Kind: "transaction", Weight: 3, Body: "w"},
		{Kind: "query", Weight: 1, Body: "q"},
	})
	counts := map[string]int{}
	for i := int64(0); i < 400; i++ {
		counts[pick(i).Kind]++
	}
	if counts["transaction"] != 300 || counts["query"] != 100 {
		t.Fatalf("mix = %v, want exact 3:1", counts)
	}
}
