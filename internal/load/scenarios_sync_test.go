package load

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestScenarioFilesMatchDefaults pins the committed scenarios/*.json
// files to DefaultScenarios: the files are the canonical declarative
// form (editable, replayable via `parkload -dir scenarios`), the Go
// definitions the embedded fallback, and this test keeps the two from
// drifting. Regenerate with:
//
//	go run ./cmd/parkload -dump scenarios
func TestScenarioFilesMatchDefaults(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("scenarios/ directory missing at the repo root: %v", err)
	}
	defaults := DefaultScenarios()
	for _, sc := range defaults {
		path := filepath.Join(dir, sc.Name+".json")
		onDisk, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("scenario file for %q missing (run `go run ./cmd/parkload -dump scenarios`): %v",
				sc.Name, err)
			continue
		}
		want, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		if !bytes.Equal(onDisk, want) {
			t.Errorf("%s drifted from DefaultScenarios; run `go run ./cmd/parkload -dump scenarios`", path)
		}
		// And the canonical file parses back cleanly, like any user file.
		if _, err := ParseScenario(path, onDisk); err != nil {
			t.Errorf("canonical scenario file rejected: %v", err)
		}
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(defaults) {
		t.Errorf("scenarios/ holds %d files, DefaultScenarios %d — stale file left behind?",
			len(paths), len(defaults))
	}
}
