package load

import "repro/internal/workload"

// DefaultScenarios returns the built-in scenario suite — one entry
// per family documented in docs/SCENARIOS.md. The suite is the
// repo's standing performance surface: cmd/parkload runs it to
// produce the BENCH_*.json trajectory, and `parkload -dump` writes
// these definitions to scenarios/*.json so they can be edited and
// replayed declaratively.
//
// Rates and durations are sized so a full run finishes in under a
// minute on a developer laptop while still scheduling thousands of
// ops per scenario; -quick scales them down further for CI smoke.
func DefaultScenarios() []Scenario {
	var out []Scenario

	// mixed: the baseline read/write mix over a small event-indexed
	// keyspace. Most ops read (query + full database scans); writes
	// trigger a one-rule index maintenance cascade.
	out = append(out, Scenario{
		Name:   "mixed-rw",
		Family: "mixed",
		Description: "60/30/10 query/write/scan mix over a 200-key space; " +
			"writes fire a single index-maintenance event rule",
		Program: `
			rule track: +val(K, V) -> +seen(K).
		`,
		Ops: []Op{
			{Kind: "query", Weight: 6, Body: "val(k${rand:200}, V)"},
			{Kind: "transaction", Weight: 3, Body: "+val(k${rand:200}, v${nmod:50})."},
			{Kind: "database", Weight: 1},
		},
		Rate:     300,
		Duration: "6s",
		Warmup:   "1s",
		Seed:     1,
	})

	// cascade: every write mints a fresh event constant and rides an
	// ECA trigger chain eight rules deep — the depth knob of the B7
	// experiment, but driven at a fixed arrival rate.
	cas := workload.TriggerCascade(8, 4)
	out = append(out, Scenario{
		Name:   "cascade-d8",
		Family: "cascade",
		Description: "each write starts an 8-deep ECA trigger cascade " +
			"on a fresh constant; measures event-rule chaining under load",
		Program:  cas.Program,
		Database: cas.Database,
		Ops: []Op{
			{Kind: "transaction", Weight: 1, Body: "+l0(x${n})."},
		},
		Rate:     200,
		Duration: "6s",
		Warmup:   "1s",
		Seed:     2,
	})

	// payroll: the paper's §2 HR example at scale. Deactivations ride
	// the cleanup/audit cascade; queries read the audit trail.
	hr := workload.HRPayroll(300, 10, 42)
	out = append(out, Scenario{
		Name:   "payroll-300",
		Family: "payroll",
		Description: "the paper's HR payroll example with 300 employees: " +
			"deactivations cascade through cleanup and audit rules, " +
			"queries read the audit trail",
		Program:  hr.Program,
		Database: hr.Database,
		Ops: []Op{
			{Kind: "transaction", Weight: 4, Body: "-active(e${nmod:300})."},
			{Kind: "query", Weight: 1, Body: "audit(X, D)"},
		},
		Rate:     250,
		Duration: "6s",
		Warmup:   "1s",
		Seed:     3,
	})

	// closure: incremental transitive-closure maintenance. The seeded
	// graph's closure is computed during setup; each write adds a
	// random edge and the recursive rules extend tc; queries probe
	// reachability.
	tc := workload.TransitiveClosure(30, 6, 7)
	out = append(out, Scenario{
		Name:   "closure-30",
		Family: "closure",
		Description: "incremental transitive closure over a 30-node random " +
			"graph: writes insert edges, recursion repairs tc, queries " +
			"probe reachability",
		Program:  tc.Program,
		Database: tc.Database,
		Ops: []Op{
			{Kind: "transaction", Weight: 1, Body: "+edge(n${rand:30}, n${rand:30})."},
			{Kind: "query", Weight: 1, Body: "tc(n${rand:30}, X)"},
		},
		Rate:     150,
		Duration: "6s",
		Warmup:   "1s",
		Seed:     4,
	})

	// hotkey: every write hits the same atom, so commits serialize on
	// one logical key and the store's optimistic commit path retries;
	// watch park_store_commit_retries_total in the server delta.
	out = append(out, Scenario{
		Name:   "hotkey",
		Family: "hotkey",
		Description: "all writes contend on a single key at high " +
			"concurrency; exercises the store's optimistic commit retries " +
			"and queueing under contention",
		Program: `
			rule bump: +hit(K) -> +hot(K).
		`,
		Ops: []Op{
			{Kind: "transaction", Weight: 9, Body: "+hit(k0)."},
			{Kind: "query", Weight: 1, Body: "hot(X)"},
		},
		Rate:     400,
		Duration: "6s",
		Warmup:   "1s",
		Workers:  64,
		Seed:     5,
	})

	// temporal: a timer-driven interval event source ticks through
	// the normal transaction path while clients read the state the
	// tick rules derive — the ECA-RuleML interval-event family.
	out = append(out, Scenario{
		Name:   "temporal-ticks",
		Family: "temporal",
		Description: "a 25ms interval timer injects +tick events that " +
			"rules fold into derived state while clients query it and " +
			"write marks of their own",
		Program: `
			rule obs: +tick(X) -> +seen(X).
			rule note: +mark(M) -> +noted(M).
		`,
		Timers: []TimerSpec{
			{Name: "beat", Every: "25ms", Updates: "+tick(t${n})."},
		},
		Ops: []Op{
			{Kind: "query", Weight: 7, Body: "seen(X)"},
			{Kind: "transaction", Weight: 3, Body: "+mark(m${n})."},
		},
		Rate:     250,
		Duration: "6s",
		Warmup:   "1s",
		Seed:     6,
	})

	return out
}

// ScenarioByName finds one scenario in a list.
func ScenarioByName(scs []Scenario, name string) *Scenario {
	for i := range scs {
		if scs[i].Name == name {
			return &scs[i]
		}
	}
	return nil
}

// QuickCopy returns a scaled-down copy of a scenario for smoke runs:
// same program, mix and knobs, but a short window and a modest rate
// so the whole suite finishes in seconds. Reports from quick runs are
// marked Quick and are not comparable to full runs.
func QuickCopy(sc Scenario) Scenario {
	q := sc
	q.Rate = minF(sc.Rate, 50)
	q.Duration = "1s"
	q.Warmup = "200ms"
	return q
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
