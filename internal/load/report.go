package load

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/metrics"
)

// ReportSchema tags the BENCH_*.json format. Consumers (CI, the
// trajectory scripts in docs/BENCHMARKING.md) dispatch on it; bump it
// when a field changes meaning.
const ReportSchema = "parkload/v1"

// Report is one parkload run: the machine-readable artifact committed
// as BENCH_PR<k>.json so the repo accumulates a performance trajectory
// PR over PR.
type Report struct {
	// Schema is always ReportSchema.
	Schema string `json:"schema"`
	// Generated is the run's RFC3339 timestamp.
	Generated string `json:"generated"`
	// GoVersion and Label record provenance ("go1.24.0", "pr6").
	GoVersion string `json:"goVersion"`
	Label     string `json:"label,omitempty"`
	// Quick marks a scaled-down smoke run whose numbers are not
	// comparable to full runs.
	Quick bool `json:"quick,omitempty"`
	// Scenarios holds one result per scenario, in run order.
	Scenarios []ScenarioResult `json:"scenarios"`
}

// ScenarioResult is the measured outcome of one scenario.
type ScenarioResult struct {
	Name        string `json:"name"`
	Family      string `json:"family"`
	Description string `json:"description,omitempty"`

	// OfferedRate is the arrival rate actually scheduled (ops/s);
	// AchievedRate the completion rate. A gap means the server could
	// not keep up inside the window.
	OfferedRate  float64 `json:"offeredRate"`
	AchievedRate float64 `json:"achievedRate"`
	// DurationSeconds is the measured window (excluding warmup).
	DurationSeconds float64 `json:"durationSeconds"`

	// Scheduled counts arrivals dispatched; Ops completions observed
	// inside the window; Errors transport-level failures.
	Scheduled int64 `json:"scheduled"`
	Ops       int64 `json:"ops"`
	Errors    int64 `json:"errors"`
	// Status counts completions by HTTP status code ("200", "503",
	// "421"); transport errors appear under "error".
	Status map[string]int64 `json:"status,omitempty"`

	// Latency is measured from each op's *scheduled* time, so queueing
	// behind a slow server is included (no coordinated omission).
	Latency LatencySummary `json:"latencyMs"`
	// KindLatency breaks latency down by op kind.
	KindLatency map[string]LatencySummary `json:"kindLatencyMs,omitempty"`

	// Timeline buckets completions by whole seconds since the window
	// start: Ok counts 2xx statuses, Other everything else (421, 503,
	// transport errors). A mid-run failover shows as an Ok dip with an
	// Other spike, then recovery.
	Timeline []TimelineBucket `json:"timeline,omitempty"`

	// Failover reports a mid-run leader-kill drill; nil for ordinary
	// scenarios.
	Failover *FailoverResult `json:"failover,omitempty"`

	// ServerDelta is the change in the server's park_* counters over
	// the measured window (engine phases, restarts, commit retries,
	// timer fires, ...), summed across labels per metric name.
	ServerDelta map[string]int64 `json:"serverDelta,omitempty"`

	// EventDelta counts the lifecycle events (by type) the server's
	// /v1/events journal recorded during the measured window — a
	// failover drill shows its campaign-won and leader-demoted here.
	// Events the bounded journal evicted before collection are counted
	// under "(evicted)". Absent when the target serves no journal.
	EventDelta map[string]int64 `json:"eventDelta,omitempty"`

	// CPUSeconds attributes server CPU to endpoints over the window,
	// from pprof goroutine labels (see docs/BENCHMARKING.md). Samples
	// outside any labeled request are under "(other)". Empty when the
	// target exposes no pprof endpoint; CPUNote says why.
	CPUSeconds map[string]float64 `json:"cpuSeconds,omitempty"`
	CPUNote    string             `json:"cpuNote,omitempty"`
}

// TimelineBucket is one second of the completion timeline.
type TimelineBucket struct {
	// Second since the measured window's start.
	Second int `json:"second"`
	// Ok counts completions with 2xx statuses in this second.
	Ok int64 `json:"ok"`
	// Other counts every non-2xx completion (421 redirects, 503s,
	// transport errors).
	Other int64 `json:"other"`
}

// FailoverResult is the outcome of a mid-run leader-kill drill: the
// load keeps arriving open-loop while the leader dies, the survivors
// elect, and the runner chases the new leader.
type FailoverResult struct {
	// KillAtSeconds is when the leader was killed, relative to the
	// measured window's start.
	KillAtSeconds float64 `json:"killAtSeconds"`
	// RecoverySeconds is how long after the kill successful writes
	// resumed (first post-kill second with 2xx completions); negative
	// when writes never recovered.
	RecoverySeconds float64 `json:"recoverySeconds"`
	// NewLeaderURL is the member the runner retargeted to.
	NewLeaderURL string `json:"newLeaderUrl,omitempty"`
	// BeforeOkRate/DuringOkRate/AfterOkRate are successful-completion
	// rates (ops/s) before the kill, during the outage, and after
	// recovery.
	BeforeOkRate float64 `json:"beforeOkRate"`
	DuringOkRate float64 `json:"duringOkRate"`
	AfterOkRate  float64 `json:"afterOkRate"`
}

// LatencySummary reports latency quantiles in milliseconds.
type LatencySummary struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// latencySummary converts a duration summary to milliseconds.
func latencySummary(s metrics.DurationSummary) LatencySummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count: int64(s.Count),
		Mean:  ms(s.Mean),
		P50:   ms(s.P50),
		P95:   ms(s.P95),
		P99:   ms(s.P99),
		Max:   ms(s.Max),
	}
}

// ValidateReport checks that data is a well-formed Report: the schema
// tag, at least one scenario, and per-scenario sanity (identity
// fields present, counters consistent, quantiles ordered). CI runs
// this over the freshly generated JSON (`parkload -check`), so a
// reporter regression fails the build rather than committing a
// corrupt trajectory point.
func ValidateReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: %v", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("report: schema %q, want %q", r.Schema, ReportSchema)
	}
	if _, err := time.Parse(time.RFC3339, r.Generated); err != nil {
		return nil, fmt.Errorf("report: bad generated timestamp %q", r.Generated)
	}
	if r.GoVersion == "" {
		return nil, fmt.Errorf("report: goVersion is empty")
	}
	if len(r.Scenarios) == 0 {
		return nil, fmt.Errorf("report: no scenarios")
	}
	seen := map[string]bool{}
	for i, s := range r.Scenarios {
		where := fmt.Sprintf("report: scenarios[%d] (%s)", i, s.Name)
		if s.Name == "" || s.Family == "" {
			return nil, fmt.Errorf("%s: name and family are required", where)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("%s: duplicate scenario name", where)
		}
		seen[s.Name] = true
		if s.DurationSeconds <= 0 {
			return nil, fmt.Errorf("%s: durationSeconds = %v", where, s.DurationSeconds)
		}
		if s.Ops <= 0 {
			return nil, fmt.Errorf("%s: no completed ops", where)
		}
		if s.Ops > s.Scheduled {
			return nil, fmt.Errorf("%s: ops %d > scheduled %d", where, s.Ops, s.Scheduled)
		}
		var statusTotal int64
		for _, n := range s.Status {
			statusTotal += n
		}
		if statusTotal != s.Ops {
			return nil, fmt.Errorf("%s: status counts sum to %d, want ops %d", where, statusTotal, s.Ops)
		}
		l := s.Latency
		if l.Count != s.Ops {
			return nil, fmt.Errorf("%s: latency count %d, want ops %d", where, l.Count, s.Ops)
		}
		if !(l.P50 <= l.P95 && l.P95 <= l.P99 && l.P99 <= l.Max) {
			return nil, fmt.Errorf("%s: quantiles out of order: p50=%v p95=%v p99=%v max=%v",
				where, l.P50, l.P95, l.P99, l.Max)
		}
		if s.OfferedRate <= 0 || s.AchievedRate <= 0 {
			return nil, fmt.Errorf("%s: rates must be positive (offered=%v achieved=%v)",
				where, s.OfferedRate, s.AchievedRate)
		}
		var timelineTotal int64
		for j, b := range s.Timeline {
			if b.Second != j {
				return nil, fmt.Errorf("%s: timeline[%d] labeled second %d", where, j, b.Second)
			}
			timelineTotal += b.Ok + b.Other
		}
		if len(s.Timeline) > 0 && timelineTotal != s.Ops {
			return nil, fmt.Errorf("%s: timeline sums to %d completions, want ops %d", where, timelineTotal, s.Ops)
		}
		if f := s.Failover; f != nil {
			if f.KillAtSeconds < 0 || f.KillAtSeconds > s.DurationSeconds {
				return nil, fmt.Errorf("%s: failover kill at %vs outside the %vs window",
					where, f.KillAtSeconds, s.DurationSeconds)
			}
			if f.RecoverySeconds >= 0 && f.AfterOkRate <= 0 {
				return nil, fmt.Errorf("%s: failover claims recovery but afterOkRate = %v", where, f.AfterOkRate)
			}
		}
	}
	return &r, nil
}

// Families returns the distinct scenario families in the report,
// sorted.
func (r *Report) Families() []string {
	set := map[string]bool{}
	for _, s := range r.Scenarios {
		set[s.Family] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
