package load

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// intSource supplies the ${rand:K} draws; satisfied by *rand.Rand.
// Validation uses zeroRand so it needs no seed.
type intSource interface {
	Intn(n int) int
}

// zeroRand is an intSource that always draws 0; used to parse-check
// templates without consuming randomness.
type zeroRand struct{}

func (zeroRand) Intn(int) int { return 0 }

// expandTemplate substitutes the op-template variables:
//
//	${n}       the op's global sequence number
//	${nmod:K}  n modulo K
//	${rand:K}  a seeded uniform draw from [0, K)
//
// Anything else inside ${...} is an error — a typo like ${rnd:5} must
// not silently reach the server as literal text.
func expandTemplate(tmpl string, n int64, rng intSource) (string, error) {
	if !strings.Contains(tmpl, "${") {
		return tmpl, nil
	}
	var sb strings.Builder
	rest := tmpl
	for {
		head, tail, ok := strings.Cut(rest, "${")
		sb.WriteString(head)
		if !ok {
			return sb.String(), nil
		}
		expr, after, ok := strings.Cut(tail, "}")
		if !ok {
			return "", fmt.Errorf("unterminated ${ in template %q", tmpl)
		}
		switch {
		case expr == "n":
			sb.WriteString(strconv.FormatInt(n, 10))
		case strings.HasPrefix(expr, "nmod:"):
			k, err := templateModulus(expr, "nmod:")
			if err != nil {
				return "", err
			}
			sb.WriteString(strconv.FormatInt(n%int64(k), 10))
		case strings.HasPrefix(expr, "rand:"):
			k, err := templateModulus(expr, "rand:")
			if err != nil {
				return "", err
			}
			sb.WriteString(strconv.Itoa(rng.Intn(k)))
		default:
			return "", fmt.Errorf("unknown template variable ${%s} (want ${n}, ${nmod:K} or ${rand:K})", expr)
		}
		rest = after
	}
}

// templateModulus parses the K of ${nmod:K} / ${rand:K}.
func templateModulus(expr, prefix string) (int, error) {
	k, err := strconv.Atoi(strings.TrimPrefix(expr, prefix))
	if err != nil || k <= 0 {
		return 0, fmt.Errorf("bad template variable ${%s}: K must be a positive integer", expr)
	}
	return k, nil
}

// newOpRand builds the deterministic draw source for a run.
func newOpRand(seed int64) intSource {
	return rand.New(rand.NewSource(seed))
}
