package load

import (
	"context"
	"sync"
	"testing"
	"time"
)

// mustPacer builds a pacer for a rate the test knows is valid.
func mustPacer(t *testing.T, start time.Time, rate float64) Pacer {
	t.Helper()
	p, err := NewPacer(start, rate)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPacerRejectsNonPositiveRate is the regression test for the
// unbounded-burst bug: a pacer built with rate <= 0 (or a non-finite
// rate) computed a zero or negative interval, making every slot due
// immediately — the "timetable" became an all-at-once flood. Such
// rates must be rejected at construction.
func TestPacerRejectsNonPositiveRate(t *testing.T) {
	for _, rate := range []float64{0, -1, -0.001} {
		if _, err := NewPacer(time.Now(), rate); err == nil {
			t.Errorf("NewPacer(rate=%v) accepted; want error", rate)
		}
	}
	if _, err := NewPacer(time.Now(), 0.5); err != nil {
		t.Errorf("NewPacer(rate=0.5): %v; fractional rates are valid", err)
	}
}

// TestPacerSchedule: the timetable is start + i/rate, independent of
// anything the consumer does.
func TestPacerSchedule(t *testing.T) {
	start := time.Unix(1000, 0)
	p := mustPacer(t, start, 100) // 10ms apart
	if got := p.ScheduleFor(0); !got.Equal(start) {
		t.Fatalf("slot 0 = %v", got)
	}
	if got := p.ScheduleFor(50); !got.Equal(start.Add(500 * time.Millisecond)) {
		t.Fatalf("slot 50 = %v", got)
	}
}

// TestPacerHoldsRate: the arrival loop emits the scheduled number of
// slots for the window within tolerance, and the emitted schedule
// matches the timetable exactly.
func TestPacerHoldsRate(t *testing.T) {
	const rate, window = 500.0, 400 * time.Millisecond
	p := mustPacer(t, time.Now(), rate)
	var scheds []time.Time
	n := p.Arrivals(context.Background(), window, func(i int64, sched time.Time) {
		scheds = append(scheds, sched)
	})
	want := int64(rate * window.Seconds())
	if n < want-2 || n > want+2 {
		t.Fatalf("emitted %d arrivals, want ~%d", n, want)
	}
	for i, s := range scheds {
		if !s.Equal(p.ScheduleFor(int64(i))) {
			t.Fatalf("arrival %d scheduled at %v, want %v", i, s, p.ScheduleFor(int64(i)))
		}
	}
}

// TestPacerOpenLoopUnderSlowConsumer is the open-loop property: even
// when each emitted op takes far longer than the inter-arrival gap,
// arrivals keep coming on the timetable instead of slowing to the
// consumer's pace (which is what a closed loop would do).
func TestPacerOpenLoopUnderSlowConsumer(t *testing.T) {
	const rate, window = 200.0, 500 * time.Millisecond
	p := mustPacer(t, time.Now(), rate)
	jobs := make(chan time.Time, 1024)
	var wg sync.WaitGroup
	// Two workers, each op takes 50ms: the consumers complete at most
	// ~2*(window/50ms) = 20 ops while ~100 arrive.
	var mu sync.Mutex
	var completed int
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				time.Sleep(50 * time.Millisecond)
				mu.Lock()
				completed++
				mu.Unlock()
			}
		}()
	}
	n := p.Arrivals(context.Background(), window, func(i int64, sched time.Time) {
		jobs <- sched
	})
	// Snapshot completions at the end of the window, before the
	// drain: this is what a closed loop would have offered.
	mu.Lock()
	inWindow := completed
	mu.Unlock()
	close(jobs)
	wg.Wait()
	want := int64(rate * window.Seconds()) // 100
	if n < want-5 || n > want+5 {
		t.Fatalf("open loop offered %d arrivals, want ~%d despite slow consumers", n, want)
	}
	if inWindow >= int(n)/2 {
		t.Fatalf("consumers kept up (%d of %d in window) — the stub is not slow enough to prove the property",
			inWindow, n)
	}
}

// TestPacerCancel: cancellation stops the arrival loop early.
func TestPacerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := mustPacer(t, time.Now(), 100)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	n := p.Arrivals(ctx, 10*time.Second, func(int64, time.Time) {})
	if n > 30 {
		t.Fatalf("cancelled pacer emitted %d arrivals", n)
	}
}
