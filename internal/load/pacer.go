package load

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Pacer is the open-loop arrival timetable: op i is due at
// Start + i/rate, regardless of how long earlier ops take. This is
// the defining difference from a closed loop, where the next op waits
// for the previous response and a slow server quietly lowers the
// offered rate (coordinated omission).
type Pacer struct {
	Start    time.Time
	Interval time.Duration
}

// NewPacer builds a timetable at the given rate (ops/second). The
// rate must be a positive finite number: a zero or negative rate
// would make every slot due immediately — an unbounded burst instead
// of a timetable — so it is rejected here rather than silently
// flooding the target.
func NewPacer(start time.Time, rate float64) (Pacer, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return Pacer{}, fmt.Errorf("load: pacer rate must be a positive finite number of ops/s, got %v", rate)
	}
	return Pacer{Start: start, Interval: time.Duration(float64(time.Second) / rate)}, nil
}

// ScheduleFor returns the timetable slot of op i.
func (p Pacer) ScheduleFor(i int64) time.Time {
	return p.Start.Add(time.Duration(i) * p.Interval)
}

// Arrivals calls emit(i, scheduled) for every timetable slot inside
// the window, sleeping until each slot is due. It never waits for the
// work an emit dispatches — if the consumer lags, arrivals keep
// coming on schedule. Returns the number of slots emitted. Stops
// early if ctx is cancelled.
func (p Pacer) Arrivals(ctx context.Context, window time.Duration, emit func(i int64, scheduled time.Time)) int64 {
	end := p.Start.Add(window)
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var i int64
	for {
		sched := p.ScheduleFor(i)
		if !sched.Before(end) {
			return i
		}
		if wait := time.Until(sched); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				return i
			case <-timer.C:
			}
		} else {
			// Behind schedule (e.g. the goroutine was descheduled):
			// emit immediately — the op's latency clock already
			// started at its slot time.
			select {
			case <-ctx.Done():
				return i
			default:
			}
		}
		emit(i, sched)
		i++
	}
}
