package load

import (
	"encoding/json"
	"strings"
	"testing"
)

// goodReport builds a minimal valid report for mutation testing.
func goodReport() Report {
	return Report{
		Schema:    ReportSchema,
		Generated: "2026-08-08T12:00:00Z",
		GoVersion: "go1.24.0",
		Label:     "test",
		Scenarios: []ScenarioResult{{
			Name: "s1", Family: "mixed",
			OfferedRate: 100, AchievedRate: 99,
			DurationSeconds: 5,
			Scheduled:       500, Ops: 495, Errors: 0,
			Status: map[string]int64{"200": 495},
			Latency: LatencySummary{
				Count: 495, Mean: 2, P50: 1, P95: 4, P99: 9, Max: 20,
			},
		}},
	}
}

func mustJSON(t *testing.T, r Report) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestValidateReportAccepts(t *testing.T) {
	r, err := ValidateReport(mustJSON(t, goodReport()))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Families(); len(got) != 1 || got[0] != "mixed" {
		t.Fatalf("families = %v", got)
	}
}

func TestValidateReportRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"wrong schema", func(r *Report) { r.Schema = "parkload/v0" }, "schema"},
		{"bad timestamp", func(r *Report) { r.Generated = "yesterday" }, "generated"},
		{"no go version", func(r *Report) { r.GoVersion = "" }, "goVersion"},
		{"no scenarios", func(r *Report) { r.Scenarios = nil }, "no scenarios"},
		{"missing family", func(r *Report) { r.Scenarios[0].Family = "" }, "family"},
		{"zero ops", func(r *Report) {
			r.Scenarios[0].Ops = 0
		}, "no completed ops"},
		{"ops exceed scheduled", func(r *Report) {
			r.Scenarios[0].Ops = 501
		}, "scheduled"},
		{"status mismatch", func(r *Report) {
			r.Scenarios[0].Status["200"] = 7
		}, "status counts"},
		{"latency count mismatch", func(r *Report) {
			r.Scenarios[0].Latency.Count = 3
		}, "latency count"},
		{"quantiles disordered", func(r *Report) {
			r.Scenarios[0].Latency.P95 = 100
		}, "quantiles out of order"},
		{"zero rate", func(r *Report) {
			r.Scenarios[0].AchievedRate = 0
		}, "rates must be positive"},
		{"duplicate name", func(r *Report) {
			r.Scenarios = append(r.Scenarios, r.Scenarios[0])
		}, "duplicate"},
	}
	for _, tc := range cases {
		r := goodReport()
		tc.mutate(&r)
		_, err := ValidateReport(mustJSON(t, r))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := ValidateReport([]byte("{")); err == nil {
		t.Error("syntactically broken report accepted")
	}
}
