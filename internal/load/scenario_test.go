package load

import (
	"encoding/json"
	"strings"
	"testing"
)

const validScenarioJSON = `{
	"name": "tiny",
	"family": "mixed",
	"program": "rule t: +a(X) -> +b(X).",
	"ops": [
		{"kind": "transaction", "weight": 3, "body": "+a(x${n})."},
		{"kind": "query", "weight": 1, "body": "b(X)"}
	],
	"rate": 50,
	"duration": "1s",
	"warmup": "100ms"
}`

func TestParseScenarioValid(t *testing.T) {
	sc, err := ParseScenario("tiny.json", []byte(validScenarioJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "tiny" || sc.Family != "mixed" || sc.Rate != 50 {
		t.Fatalf("parsed scenario = %+v", sc)
	}
	if got := sc.DurationParsed().Seconds(); got != 1 {
		t.Fatalf("duration = %v", got)
	}
	if len(sc.Ops) != 2 || sc.Ops[0].Weight != 3 {
		t.Fatalf("ops = %+v", sc.Ops)
	}
}

// TestParseScenarioSyntaxErrorLine: a malformed scenario is rejected
// with the file, line and column of the offending byte.
func TestParseScenarioSyntaxErrorLine(t *testing.T) {
	src := "{\n\t\"name\": \"x\",\n\t\"family\" \"mixed\"\n}"
	_, err := ParseScenario("bad.json", []byte(src))
	if err == nil {
		t.Fatal("malformed scenario accepted")
	}
	if !strings.HasPrefix(err.Error(), "bad.json:3:") {
		t.Fatalf("error %q lacks file:line: prefix for line 3", err)
	}
}

func TestParseScenarioTypeErrorLine(t *testing.T) {
	src := "{\n\t\"name\": \"x\",\n\t\"family\": \"mixed\",\n\t\"rate\": \"fast\",\n\t\"duration\": \"1s\",\n\t\"ops\": [{\"kind\": \"database\", \"weight\": 1}]\n}"
	_, err := ParseScenario("typed.json", []byte(src))
	if err == nil {
		t.Fatal("type-mismatched scenario accepted")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "typed.json:4:") || !strings.Contains(msg, `"rate"`) {
		t.Fatalf("error %q should locate the rate field on line 4", err)
	}
}

// TestParseScenarioUnknownFieldLine: a typo'd knob fails loudly and
// points at its line rather than silently running the default.
func TestParseScenarioUnknownFieldLine(t *testing.T) {
	src := "{\n\t\"name\": \"x\",\n\t\"family\": \"mixed\",\n\t\"ratee\": 10,\n\t\"duration\": \"1s\",\n\t\"ops\": [{\"kind\": \"database\", \"weight\": 1}]\n}"
	_, err := ParseScenario("typo.json", []byte(src))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "typo.json:4:") || !strings.Contains(msg, `"ratee"`) {
		t.Fatalf("error %q should locate the unknown field on line 4", err)
	}
}

// TestParseScenarioBadRateLine: a rate that would mean an unbounded
// burst is a semantic error, but the operator still lands on the line
// of the offending field, just like a syntax error.
func TestParseScenarioBadRateLine(t *testing.T) {
	src := "{\n\t\"name\": \"x\",\n\t\"family\": \"mixed\",\n\t\"rate\": 0,\n\t\"duration\": \"1s\",\n\t\"ops\": [{\"kind\": \"database\", \"weight\": 1}]\n}"
	_, err := ParseScenario("burst.json", []byte(src))
	if err == nil {
		t.Fatal("rate=0 scenario accepted")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "burst.json:4:") || !strings.Contains(msg, `"rate" must be > 0`) {
		t.Fatalf("error %q should locate the rate field on line 4", err)
	}
}

func TestParseScenarioTrailingData(t *testing.T) {
	_, err := ParseScenario("trail.json", []byte(validScenarioJSON+"\n{}"))
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing data err = %v", err)
	}
}

func TestScenarioValidate(t *testing.T) {
	base := func() Scenario {
		var sc Scenario
		if err := json.Unmarshal([]byte(validScenarioJSON), &sc); err != nil {
			t.Fatal(err)
		}
		return sc
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
		want   string
	}{
		{"no name", func(s *Scenario) { s.Name = " " }, `"name" is required`},
		{"no family", func(s *Scenario) { s.Family = "" }, `"family" is required`},
		{"zero rate", func(s *Scenario) { s.Rate = 0 }, `"rate" must be > 0`},
		{"bad duration", func(s *Scenario) { s.Duration = "fast" }, `bad "duration"`},
		{"zero duration", func(s *Scenario) { s.Duration = "0s" }, `"duration" must be > 0`},
		{"bad warmup", func(s *Scenario) { s.Warmup = "-1s" }, `bad "warmup"`},
		{"no ops", func(s *Scenario) { s.Ops = nil }, `at least one operation`},
		{"bad kind", func(s *Scenario) { s.Ops[0].Kind = "delete" }, `unknown kind "delete"`},
		{"zero weight", func(s *Scenario) { s.Ops[0].Weight = 0 }, `"weight" must be > 0`},
		{"no body", func(s *Scenario) { s.Ops[0].Body = "" }, `needs a "body"`},
		{"bad template", func(s *Scenario) { s.Ops[0].Body = "+a(${rnd:5})." }, "unknown template variable"},
		{"bad timer", func(s *Scenario) { s.Timers = []TimerSpec{{Name: "t"}} }, `"name", "every" and "updates" are required`},
		{"bad timer period", func(s *Scenario) {
			s.Timers = []TimerSpec{{Name: "t", Every: "soon", Updates: "+x."}}
		}, `bad "every"`},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(&sc)
		err := sc.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	sc := base()
	if err := sc.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestDefaultScenariosValid: every built-in scenario passes the same
// validation user files do, and the suite covers the documented
// families.
func TestDefaultScenariosValid(t *testing.T) {
	scs := DefaultScenarios()
	families := map[string]bool{}
	for i := range scs {
		if err := scs[i].Validate(); err != nil {
			t.Errorf("default scenario %q invalid: %v", scs[i].Name, err)
		}
		families[scs[i].Family] = true
	}
	for _, want := range []string{"mixed", "cascade", "payroll", "closure", "hotkey", "temporal"} {
		if !families[want] {
			t.Errorf("default suite missing family %q", want)
		}
	}
	// Round-trip through JSON: what -dump writes, ParseScenario reads.
	for i := range scs {
		data, err := json.MarshalIndent(scs[i], "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseScenario(scs[i].Name+".json", data)
		if err != nil {
			t.Errorf("round-trip %q: %v", scs[i].Name, err)
			continue
		}
		if back.Name != scs[i].Name || len(back.Ops) != len(scs[i].Ops) {
			t.Errorf("round-trip %q changed the scenario", scs[i].Name)
		}
	}
}

func TestQuickCopy(t *testing.T) {
	sc := DefaultScenarios()[0]
	q := QuickCopy(sc)
	if q.Rate > 50 || q.Duration != "1s" {
		t.Fatalf("quick copy = rate %v duration %s", q.Rate, q.Duration)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Duration == q.Duration && sc.Name == "mixed-rw" {
		t.Fatal("QuickCopy mutated nothing")
	}
}

func TestExpandTemplate(t *testing.T) {
	rng := newOpRand(1)
	cases := []struct {
		tmpl string
		n    int64
		want string
	}{
		{"+a(x).", 5, "+a(x)."},
		{"+a(x${n}).", 5, "+a(x5)."},
		{"+a(x${nmod:3}).", 5, "+a(x2)."},
		{"${n}${n}", 7, "77"},
	}
	for _, tc := range cases {
		got, err := expandTemplate(tc.tmpl, tc.n, rng)
		if err != nil || got != tc.want {
			t.Errorf("expand(%q, %d) = %q, %v; want %q", tc.tmpl, tc.n, got, err, tc.want)
		}
	}
	// ${rand:K} stays in range.
	for i := 0; i < 100; i++ {
		got, err := expandTemplate("${rand:10}", 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) > 1 || got < "0" || got > "9" {
			t.Fatalf("rand draw %q out of range", got)
		}
	}
	for _, bad := range []string{"${x}", "${nmod:0}", "${rand:-1}", "${n", "${rand:}"} {
		if _, err := expandTemplate(bad, 0, rng); err == nil {
			t.Errorf("expand(%q) accepted", bad)
		}
	}
}
