package load

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"time"
)

// This file parses just enough of the pprof profile.proto wire format
// to attribute CPU time to goroutine labels — stdlib only, no
// dependency on the profile library. The server's instrument
// middleware tags every request's goroutines with an "endpoint" pprof
// label (internal/server/metrics.go); a CPU profile collected during a
// load run therefore carries, per sample, the endpoint whose request
// was running. Summing sample values by label yields per-endpoint CPU
// seconds.
//
// Wire shapes used (field numbers from profile.proto):
//
//	Profile:   sample_type=1 (ValueType), sample=2 (Sample),
//	           string_table=6 (string)
//	ValueType: type=1, unit=2 (string-table indices)
//	Sample:    value=2 (repeated int64, usually packed), label=3 (Label)
//	Label:     key=1, str=2 (string-table indices)
//
// Everything else is skipped by wire type. The parser buffers raw
// sample messages and resolves them after the whole string table is
// read, since protobuf imposes no field order.

// CPUByLabel is per-endpoint CPU attribution from one profile.
type CPUByLabel struct {
	// Total is the profile's summed CPU time.
	Total time.Duration
	// ByValue maps each label value (e.g. "/v1/transaction") to its
	// CPU time; samples with no matching label are under "(other)".
	ByValue map[string]time.Duration
}

// ParseCPUByLabel parses a (possibly gzipped) CPU profile in
// profile.proto format and sums CPU nanoseconds by the given label
// key.
func ParseCPUByLabel(data []byte, labelKey string) (*CPUByLabel, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof: %v", err)
		}
		data, err = io.ReadAll(io.LimitReader(zr, 256<<20))
		if err != nil {
			return nil, fmt.Errorf("pprof: %v", err)
		}
	}

	var (
		strTable    []string
		sampleTypes [][2]uint64 // (type idx, unit idx)
		rawSamples  [][]byte
	)
	r := &protoReader{buf: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch {
		case field == 1 && wire == 2: // sample_type
			msg, err := r.bytes()
			if err != nil {
				return nil, err
			}
			st, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleTypes = append(sampleTypes, st)
		case field == 2 && wire == 2: // sample
			msg, err := r.bytes()
			if err != nil {
				return nil, err
			}
			rawSamples = append(rawSamples, msg)
		case field == 6 && wire == 2: // string_table
			s, err := r.bytes()
			if err != nil {
				return nil, err
			}
			strTable = append(strTable, string(s))
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strTable)) {
			return strTable[i]
		}
		return ""
	}
	// A CPU profile's value columns are [samples/count, cpu/nanoseconds];
	// pick the cpu column explicitly and fall back to the last one.
	valueIdx := len(sampleTypes) - 1
	for i, st := range sampleTypes {
		if str(st[0]) == "cpu" || str(st[1]) == "nanoseconds" {
			valueIdx = i
			break
		}
	}
	if valueIdx < 0 {
		return nil, errors.New("pprof: profile has no sample types")
	}

	out := &CPUByLabel{ByValue: map[string]time.Duration{}}
	for _, raw := range rawSamples {
		values, labels, err := parseSample(raw)
		if err != nil {
			return nil, err
		}
		if valueIdx >= len(values) {
			continue
		}
		d := time.Duration(values[valueIdx])
		out.Total += d
		key := "(other)"
		for _, l := range labels {
			if str(l[0]) == labelKey {
				key = str(l[1])
				break
			}
		}
		out.ByValue[key] += d
	}
	return out, nil
}

// parseValueType reads a ValueType message: (type, unit) indices.
func parseValueType(msg []byte) ([2]uint64, error) {
	var vt [2]uint64
	r := &protoReader{buf: msg}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return vt, err
		}
		switch {
		case field == 1 && wire == 0:
			vt[0], err = r.varint()
		case field == 2 && wire == 0:
			vt[1], err = r.varint()
		default:
			err = r.skip(wire)
		}
		if err != nil {
			return vt, err
		}
	}
	return vt, nil
}

// parseSample reads a Sample message: the value column vector and the
// (key, str) index pairs of its labels.
func parseSample(msg []byte) (values []int64, labels [][2]uint64, err error) {
	r := &protoReader{buf: msg}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, nil, err
		}
		switch {
		case field == 2 && wire == 2: // packed values
			packed, err := r.bytes()
			if err != nil {
				return nil, nil, err
			}
			pr := &protoReader{buf: packed}
			for !pr.done() {
				v, err := pr.varint()
				if err != nil {
					return nil, nil, err
				}
				values = append(values, int64(v))
			}
		case field == 2 && wire == 0: // unpacked value
			v, err := r.varint()
			if err != nil {
				return nil, nil, err
			}
			values = append(values, int64(v))
		case field == 3 && wire == 2: // label
			msg, err := r.bytes()
			if err != nil {
				return nil, nil, err
			}
			l, err := parseValueType(msg) // Label shares the (1,2) index shape
			if err != nil {
				return nil, nil, err
			}
			labels = append(labels, l)
		default:
			if err := r.skip(wire); err != nil {
				return nil, nil, err
			}
		}
	}
	return values, labels, nil
}

// protoReader is a minimal protobuf wire-format cursor.
type protoReader struct {
	buf []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.buf) }

// varint reads one base-128 varint.
func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.buf) {
			return 0, errors.New("pprof: truncated varint")
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("pprof: varint too long")
}

// tag reads a field tag, returning (field number, wire type).
func (r *protoReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads one length-delimited payload.
func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, errors.New("pprof: truncated length-delimited field")
	}
	out := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

// skip advances past one field of the given wire type.
func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0:
		_, err := r.varint()
		return err
	case 1: // fixed64
		if len(r.buf)-r.pos < 8 {
			return errors.New("pprof: truncated fixed64")
		}
		r.pos += 8
		return nil
	case 2:
		_, err := r.bytes()
		return err
	case 5: // fixed32
		if len(r.buf)-r.pos < 4 {
			return errors.New("pprof: truncated fixed32")
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", wire)
	}
}
