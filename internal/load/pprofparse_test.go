package load

import (
	"bytes"
	"compress/gzip"
	"testing"
	"time"
)

// Wire-format encoding helpers for building a synthetic profile.proto
// payload in the test, mirroring what runtime/pprof emits.

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func appendTag(b []byte, field, wire int) []byte {
	return appendVarint(b, uint64(field<<3|wire))
}

func appendBytes(b []byte, field int, payload []byte) []byte {
	b = appendTag(b, field, 2)
	b = appendVarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func encodeValueType(typ, unit uint64) []byte {
	var b []byte
	b = appendTag(b, 1, 0)
	b = appendVarint(b, typ)
	b = appendTag(b, 2, 0)
	return appendVarint(b, unit)
}

func encodeSample(values []int64, labels [][2]uint64) []byte {
	var b []byte
	var packed []byte
	for _, v := range values {
		packed = appendVarint(packed, uint64(v))
	}
	b = appendBytes(b, 2, packed)
	for _, l := range labels {
		lb := encodeValueType(l[0], l[1]) // Label's (key, str) share the shape
		b = appendBytes(b, 3, lb)
	}
	return b
}

// buildProfile assembles a CPU profile: string table, the standard
// [samples/count, cpu/nanoseconds] sample types, and the samples.
func buildProfile(strs []string, samples [][]byte, gzipped bool) []byte {
	var b []byte
	b = appendBytes(b, 1, encodeValueType(1, 2)) // samples/count
	b = appendBytes(b, 1, encodeValueType(3, 4)) // cpu/nanoseconds
	for _, s := range samples {
		b = appendBytes(b, 2, s)
	}
	for _, s := range strs {
		b = appendBytes(b, 6, []byte(s))
	}
	if !gzipped {
		return b
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b)
	zw.Close()
	return buf.Bytes()
}

func TestParseCPUByLabel(t *testing.T) {
	// String table: profile.proto requires index 0 to be "".
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "endpoint",
		"/v1/transaction", "/v1/query"}
	samples := [][]byte{
		// 3 samples, 30ms on /v1/transaction
		encodeSample([]int64{3, int64(30 * time.Millisecond)}, [][2]uint64{{5, 6}}),
		// 1 sample, 10ms on /v1/query
		encodeSample([]int64{1, int64(10 * time.Millisecond)}, [][2]uint64{{5, 7}}),
		// 2 more on /v1/transaction
		encodeSample([]int64{2, int64(20 * time.Millisecond)}, [][2]uint64{{5, 6}}),
		// unlabeled background work
		encodeSample([]int64{1, int64(5 * time.Millisecond)}, nil),
	}
	for _, gzipped := range []bool{false, true} {
		data := buildProfile(strs, samples, gzipped)
		prof, err := ParseCPUByLabel(data, "endpoint")
		if err != nil {
			t.Fatalf("gzipped=%v: %v", gzipped, err)
		}
		if prof.Total != 65*time.Millisecond {
			t.Errorf("gzipped=%v: total = %v, want 65ms", gzipped, prof.Total)
		}
		want := map[string]time.Duration{
			"/v1/transaction": 50 * time.Millisecond,
			"/v1/query":       10 * time.Millisecond,
			"(other)":         5 * time.Millisecond,
		}
		for k, d := range want {
			if prof.ByValue[k] != d {
				t.Errorf("gzipped=%v: %s = %v, want %v", gzipped, k, prof.ByValue[k], d)
			}
		}
		if len(prof.ByValue) != len(want) {
			t.Errorf("gzipped=%v: extra label values in %v", gzipped, prof.ByValue)
		}
	}
}

// TestParseCPUByLabelValueColumn: the parser picks the cpu column by
// its sample-type strings, not by position.
func TestParseCPUByLabelValueColumn(t *testing.T) {
	// Swap the column order: [cpu/nanoseconds, samples/count].
	strs := []string{"", "samples", "count", "cpu", "nanoseconds", "endpoint", "/v1/query"}
	var b []byte
	b = appendBytes(b, 1, encodeValueType(3, 4)) // cpu first
	b = appendBytes(b, 1, encodeValueType(1, 2))
	b = appendBytes(b, 2, encodeSample([]int64{int64(7 * time.Millisecond), 2}, [][2]uint64{{5, 6}}))
	for _, s := range strs {
		b = appendBytes(b, 6, []byte(s))
	}
	prof, err := ParseCPUByLabel(b, "endpoint")
	if err != nil {
		t.Fatal(err)
	}
	if prof.ByValue["/v1/query"] != 7*time.Millisecond {
		t.Fatalf("cpu column misidentified: %v", prof.ByValue)
	}
}

func TestParseCPUByLabelTruncated(t *testing.T) {
	data := buildProfile([]string{"", "cpu"}, nil, false)
	for cut := 1; cut < len(data); cut++ {
		// Truncation must error or parse cleanly — never panic.
		_, _ = ParseCPUByLabel(data[:cut], "endpoint")
	}
	if _, err := ParseCPUByLabel([]byte{0xff, 0xff, 0xff}, "endpoint"); err == nil {
		t.Fatal("garbage accepted")
	}
}
