// Package load is the open-loop workload generator behind cmd/parkload.
//
// Open loop means arrivals are scheduled on a fixed timetable — op i is
// due at start + i/rate — independent of how fast the server answers.
// Latency is measured from the *scheduled* send time, so queueing delay
// caused by a slow server is part of the number, not silently dropped
// (the coordinated-omission mistake closed-loop harnesses make; see
// docs/BENCHMARKING.md). The package splits into:
//
//   - Scenario: the declarative description of one workload (this file),
//     parsed from scenarios/*.json with line-precise errors.
//   - DefaultScenarios: the built-in scenario families (families.go).
//   - Pacer: the open-loop arrival timetable (pacer.go).
//   - Runner: drives a scenario against a live server (runner.go).
//   - Report: the machine-readable BENCH_*.json schema (report.go).
//   - ParseCPUByLabel: per-endpoint CPU attribution from the server's
//     pprof profile endpoint (pprofparse.go).
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// Scenario declares one workload: the program and data to install, an
// optional set of interval timers, and a weighted operation mix
// replayed at a fixed arrival rate for a fixed duration.
type Scenario struct {
	// Name identifies the scenario in reports and on the command line.
	Name string `json:"name"`
	// Family groups scenarios that exercise the same feature
	// (e.g. "mixed", "cascade", "payroll"); see docs/SCENARIOS.md.
	Family string `json:"family"`
	// Description says what the scenario exercises and why.
	Description string `json:"description,omitempty"`

	// Program is the rule-language source installed before the run.
	Program string `json:"program,omitempty"`
	// Strategy optionally sets the server's default conflict strategy.
	Strategy string `json:"strategy,omitempty"`
	// Database holds seed facts ("emp(e0). active(e0).") inserted in
	// chunked transactions before the run. Rules see the insertions as
	// events, so derived setup state (e.g. an initial transitive
	// closure) is computed here, not during measurement.
	Database string `json:"database,omitempty"`
	// Setup lists extra update sets applied after Database.
	Setup []string `json:"setup,omitempty"`
	// Timers are interval event sources registered for the duration of
	// the run (POST /v1/timers) and deleted afterwards.
	Timers []TimerSpec `json:"timers,omitempty"`

	// Ops is the weighted operation mix.
	Ops []Op `json:"ops"`
	// Rate is the target arrival rate in operations per second.
	Rate float64 `json:"rate"`
	// Duration is the measured window, as a Go duration string.
	Duration string `json:"duration"`
	// Warmup runs the same mix at the same rate before measuring;
	// its results are discarded. Optional.
	Warmup string `json:"warmup,omitempty"`
	// Workers is the executor pool size (default 16). The pool bounds
	// concurrency, not the arrival rate: when all workers are busy,
	// arrivals queue and their queueing time counts as latency.
	Workers int `json:"workers,omitempty"`
	// Seed parameterizes the ${rand:K} template variable.
	Seed int64 `json:"seed,omitempty"`
}

// TimerSpec registers one interval timer for the run.
type TimerSpec struct {
	// Name of the timer (letters, digits, '_', '-').
	Name string `json:"name"`
	// Every is the firing period ("25ms").
	Every string `json:"every"`
	// Updates is the update template; the server substitutes ${n} with
	// the firing index.
	Updates string `json:"updates"`
	// Count bounds the firings; 0 means until the run tears down.
	Count int `json:"count,omitempty"`
}

// Op is one entry in the weighted operation mix.
type Op struct {
	// Kind selects the endpoint: "transaction" (POST /v1/transaction),
	// "query" (POST /v1/query) or "database" (GET /v1/database).
	Kind string `json:"kind"`
	// Weight is the op's relative share of the mix (> 0).
	Weight int `json:"weight"`
	// Body is the update set (transaction) or query template. Template
	// variables: ${n} = the op's global sequence number, ${nmod:K} =
	// n % K, ${rand:K} = a seeded uniform draw from [0, K).
	Body string `json:"body,omitempty"`
}

// opKinds are the accepted Op.Kind values.
var opKinds = map[string]bool{"transaction": true, "query": true, "database": true}

// Validate checks the scenario's semantic constraints. Field errors
// name the offending field; ParseScenario adds file/line context for
// syntax errors.
func (s *Scenario) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return errors.New(`"name" is required`)
	}
	if strings.TrimSpace(s.Family) == "" {
		return fmt.Errorf(`scenario %q: "family" is required`, s.Name)
	}
	if s.Rate <= 0 {
		return &fieldError{field: "rate",
			err: fmt.Errorf(`scenario %q: "rate" must be > 0, got %v (the pacer refuses rates that would mean an unbounded burst)`, s.Name, s.Rate)}
	}
	d, err := time.ParseDuration(s.Duration)
	if err != nil {
		return fmt.Errorf(`scenario %q: bad "duration": %v`, s.Name, err)
	}
	if d <= 0 {
		return fmt.Errorf(`scenario %q: "duration" must be > 0, got %v`, s.Name, d)
	}
	if s.Warmup != "" {
		if w, err := time.ParseDuration(s.Warmup); err != nil || w < 0 {
			return fmt.Errorf(`scenario %q: bad "warmup" %q`, s.Name, s.Warmup)
		}
	}
	if s.Workers < 0 {
		return fmt.Errorf(`scenario %q: "workers" must be >= 0`, s.Name)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf(`scenario %q: "ops" must list at least one operation`, s.Name)
	}
	for i, op := range s.Ops {
		if !opKinds[op.Kind] {
			return fmt.Errorf(`scenario %q: ops[%d]: unknown kind %q (want transaction, query or database)`,
				s.Name, i, op.Kind)
		}
		if op.Weight <= 0 {
			return fmt.Errorf(`scenario %q: ops[%d]: "weight" must be > 0, got %d`, s.Name, i, op.Weight)
		}
		if op.Kind != "database" && strings.TrimSpace(op.Body) == "" {
			return fmt.Errorf(`scenario %q: ops[%d]: %s op needs a "body"`, s.Name, i, op.Kind)
		}
		if _, err := expandTemplate(op.Body, 0, zeroRand{}); err != nil {
			return fmt.Errorf(`scenario %q: ops[%d]: %v`, s.Name, i, err)
		}
	}
	for i, t := range s.Timers {
		if strings.TrimSpace(t.Name) == "" || strings.TrimSpace(t.Every) == "" ||
			strings.TrimSpace(t.Updates) == "" {
			return fmt.Errorf(`scenario %q: timers[%d]: "name", "every" and "updates" are required`, s.Name, i)
		}
		if _, err := time.ParseDuration(t.Every); err != nil {
			return fmt.Errorf(`scenario %q: timers[%d]: bad "every": %v`, s.Name, i, err)
		}
	}
	return nil
}

// DurationParsed returns the measured window length. Call after
// Validate.
func (s *Scenario) DurationParsed() time.Duration {
	d, _ := time.ParseDuration(s.Duration)
	return d
}

// WarmupParsed returns the warmup length (zero when unset).
func (s *Scenario) WarmupParsed() time.Duration {
	if s.Warmup == "" {
		return 0
	}
	w, _ := time.ParseDuration(s.Warmup)
	return w
}

// ParseScenario decodes one scenario from JSON. Errors carry the file
// name and, for syntax and type errors, the 1-based line and column of
// the offending byte; unknown fields are located by searching for the
// field name. The decoder rejects unknown fields so a typo in a knob
// name fails loudly instead of silently running the default.
func ParseScenario(file string, data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, locateJSONError(file, data, err)
	}
	// A scenario file holds exactly one JSON object.
	if dec.More() {
		off := dec.InputOffset()
		line, col := lineCol(data, off)
		return nil, fmt.Errorf("%s:%d:%d: trailing data after the scenario object", file, line, col)
	}
	if err := sc.Validate(); err != nil {
		// Semantic errors that name their JSON field are located in the
		// source like syntax errors, so the operator lands on the line.
		var fe *fieldError
		if errors.As(err, &fe) {
			if off := bytes.Index(data, []byte(`"`+fe.field+`"`)); off >= 0 {
				line, col := lineCol(data, int64(off))
				return nil, fmt.Errorf("%s:%d:%d: %w", file, line, col, fe.err)
			}
		}
		return nil, fmt.Errorf("%s: %w", file, err)
	}
	return &sc, nil
}

// fieldError is a Validate failure that knows which JSON field it is
// about, so ParseScenario can point at its line and column.
type fieldError struct {
	field string
	err   error
}

func (e *fieldError) Error() string { return e.err.Error() }
func (e *fieldError) Unwrap() error { return e.err }

// locateJSONError maps a json decode error to file:line:col form.
func locateJSONError(file string, data []byte, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := lineCol(data, syn.Offset)
		return fmt.Errorf("%s:%d:%d: %v", file, line, col, syn)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, col := lineCol(data, typ.Offset)
		return fmt.Errorf("%s:%d:%d: field %q wants %s, got JSON %s",
			file, line, col, typ.Field, typ.Type, typ.Value)
	}
	// DisallowUnknownFields errors carry the field name but no offset;
	// recover a line by finding the quoted field in the source.
	if msg := err.Error(); strings.Contains(msg, "unknown field") {
		if _, name, ok := strings.Cut(msg, `unknown field "`); ok {
			name = strings.TrimSuffix(name, `"`)
			if off := bytes.Index(data, []byte(`"`+name+`"`)); off >= 0 {
				line, col := lineCol(data, int64(off))
				return fmt.Errorf("%s:%d:%d: unknown field %q (check docs/SCENARIOS.md for the schema)",
					file, line, col, name)
			}
		}
	}
	return fmt.Errorf("%s: %v", file, err)
}

// lineCol converts a byte offset into 1-based line and column.
func lineCol(data []byte, off int64) (line, col int) {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	line, col = 1, 1
	for _, b := range data[:off] {
		if b == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
