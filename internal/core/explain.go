package core

import (
	"fmt"
	"sort"
	"strings"
)

// Explainer answers "why is this atom in (or not in) the result?"
// after an evaluation run with Options.Explain set. It holds the
// final phase's interpretation and derivation provenance; explanations
// are derivation trees grounded in the original database, in absence,
// and in the transaction's updates.
type Explainer struct {
	u    *Universe
	prog *Program
	in   *Interp
	prov map[provKey]map[string]Grounding
}

// ExplainStatus classifies an atom's situation in the final state.
type ExplainStatus uint8

const (
	// StatusBase: the atom was in the original database and survived.
	StatusBase ExplainStatus = iota
	// StatusInserted: the atom carries a surviving + mark.
	StatusInserted
	// StatusDeleted: the atom carries a surviving - mark (it is not in
	// the result).
	StatusDeleted
	// StatusAbsent: the atom was never in the database nor derived.
	StatusAbsent
)

func (s ExplainStatus) String() string {
	switch s {
	case StatusBase:
		return "in the original database"
	case StatusInserted:
		return "inserted"
	case StatusDeleted:
		return "deleted"
	case StatusAbsent:
		return "absent"
	}
	return "?"
}

// Explanation is one node of a derivation tree.
type Explanation struct {
	// Atom is the explained atom (negative for pseudo-nodes).
	Atom AID
	// Status classifies the atom.
	Status ExplainStatus
	// InResult reports membership in the final database instance.
	InResult bool
	// Rule and Grounding identify the deriving rule instance for
	// Inserted/Deleted atoms (Rule is -1 otherwise). Body-less update
	// rules explain transaction updates.
	Rule      int32
	Grounding *Grounding
	// Premises explains each body literal of the deriving instance,
	// in body order.
	Premises []*Explanation
	// Revisit marks a node whose atom is already being explained
	// higher up the tree (recursion broken there).
	Revisit bool
}

// Explain builds the derivation tree for an atom of the universe.
func (ex *Explainer) Explain(atom AID) *Explanation {
	return ex.explain(atom, make(map[AID]bool))
}

func (ex *Explainer) explain(atom AID, visiting map[AID]bool) *Explanation {
	e := &Explanation{Atom: atom, Rule: -1}
	switch {
	case ex.in.HasPlus(atom):
		e.Status = StatusInserted
		e.InResult = true
	case ex.in.HasMinus(atom):
		e.Status = StatusDeleted
	case ex.in.HasBase(atom):
		e.Status = StatusBase
		e.InResult = true
		return e
	default:
		e.Status = StatusAbsent
		return e
	}
	if visiting[atom] {
		e.Revisit = true
		return e
	}
	visiting[atom] = true
	defer delete(visiting, atom)

	op := OpInsert
	if e.Status == StatusDeleted {
		op = OpDelete
	}
	g, ok := ex.firstDeriver(op, atom)
	if !ok {
		// Can only happen if provenance was pruned; keep the node as a
		// leaf rather than failing.
		return e
	}
	e.Rule = g.Rule
	e.Grounding = &g
	r := &ex.prog.Rules[g.Rule]
	for _, lit := range r.Body {
		e.Premises = append(e.Premises, ex.explainLiteral(r, lit, g.Args, visiting))
	}
	return e
}

// firstDeriver returns the deterministically-first recorded grounding
// that derived ±atom during the final phase.
func (ex *Explainer) firstDeriver(op HeadOp, atom AID) (Grounding, bool) {
	pm := ex.prov[provKey{op, atom}]
	if len(pm) == 0 {
		return Grounding{}, false
	}
	keys := make([]string, 0, len(pm))
	for k := range pm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return pm[keys[0]], true
}

// explainLiteral explains why one instantiated body literal held.
func (ex *Explainer) explainLiteral(r *Rule, lit Literal, binding []Sym, visiting map[AID]bool) *Explanation {
	if lit.Kind.Builtin() {
		// Built-ins are self-evident on ground terms.
		return &Explanation{Atom: -1, Status: StatusBase, Rule: -1, InResult: true}
	}
	args := make([]Sym, 0, len(lit.Atom.Args))
	for _, t := range lit.Atom.Args {
		if t.IsVar() {
			args = append(args, binding[t.Var()])
		} else {
			args = append(args, t.Const())
		}
	}
	id, ok := ex.u.LookupAtom(lit.Atom.Pred, args)
	if !ok {
		// Never interned: the literal held by absence (negation).
		return &Explanation{Atom: -1, Status: StatusAbsent, Rule: -1}
	}
	switch lit.Kind {
	case LitPos, LitEvIns:
		return ex.explain(id, visiting)
	case LitNeg:
		// Negation holds because of a - mark or by absence; the
		// sub-explanation captures which.
		sub := ex.explain(id, visiting)
		return sub
	case LitEvDel:
		return ex.explain(id, visiting)
	}
	return &Explanation{Atom: id, Status: StatusAbsent, Rule: -1}
}

// Format renders the explanation as an indented tree.
func (ex *Explainer) Format(e *Explanation) string {
	var sb strings.Builder
	ex.format(&sb, e, 0)
	return sb.String()
}

func (ex *Explainer) format(sb *strings.Builder, e *Explanation, depth int) {
	indent := strings.Repeat("  ", depth)
	name := "<builtin>"
	if e.Atom >= 0 {
		name = ex.u.AtomString(e.Atom)
	}
	switch {
	case e.Revisit:
		fmt.Fprintf(sb, "%s%s: %s (explained above)\n", indent, name, e.Status)
	case e.Rule >= 0:
		label := ex.prog.RuleLabel(int(e.Rule))
		fmt.Fprintf(sb, "%s%s: %s by %s\n", indent, name, e.Status, label)
		for _, p := range e.Premises {
			ex.format(sb, p, depth+1)
		}
	default:
		fmt.Fprintf(sb, "%s%s: %s\n", indent, name, e.Status)
	}
}
