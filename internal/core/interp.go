package core

import (
	"repro/internal/storage"
)

// bitset is a growable set over dense non-negative indexes.
type bitset []uint64

func (b *bitset) set(i int) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

func (b bitset) clearAll() {
	for i := range b {
		b[i] = 0
	}
}

// Interp is an i-interpretation (§4.2): the unmarked atoms I⁻ of the
// original database instance plus the atoms currently marked "+" (I⁺)
// and "-" (I⁻ marked). It couples the mark bitsets with the tuple
// store that the matcher scans, and is append-only between phase
// resets. An Interp is consistent by construction: the engine never
// applies a step that would mark an atom both "+" and "-".
type Interp struct {
	u     *Universe
	store *storage.Store

	base  bitset
	plus  bitset
	minus bitset

	baseAtoms  []AID // insertion order of D
	plusAtoms  []AID // insertion order within the phase
	minusAtoms []AID

	// UseIndex selects indexed vs linear matching; exposed for the
	// indexing ablation benchmark. Defaults to true.
	UseIndex bool
}

// NewInterp returns the i-interpretation <D> with no marked atoms,
// loading D into the base relations.
func NewInterp(u *Universe, d *Database) *Interp {
	in := &Interp{u: u, store: storage.NewStore(), UseIndex: true}
	for _, id := range d.Atoms() {
		in.addBase(id)
	}
	return in
}

// Universe returns the universe the interpretation is built over.
func (in *Interp) Universe() *Universe { return in.u }

func symsToInt32(args []Sym) []int32 {
	if len(args) == 0 {
		return nil
	}
	out := make([]int32, len(args))
	for i, a := range args {
		out[i] = int32(a)
	}
	return out
}

func (in *Interp) addBase(id AID) {
	if in.base.get(int(id)) {
		return
	}
	in.base.set(int(id))
	in.baseAtoms = append(in.baseAtoms, id)
	ps := in.store.Pred(int32(in.u.AtomPred(id)), len(in.u.AtomArgs(id)))
	ps.Base.Append(symsToInt32(in.u.AtomArgs(id)), int32(id))
}

// AddPlus marks +a. It must not be called when -a is present; the
// engine checks consistency before applying a step.
func (in *Interp) AddPlus(id AID) {
	if in.plus.get(int(id)) {
		return
	}
	in.plus.set(int(id))
	in.plusAtoms = append(in.plusAtoms, id)
	ps := in.store.Pred(int32(in.u.AtomPred(id)), len(in.u.AtomArgs(id)))
	ps.Plus.Append(symsToInt32(in.u.AtomArgs(id)), int32(id))
}

// AddMinus marks -a, symmetrically to AddPlus.
func (in *Interp) AddMinus(id AID) {
	if in.minus.get(int(id)) {
		return
	}
	in.minus.set(int(id))
	in.minusAtoms = append(in.minusAtoms, id)
	ps := in.store.Pred(int32(in.u.AtomPred(id)), len(in.u.AtomArgs(id)))
	ps.Minus.Append(symsToInt32(in.u.AtomArgs(id)), int32(id))
}

// ResetPhase discards every marked atom, restoring the interpretation
// to the unmarked kernel I⁻ = D. This is the restart the Δ operator
// performs after conflict resolution.
func (in *Interp) ResetPhase() {
	in.plus.clearAll()
	in.minus.clearAll()
	in.plusAtoms = in.plusAtoms[:0]
	in.minusAtoms = in.minusAtoms[:0]
	in.store.ResetPhase()
}

// HasBase reports a ∈ I⁻ (a was in the original database).
func (in *Interp) HasBase(id AID) bool { return in.base.get(int(id)) }

// HasPlus reports +a ∈ I.
func (in *Interp) HasPlus(id AID) bool { return in.plus.get(int(id)) }

// HasMinus reports -a ∈ I.
func (in *Interp) HasMinus(id AID) bool { return in.minus.get(int(id)) }

// PosValid reports validity of the positive literal a:
// I ∩ {a, +a} ≠ ∅.
func (in *Interp) PosValid(id AID) bool {
	return in.base.get(int(id)) || in.plus.get(int(id))
}

// NegValid reports validity of the negative literal !a:
// -a ∈ I, or neither a nor +a appears in I.
func (in *Interp) NegValid(id AID) bool {
	return in.minus.get(int(id)) || !in.PosValid(id)
}

// BaseAtoms returns I⁻ in insertion order; the slice must not be
// modified.
func (in *Interp) BaseAtoms() []AID { return in.baseAtoms }

// PlusAtoms returns the +marked atoms in derivation order.
func (in *Interp) PlusAtoms() []AID { return in.plusAtoms }

// MinusAtoms returns the -marked atoms in derivation order.
func (in *Interp) MinusAtoms() []AID { return in.minusAtoms }

// Store exposes the tuple store for the matcher.
func (in *Interp) Store() *storage.Store { return in.store }

// Incorp applies the incorporate operator (§4.2):
//
//	incorp(I) = (I⁻ ∪ {a | +a ∈ I}) − {a | -a ∈ I}
//
// returning the resulting database instance. The interpretation must
// be consistent, which the engine guarantees.
func (in *Interp) Incorp() *Database {
	out := NewDatabase()
	for _, id := range in.baseAtoms {
		if !in.minus.get(int(id)) {
			out.Add(id)
		}
	}
	for _, id := range in.plusAtoms {
		out.Add(id)
	}
	return out
}

// Snapshot returns the marked atoms as (+list, -list) copies, sorted
// for deterministic rendering. Used by traces and tests that compare
// against the paper's printed intermediate interpretations.
func (in *Interp) Snapshot() (plus, minus []AID) {
	plus = append([]AID(nil), in.plusAtoms...)
	minus = append([]AID(nil), in.minusAtoms...)
	in.u.SortAtoms(plus)
	in.u.SortAtoms(minus)
	return plus, minus
}
