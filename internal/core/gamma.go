package core

import (
	"sort"
	"time"
)

// gammaStep computes the candidate additions of one application of
// the immediate consequence operator Γ_{P,B} to the current
// interpretation (§4.2): the heads of all non-blocked rule groundings
// whose bodies are valid, minus what the interpretation already
// contains. The candidates are collected into rs.stepFacts but not
// applied. It returns the atoms on which applying the step would be
// inconsistent (both +a and -a present), sorted by atom id; an empty
// result means Γ(I) is consistent.
//
// When full is false the step is evaluated semi-naively: only rule
// instances with at least one body literal whose validity can have
// been switched on by the previous step's delta are re-enumerated.
// Positive and +event literals are triggered by newly "+"-marked
// atoms, negative and -event literals by newly "-"-marked atoms.
// The first step of every phase must be full.
func (e *Engine) gammaStep(m *matcher, full bool) []AID {
	rs := e.run
	rs.stepFacts = rs.stepFacts[:0]
	clear(rs.stepSeen)
	clear(rs.stepHave)

	if full {
		rs.stats.FullSteps++
		if e.opts.Parallel > 1 {
			e.enumRulesParallel()
		} else {
			for ri := range rs.progU.Rules {
				e.enumRule(m, ri, nil)
			}
		}
	} else {
		rs.stats.DeltaSteps++
		dp := groupByPred(e.u, rs.deltaPlus)
		dm := groupByPred(e.u, rs.deltaMinus)
		for ri := range rs.progU.Rules {
			r := &rs.progU.Rules[ri]
			for li := range r.Body {
				lit := r.Body[li]
				var delta []AID
				switch lit.Kind {
				case LitPos, LitEvIns:
					delta = dp[lit.Atom.Pred]
				case LitNeg, LitEvDel:
					delta = dm[lit.Atom.Pred]
				default:
					continue
				}
				for _, aid := range delta {
					preset, ok := unifyAtomArgs(r, lit.Atom, e.u.AtomArgs(aid))
					if !ok {
						continue
					}
					e.enumRule(m, ri, preset)
				}
			}
		}
	}

	var inconsistent []AID
	seen := make(map[AID]struct{})
	for _, c := range rs.stepFacts {
		bad := false
		if c.op == OpInsert {
			if rs.in.HasMinus(c.atom) {
				bad = true
			} else if _, ok := rs.stepHave[provKey{OpDelete, c.atom}]; ok {
				bad = true
			}
		} else {
			if rs.in.HasPlus(c.atom) {
				bad = true
			} else if _, ok := rs.stepHave[provKey{OpInsert, c.atom}]; ok {
				bad = true
			}
		}
		if bad {
			if _, dup := seen[c.atom]; !dup {
				seen[c.atom] = struct{}{}
				inconsistent = append(inconsistent, c.atom)
			}
		}
	}
	sort.Slice(inconsistent, func(i, j int) bool { return inconsistent[i] < inconsistent[j] })
	return inconsistent
}

// enumRule enumerates the valid groundings of rule ri (optionally
// restricted by a preset binding), recording provenance and collecting
// new candidate facts.
func (e *Engine) enumRule(m *matcher, ri int, preset []Sym) {
	start := time.Now()
	m.Match(&e.run.progU.Rules[ri], preset, func(binding []Sym) bool {
		e.processGrounding(Grounding{Rule: int32(ri), Args: append([]Sym(nil), binding...)})
		return true
	})
	e.run.rules[ri].MatchNanos += time.Since(start).Nanoseconds()
}

// processGrounding folds one valid grounding into the current step:
// dedup, blocked filtering, head resolution, provenance and candidate
// collection. Must be called from the engine goroutine only.
func (e *Engine) processGrounding(g Grounding) {
	rs := e.run
	rs.stats.Groundings++
	rs.rules[g.Rule].Groundings++
	r := &rs.progU.Rules[g.Rule]
	k := g.Key()
	if _, ok := rs.stepSeen[k]; ok {
		return
	}
	rs.stepSeen[k] = struct{}{}
	if rs.blocked.HasKey(k) {
		return
	}
	rs.stats.Derivations++
	rs.rules[g.Rule].Fires++

	headArgs := make([]Sym, 0, len(r.Head.Args))
	for _, t := range r.Head.Args {
		if t.IsVar() {
			headArgs = append(headArgs, g.Args[t.Var()])
		} else {
			headArgs = append(headArgs, t.Const())
		}
	}
	aid, err := e.u.InternAtom(r.Head.Pred, headArgs)
	if err != nil {
		// Arities were pinned by Validate; a mismatch here is a bug.
		panic(err)
	}
	pk := provKey{r.Op, aid}
	pm := rs.prov[pk]
	if pm == nil {
		pm = make(map[string]Grounding)
		rs.prov[pk] = pm
	}
	if _, ok := pm[k]; !ok {
		pm[k] = g
	}

	already := (r.Op == OpInsert && rs.in.HasPlus(aid)) || (r.Op == OpDelete && rs.in.HasMinus(aid))
	if already {
		return
	}
	if _, ok := rs.stepHave[pk]; ok {
		return
	}
	rs.stepHave[pk] = struct{}{}
	rs.stepFacts = append(rs.stepFacts, candidate{op: r.Op, atom: aid})
}

// groupByPred buckets atom ids by predicate.
func groupByPred(u *Universe, ids []AID) map[Sym][]AID {
	if len(ids) == 0 {
		return nil
	}
	out := make(map[Sym][]AID)
	for _, id := range ids {
		p := u.AtomPred(id)
		out[p] = append(out[p], id)
	}
	return out
}

// unifyAtomArgs unifies a rule atom against ground argument symbols,
// producing a preset binding over the rule's variables (NoSym where
// unconstrained). It reports false when unification fails.
func unifyAtomArgs(r *Rule, a Atom, args []Sym) ([]Sym, bool) {
	if len(a.Args) != len(args) {
		return nil, false
	}
	preset := make([]Sym, r.NumVars)
	for i := range preset {
		preset[i] = NoSym
	}
	for i, t := range a.Args {
		if t.IsVar() {
			v := t.Var()
			if preset[v] == NoSym {
				preset[v] = args[i]
			} else if preset[v] != args[i] {
				return nil, false
			}
		} else if t.Const() != args[i] {
			return nil, false
		}
	}
	return preset, true
}
