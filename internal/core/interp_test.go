package core

import (
	"testing"
	"testing/quick"
)

// tiny helpers for interp tests
func testUniverse(t *testing.T) (*Universe, func(pred string, args ...string) AID) {
	t.Helper()
	u := NewUniverse()
	intern := func(pred string, args ...string) AID {
		syms := make([]Sym, len(args))
		for i, a := range args {
			syms[i] = u.Syms.Intern(a)
		}
		id, err := u.InternAtom(u.Syms.Intern(pred), syms)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	return u, intern
}

func TestInterpValidity(t *testing.T) {
	u, atom := testUniverse(t)
	a := atom("a")
	b := atom("b")
	c := atom("c")
	d := NewDatabase()
	d.Add(a)
	in := NewInterp(u, d)

	// a is base: positive valid, negation invalid.
	if !in.PosValid(a) || in.NegValid(a) {
		t.Fatal("base atom validity wrong")
	}
	// b absent: positive invalid, negation valid by absence.
	if in.PosValid(b) || !in.NegValid(b) {
		t.Fatal("absent atom validity wrong")
	}
	in.AddPlus(b)
	if !in.PosValid(b) || in.NegValid(b) || !in.HasPlus(b) {
		t.Fatal("+marked atom validity wrong")
	}
	// -a: the paper's definition makes BOTH a and !a valid when a is
	// base and -a is marked.
	in.AddMinus(a)
	if !in.PosValid(a) {
		t.Fatal("base atom with -mark must stay positively valid")
	}
	if !in.NegValid(a) {
		t.Fatal("-marked atom must make negation valid")
	}
	// c marked minus while absent: negation valid, positive invalid.
	in.AddMinus(c)
	if in.PosValid(c) || !in.NegValid(c) || !in.HasMinus(c) {
		t.Fatal("-marked absent atom validity wrong")
	}
}

func TestInterpResetPhase(t *testing.T) {
	u, atom := testUniverse(t)
	a := atom("a")
	b := atom("b")
	d := NewDatabase()
	d.Add(a)
	in := NewInterp(u, d)
	in.AddPlus(b)
	in.AddMinus(a)
	in.ResetPhase()
	if in.HasPlus(b) || in.HasMinus(a) {
		t.Fatal("marks survived reset")
	}
	if !in.HasBase(a) || !in.PosValid(a) {
		t.Fatal("base lost on reset")
	}
	if len(in.PlusAtoms()) != 0 || len(in.MinusAtoms()) != 0 {
		t.Fatal("mark lists survived reset")
	}
	st := in.Store().Stats()
	if st.PlusRows != 0 || st.MinusRows != 0 || st.BaseRows != 1 {
		t.Fatalf("store stats after reset: %+v", st)
	}
}

func TestIncorp(t *testing.T) {
	u, atom := testUniverse(t)
	a := atom("a")
	b := atom("b")
	c := atom("c")
	d := NewDatabase()
	d.Add(a)
	d.Add(b)
	in := NewInterp(u, d)
	in.AddMinus(b) // delete base atom
	in.AddPlus(c)  // insert new atom
	in.AddPlus(a)  // re-insert existing atom: no-op
	out := in.Incorp()
	if !out.Contains(a) || out.Contains(b) || !out.Contains(c) {
		t.Fatalf("incorp wrong: a=%v b=%v c=%v", out.Contains(a), out.Contains(b), out.Contains(c))
	}
	if out.Len() != 2 {
		t.Fatalf("incorp len = %d", out.Len())
	}
}

// Property (incorp identity): for consistent random mark assignments,
// incorp(I) = (I⁻ − del) ∪ ins.
func TestIncorpQuick(t *testing.T) {
	u, atom := testUniverse(t)
	ids := make([]AID, 12)
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i, n := range names {
		ids[i] = atom(n)
	}
	f := func(baseMask, plusMask, minusMask uint16) bool {
		d := NewDatabase()
		for i, id := range ids {
			if baseMask&(1<<i) != 0 {
				d.Add(id)
			}
		}
		in := NewInterp(u, d)
		for i, id := range ids {
			p := plusMask&(1<<i) != 0
			m := minusMask&(1<<i) != 0
			if p && m {
				continue // keep consistent
			}
			if p {
				in.AddPlus(id)
			}
			if m {
				in.AddMinus(id)
			}
		}
		out := in.Incorp()
		for i, id := range ids {
			inBase := baseMask&(1<<i) != 0
			p := plusMask&(1<<i) != 0
			m := minusMask&(1<<i) != 0
			if p && m {
				p, m = false, false
			}
			want := (inBase || p) && !m
			if out.Contains(id) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSorted(t *testing.T) {
	u, atom := testUniverse(t)
	d := NewDatabase()
	in := NewInterp(u, d)
	zb := atom("z")
	ab := atom("a")
	in.AddPlus(zb)
	in.AddPlus(ab)
	in.AddMinus(zb) // would be inconsistent in a run; Snapshot itself doesn't care
	plus, minus := in.Snapshot()
	if len(plus) != 2 || plus[0] != ab || plus[1] != zb {
		t.Fatalf("plus = %v", plus)
	}
	if len(minus) != 1 || minus[0] != zb {
		t.Fatalf("minus = %v", minus)
	}
}

func TestBitset(t *testing.T) {
	var b bitset
	if b.get(100) {
		t.Fatal("empty bitset get(100) = true")
	}
	b.set(0)
	b.set(63)
	b.set(64)
	b.set(1000)
	for _, i := range []int{0, 63, 64, 1000} {
		if !b.get(i) {
			t.Fatalf("get(%d) = false", i)
		}
	}
	for _, i := range []int{1, 62, 65, 999, 1001} {
		if b.get(i) {
			t.Fatalf("get(%d) = true", i)
		}
	}
	b.clearAll()
	if b.get(0) || b.get(1000) {
		t.Fatal("clearAll did not clear")
	}
}
