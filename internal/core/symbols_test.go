package core

import (
	"testing"
	"testing/quick"
)

func TestSymbolTable(t *testing.T) {
	st := NewSymbolTable()
	a := st.Intern("a")
	b := st.Intern("b")
	if a == b {
		t.Fatal("distinct names got same symbol")
	}
	if st.Intern("a") != a {
		t.Fatal("Intern not idempotent")
	}
	if got, ok := st.Lookup("b"); !ok || got != b {
		t.Fatalf("Lookup(b) = %v, %v", got, ok)
	}
	if _, ok := st.Lookup("zzz"); ok {
		t.Fatal("Lookup of unknown name succeeded")
	}
	if st.Name(a) != "a" {
		t.Fatalf("Name(a) = %q", st.Name(a))
	}
	if st.Name(Sym(99)) != "#99" {
		t.Fatalf("Name(99) = %q", st.Name(99))
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestTermEncoding(t *testing.T) {
	c := ConstTerm(5)
	if c.IsVar() {
		t.Fatal("ConstTerm reported as var")
	}
	if c.Const() != 5 {
		t.Fatalf("Const = %d", c.Const())
	}
	v := VarTerm(0)
	if !v.IsVar() {
		t.Fatal("VarTerm not a var")
	}
	if v.Var() != 0 {
		t.Fatalf("Var = %d", v.Var())
	}
	// Round trip arbitrary indexes.
	f := func(i uint16) bool {
		return VarTerm(int(i)).Var() == int(i) && ConstTerm(Sym(i)).Const() == Sym(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTermPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ConstTerm(-1)": func() { ConstTerm(-1) },
		"VarTerm(-1)":   func() { VarTerm(-1) },
		"Var on const":  func() { ConstTerm(0).Var() },
		"Const on var":  func() { VarTerm(0).Const() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUniverseAtoms(t *testing.T) {
	u := NewUniverse()
	p := u.Syms.Intern("p")
	a := u.Syms.Intern("a")
	b := u.Syms.Intern("b")
	id1, err := u.InternAtom(p, []Sym{a, b})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := u.InternAtom(p, []Sym{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("InternAtom not idempotent")
	}
	id3, err := u.InternAtom(p, []Sym{b, a})
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("distinct atoms interned to same id")
	}
	if _, err := u.InternAtom(p, []Sym{a}); err == nil {
		t.Fatal("arity violation not detected")
	}
	if got, ok := u.LookupAtom(p, []Sym{a, b}); !ok || got != id1 {
		t.Fatalf("LookupAtom = %v, %v", got, ok)
	}
	if _, ok := u.LookupAtom(p, []Sym{a, a}); ok {
		t.Fatal("LookupAtom found uninterned atom")
	}
	if u.NumAtoms() != 2 {
		t.Fatalf("NumAtoms = %d", u.NumAtoms())
	}
	if u.AtomString(id1) != "p(a, b)" {
		t.Fatalf("AtomString = %q", u.AtomString(id1))
	}
	q := u.Syms.Intern("q")
	id4, _ := u.InternAtom(q, nil)
	if u.AtomString(id4) != "q" {
		t.Fatalf("propositional AtomString = %q", u.AtomString(id4))
	}
	if u.AtomPred(id1) != p {
		t.Fatal("AtomPred mismatch")
	}
	if got := u.AtomArgs(id1); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("AtomArgs = %v", got)
	}
}

func TestSortAtoms(t *testing.T) {
	u := NewUniverse()
	p := u.Syms.Intern("p")
	q := u.Syms.Intern("q")
	b := u.Syms.Intern("b")
	a := u.Syms.Intern("a")
	qa, _ := u.InternAtom(q, []Sym{a})
	pb, _ := u.InternAtom(p, []Sym{b})
	pa, _ := u.InternAtom(p, []Sym{a})
	ids := []AID{qa, pb, pa}
	u.SortAtoms(ids)
	want := []AID{pa, pb, qa}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", ids, want)
		}
	}
}

func TestBlockedSet(t *testing.T) {
	b := NewBlockedSet()
	g1 := Grounding{Rule: 1, Args: []Sym{2, 3}}
	g2 := Grounding{Rule: 1, Args: []Sym{3, 2}}
	if !b.Add(g1) {
		t.Fatal("first Add returned false")
	}
	if b.Add(g1) {
		t.Fatal("duplicate Add returned true")
	}
	if !b.Has(g1) || b.Has(g2) {
		t.Fatal("membership wrong")
	}
	b.Add(g2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	all := b.All()
	if len(all) != 2 || all[0].Key() != g1.Key() {
		t.Fatalf("All = %v", all)
	}
}

func TestGroundingKeyUniqueness(t *testing.T) {
	f := func(r1, r2 uint8, a1, a2 uint16) bool {
		g1 := Grounding{Rule: int32(r1), Args: []Sym{Sym(a1)}}
		g2 := Grounding{Rule: int32(r2), Args: []Sym{Sym(a2)}}
		same := r1 == r2 && a1 == a2
		return (g1.Key() == g2.Key()) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatabase(t *testing.T) {
	d := NewDatabase()
	if d.Len() != 0 {
		t.Fatal("fresh database not empty")
	}
	if !d.Add(3) || d.Add(3) {
		t.Fatal("Add dedup wrong")
	}
	d.Add(1)
	if !d.Contains(3) || d.Contains(2) {
		t.Fatal("Contains wrong")
	}
	c := d.Clone()
	c.Add(9)
	if d.Contains(9) {
		t.Fatal("Clone aliases original")
	}
	if got := d.Atoms(); len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Fatalf("Atoms = %v", got)
	}
}
