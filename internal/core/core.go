package core
