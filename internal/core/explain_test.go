package core_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func runExplain(t *testing.T, progSrc, dbSrc, updSrc string) (*core.Universe, *core.Result) {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", progSrc)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", dbSrc)
	if err != nil {
		t.Fatal(err)
	}
	var ups []core.Update
	if updSrc != "" {
		if ups, err = parser.ParseUpdates(u, "", updSrc); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(u, prog, nil, core.Options{Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explainer == nil {
		t.Fatal("Explain option did not attach an explainer")
	}
	return u, res
}

func atomID(t *testing.T, u *core.Universe, pred string, args ...string) core.AID {
	t.Helper()
	p, ok := u.Syms.Lookup(pred)
	if !ok {
		t.Fatalf("unknown predicate %s", pred)
	}
	syms := make([]core.Sym, len(args))
	for i, a := range args {
		s, ok := u.Syms.Lookup(a)
		if !ok {
			t.Fatalf("unknown constant %s", a)
		}
		syms[i] = s
	}
	id, ok := u.LookupAtom(p, syms)
	if !ok {
		t.Fatalf("atom %s(%v) not interned", pred, args)
	}
	return id
}

func TestExplainDerivationChain(t *testing.T) {
	u, res := runExplain(t, `
		rule r1: p(X) -> +q(X).
		rule r2: q(X) -> +r(X).
	`, `p(a).`, "")
	ex := res.Explainer
	e := ex.Explain(atomID(t, u, "r", "a"))
	if e.Status != core.StatusInserted || !e.InResult {
		t.Fatalf("r(a) status = %v", e.Status)
	}
	if e.Rule != 1 {
		t.Fatalf("r(a) derived by rule %d, want r2 (index 1)", e.Rule)
	}
	if len(e.Premises) != 1 || e.Premises[0].Rule != 0 {
		t.Fatalf("premises = %+v", e.Premises)
	}
	// The chain bottoms out in the base fact p(a).
	base := e.Premises[0].Premises[0]
	if base.Status != core.StatusBase {
		t.Fatalf("chain bottom = %v", base.Status)
	}
	txt := ex.Format(e)
	for _, want := range []string{"r(a): inserted by r2", "q(a): inserted by r1", "p(a): in the original database"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("formatted explanation missing %q:\n%s", want, txt)
		}
	}
}

func TestExplainDeletionAndNegation(t *testing.T) {
	u, res := runExplain(t, `
		rule cleanup: emp(X), !active(X), payroll(X) -> -payroll(X).
	`, `emp(tom). payroll(tom).`, "")
	ex := res.Explainer
	e := ex.Explain(atomID(t, u, "payroll", "tom"))
	if e.Status != core.StatusDeleted || e.InResult {
		t.Fatalf("payroll(tom) = %v, inResult=%v", e.Status, e.InResult)
	}
	txt := ex.Format(e)
	if !strings.Contains(txt, "deleted by cleanup") {
		t.Fatalf("missing deleting rule:\n%s", txt)
	}
	// The negated premise is explained by absence.
	if !strings.Contains(txt, "absent") {
		t.Fatalf("missing absence premise:\n%s", txt)
	}
}

func TestExplainUpdateRule(t *testing.T) {
	u, res := runExplain(t, `rule fire: +q(X) -> +r(X).`, ``, `+q(b).`)
	ex := res.Explainer
	e := ex.Explain(atomID(t, u, "r", "b"))
	if e.Rule < 0 {
		t.Fatal("r(b) has no deriving rule")
	}
	// Its premise q(b) is explained by the body-less update rule.
	if len(e.Premises) != 1 {
		t.Fatalf("premises = %d", len(e.Premises))
	}
	q := e.Premises[0]
	if q.Status != core.StatusInserted || q.Rule < 0 {
		t.Fatalf("q(b) = %+v", q)
	}
	if len(q.Premises) != 0 {
		t.Fatalf("update rule should have no premises, got %d", len(q.Premises))
	}
	txt := ex.Format(e)
	if !strings.Contains(txt, "update:+q(b)") {
		t.Fatalf("update rule label missing:\n%s", txt)
	}
}

func TestExplainAbsentAndBase(t *testing.T) {
	u, res := runExplain(t, ``, `p(a).`, "")
	ex := res.Explainer
	if e := ex.Explain(atomID(t, u, "p", "a")); e.Status != core.StatusBase || !e.InResult {
		t.Fatalf("p(a) = %+v", e)
	}
	// Intern an atom that is in no interpretation.
	q := u.Syms.Intern("qq")
	id, err := u.InternAtom(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := ex.Explain(id); e.Status != core.StatusAbsent || e.InResult {
		t.Fatalf("absent atom = %+v", e)
	}
}

func TestExplainRecursionGuard(t *testing.T) {
	// Mutually recursive derivation: p <- q <- p. The tree must not
	// loop; the revisited node is marked.
	u, res := runExplain(t, `
		base -> +p.
		p -> +q.
		q -> +p.
	`, `base.`, "")
	ex := res.Explainer
	p, _ := u.Syms.Lookup("p")
	id, _ := u.LookupAtom(p, nil)
	e := ex.Explain(id)
	txt := ex.Format(e)
	if len(txt) > 10000 {
		t.Fatal("explanation exploded; recursion guard broken")
	}
	if !strings.Contains(txt, "in the original database") {
		t.Fatalf("explanation did not bottom out in base:\n%s", txt)
	}
}

func TestExplainEventPremise(t *testing.T) {
	u, res := runExplain(t, `
		rule r3: +r(X) -> -s(X).
		rule r2: q(X) -> +r(X).
	`, `q(a). s(a).`, "")
	ex := res.Explainer
	e := ex.Explain(atomID(t, u, "s", "a"))
	if e.Status != core.StatusDeleted {
		t.Fatalf("s(a) = %v", e.Status)
	}
	txt := ex.Format(e)
	if !strings.Contains(txt, "r(a): inserted by r2") {
		t.Fatalf("event premise not explained:\n%s", txt)
	}
}
