package core

// Database is a database instance: a set of positive ground atoms
// (§2), interned in some Universe.
type Database struct {
	ids  []AID
	seen map[AID]struct{}
}

// NewDatabase returns an empty database instance.
func NewDatabase() *Database {
	return &Database{seen: make(map[AID]struct{})}
}

// Add inserts a ground atom; duplicates are ignored. It reports
// whether the atom was new.
func (d *Database) Add(id AID) bool {
	if _, ok := d.seen[id]; ok {
		return false
	}
	d.seen[id] = struct{}{}
	d.ids = append(d.ids, id)
	return true
}

// Remove deletes a ground atom, reporting whether it was present.
// Removal preserves the insertion order of the remaining atoms.
func (d *Database) Remove(id AID) bool {
	if _, ok := d.seen[id]; !ok {
		return false
	}
	delete(d.seen, id)
	for i, x := range d.ids {
		if x == id {
			d.ids = append(d.ids[:i], d.ids[i+1:]...)
			break
		}
	}
	return true
}

// Contains reports membership.
func (d *Database) Contains(id AID) bool {
	_, ok := d.seen[id]
	return ok
}

// Len returns the number of atoms.
func (d *Database) Len() int { return len(d.ids) }

// Atoms returns the atoms in insertion order. The returned slice
// must not be modified.
func (d *Database) Atoms() []AID { return d.ids }

// Clone returns an independent copy.
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, id := range d.ids {
		c.Add(id)
	}
	return c
}

// Update is one transaction update: the insertion (+) or deletion (-)
// of a ground atom (§4.3).
type Update struct {
	Op   HeadOp
	Atom AID
}

// Diff computes the update set transforming database before into
// database after: insertions for atoms only in after, deletions for
// atoms only in before, in the databases' insertion orders.
func Diff(before, after *Database) []Update {
	var ups []Update
	for _, id := range after.Atoms() {
		if !before.Contains(id) {
			ups = append(ups, Update{Op: OpInsert, Atom: id})
		}
	}
	for _, id := range before.Atoms() {
		if !after.Contains(id) {
			ups = append(ups, Update{Op: OpDelete, Atom: id})
		}
	}
	return ups
}

// UpdateRules returns the body-less rules "-> ±a" that model the
// transaction updates U, i.e. the rules added to P to form P_U.
func UpdateRules(u *Universe, updates []Update) []Rule {
	rules := make([]Rule, 0, len(updates))
	for _, up := range updates {
		args := u.AtomArgs(up.Atom)
		terms := make([]Term, len(args))
		for i, s := range args {
			terms[i] = ConstTerm(s)
		}
		rules = append(rules, Rule{
			Name: "update:" + up.Op.String() + u.AtomString(up.Atom),
			Head: Atom{Pred: u.AtomPred(up.Atom), Args: terms},
			Op:   up.Op,
		})
	}
	return rules
}
