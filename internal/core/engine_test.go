package core_test

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// runPark parses and evaluates one scenario, failing the test on any
// setup error.
func runPark(t *testing.T, progSrc, dbSrc, updSrc string, strategy core.Strategy, opts core.Options) (*core.Universe, *core.Result) {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "prog", progSrc)
	if err != nil {
		t.Fatalf("parse program: %v", err)
	}
	db, err := parser.ParseDatabase(u, "db", dbSrc)
	if err != nil {
		t.Fatalf("parse database: %v", err)
	}
	var ups []core.Update
	if updSrc != "" {
		ups, err = parser.ParseUpdates(u, "upd", updSrc)
		if err != nil {
			t.Fatalf("parse updates: %v", err)
		}
	}
	eng, err := core.NewEngine(u, prog, strategy, opts)
	if err != nil {
		t.Fatalf("new engine: %v", err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return u, res
}

// dbString renders a database as a sorted comma-separated atom list.
func dbString(u *core.Universe, d *core.Database) string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = u.AtomString(id)
	}
	return strings.Join(parts, ", ")
}

func checkResult(t *testing.T, u *core.Universe, res *core.Result, want string) {
	t.Helper()
	if got := dbString(u, res.Output); got != want {
		t.Fatalf("result = {%s}, want {%s}", got, want)
	}
}

// priorityStrategy implements the §5 rule-priority policy: the
// conflict side containing the highest-priority rule wins.
var priorityStrategy = core.StrategyFunc{
	StrategyName: "priority",
	Fn: func(in *core.SelectInput) (core.Decision, error) {
		maxPrio := func(gs []core.Grounding) int {
			m := int(^uint(0)>>1) * -1 // MinInt
			for _, g := range gs {
				if p := in.Program.Rules[g.Rule].Priority; p > m {
					m = p
				}
			}
			return m
		}
		if maxPrio(in.Conflict.Ins) >= maxPrio(in.Conflict.Del) {
			return core.DecideInsert, nil
		}
		return core.DecideDelete, nil
	},
}

// --- E-series: the paper's worked examples ---

// E1: §4.1 program P1 on D = {p} under inertia. The conflicting pair
// +a/-a is suppressed; result {p, q}.
func TestPaperE1(t *testing.T) {
	prog := `
		p -> +q.
		p -> -a.
		q -> +a.
	`
	u, res := runPark(t, prog, `p.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p, q")
	if res.Stats.Conflicts != 1 {
		t.Fatalf("conflicts = %d, want 1", res.Stats.Conflicts)
	}
}

// E2: §4.1 program P2. Naive post-hoc conflict elimination would keep
// s (derived from the withdrawn +a); PARK must yield {p, q, r}.
func TestPaperE2(t *testing.T) {
	prog := `
		p -> +q.
		p -> -a.
		q -> +a.
		!a -> +r.
		a -> +s.
	`
	u, res := runPark(t, prog, `p.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p, q, r")
}

// E3: §4.1 program P3 (false conflicts). q's conflict must not poison
// a, which rule 5 derives independently: result {a, p}.
func TestPaperE3(t *testing.T) {
	prog := `
		p -> +q.
		p -> -q.
		q -> +a.
		q -> -a.
		p -> +a.
	`
	u, res := runPark(t, prog, `p.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "a, p")
	// Only the q conflict is ever resolved; a's "ambiguity" is false.
	for _, rc := range res.Conflicts {
		if u.AtomString(rc.Conflict.Atom) != "q" {
			t.Fatalf("unexpected conflict on %s", u.AtomString(rc.Conflict.Atom))
		}
	}
}

// E4: the §4.2 graph example with the paper's ad-hoc SELECT: keep no
// reflexive arcs and no arcs between a and c; the final graph is the
// 4 arcs a<->b and b<->c.
func TestPaperE4(t *testing.T) {
	prog := `
		rule r1: p(X), p(Y) -> +q(X, Y).
		rule r2: q(X, X) -> -q(X, X).
		rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
	`
	strat := core.StrategyFunc{
		StrategyName: "paper-graph",
		Fn: func(in *core.SelectInput) (core.Decision, error) {
			args := in.Universe.AtomArgs(in.Conflict.Atom)
			x := in.Universe.Syms.Name(args[0])
			y := in.Universe.Syms.Name(args[1])
			if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
				return core.DecideDelete, nil
			}
			return core.DecideInsert, nil
		},
	}
	u, res := runPark(t, prog, `p(a). p(b). p(c).`, "", strat, core.Options{})
	checkResult(t, u, res, "p(a), p(b), p(c), q(a, b), q(b, a), q(b, c), q(c, b)")
	if res.Stats.Conflicts != 9 {
		t.Fatalf("conflicts = %d, want 9 (one per q atom)", res.Stats.Conflicts)
	}
	// The losing r1 instances must be blocked for the 5 deleted arcs.
	blockedR1 := 0
	for _, g := range res.Blocked {
		if g.Rule == 0 {
			blockedR1++
		}
	}
	if blockedR1 != 5 {
		t.Fatalf("blocked r1 instances = %d, want 5", blockedR1)
	}
}

// E5: §4.3 full ECA rules without conflicts. The event literal +r(X)
// triggers the deletion of s(X); the transaction update +q(b) cascades.
func TestPaperE5(t *testing.T) {
	prog := `
		rule r1: p(X) -> +q(X).
		rule r2: q(X) -> +r(X).
		rule r3: +r(X) -> -s(X).
	`
	u, res := runPark(t, prog, `p(a). s(a). s(b).`, `+q(b).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p(a), q(a), q(b), r(a), r(b)")
	if res.Stats.Conflicts != 0 || res.Stats.Phases != 1 {
		t.Fatalf("stats = %+v, want conflict-free single phase", res.Stats)
	}
}

// E6: §4.3 ECA with a conflict under inertia. p(a,a) ∈ D, so the
// conflict between r1 (delete) and r3 (insert) resolves to insert,
// blocking r1. The paper's printed result omits q(a, a), but its own
// incorp definition keeps it (the update rule -> +q(a,a) always
// fires); see EXPERIMENTS.md for this erratum.
func TestPaperE6(t *testing.T) {
	prog := `
		rule r1: q(X, a) -> -p(X, a).
		rule r2: q(a, X) -> +r(a, X).
		rule r3: +r(X, Y) -> +p(X, Y).
	`
	u, res := runPark(t, prog, `p(a, a). p(a, b). p(a, c).`, `+q(a, a).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p(a, a), p(a, b), p(a, c), q(a, a), r(a, a)")
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %d, want 1", len(res.Conflicts))
	}
	rc := res.Conflicts[0]
	if u.AtomString(rc.Conflict.Atom) != "p(a, a)" || rc.Decision != core.DecideInsert {
		t.Fatalf("conflict = %s decision %v", u.AtomString(rc.Conflict.Atom), rc.Decision)
	}
	// The blocked instance must be r1's (the losing, deleting side).
	if len(res.Blocked) != 1 || res.Blocked[0].Rule != 0 {
		t.Fatalf("blocked = %v", res.Blocked)
	}
}

const sec5Program = `
	rule r1 priority 1: p -> +a.
	rule r2 priority 2: p -> +q.
	rule r3 priority 3: a -> +b.
	rule r4 priority 4: a -> -q.
	rule r5 priority 5: b -> +q.
`

// E7: §5 under inertia: two successive conflicts on q block r2 then
// r5; result {p, a, b}.
func TestPaperE7(t *testing.T) {
	u, res := runPark(t, sec5Program, `p.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "a, b, p")
	if res.Stats.Conflicts != 2 || res.Stats.Phases != 3 {
		t.Fatalf("stats = %+v, want 2 conflicts over 3 phases", res.Stats)
	}
	wantBlocked := []string{"r2", "r5"}
	if len(res.Blocked) != 2 {
		t.Fatalf("blocked = %v", res.Blocked)
	}
	for i, g := range res.Blocked {
		if name := res.Conflicts[i].Conflict.Atom; name < 0 {
			t.Fatal("bad conflict atom")
		}
		if got := "r" + string(rune('1'+g.Rule)); got != wantBlocked[i] {
			t.Fatalf("blocked[%d] = %s, want %s", i, got, wantBlocked[i])
		}
	}
}

// E8: §5's second inertia example, where inertia gives the
// counterintuitive {a} (the paper discusses why {a, d} might be
// expected).
func TestPaperE8(t *testing.T) {
	prog := `
		rule r1: a -> +b.
		rule r2: a -> +d.
		rule r3: b -> +c.
		rule r4: b -> -d.
		rule r5: c -> -b.
	`
	u, res := runPark(t, prog, `a.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "a")
	// First conflict is on d (blocking r2), second on b (blocking r1).
	if len(res.Conflicts) != 2 {
		t.Fatalf("conflicts = %d", len(res.Conflicts))
	}
	if u.AtomString(res.Conflicts[0].Conflict.Atom) != "d" || u.AtomString(res.Conflicts[1].Conflict.Atom) != "b" {
		t.Fatalf("conflict order: %s then %s",
			u.AtomString(res.Conflicts[0].Conflict.Atom), u.AtomString(res.Conflicts[1].Conflict.Atom))
	}
}

// E9: §5 under rule priority: r4 (4) beats r2 (2), then r5 (5) beats
// r4; result {p, a, b, q}.
func TestPaperE9(t *testing.T) {
	u, res := runPark(t, sec5Program, `p.`, "", priorityStrategy, core.Options{})
	checkResult(t, u, res, "a, b, p, q")
	if res.Stats.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2", res.Stats.Conflicts)
	}
	if res.Conflicts[0].Decision != core.DecideDelete || res.Conflicts[1].Decision != core.DecideInsert {
		t.Fatalf("decisions = %v, %v", res.Conflicts[0].Decision, res.Conflicts[1].Decision)
	}
}

// E10: the §2 payroll example rule.
func TestPaperE10(t *testing.T) {
	prog := `emp(X), !active(X), payroll(X, S) -> -payroll(X, S).`
	db := `
		emp(tom). emp(ann).
		active(ann).
		payroll(tom, 100). payroll(ann, 120).
	`
	u, res := runPark(t, prog, db, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "active(ann), emp(ann), emp(tom), payroll(ann, 120)")
}

// --- engine behavior ---

func TestRecursiveRules(t *testing.T) {
	// Transitive closure: recursion through insertions.
	prog := `
		edge(X, Y) -> +tc(X, Y).
		tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`
	db := `edge(a, b). edge(b, c). edge(c, d).`
	u, res := runPark(t, prog, db, "", core.InertiaStrategy{}, core.Options{})
	want := "edge(a, b), edge(b, c), edge(c, d), tc(a, b), tc(a, c), tc(a, d), tc(b, c), tc(b, d), tc(c, d)"
	checkResult(t, u, res, want)
}

func TestUpdateOnlyRun(t *testing.T) {
	u, res := runPark(t, ``, `p(a). p(b).`, `-p(a). +q(c).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p(b), q(c)")
}

func TestConflictingUpdatesResolvedBySelect(t *testing.T) {
	// +p(a) and -p(a) as transaction updates conflict; inertia keeps
	// the original status.
	u, res := runPark(t, ``, `p(a).`, `+p(a). -p(a).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p(a)")
	u2, res2 := runPark(t, ``, ``, `+p(a). -p(a).`, core.InertiaStrategy{}, core.Options{})
	if res2.Output.Len() != 0 {
		t.Fatalf("result = {%s}, want empty", dbString(u2, res2.Output))
	}
	_ = u
}

func TestEmptyEverything(t *testing.T) {
	u, res := runPark(t, ``, ``, ``, core.InertiaStrategy{}, core.Options{})
	if res.Output.Len() != 0 || res.Stats.Phases != 1 {
		t.Fatalf("result = {%s}, stats %+v", dbString(u, res.Output), res.Stats)
	}
}

// Stale derivations: +a is derived from !b, which a later +b
// falsifies; when -a then arrives, the paper's literal conflicts
// definition is empty. The default engine recovers via provenance;
// StrictConflicts reports ErrNoProgress.
const staleProgram = `
	rule r1: p, !b -> +a.
	rule r2: p -> +b.
	rule r3: b -> -a.
`

func TestStaleConflictProvenance(t *testing.T) {
	u, res := runPark(t, staleProgram, `p.`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "b, p")
	if res.Stats.StaleConflicts != 1 {
		t.Fatalf("stale conflicts = %d, want 1", res.Stats.StaleConflicts)
	}
	// The blocked instance must be r1 (the stale inserting side).
	if len(res.Blocked) != 1 || res.Blocked[0].Rule != 0 {
		t.Fatalf("blocked = %+v", res.Blocked)
	}
}

func TestStaleConflictStrictErrors(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", staleProgram)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", `p.`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{StrictConflicts: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(context.Background(), db, nil)
	if !errors.Is(err, core.ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

func TestStrategyErrorPropagates(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `p -> +a. p -> -a.`)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `p.`)
	boom := errors.New("boom")
	strat := core.StrategyFunc{StrategyName: "failing", Fn: func(*core.SelectInput) (core.Decision, error) {
		return 0, boom
	}}
	eng, err := core.NewEngine(u, prog, strat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(context.Background(), db, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	var es *core.ErrStrategy
	if !errors.As(err, &es) || es.Strategy != "failing" {
		t.Fatalf("err = %v, want ErrStrategy{failing}", err)
	}
}

func TestContextCancellation(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `edge(X,Y) -> +tc(X,Y). tc(X,Y), edge(Y,Z) -> +tc(X,Z).`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	// A long chain so the run takes several steps.
	for i := 0; i < 50; i++ {
		a := u.Syms.Intern(string(rune('a' + i%26)))
		_ = a
	}
	dbSrc := strings.Builder{}
	for i := 0; i < 50; i++ {
		dbSrc.WriteString("edge(n")
		dbSrc.WriteString(itoa(i))
		dbSrc.WriteString(", n")
		dbSrc.WriteString(itoa(i + 1))
		dbSrc.WriteString("). ")
	}
	db, err = parser.ParseDatabase(u, "", dbSrc.String())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng, err := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, db, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// Determinism: repeated runs produce identical results, conflicts and
// blocked sets, for every engine configuration.
func TestDeterminism(t *testing.T) {
	configs := map[string]core.Options{
		"default":  {},
		"naive":    {Naive: true},
		"no-index": {NoIndex: true},
		"both":     {Naive: true, NoIndex: true},
	}
	var first string
	for name, opts := range configs {
		opts := opts
		t.Run(name, func(t *testing.T) {
			var renders []string
			for i := 0; i < 3; i++ {
				u, res := runPark(t, sec5Program, `p.`, "", core.InertiaStrategy{}, opts)
				render := dbString(u, res.Output)
				for _, g := range res.Blocked {
					render += "|" + g.Key()
				}
				renders = append(renders, render)
			}
			if renders[0] != renders[1] || renders[1] != renders[2] {
				t.Fatalf("nondeterministic: %q vs %q vs %q", renders[0], renders[1], renders[2])
			}
			if first == "" {
				first = renders[0]
			} else if renders[0] != first {
				t.Fatalf("config %s diverges: %q vs %q", name, renders[0], first)
			}
		})
	}
}

func TestTracerEvents(t *testing.T) {
	tr := &core.CollectingTracer{}
	_, res := runPark(t, sec5Program, `p.`, "", core.InertiaStrategy{}, core.Options{Tracer: tr})
	if tr.Phases != res.Stats.Phases {
		t.Fatalf("tracer phases %d != stats %d", tr.Phases, res.Stats.Phases)
	}
	if tr.StepsTotal != res.Stats.Steps {
		t.Fatalf("tracer steps %d != stats %d", tr.StepsTotal, res.Stats.Steps)
	}
	if got := len(tr.Conflicts()); got != res.Stats.Conflicts {
		t.Fatalf("tracer conflicts %d != stats %d", got, res.Stats.Conflicts)
	}
	// Event stream sanity: phases are numbered 1..N and each conflict
	// is preceded by an inconsistency event in the same phase.
	lastPhase := 0
	sawInconsistent := map[int]bool{}
	for _, e := range tr.Events {
		switch e.Kind {
		case "phase":
			if e.Phase != lastPhase+1 {
				t.Fatalf("phase %d after %d", e.Phase, lastPhase)
			}
			lastPhase = e.Phase
		case "inconsistent":
			sawInconsistent[e.Phase] = true
		case "conflict":
			if !sawInconsistent[e.Phase] {
				t.Fatalf("conflict without inconsistency in phase %d", e.Phase)
			}
		}
	}
}

func TestTextTracerOutput(t *testing.T) {
	var sb strings.Builder
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `p -> +q. p -> -a. q -> +a.`)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `p.`)
	tr := &core.TextTracer{W: &sb, U: u, P: prog, Verbose: true}
	eng, err := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"phase 1", "+q", "-a", "inconsistent", "conflict", "block", "fixpoint"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}

// Naive and semi-naive evaluation must agree on results and on the
// number of conflicts for a suite of scenarios.
func TestNaiveSeminaiveAgree(t *testing.T) {
	scenarios := []struct{ prog, db, upd string }{
		{sec5Program, `p.`, ""},
		{`p -> +q. p -> -a. q -> +a. !a -> +r. a -> +s.`, `p.`, ""},
		{`edge(X,Y) -> +tc(X,Y). tc(X,Y), edge(Y,Z) -> +tc(X,Z).`, `edge(a,b). edge(b,c). edge(c,a).`, ""},
		{`rule r1: p(X) -> +q(X). rule r2: q(X) -> +r(X). rule r3: +r(X) -> -s(X).`, `p(a). s(a). s(b).`, `+q(b).`},
		{staleProgram, `p.`, ""},
		{`q(X), !done -> +p(X). p(X) -> +done.`, `q(a). q(b).`, ""},
	}
	for i, sc := range scenarios {
		u1, r1 := runPark(t, sc.prog, sc.db, sc.upd, core.InertiaStrategy{}, core.Options{})
		u2, r2 := runPark(t, sc.prog, sc.db, sc.upd, core.InertiaStrategy{}, core.Options{Naive: true})
		if dbString(u1, r1.Output) != dbString(u2, r2.Output) {
			t.Fatalf("scenario %d: seminaive {%s} != naive {%s}", i, dbString(u1, r1.Output), dbString(u2, r2.Output))
		}
		if r1.Stats.Conflicts != r2.Stats.Conflicts || r1.Stats.Phases != r2.Stats.Phases {
			t.Fatalf("scenario %d: stats diverge: %+v vs %+v", i, r1.Stats, r2.Stats)
		}
	}
}

// Builtins: != and == filter correctly.
func TestBuiltinComparisons(t *testing.T) {
	prog := `
		p(X), p(Y), X != Y -> +pair(X, Y).
		p(X), p(Y), X == Y -> +same(X, Y).
	`
	u, res := runPark(t, prog, `p(a). p(b).`, "", core.InertiaStrategy{}, core.Options{})
	want := "p(a), p(b), pair(a, b), pair(b, a), same(a, a), same(b, b)"
	checkResult(t, u, res, want)
}

// Event literals must see marks only, never base facts.
func TestEventLiteralSemantics(t *testing.T) {
	// s(a) is base; the event +s(X) must NOT fire for it.
	prog := `+s(X) -> +fired(X).`
	u, res := runPark(t, prog, `s(a).`, `+s(b).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "fired(b), s(a), s(b)")

	// -s(X) fires only for actual deletion marks.
	prog2 := `-s(X) -> +removed(X).`
	u2, res2 := runPark(t, prog2, `s(a). s(b).`, `-s(a).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u2, res2, "removed(a), s(b)")
}

// The paper's validity table: a base atom with a -mark keeps its
// positive literal valid while also validating its negation.
func TestBothPolaritiesValid(t *testing.T) {
	prog := `
		s(X) -> +posfired(X).
		s2(X), !s(X) -> +negfired(X).
	`
	u, res := runPark(t, prog, `s(a). s2(a).`, `-s(a).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "negfired(a), posfired(a), s2(a)")
}

func TestResultSortedStable(t *testing.T) {
	u, res := runPark(t, `p(X) -> +q(X).`, `p(b). p(a). p(c).`, "", core.InertiaStrategy{}, core.Options{})
	ids := append([]core.AID(nil), res.Output.Atoms()...)
	u.SortAtoms(ids)
	if !sort.SliceIsSorted(ids, func(i, j int) bool {
		return u.AtomString(ids[i]) < u.AtomString(ids[j])
	}) {
		t.Fatal("SortAtoms did not sort by rendering")
	}
}

func TestMaxPhasesGuard(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", sec5Program)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `p.`)
	eng, err := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{MaxPhases: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, nil); err == nil || !strings.Contains(err.Error(), "phase limit") {
		t.Fatalf("err = %v, want phase limit error", err)
	}
}

func TestEngineReuse(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `p(X) -> +q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db1, _ := parser.ParseDatabase(u, "", `p(a).`)
	db2, _ := parser.ParseDatabase(u, "", `p(b).`)
	r1, err := eng.Run(context.Background(), db1, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(context.Background(), db2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dbString(u, r1.Output); got != "p(a), q(a)" {
		t.Fatalf("run 1 = {%s}", got)
	}
	if got := dbString(u, r2.Output); got != "p(b), q(b)" {
		t.Fatalf("run 2 = {%s}", got)
	}
}

// The input database must never be mutated by a run.
func TestInputDatabaseUntouched(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `p(X) -> -p(X). p(X) -> +q(X).`)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `p(a).`)
	before := dbString(u, db)
	eng, _ := core.NewEngine(u, prog, core.InertiaStrategy{}, core.Options{})
	if _, err := eng.Run(context.Background(), db, nil); err != nil {
		t.Fatal(err)
	}
	if dbString(u, db) != before {
		t.Fatal("input database mutated")
	}
}

// Rules with order comparisons: the §2 payroll domain with a salary
// threshold.
func TestRuleWithOrderComparison(t *testing.T) {
	prog := `
		emp(X), sal(X, S), S >= 200 -> +highpaid(X).
		emp(X), sal(X, S), S < 200 -> +lowpaid(X).
	`
	u, res := runPark(t, prog, `emp(tom). emp(ann). sal(tom, 100). sal(ann, 250).`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "emp(ann), emp(tom), highpaid(ann), lowpaid(tom), sal(ann, 250), sal(tom, 100)")
}
