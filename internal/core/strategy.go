package core

import "fmt"

// Decision is the outcome of conflict resolution for one conflict:
// which of the two requested actions on the atom is performed.
type Decision uint8

const (
	// DecideInsert keeps the insertion and blocks the deleting rule
	// instances.
	DecideInsert Decision = iota
	// DecideDelete keeps the deletion and blocks the inserting rule
	// instances.
	DecideDelete
)

func (d Decision) String() string {
	if d == DecideInsert {
		return "insert"
	}
	return "delete"
}

// Conflict is a conflict triple (a, ins, del) (§4.2): a ground atom
// together with the maximal sets of rule groundings with valid bodies
// requiring its insertion and deletion.
type Conflict struct {
	Atom AID
	Ins  []Grounding
	Del  []Grounding
}

// String renders a conflict like the paper's triples.
func (c Conflict) String(u *Universe, p *Program) string {
	s := "(" + u.AtomString(c.Atom) + ", {"
	for i, g := range c.Ins {
		if i > 0 {
			s += " "
		}
		s += g.String(u, p)
	}
	s += "}, {"
	for i, g := range c.Del {
		if i > 0 {
			s += " "
		}
		s += g.String(u, p)
	}
	return s + "})"
}

// SelectInput bundles the context information handed to a conflict
// resolution policy: SELECT(D, P, I, c) in the paper's notation.
type SelectInput struct {
	Universe *Universe
	Program  *Program // P_U: the user program plus update rules
	Database *Database
	Interp   *Interp
	Conflict Conflict
}

// Strategy is a conflict resolution policy. Implementations must be
// deterministic given their own state (a seeded random strategy is
// deterministic in this sense) so that PARK remains a function.
type Strategy interface {
	// Name identifies the strategy in traces and CLI flags.
	Name() string
	// Select resolves one conflict. An error aborts the evaluation.
	Select(in *SelectInput) (Decision, error)
}

// StrategyFunc adapts a function to the Strategy interface.
type StrategyFunc struct {
	StrategyName string
	Fn           func(in *SelectInput) (Decision, error)
}

// Name implements Strategy.
func (s StrategyFunc) Name() string { return s.StrategyName }

// Select implements Strategy.
func (s StrategyFunc) Select(in *SelectInput) (Decision, error) { return s.Fn(in) }

// InertiaStrategy implements the principle of inertia (§4.1): the
// conflicting actions are suppressed so the atom keeps its status from
// the original database instance — insert wins iff the atom was
// present in D.
type InertiaStrategy struct{}

// Name implements Strategy.
func (InertiaStrategy) Name() string { return "inertia" }

// Select implements Strategy.
func (InertiaStrategy) Select(in *SelectInput) (Decision, error) {
	if in.Database.Contains(in.Conflict.Atom) {
		return DecideInsert, nil
	}
	return DecideDelete, nil
}

// ErrStrategy is returned (wrapped) when a strategy fails.
type ErrStrategy struct {
	Strategy string
	Err      error
}

func (e *ErrStrategy) Error() string {
	return fmt.Sprintf("conflict resolution strategy %q failed: %v", e.Strategy, e.Err)
}

// Unwrap supports errors.Is/As.
func (e *ErrStrategy) Unwrap() error { return e.Err }
