package core

import (
	"fmt"
	"sync"
	"testing"
)

// TestUniverseConcurrentIntern is the regression test for the
// universe data race: the server parses every request against one
// shared Universe, so interning must be safe from many goroutines
// with no external synchronization. Workers intern a mix of fresh and
// overlapping symbols and atoms while readers resolve them back to
// strings; the pre-fix intern tables fail this immediately under
// -race.
func TestUniverseConcurrentIntern(t *testing.T) {
	u := NewUniverse()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	ids := make([][]AID, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Shared predicate: every worker races to pin its
				// arity and to intern the same key space.
				pred := u.Syms.Intern(fmt.Sprintf("p%d", i%7))
				shared := u.Syms.Intern(fmt.Sprintf("c%d", i%13))
				fresh := u.Syms.Intern(fmt.Sprintf("w%d_i%d", w, i))
				id, err := u.InternAtom(pred, []Sym{shared, fresh})
				if err != nil {
					errs <- err
					return
				}
				ids[w] = append(ids[w], id)
				// Read paths race with the interning above.
				_ = u.AtomString(id)
				if _, ok := u.LookupAtom(pred, []Sym{shared, fresh}); !ok {
					errs <- fmt.Errorf("atom %d not found after intern", id)
					return
				}
				_ = u.NumAtoms()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Interning must have stayed consistent: every recorded id still
	// resolves to the atom that produced it, and re-interning is
	// idempotent.
	for w := 0; w < workers; w++ {
		if len(ids[w]) != perWorker {
			t.Fatalf("worker %d interned %d atoms, want %d", w, len(ids[w]), perWorker)
		}
		for i, id := range ids[w] {
			pred := u.Syms.Intern(fmt.Sprintf("p%d", i%7))
			shared := u.Syms.Intern(fmt.Sprintf("c%d", i%13))
			fresh := u.Syms.Intern(fmt.Sprintf("w%d_i%d", w, i))
			again, err := u.InternAtom(pred, []Sym{shared, fresh})
			if err != nil {
				t.Fatal(err)
			}
			if again != id {
				t.Fatalf("re-intern of %s = %d, want %d", u.AtomString(id), again, id)
			}
		}
	}
	// SortAtoms snapshots the atom table; it must tolerate having run
	// concurrently-built contents.
	all := make([]AID, 0, u.NumAtoms())
	for i := 0; i < u.NumAtoms(); i++ {
		all = append(all, AID(i))
	}
	u.SortAtoms(all)
}
