package core

import (
	"fmt"

	"repro/internal/storage"
)

// matcher enumerates the valid rule groundings of a rule against an
// i-interpretation. It implements a backtracking join with greedy
// dynamic literal ordering: at every depth it first evaluates any
// fully bound non-enumerable literal (negation or built-in), and
// otherwise picks the enumerable literal with the most bound argument
// positions, breaking ties by smallest relation and then by body
// order. The ordering is deterministic, which keeps whole-engine runs
// reproducible.
type matcher struct {
	in *Interp
	u  *Universe

	// scratch buffers reused across calls to avoid allocation in the
	// inner evaluation loop.
	binding   []Sym
	remaining []int
	pattern   []int32
}

func newMatcher(in *Interp) *matcher {
	return &matcher{in: in, u: in.Universe()}
}

// Match enumerates every substitution θ of r such that every body
// literal of rθ is valid in the interpretation, calling yield with the
// complete binding (one symbol per rule variable, in variable order).
// The binding slice is reused between calls; yield must copy it if it
// retains it. Returning false from yield stops the enumeration.
//
// preset optionally pre-binds variables (NoSym = unbound); it is used
// for goal-directed evaluation with a bound head. Match reports
// whether the enumeration ran to completion (true) or was stopped by
// yield (false).
func (m *matcher) Match(r *Rule, preset []Sym, yield func(binding []Sym) bool) bool {
	if cap(m.binding) < r.NumVars {
		m.binding = make([]Sym, r.NumVars)
	}
	m.binding = m.binding[:r.NumVars]
	for i := range m.binding {
		m.binding[i] = NoSym
	}
	if preset != nil {
		if len(preset) != r.NumVars {
			panic(fmt.Sprintf("core: preset length %d for rule with %d variables", len(preset), r.NumVars))
		}
		copy(m.binding, preset)
	}
	m.remaining = m.remaining[:0]
	for i := range r.Body {
		m.remaining = append(m.remaining, i)
	}
	remaining := append([]int(nil), m.remaining...)
	return m.step(r, remaining, yield)
}

// groundArgs resolves the atom's terms under the current binding,
// returning the argument symbols and whether all terms were bound.
func (m *matcher) groundArgs(a Atom, out []Sym) ([]Sym, bool) {
	out = out[:0]
	for _, t := range a.Args {
		if t.IsVar() {
			v := m.binding[t.Var()]
			if v == NoSym {
				return out, false
			}
			out = append(out, v)
		} else {
			out = append(out, t.Const())
		}
	}
	return out, true
}

// evalGround evaluates a fully bound literal.
func (m *matcher) evalGround(lit Literal, args []Sym) bool {
	switch lit.Kind {
	case LitEq:
		return args[0] == args[1]
	case LitNeq:
		return args[0] != args[1]
	case LitLt:
		return m.u.CompareConsts(args[0], args[1]) < 0
	case LitLe:
		return m.u.CompareConsts(args[0], args[1]) <= 0
	case LitGt:
		return m.u.CompareConsts(args[0], args[1]) > 0
	case LitGe:
		return m.u.CompareConsts(args[0], args[1]) >= 0
	}
	id, ok := m.u.LookupAtom(lit.Atom.Pred, args)
	switch lit.Kind {
	case LitPos:
		return ok && m.in.PosValid(id)
	case LitNeg:
		return !ok || m.in.NegValid(id)
	case LitEvIns:
		return ok && m.in.HasPlus(id)
	case LitEvDel:
		return ok && m.in.HasMinus(id)
	}
	panic("core: unknown literal kind")
}

// literalRelations returns the relations an enumerable literal scans.
func (m *matcher) literalRelations(lit Literal) []*storage.Relation {
	ps := m.in.Store().Lookup(int32(lit.Atom.Pred))
	if ps == nil {
		return nil
	}
	switch lit.Kind {
	case LitPos:
		return []*storage.Relation{ps.Base, ps.Plus}
	case LitEvIns:
		return []*storage.Relation{ps.Plus}
	case LitEvDel:
		return []*storage.Relation{ps.Minus}
	}
	panic("core: literalRelations on non-enumerable literal")
}

func (m *matcher) literalSize(lit Literal) int {
	n := 0
	for _, rel := range m.literalRelations(lit) {
		n += rel.Len()
	}
	return n
}

// boundCount returns how many argument positions of the literal are
// bound under the current binding (constants count as bound).
func (m *matcher) boundCount(lit Literal) int {
	n := 0
	for _, t := range lit.Atom.Args {
		if !t.IsVar() || m.binding[t.Var()] != NoSym {
			n++
		}
	}
	return n
}

func (m *matcher) fullyBound(lit Literal) bool {
	return m.boundCount(lit) == len(lit.Atom.Args)
}

// pick selects the index (into remaining) of the literal to evaluate
// next, or -1 if remaining is empty.
func (m *matcher) pick(r *Rule, remaining []int) int {
	// First preference: any fully bound literal — a constant-time
	// filter, and the only way to evaluate negations and built-ins.
	for i, li := range remaining {
		lit := r.Body[li]
		if m.fullyBound(lit) {
			return i
		}
	}
	// Otherwise the most-bound enumerable literal, smallest relation
	// first on ties.
	best, bestBound, bestSize := -1, -1, 0
	for i, li := range remaining {
		lit := r.Body[li]
		if !lit.Kind.IsBinding() {
			continue
		}
		b := m.boundCount(lit)
		size := m.literalSize(lit)
		if b > bestBound || (b == bestBound && size < bestSize) {
			best, bestBound, bestSize = i, b, size
		}
	}
	return best
}

func (m *matcher) step(r *Rule, remaining []int, yield func([]Sym) bool) bool {
	if len(remaining) == 0 {
		return yield(m.binding)
	}
	pickIdx := m.pick(r, remaining)
	if pickIdx < 0 {
		// Only non-enumerable literals with unbound variables remain;
		// the safety conditions make this unreachable for validated
		// rules.
		panic(fmt.Sprintf("core: rule %s: unbound variable in non-enumerable literal", r.label()))
	}
	li := remaining[pickIdx]
	lit := r.Body[li]
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:pickIdx]...)
	rest = append(rest, remaining[pickIdx+1:]...)

	if m.fullyBound(lit) {
		args := make([]Sym, 0, len(lit.Atom.Args))
		args, _ = m.groundArgs(lit.Atom, args)
		if !m.evalGround(lit, args) {
			return true
		}
		return m.step(r, rest, yield)
	}

	// Enumerable literal with unbound variables: scan its relations.
	if cap(m.pattern) < len(lit.Atom.Args) {
		m.pattern = make([]int32, len(lit.Atom.Args))
	}
	pattern := m.pattern[:len(lit.Atom.Args)]
	for i, t := range lit.Atom.Args {
		if t.IsVar() {
			if v := m.binding[t.Var()]; v != NoSym {
				pattern[i] = int32(v)
			} else {
				pattern[i] = storage.Unbound
			}
		} else {
			pattern[i] = int32(t.Const())
		}
	}
	// The pattern buffer is shared; copy it because recursion below
	// re-enters this function.
	pat := append([]int32(nil), pattern...)

	var trail []int // variable indexes bound at this level, for undo
	tryRow := func(row []int32) bool {
		trail = trail[:0]
		ok := true
		for i, t := range lit.Atom.Args {
			if !t.IsVar() {
				continue
			}
			v := t.Var()
			if m.binding[v] == NoSym {
				m.binding[v] = Sym(row[i])
				trail = append(trail, v)
			} else if m.binding[v] != Sym(row[i]) {
				ok = false
				break
			}
		}
		cont := true
		if ok {
			cont = m.step(r, rest, yield)
		}
		for _, v := range trail {
			m.binding[v] = NoSym
		}
		return cont
	}

	cont := true
	for _, rel := range m.literalRelations(lit) {
		rel.Scan(pat, m.in.UseIndex, func(rowIdx int) bool {
			cont = tryRow(rel.Row(rowIdx))
			return cont
		})
		if !cont {
			return false
		}
	}
	return true
}
