package core

import (
	"fmt"
	"strings"
)

// LitKind distinguishes the body literal forms of an active rule.
type LitKind uint8

const (
	// LitPos is a positive atom p(t...).
	LitPos LitKind = iota
	// LitNeg is a negated atom !p(t...) (negation as failure).
	LitNeg
	// LitEvIns is an insertion event literal +p(t...) (§4.3).
	LitEvIns
	// LitEvDel is a deletion event literal -p(t...) (§4.3).
	LitEvDel
	// LitEq is the built-in equality t1 == t2 (extension; not in the
	// paper, documented in DESIGN.md).
	LitEq
	// LitNeq is the built-in disequality t1 != t2 (extension).
	LitNeq
	// LitLt, LitLe, LitGt, LitGe are the built-in order comparisons
	// (extension). Integer constants compare numerically, all other
	// constants lexicographically by name.
	LitLt
	LitLe
	LitGt
	LitGe
)

func (k LitKind) String() string {
	switch k {
	case LitPos:
		return "pos"
	case LitNeg:
		return "neg"
	case LitEvIns:
		return "event+"
	case LitEvDel:
		return "event-"
	case LitEq:
		return "eq"
	case LitNeq:
		return "neq"
	case LitLt:
		return "lt"
	case LitLe:
		return "le"
	case LitGt:
		return "gt"
	case LitGe:
		return "ge"
	}
	return fmt.Sprintf("LitKind(%d)", uint8(k))
}

// IsBinding reports whether a literal of this kind can bind variables
// by enumeration (and therefore counts as "positive" for the safety
// conditions of §2).
func (k LitKind) IsBinding() bool {
	return k == LitPos || k == LitEvIns || k == LitEvDel
}

// Builtin reports whether the kind is a built-in comparison.
func (k LitKind) Builtin() bool {
	switch k {
	case LitEq, LitNeq, LitLt, LitLe, LitGt, LitGe:
		return true
	}
	return false
}

// comparisonOp returns the operator text of a built-in comparison.
func (k LitKind) comparisonOp() string {
	switch k {
	case LitEq:
		return "=="
	case LitNeq:
		return "!="
	case LitLt:
		return "<"
	case LitLe:
		return "<="
	case LitGt:
		return ">"
	case LitGe:
		return ">="
	}
	return "?"
}

// Literal is one body literal. For built-in comparisons Atom.Pred is
// NoSym and Atom.Args holds exactly two terms.
type Literal struct {
	Kind LitKind
	Atom Atom
}

// HeadOp is the action of a rule head: insert (+) or delete (-).
type HeadOp uint8

const (
	// OpInsert requests insertion of the head atom.
	OpInsert HeadOp = iota
	// OpDelete requests deletion of the head atom.
	OpDelete
)

func (op HeadOp) String() string {
	if op == OpInsert {
		return "+"
	}
	return "-"
}

// Rule is an active rule  l1, ..., ln -> ±l0.  Variables are numbered
// densely 0..NumVars-1 and their names (for rendering) are recorded in
// VarNames. A rule with an empty body models a transaction update
// (§4.3: the rules "-> ±a" of P_U).
type Rule struct {
	// Name optionally labels the rule ("r1"); used in traces and by
	// name-aware conflict resolution strategies.
	Name string
	// Priority orders rules for the rule-priority strategy (§5);
	// higher wins. Zero if unset.
	Priority int
	NumVars  int
	VarNames []string
	Body     []Literal
	Head     Atom
	Op       HeadOp
}

// Validate checks the structural well-formedness and the two safety
// conditions of §2:
//  1. every head variable occurs in the body, and
//  2. every variable of a negated (or built-in) literal occurs in some
//     binding (positive or event) literal.
func (r *Rule) Validate() error {
	if r.NumVars < 0 {
		return fmt.Errorf("rule %s: negative NumVars", r.label())
	}
	if r.VarNames != nil && len(r.VarNames) != r.NumVars {
		return fmt.Errorf("rule %s: %d variable names for %d variables", r.label(), len(r.VarNames), r.NumVars)
	}
	bound := make([]bool, r.NumVars)
	checkTerm := func(t Term, where string) error {
		if t.IsVar() {
			if v := t.Var(); v >= r.NumVars {
				return fmt.Errorf("rule %s: variable index %d out of range in %s", r.label(), v, where)
			}
		}
		return nil
	}
	for i, lit := range r.Body {
		if lit.Kind.Builtin() {
			if len(lit.Atom.Args) != 2 {
				return fmt.Errorf("rule %s: built-in literal %d must have exactly 2 arguments", r.label(), i)
			}
		}
		for _, t := range lit.Atom.Args {
			if err := checkTerm(t, fmt.Sprintf("body literal %d", i)); err != nil {
				return err
			}
			if lit.Kind.IsBinding() && t.IsVar() {
				bound[t.Var()] = true
			}
		}
	}
	for _, t := range r.Head.Args {
		if err := checkTerm(t, "head"); err != nil {
			return err
		}
		if t.IsVar() && !bound[t.Var()] {
			return fmt.Errorf("rule %s: unsafe: head variable %s does not occur in a positive body literal", r.label(), r.varName(t.Var()))
		}
	}
	for i, lit := range r.Body {
		if lit.Kind.IsBinding() {
			continue
		}
		for _, t := range lit.Atom.Args {
			if t.IsVar() && !bound[t.Var()] {
				return fmt.Errorf("rule %s: unsafe: variable %s of %s literal %d does not occur in a positive body literal",
					r.label(), r.varName(t.Var()), lit.Kind, i)
			}
		}
	}
	return nil
}

func (r *Rule) label() string {
	if r.Name != "" {
		return r.Name
	}
	return "<anonymous>"
}

func (r *Rule) varName(i int) string {
	if i < len(r.VarNames) && r.VarNames[i] != "" {
		return r.VarNames[i]
	}
	return fmt.Sprintf("V%d", i)
}

func (r *Rule) termString(u *Universe, t Term) string {
	if t.IsVar() {
		return r.varName(t.Var())
	}
	return u.Syms.Name(t.Const())
}

func (r *Rule) atomString(u *Universe, a Atom) string {
	if len(a.Args) == 0 {
		return u.Syms.Name(a.Pred)
	}
	var sb strings.Builder
	sb.WriteString(u.Syms.Name(a.Pred))
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(r.termString(u, t))
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders the rule in the library's rule language.
func (r *Rule) String(u *Universe) string {
	var sb strings.Builder
	for i, lit := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch lit.Kind {
		case LitNeg:
			sb.WriteByte('!')
			sb.WriteString(r.atomString(u, lit.Atom))
		case LitEvIns:
			sb.WriteByte('+')
			sb.WriteString(r.atomString(u, lit.Atom))
		case LitEvDel:
			sb.WriteByte('-')
			sb.WriteString(r.atomString(u, lit.Atom))
		case LitEq, LitNeq, LitLt, LitLe, LitGt, LitGe:
			fmt.Fprintf(&sb, "%s %s %s", r.termString(u, lit.Atom.Args[0]), lit.Kind.comparisonOp(), r.termString(u, lit.Atom.Args[1]))
		default:
			sb.WriteString(r.atomString(u, lit.Atom))
		}
	}
	if len(r.Body) > 0 {
		sb.WriteByte(' ')
	}
	sb.WriteString("-> ")
	sb.WriteString(r.Op.String())
	sb.WriteString(r.atomString(u, r.Head))
	return sb.String()
}

// Program is a set of active rules.
type Program struct {
	Rules []Rule
}

// Validate checks every rule and pins all predicate arities in the
// universe, reporting the first problem found.
func (p *Program) Validate(u *Universe) error {
	for i := range p.Rules {
		r := &p.Rules[i]
		if err := r.Validate(); err != nil {
			return err
		}
		for _, lit := range r.Body {
			if lit.Kind.Builtin() {
				continue
			}
			if err := u.PinArity(lit.Atom.Pred, len(lit.Atom.Args)); err != nil {
				return fmt.Errorf("rule %s: %w", r.label(), err)
			}
		}
		if err := u.PinArity(r.Head.Pred, len(r.Head.Args)); err != nil {
			return fmt.Errorf("rule %s: %w", r.label(), err)
		}
	}
	return nil
}

// RuleLabel returns a printable label for rule index i: its name if
// set, else "rule#<i>".
func (p *Program) RuleLabel(i int) string {
	if i >= 0 && i < len(p.Rules) && p.Rules[i].Name != "" {
		return p.Rules[i].Name
	}
	return fmt.Sprintf("rule#%d", i)
}
