package core

import "sort"

// resolveConflicts builds the conflict triples for the atoms on which
// the pending Γ step is inconsistent, resolves each with the SELECT
// strategy, and blocks the losing rule groundings. It is called on the
// pre-step interpretation I, matching the paper's blocked(D, P, I,
// SELECT): conflict sides are the groundings with bodies valid *now*
// — "conflicts looks one step into the future".
//
// Deviation from the literal paper definition (see DESIGN.md): when a
// mark is already in I but no currently valid grounding derives it
// (its derivation went stale), the groundings recorded by provenance
// during this phase are used as that side of the conflict. Under
// Options.StrictConflicts such conflicts are skipped instead and the
// run can fail with ErrNoProgress.
//
// It reports whether at least one new grounding was blocked, i.e.
// whether the Δ operator made progress.
func (e *Engine) resolveConflicts(atoms []AID) (bool, error) {
	rs := e.run
	progressed := false
	for _, a := range atoms {
		if e.opts.ResolveOne && progressed {
			break
		}
		ins, insStale := e.conflictSide(OpInsert, a)
		del, delStale := e.conflictSide(OpDelete, a)
		if e.opts.StrictConflicts && (insStale || delStale) {
			// Under the paper's literal definition this triple does not
			// exist (one side has no currently valid grounding).
			continue
		}
		if insStale || delStale {
			rs.stats.StaleConflicts++
		}
		if len(ins) == 0 || len(del) == 0 {
			// Unreachable for non-strict runs: an inconsistent atom has
			// either a valid grounding or a provenance entry per side.
			continue
		}
		c := Conflict{Atom: a, Ins: ins, Del: del}
		dec, err := e.strategy.Select(&SelectInput{
			Universe: e.u,
			Program:  rs.progU,
			Database: rs.d,
			Interp:   rs.in,
			Conflict: c,
		})
		if err != nil {
			return false, &ErrStrategy{Strategy: e.strategy.Name(), Err: err}
		}
		winners, losers := c.Ins, c.Del
		if dec == DecideDelete {
			winners, losers = c.Del, c.Ins
		}
		for _, g := range winners {
			rs.rules[g.Rule].ConflictWins++
		}
		var newly []Grounding
		for _, g := range losers {
			rs.rules[g.Rule].ConflictLosses++
			if rs.blocked.Add(g) {
				rs.rules[g.Rule].Blocked++
				newly = append(newly, g)
			}
		}
		if len(newly) > 0 {
			progressed = true
		}
		rs.stats.Conflicts++
		if dec == DecideInsert {
			rs.stats.InsertDecisions++
		} else {
			rs.stats.DeleteDecisions++
		}
		rs.conflicts = append(rs.conflicts, ResolvedConflict{Conflict: c, Decision: dec})
		rs.tracer.ConflictResolved(rs.stats.Phases, c, dec, newly)
	}
	return progressed, nil
}

// conflictSide returns the maximal set of non-blocked groundings
// requiring op on atom: all groundings with currently valid bodies,
// falling back to this phase's provenance when none exists but the
// mark is already in the interpretation (stale=true in that case).
func (e *Engine) conflictSide(op HeadOp, atom AID) (side []Grounding, stale bool) {
	rs := e.run
	side = e.validGroundingsFor(op, atom)
	if len(side) > 0 {
		return side, false
	}
	marked := false
	if op == OpInsert {
		marked = rs.in.HasPlus(atom)
	} else {
		marked = rs.in.HasMinus(atom)
	}
	if !marked {
		return nil, false
	}
	pm := rs.prov[provKey{op, atom}]
	keys := make([]string, 0, len(pm))
	for k := range pm {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		side = append(side, pm[k])
	}
	return side, true
}

// validGroundingsFor enumerates, goal-directedly, every non-blocked
// grounding whose head is exactly ±atom and whose body is valid in the
// current interpretation: the rule head is unified with the ground
// atom and the body is evaluated under the resulting preset binding.
func (e *Engine) validGroundingsFor(op HeadOp, atom AID) []Grounding {
	rs := e.run
	pred := e.u.AtomPred(atom)
	args := e.u.AtomArgs(atom)
	var out []Grounding
	seen := make(map[string]struct{})
	m := newMatcher(rs.in)
	for ri := range rs.progU.Rules {
		r := &rs.progU.Rules[ri]
		if r.Op != op || r.Head.Pred != pred {
			continue
		}
		preset, ok := unifyAtomArgs(r, r.Head, args)
		if !ok {
			continue
		}
		m.Match(r, preset, func(binding []Sym) bool {
			// The head may contain variables not bound by unification
			// (none, per safety: head vars occur in the body, so the
			// body enumeration binds them) — but a body variable that
			// is not a head variable ranges freely, producing distinct
			// groundings that all derive ±atom, as in the paper's
			// graph example where r3's z ranges over all constants.
			g := Grounding{Rule: int32(ri), Args: append([]Sym(nil), binding...)}
			k := g.Key()
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
			if !rs.blocked.HasKey(k) {
				out = append(out, g)
			}
			return true
		})
	}
	return out
}
