package core_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// Constants in heads and bodies.
func TestRuleWithConstants(t *testing.T) {
	prog := `
		p(X) -> +tagged(X, special).
		tagged(X, special), q(X, b) -> +found(X).
	`
	u, res := runPark(t, prog, `p(a). q(a, b). q(c, d).`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "found(a), p(a), q(a, b), q(c, d), tagged(a, special)")
}

// Repeated variables in the head.
func TestRepeatedHeadVariables(t *testing.T) {
	prog := `p(X) -> +pair(X, X).`
	u, res := runPark(t, prog, `p(a). p(b).`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "p(a), p(b), pair(a, a), pair(b, b)")
}

// A rule that deletes its own trigger: the deletion mark does not
// retract the base fact mid-phase (validity of positive literals
// keeps base atoms), so this is NOT an infinite loop under PARK.
func TestSelfConsumingRule(t *testing.T) {
	prog := `queue(X) -> -queue(X). queue(X) -> +done(X).`
	u, res := runPark(t, prog, `queue(a). queue(b).`, "", core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "done(a), done(b)")
}

// Duplicate updates and update/update conflicts in one transaction.
func TestDuplicateUpdates(t *testing.T) {
	u, res := runPark(t, ``, `x.`, `+a. +a. -x. -x.`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "a")
	if res.Stats.Conflicts != 0 {
		t.Fatalf("conflicts = %d", res.Stats.Conflicts)
	}
}

// Maximality of conflict sides: multiple rules deriving each side all
// appear in the conflict triple (the paper requires the sets to be
// maximal).
func TestConflictSidesMaximal(t *testing.T) {
	prog := `
		rule i1: p -> +a.
		rule i2: q -> +a.
		rule d1: p -> -a.
		rule d2: q -> -a.
	`
	u, res := runPark(t, prog, `p. q.`, "", core.InertiaStrategy{}, core.Options{})
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(res.Conflicts))
	}
	c := res.Conflicts[0].Conflict
	if len(c.Ins) != 2 || len(c.Del) != 2 {
		t.Fatalf("conflict sides: ins=%d del=%d, want 2/2", len(c.Ins), len(c.Del))
	}
	_ = u
}

// The SELECT input carries the paper's four components faithfully:
// D (original database), P (the program P_U including update rules),
// I (the current i-interpretation) and the conflict.
func TestSelectInputContents(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `seed -> +a. seed -> -a.`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", `x.`)
	if err != nil {
		t.Fatal(err)
	}
	var seen *core.SelectInput
	strat := core.StrategyFunc{StrategyName: "probe", Fn: func(in *core.SelectInput) (core.Decision, error) {
		seen = in
		return core.DecideDelete, nil
	}}
	eng, err := core.NewEngine(u, prog, strat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ups, err := parser.ParseUpdates(u, "", `+seed.`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, ups); err != nil {
		t.Fatal(err)
	}
	if seen == nil {
		t.Fatal("strategy never invoked")
	}
	// D is the original database: contains x, not seed.
	xid, _ := u.LookupAtom(mustSym(t, u, "x"), nil)
	if !seen.Database.Contains(xid) {
		t.Fatal("SELECT input D lost the original database")
	}
	seedID, _ := u.LookupAtom(mustSym(t, u, "seed"), nil)
	if seen.Database.Contains(seedID) {
		t.Fatal("SELECT input D contains the update (it must be the ORIGINAL instance)")
	}
	// P is P_U: 2 program rules + 1 update rule.
	if len(seen.Program.Rules) != 3 {
		t.Fatalf("SELECT input P has %d rules, want 3 (P plus the update rule)", len(seen.Program.Rules))
	}
	// I is the pre-step interpretation: +seed is marked.
	if !seen.Interp.HasPlus(seedID) {
		t.Fatal("SELECT input I lacks the +seed mark")
	}
}

func mustSym(t *testing.T, u *core.Universe, name string) core.Sym {
	t.Helper()
	s, ok := u.Syms.Lookup(name)
	if !ok {
		t.Fatalf("symbol %s unknown", name)
	}
	return s
}

// Event literals with constant arguments.
func TestEventLiteralConstants(t *testing.T) {
	prog := `+sensor(alarm) -> +alert.`
	u, res := runPark(t, prog, ``, `+sensor(alarm). +sensor(ok).`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "alert, sensor(alarm), sensor(ok)")
}

// Deeply recursive insertion: a 1000-step chain completes and the
// step count matches the chain length.
func TestDeepRecursion(t *testing.T) {
	var db strings.Builder
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&db, "edge(n%d, n%d). ", i, i+1)
	}
	db.WriteString("reach(n0).")
	prog := `reach(X), edge(X, Y) -> +reach(Y).`
	u, res := runPark(t, prog, db.String(), "", core.InertiaStrategy{}, core.Options{})
	count := 0
	for _, id := range res.Output.Atoms() {
		if u.AtomPred(id) == mustSym(t, u, "reach") {
			count++
		}
	}
	if count != 1001 {
		t.Fatalf("reach atoms = %d", count)
	}
	if res.Stats.Steps != 1000 { // one applied step per chain hop
		t.Fatalf("steps = %d", res.Stats.Steps)
	}
}

// An engine rejects a strategy error even on the very first conflict
// of a later phase (regression guard for error paths after restarts).
func TestStrategyErrorSecondPhase(t *testing.T) {
	prog := `
		s0 -> +s1.
		s1 -> +c1.
		s1 -> -c1.
		s1 -> +s2.
		s2 -> +c2.
		s2 -> -c2.
	`
	calls := 0
	strat := core.StrategyFunc{StrategyName: "count", Fn: func(in *core.SelectInput) (core.Decision, error) {
		calls++
		if calls > 1 {
			return 0, errSecond
		}
		return core.DecideDelete, nil
	}}
	u := core.NewUniverse()
	p, err := parser.ParseProgram(u, "", prog)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `s0.`)
	eng, err := core.NewEngine(u, p, strat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, nil); err == nil {
		t.Fatal("second-phase strategy error swallowed")
	}
}

var errSecond = fmt.Errorf("second conflict")

// Update rules participate in conflicts and are visible in the
// grounding sets (so ProtectUpdates can find them).
func TestUpdateRuleInConflictSides(t *testing.T) {
	u, res := runPark(t, `x -> -a.`, `x.`, `+a.`, core.InertiaStrategy{}, core.Options{})
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(res.Conflicts))
	}
	c := res.Conflicts[0].Conflict
	if len(c.Ins) != 1 || len(c.Del) != 1 {
		t.Fatalf("sides: %d/%d", len(c.Ins), len(c.Del))
	}
	// The inserting side is the update rule (index 1 in P_U).
	if c.Ins[0].Rule != 1 {
		t.Fatalf("ins rule = %d, want the update rule", c.Ins[0].Rule)
	}
	_ = u
}

// A nil database is treated as empty.
func TestNilDatabase(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `-> +boot.`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(u, prog, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dbString(u, res.Output); got != "boot" {
		t.Fatalf("result = {%s}", got)
	}
}

// An update that loses its conflict is blocked like any rule; its
// event cascade is then suppressed in the restarted phase (the event
// literal +a never becomes valid).
func TestOverriddenUpdateSuppressesEventCascade(t *testing.T) {
	prog := `
		rule veto: x -> -a.
		rule cascade: +a -> +b.
	`
	u, res := runPark(t, prog, `x.`, `+a.`, core.InertiaStrategy{}, core.Options{})
	checkResult(t, u, res, "x")
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %d", len(res.Conflicts))
	}
	// Under ProtectUpdates the update wins and the cascade fires.
	u2 := core.NewUniverse()
	p2, err := parser.ParseProgram(u2, "", prog)
	if err != nil {
		t.Fatal(err)
	}
	db2, _ := parser.ParseDatabase(u2, "", `x.`)
	ups2, _ := parser.ParseUpdates(u2, "", `+a.`)
	protect := core.StrategyFunc{StrategyName: "protect", Fn: func(in *core.SelectInput) (core.Decision, error) {
		return core.DecideInsert, nil
	}}
	eng2, err := core.NewEngine(u2, p2, protect, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := eng2.Run(context.Background(), db2, ups2)
	if err != nil {
		t.Fatal(err)
	}
	if got := dbString(u2, res2.Output); got != "a, b, x" {
		t.Fatalf("protected result = {%s}", got)
	}
}
