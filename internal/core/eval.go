package core

// Derivation is one application of a rule grounding: the action ±atom
// it demands together with the grounding that produced it.
type Derivation struct {
	Op        HeadOp
	Atom      AID
	Grounding Grounding
}

// GammaDerivations evaluates one application of the immediate
// consequence operator Γ_{P,B} against the interpretation and returns
// every derivation of a non-blocked rule grounding with a valid body,
// deduplicated by grounding and ordered deterministically (rule index,
// then enumeration order). Unlike the PARK engine it performs no
// consistency checking and no provenance tracking; it is the building
// block for the baseline semantics in internal/baseline and is also
// handy for tools that want to inspect a single step.
func GammaDerivations(in *Interp, p *Program, blocked *BlockedSet) []Derivation {
	m := newMatcher(in)
	u := in.Universe()
	var out []Derivation
	seen := make(map[string]struct{})
	var headArgs []Sym
	for ri := range p.Rules {
		r := &p.Rules[ri]
		m.Match(r, nil, func(binding []Sym) bool {
			g := Grounding{Rule: int32(ri), Args: append([]Sym(nil), binding...)}
			k := g.Key()
			if _, dup := seen[k]; dup {
				return true
			}
			seen[k] = struct{}{}
			if blocked != nil && blocked.HasKey(k) {
				return true
			}
			headArgs = headArgs[:0]
			for _, t := range r.Head.Args {
				if t.IsVar() {
					headArgs = append(headArgs, binding[t.Var()])
				} else {
					headArgs = append(headArgs, t.Const())
				}
			}
			aid, err := u.InternAtom(r.Head.Pred, headArgs)
			if err != nil {
				panic(err) // arities pinned by Validate
			}
			out = append(out, Derivation{Op: r.Op, Atom: aid, Grounding: g})
			return true
		})
	}
	return out
}
