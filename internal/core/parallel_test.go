package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/workload"
)

// runScenarioOpts evaluates a workload scenario with options.
func runScenarioOpts(t *testing.T, sc workload.Scenario, opts core.Options) (*core.Universe, *core.Result) {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", sc.Program)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", sc.Database)
	if err != nil {
		t.Fatal(err)
	}
	var ups []core.Update
	if sc.Updates != "" {
		if ups, err = parser.ParseUpdates(u, "", sc.Updates); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(u, prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

// Parallel evaluation must be bit-identical to sequential across
// representative workloads and configurations (run with -race to
// verify reader purity).
func TestParallelEquivalence(t *testing.T) {
	scenarios := []workload.Scenario{
		workload.TransitiveClosure(16, 25, 3),
		workload.ConflictLadder(6),
		workload.WideConflicts(8),
		workload.TriggerCascade(8, 4),
		workload.RandomProgram(12, 4, 4, 11),
		workload.RandomProgram(12, 4, 4, 12),
		workload.HRPayroll(30, 20, 5),
	}
	for _, sc := range scenarios {
		for _, par := range []core.Options{
			{Parallel: 4},
			{Parallel: 4, Naive: true},
			{Parallel: 4, NoIndex: true},
			{Parallel: 64}, // more workers than rules
		} {
			uSeq, seq := runScenarioOpts(t, sc, core.Options{Naive: par.Naive, NoIndex: par.NoIndex})
			uPar, parRes := runScenarioOpts(t, sc, par)
			a := dbString(uSeq, seq.Output)
			b := dbString(uPar, parRes.Output)
			if a != b {
				t.Fatalf("%s (%+v): sequential {%s} != parallel {%s}", sc.Name, par, a, b)
			}
			if seq.Stats.Conflicts != parRes.Stats.Conflicts ||
				seq.Stats.Phases != parRes.Stats.Phases ||
				seq.Stats.Derivations != parRes.Stats.Derivations {
				t.Fatalf("%s (%+v): stats diverge: %+v vs %+v", sc.Name, par, seq.Stats, parRes.Stats)
			}
			if len(seq.Blocked) != len(parRes.Blocked) {
				t.Fatalf("%s: blocked sets differ", sc.Name)
			}
			for i := range seq.Blocked {
				if seq.Blocked[i].Key() != parRes.Blocked[i].Key() {
					t.Fatalf("%s: blocked order differs at %d", sc.Name, i)
				}
			}
		}
	}
}

func TestParallelPaperExamples(t *testing.T) {
	// The §5 example under parallel evaluation: same result, same
	// conflict sequence.
	u, res := runPark(t, sec5Program, `p.`, "", core.InertiaStrategy{}, core.Options{Parallel: 8})
	checkResult(t, u, res, "a, b, p")
	if res.Stats.Conflicts != 2 {
		t.Fatalf("conflicts = %d", res.Stats.Conflicts)
	}
}

// Property (Δ is growing, Theorem 4.1(1)): within every phase, each
// applied step only adds marks — no event ever removes one — and the
// phase sequence is strictly increasing until its end.
func TestDeltaGrowingProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sc := workload.RandomProgram(10, 4, 4, seed)
		u := core.NewUniverse()
		prog, err := parser.ParseProgram(u, "", sc.Program)
		if err != nil {
			t.Fatal(err)
		}
		db, err := parser.ParseDatabase(u, "", sc.Database)
		if err != nil {
			t.Fatal(err)
		}
		tr := &core.CollectingTracer{}
		eng, err := core.NewEngine(u, prog, nil, core.Options{Tracer: tr})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(context.Background(), db, nil); err != nil {
			t.Fatal(err)
		}
		// Within each phase: every step adds at least one new mark and
		// never repeats a mark added earlier in the phase.
		type mark struct {
			op   core.HeadOp
			atom core.AID
		}
		var phaseMarks map[mark]bool
		for _, e := range tr.Events {
			switch e.Kind {
			case "phase":
				phaseMarks = make(map[mark]bool)
			case "step":
				if len(e.Added) == 0 {
					t.Fatalf("seed %d: empty applied step", seed)
				}
				for _, ma := range e.Added {
					m := mark{ma.Op, ma.Atom}
					if phaseMarks[m] {
						t.Fatalf("seed %d: mark %v re-added within a phase", seed, m)
					}
					phaseMarks[m] = true
				}
			}
		}
	}
}
