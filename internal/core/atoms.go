package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// AID identifies an interned ground atom within a Universe.
type AID int32

// Atom is a (possibly non-ground) atom: a predicate applied to terms.
type Atom struct {
	Pred Sym
	Args []Term
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Universe interns the symbols and ground atoms of one evaluation.
// The extended Herbrand base H*(P, D) of the paper is the set
// {a, +a, -a | a interned here}; marks are kept by Interp, not by the
// universe. A Universe is not safe for concurrent mutation.
type Universe struct {
	Syms *SymbolTable

	atoms []groundAtom   // AID -> atom
	index map[string]AID // encoded key -> AID

	arities map[Sym]int // pinned predicate arities
}

type groundAtom struct {
	pred Sym
	args []Sym
}

// NewUniverse returns an empty universe with a fresh symbol table.
func NewUniverse() *Universe {
	return &Universe{
		Syms:    NewSymbolTable(),
		index:   make(map[string]AID),
		arities: make(map[Sym]int),
	}
}

// PinArity records (or checks) the arity of a predicate. It returns
// an error if the predicate was previously used with a different
// arity.
func (u *Universe) PinArity(pred Sym, arity int) error {
	if got, ok := u.arities[pred]; ok {
		if got != arity {
			return fmt.Errorf("predicate %s used with arity %d and %d", u.Syms.Name(pred), got, arity)
		}
		return nil
	}
	u.arities[pred] = arity
	return nil
}

// Arity returns the pinned arity of a predicate and whether the
// predicate is known.
func (u *Universe) Arity(pred Sym) (int, bool) {
	a, ok := u.arities[pred]
	return a, ok
}

func atomKey(pred Sym, args []Sym) string {
	var buf [binary.MaxVarintLen32]byte
	b := make([]byte, 0, (len(args)+1)*3)
	n := binary.PutUvarint(buf[:], uint64(pred))
	b = append(b, buf[:n]...)
	for _, a := range args {
		n = binary.PutUvarint(buf[:], uint64(a))
		b = append(b, buf[:n]...)
	}
	return string(b)
}

// InternAtom returns the AID for the ground atom pred(args...),
// interning it if new. It returns an error on arity mismatch.
func (u *Universe) InternAtom(pred Sym, args []Sym) (AID, error) {
	if err := u.PinArity(pred, len(args)); err != nil {
		return -1, err
	}
	key := atomKey(pred, args)
	if id, ok := u.index[key]; ok {
		return id, nil
	}
	id := AID(len(u.atoms))
	cp := make([]Sym, len(args))
	copy(cp, args)
	u.atoms = append(u.atoms, groundAtom{pred: pred, args: cp})
	u.index[key] = id
	return id, nil
}

// LookupAtom returns the AID of a ground atom if it has been interned.
func (u *Universe) LookupAtom(pred Sym, args []Sym) (AID, bool) {
	id, ok := u.index[atomKey(pred, args)]
	return id, ok
}

// NumAtoms returns the number of interned ground atoms.
func (u *Universe) NumAtoms() int { return len(u.atoms) }

// AtomPred returns the predicate of an interned ground atom.
func (u *Universe) AtomPred(id AID) Sym { return u.atoms[id].pred }

// AtomArgs returns the argument symbols of an interned ground atom.
// The slice must not be modified.
func (u *Universe) AtomArgs(id AID) []Sym { return u.atoms[id].args }

// AtomString renders an interned ground atom as text, e.g. "q(a, b)".
func (u *Universe) AtomString(id AID) string {
	if id < 0 || int(id) >= len(u.atoms) {
		return fmt.Sprintf("atom#%d", id)
	}
	ga := u.atoms[id]
	if len(ga.args) == 0 {
		return u.Syms.Name(ga.pred)
	}
	var sb strings.Builder
	sb.WriteString(u.Syms.Name(ga.pred))
	sb.WriteByte('(')
	for i, a := range ga.args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(u.Syms.Name(a))
	}
	sb.WriteByte(')')
	return sb.String()
}

// CompareConsts orders two constant symbols: when both names parse as
// (possibly signed) integers they compare numerically, otherwise
// lexicographically by name. Used by the built-in order comparisons.
func (u *Universe) CompareConsts(a, b Sym) int {
	an, bn := u.Syms.Name(a), u.Syms.Name(b)
	ai, aok := parseInt(an)
	bi, bok := parseInt(bn)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	return strings.Compare(an, bn)
}

// parseInt is a minimal integer parser (no allocation, no stdlib
// strconv error values) accepting an optional leading minus sign.
func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return 0, false
		}
		neg = true
		i = 1
	}
	var n int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
		if n < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

// SortAtoms sorts AIDs by their textual rendering; used to produce
// deterministic, human-stable output.
func (u *Universe) SortAtoms(ids []AID) {
	sort.Slice(ids, func(i, j int) bool {
		a, b := u.atoms[ids[i]], u.atoms[ids[j]]
		an, bn := u.Syms.Name(a.pred), u.Syms.Name(b.pred)
		if an != bn {
			return an < bn
		}
		for k := 0; k < len(a.args) && k < len(b.args); k++ {
			x, y := u.Syms.Name(a.args[k]), u.Syms.Name(b.args[k])
			if x != y {
				return x < y
			}
		}
		return len(a.args) < len(b.args)
	})
}
