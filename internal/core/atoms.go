package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// AID identifies an interned ground atom within a Universe.
type AID int32

// Atom is a (possibly non-ground) atom: a predicate applied to terms.
type Atom struct {
	Pred Sym
	Args []Term
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Universe interns the symbols and ground atoms of one evaluation.
// The extended Herbrand base H*(P, D) of the paper is the set
// {a, +a, -a | a interned here}; marks are kept by Interp, not by the
// universe.
//
// A Universe is safe for concurrent use: interning is append-only and
// idempotent, so concurrent request parsers and engine runs (the
// server evaluates PARK outside the store's commit lock) share one
// universe without external synchronization. Reads take the shared
// lock; interning takes it exclusively only when the atom is new.
type Universe struct {
	Syms *SymbolTable

	mu    sync.RWMutex
	atoms []groundAtom   // AID -> atom
	index map[string]AID // encoded key -> AID

	arities map[Sym]int // pinned predicate arities
}

type groundAtom struct {
	pred Sym
	args []Sym
}

// NewUniverse returns an empty universe with a fresh symbol table.
func NewUniverse() *Universe {
	return &Universe{
		Syms:    NewSymbolTable(),
		index:   make(map[string]AID),
		arities: make(map[Sym]int),
	}
}

// PinArity records (or checks) the arity of a predicate. It returns
// an error if the predicate was previously used with a different
// arity.
func (u *Universe) PinArity(pred Sym, arity int) error {
	u.mu.RLock()
	got, ok := u.arities[pred]
	u.mu.RUnlock()
	if ok {
		return u.checkArity(pred, got, arity)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.pinArityLocked(pred, arity)
}

// pinArityLocked is PinArity under an already-held write lock.
func (u *Universe) pinArityLocked(pred Sym, arity int) error {
	if got, ok := u.arities[pred]; ok {
		return u.checkArity(pred, got, arity)
	}
	u.arities[pred] = arity
	return nil
}

func (u *Universe) checkArity(pred Sym, got, want int) error {
	if got != want {
		return fmt.Errorf("predicate %s used with arity %d and %d", u.Syms.Name(pred), got, want)
	}
	return nil
}

// Arity returns the pinned arity of a predicate and whether the
// predicate is known.
func (u *Universe) Arity(pred Sym) (int, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	a, ok := u.arities[pred]
	return a, ok
}

func atomKey(pred Sym, args []Sym) string {
	var buf [binary.MaxVarintLen32]byte
	b := make([]byte, 0, (len(args)+1)*3)
	n := binary.PutUvarint(buf[:], uint64(pred))
	b = append(b, buf[:n]...)
	for _, a := range args {
		n = binary.PutUvarint(buf[:], uint64(a))
		b = append(b, buf[:n]...)
	}
	return string(b)
}

// InternAtom returns the AID for the ground atom pred(args...),
// interning it if new. It returns an error on arity mismatch.
func (u *Universe) InternAtom(pred Sym, args []Sym) (AID, error) {
	key := atomKey(pred, args)
	// Fast path: the atom (and its pinned arity) already exist.
	u.mu.RLock()
	id, ok := u.index[key]
	u.mu.RUnlock()
	if ok {
		return id, nil
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if err := u.pinArityLocked(pred, len(args)); err != nil {
		return -1, err
	}
	if id, ok := u.index[key]; ok {
		return id, nil
	}
	id = AID(len(u.atoms))
	cp := make([]Sym, len(args))
	copy(cp, args)
	u.atoms = append(u.atoms, groundAtom{pred: pred, args: cp})
	u.index[key] = id
	return id, nil
}

// LookupAtom returns the AID of a ground atom if it has been interned.
func (u *Universe) LookupAtom(pred Sym, args []Sym) (AID, bool) {
	key := atomKey(pred, args)
	u.mu.RLock()
	defer u.mu.RUnlock()
	id, ok := u.index[key]
	return id, ok
}

// NumAtoms returns the number of interned ground atoms.
func (u *Universe) NumAtoms() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.atoms)
}

// atom returns the interned atom record and whether id is valid.
// Argument slices are immutable after interning, so the returned
// record may be used without holding the lock.
func (u *Universe) atom(id AID) (groundAtom, bool) {
	u.mu.RLock()
	defer u.mu.RUnlock()
	if id < 0 || int(id) >= len(u.atoms) {
		return groundAtom{}, false
	}
	return u.atoms[id], true
}

// AtomPred returns the predicate of an interned ground atom.
func (u *Universe) AtomPred(id AID) Sym {
	ga, _ := u.atom(id)
	return ga.pred
}

// AtomArgs returns the argument symbols of an interned ground atom.
// The slice must not be modified.
func (u *Universe) AtomArgs(id AID) []Sym {
	ga, _ := u.atom(id)
	return ga.args
}

// AtomString renders an interned ground atom as text, e.g. "q(a, b)".
func (u *Universe) AtomString(id AID) string {
	ga, ok := u.atom(id)
	if !ok {
		return fmt.Sprintf("atom#%d", id)
	}
	if len(ga.args) == 0 {
		return u.Syms.Name(ga.pred)
	}
	var sb strings.Builder
	sb.WriteString(u.Syms.Name(ga.pred))
	sb.WriteByte('(')
	for i, a := range ga.args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(u.Syms.Name(a))
	}
	sb.WriteByte(')')
	return sb.String()
}

// CompareConsts orders two constant symbols: when both names parse as
// (possibly signed) integers they compare numerically, otherwise
// lexicographically by name. Used by the built-in order comparisons.
func (u *Universe) CompareConsts(a, b Sym) int {
	an, bn := u.Syms.Name(a), u.Syms.Name(b)
	ai, aok := parseInt(an)
	bi, bok := parseInt(bn)
	if aok && bok {
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	}
	return strings.Compare(an, bn)
}

// parseInt is a minimal integer parser (no allocation, no stdlib
// strconv error values) accepting an optional leading minus sign.
func parseInt(s string) (int64, bool) {
	if s == "" {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' {
		if len(s) == 1 {
			return 0, false
		}
		neg = true
		i = 1
	}
	var n int64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int64(c-'0')
		if n < 0 {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

// SortAtoms sorts AIDs by their textual rendering; used to produce
// deterministic, human-stable output.
func (u *Universe) SortAtoms(ids []AID) {
	// Snapshot the append-only atom slice once; prefix entries are
	// immutable, so the comparator needs no further locking.
	u.mu.RLock()
	atoms := u.atoms
	u.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool {
		a, b := atoms[ids[i]], atoms[ids[j]]
		an, bn := u.Syms.Name(a.pred), u.Syms.Name(b.pred)
		if an != bn {
			return an < bn
		}
		for k := 0; k < len(a.args) && k < len(b.args); k++ {
			x, y := u.Syms.Name(a.args[k]), u.Syms.Name(b.args[k])
			if x != y {
				return x < y
			}
		}
		return len(a.args) < len(b.args)
	})
}
