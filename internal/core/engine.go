package core

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Options configures an Engine. The zero value is the recommended
// configuration: semi-naive Γ evaluation with indexed matching and the
// provenance-extended conflict definition (see DESIGN.md).
type Options struct {
	// Naive disables the semi-naive (delta-driven) evaluation of Γ and
	// re-evaluates every rule against the full interpretation at every
	// step. Exposed for the B5 ablation.
	Naive bool
	// NoIndex disables hash-indexed literal matching in favor of
	// linear scans. Exposed for the B6 ablation.
	NoIndex bool
	// ResolveOne resolves only the first conflict (lowest atom id) at
	// every inconsistency instead of all of them — the paper's §4.2
	// closing remark suggests blocking "only a (non-empty) part" of
	// the conflicts to avoid unnecessarily blocked instances. More
	// restarts, smaller blocked sets; exposed for the B9 ablation.
	ResolveOne bool
	// StrictConflicts restricts conflict triples to the paper's
	// literal definition (both sides must have currently valid
	// bodies). Under this definition the Δ operator can fail to make
	// progress on programs whose derivations go stale (DESIGN.md §2);
	// in that case Run returns ErrNoProgress instead of looping.
	StrictConflicts bool
	// Parallel evaluates full Γ steps (the first step of every phase,
	// or every step under Naive) with this many worker goroutines.
	// Values below 2 mean sequential evaluation. Results are
	// bit-identical to sequential runs; incremental semi-naive steps
	// are always sequential (their per-step work is tiny).
	Parallel int
	// Explain attaches an Explainer to the Result, retaining the final
	// phase's derivation provenance for "why is this atom here?"
	// queries. Costs memory proportional to the derivation count.
	Explain bool
	// Tracer observes the run; nil means no tracing.
	Tracer Tracer
	// MaxPhases aborts the run with an error after this many phases;
	// 0 means the theoretical bound (one plus the number of groundings
	// ever blocked) applies implicitly and no explicit cap is set.
	MaxPhases int
}

// ErrNoProgress is returned when StrictConflicts is set and an
// inconsistent step yields no resolvable conflict triple, so the
// literal Δ operator of the paper would cycle forever.
var ErrNoProgress = errors.New("park: inconsistency without resolvable conflict (stale derivation); rerun without StrictConflicts")

// Stats summarizes one PARK evaluation.
type Stats struct {
	// Phases is the number of inflationary phases (1 + restarts).
	Phases int
	// Steps is the total number of applied Γ steps across phases.
	Steps int
	// Conflicts is the number of conflict triples resolved.
	Conflicts int
	// StaleConflicts counts conflicts whose stale side had to be
	// recovered from provenance (always 0 with StrictConflicts).
	StaleConflicts int
	// BlockedInstances is the final size of the blocked set B.
	BlockedInstances int
	// Derivations counts every rule-instance enumeration that produced
	// a head, including re-derivations of known facts.
	Derivations int64
	// NewFacts counts marked atoms added to interpretations, summed
	// over phases.
	NewFacts int64
}

// Result is the outcome of a PARK evaluation.
type Result struct {
	// Output is PARK(P, D, U): the result database instance.
	Output *Database
	// Stats summarizes the run.
	Stats Stats
	// RunStats carries the extended operational counters and timings
	// of the run (RunStats.Stats duplicates Stats).
	RunStats RunStats
	// Blocked is the final blocked set B in blocking order.
	Blocked []Grounding
	// Conflicts lists the conflicts in resolution order together with
	// their decisions.
	Conflicts []ResolvedConflict
	// RuleFirings counts, per rule of P_U (indexed like
	// SelectInput.Program), how many distinct groundings fired across
	// all phases — re-derivations within a phase are not counted, but
	// phases restart the count (so a rule firing in 3 phases counts 3
	// groundings even if identical). Useful for profiling rule sets.
	RuleFirings []int64
	// Explainer is non-nil when Options.Explain was set; it builds
	// derivation trees over this run's final state.
	Explainer *Explainer
}

// ResolvedConflict pairs a conflict with its SELECT decision.
type ResolvedConflict struct {
	Conflict Conflict
	Decision Decision
}

// RuleStat aggregates one rule's contribution to a run, indexed like
// P_U (SelectInput.Program): program rules first, then the
// transaction's update rules. The counters are incremented at the
// same sites as the run-wide totals, so they sum exactly: Fires to
// Stats.Derivations, Groundings to RunStats.Groundings, Blocked to
// Stats.BlockedInstances.
type RuleStat struct {
	// Groundings counts enumerations of this rule folded into Γ steps,
	// before per-step dedup and blocked-set filtering.
	Groundings int64
	// Fires counts derivations that produced a head (after dedup and
	// blocked filtering) — the per-rule split of Stats.Derivations.
	Fires int64
	// MatchNanos is the cumulative wall-clock time spent enumerating
	// this rule's groundings during Γ steps (body matching plus the
	// fold-in of each grounding). Parallel full steps sum the per-shard
	// matching time, so the total can exceed the run's wall clock.
	MatchNanos int64
	// ConflictWins and ConflictLosses count this rule's groundings on
	// the winning resp. losing side of resolved conflict triples.
	ConflictWins   int64
	ConflictLosses int64
	// Blocked counts this rule's groundings newly added to the blocked
	// set B — the per-rule split of Stats.BlockedInstances.
	Blocked int64
}

// RunStats extends Stats with the operational counters and timings
// the observability layer exposes: how the Δ operator spent its time
// (per-phase wall clock), how Γ evaluation split between full and
// incremental steps, how much raw grounding enumeration happened, and
// how conflict resolution decided. All fields describe exactly one
// Engine.Run.
type RunStats struct {
	Stats
	// Restarts is the number of bi-structure restarts (§5): phases
	// after the first, each triggered by a conflict resolution.
	Restarts int
	// FullSteps counts Γ evaluations over the whole interpretation
	// (the first step of every phase, or every step under
	// Options.Naive), including the final evaluation that detects the
	// ω fixpoint.
	FullSteps int
	// DeltaSteps counts semi-naive (delta-driven) Γ evaluations.
	DeltaSteps int
	// Groundings counts every rule-grounding enumeration folded into
	// a step, before per-step deduplication and blocked-set filtering
	// (Stats.Derivations counts after both).
	Groundings int64
	// Shards counts the preset-binding chunks dispatched to the
	// parallel worker pool (0 for sequential runs).
	Shards int64
	// InsertDecisions and DeleteDecisions split Stats.Conflicts by
	// SELECT outcome: conflicts the strategy resolved by keeping the
	// insertion resp. the deletion.
	InsertDecisions int
	DeleteDecisions int
	// PhaseWall is the wall-clock duration of each phase, in order.
	PhaseWall []time.Duration
	// Wall is the total wall-clock duration of the run.
	Wall time.Duration
	// Rules aggregates per-rule counters, indexed like P_U (program
	// rules first, then the transaction's update rules). The per-rule
	// profiler in persist folds these into its rolling profile.
	Rules []RuleStat
}

// Engine evaluates the PARK semantics for one program over databases
// sharing one universe. An Engine is not safe for concurrent use, but
// may be reused for sequential runs.
type Engine struct {
	u        *Universe
	prog     *Program
	strategy Strategy
	opts     Options

	// per-run state
	run *runState
	// lastRun retains the previous Run's extended statistics for
	// RunStats().
	lastRun RunStats
}

// NewEngine validates the program and returns an engine using the
// given conflict resolution strategy (nil defaults to inertia).
func NewEngine(u *Universe, p *Program, strategy Strategy, opts Options) (*Engine, error) {
	if strategy == nil {
		strategy = InertiaStrategy{}
	}
	if err := p.Validate(u); err != nil {
		return nil, err
	}
	return &Engine{u: u, prog: p, strategy: strategy, opts: opts}, nil
}

// Universe returns the engine's universe.
func (e *Engine) Universe() *Universe { return e.u }

// Program returns the engine's program (without update rules).
func (e *Engine) Program() *Program { return e.prog }

// RunStats returns the extended statistics of the most recent Run
// (the zero value before any run). For a completed run it equals the
// Result's RunStats field; after a failed run it holds the counters
// accumulated up to the failure, which is useful when diagnosing
// phase-limit or context-cancellation aborts.
func (e *Engine) RunStats() RunStats { return e.lastRun }

type provKey struct {
	op   HeadOp
	atom AID
}

// candidate is one derivation produced by a Γ step before it is
// applied.
type candidate struct {
	op   HeadOp
	atom AID
}

type runState struct {
	progU   *Program // P_U
	d       *Database
	in      *Interp
	blocked *BlockedSet
	// prov records, per marked atom, every grounding that derived it
	// during the current phase (pruned on restart).
	prov map[provKey]map[string]Grounding

	// per-step scratch
	stepSeen  map[string]struct{} // grounding keys enumerated this step
	stepFacts []candidate
	stepHave  map[provKey]struct{}

	// deltas from the previously applied step (semi-naive)
	deltaPlus  []AID
	deltaMinus []AID

	stats     RunStats
	conflicts []ResolvedConflict
	// rules holds the per-rule counters, indexed like progU.Rules;
	// stats.Rules aliases it so partial counts survive failed runs.
	rules  []RuleStat
	tracer Tracer
}

// Run computes PARK(P, D, U): it forms P_U from the transaction
// updates, iterates the Δ operator from the bi-structure <∅, D> to its
// fixpoint ω, and incorporates the surviving marks. D is not modified.
func (e *Engine) Run(ctx context.Context, d *Database, updates []Update) (*Result, error) {
	if d == nil {
		d = NewDatabase()
	}
	progU := &Program{Rules: append(append([]Rule(nil), e.prog.Rules...), UpdateRules(e.u, updates)...)}
	// Update rules are ground by construction but still validated so a
	// malformed Update surfaces here rather than mid-run.
	if err := progU.Validate(e.u); err != nil {
		return nil, fmt.Errorf("park: invalid transaction update: %w", err)
	}
	tracer := e.opts.Tracer
	if tracer == nil {
		tracer = NopTracer{}
	}
	rs := &runState{
		rules:    make([]RuleStat, len(progU.Rules)),
		progU:    progU,
		d:        d,
		in:       NewInterp(e.u, d),
		blocked:  NewBlockedSet(),
		prov:     make(map[provKey]map[string]Grounding),
		stepSeen: make(map[string]struct{}),
		stepHave: make(map[provKey]struct{}),
		tracer:   tracer,
	}
	rs.in.UseIndex = !e.opts.NoIndex
	// Alias the per-rule counters into the stats snapshot so partial
	// counts survive a failed run via e.lastRun.
	rs.stats.Rules = rs.rules
	if ta, ok := tracer.(interpAttacher); ok {
		ta.SetInterp(rs.in)
	}
	if pa, ok := tracer.(programAttacher); ok {
		pa.SetProgram(progU)
	}
	e.run = rs
	start := time.Now()
	defer func() {
		rs.stats.Wall = time.Since(start)
		rs.stats.Restarts = rs.stats.Phases - 1
		if rs.stats.Restarts < 0 {
			rs.stats.Restarts = 0
		}
		e.lastRun = rs.stats
		e.run = nil
	}()

	for {
		rs.stats.Phases++
		if e.opts.MaxPhases > 0 && rs.stats.Phases > e.opts.MaxPhases {
			return nil, fmt.Errorf("park: phase limit %d exceeded", e.opts.MaxPhases)
		}
		phaseStart := time.Now()
		fixpoint, err := e.runPhase(ctx)
		rs.stats.PhaseWall = append(rs.stats.PhaseWall, time.Since(phaseStart))
		if err != nil {
			return nil, err
		}
		if fixpoint {
			break
		}
	}
	rs.stats.BlockedInstances = rs.blocked.Len()
	rs.stats.Wall = time.Since(start)
	rs.stats.Restarts = rs.stats.Phases - 1
	firings := make([]int64, len(rs.rules))
	for i := range rs.rules {
		firings[i] = rs.rules[i].Fires
	}
	res := &Result{
		Output:      rs.in.Incorp(),
		Stats:       rs.stats.Stats,
		RunStats:    rs.stats,
		Blocked:     append([]Grounding(nil), rs.blocked.All()...),
		Conflicts:   rs.conflicts,
		RuleFirings: firings,
	}
	if e.opts.Explain {
		res.Explainer = &Explainer{u: e.u, prog: progU, in: rs.in, prov: rs.prov}
	}
	return res, nil
}

// runPhase runs one inflationary phase from the kernel D. It returns
// true when the phase reached the ω fixpoint, false when it was
// interrupted by conflict resolution (B grew; caller restarts).
func (e *Engine) runPhase(ctx context.Context) (bool, error) {
	rs := e.run
	rs.in.ResetPhase()
	clear(rs.prov)
	rs.deltaPlus, rs.deltaMinus = nil, nil
	rs.tracer.PhaseStart(rs.stats.Phases)

	m := newMatcher(rs.in)
	step := 0
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		step++
		full := step == 1 || e.opts.Naive
		inconsistent := e.gammaStep(m, full)
		if len(rs.stepFacts) == 0 && len(inconsistent) == 0 {
			rs.tracer.PhaseEnd(rs.stats.Phases, step-1, true)
			return true, nil
		}
		if len(inconsistent) != 0 {
			rs.tracer.Inconsistency(rs.stats.Phases, step, inconsistent)
			progressed, err := e.resolveConflicts(inconsistent)
			if err != nil {
				return false, err
			}
			if !progressed {
				return false, ErrNoProgress
			}
			rs.tracer.PhaseEnd(rs.stats.Phases, step-1, false)
			return false, nil
		}
		e.applyStep(step)
	}
}

// applyStep commits the step's candidate facts to the interpretation
// and records them as the next semi-naive delta.
func (e *Engine) applyStep(step int) {
	rs := e.run
	rs.deltaPlus = rs.deltaPlus[:0]
	rs.deltaMinus = rs.deltaMinus[:0]
	added := make([]MarkedAtom, 0, len(rs.stepFacts))
	for _, c := range rs.stepFacts {
		if c.op == OpInsert {
			rs.in.AddPlus(c.atom)
			rs.deltaPlus = append(rs.deltaPlus, c.atom)
		} else {
			rs.in.AddMinus(c.atom)
			rs.deltaMinus = append(rs.deltaMinus, c.atom)
		}
		added = append(added, MarkedAtom{Op: c.op, Atom: c.atom})
	}
	rs.stats.Steps++
	rs.stats.NewFacts += int64(len(added))
	rs.tracer.StepApplied(rs.stats.Phases, step, added)
}
