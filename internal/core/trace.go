package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// MarkedAtom is an atom with its mark, e.g. +q(a) or -s(b).
type MarkedAtom struct {
	Op   HeadOp
	Atom AID
}

// Tracer observes the progress of one PARK evaluation. All methods
// are called synchronously from the engine; implementations must not
// retain the slices they are passed.
type Tracer interface {
	// PhaseStart is called when an inflationary phase begins (phase
	// counts from 1); every phase starts from the unmarked kernel D.
	PhaseStart(phase int)
	// StepApplied is called after a consistent Γ step extended the
	// interpretation with the given marked atoms (step counts from 1
	// within the phase).
	StepApplied(phase, step int, added []MarkedAtom)
	// Inconsistency is called when the next Γ step would be
	// inconsistent, with the atoms that would carry both marks.
	Inconsistency(phase, step int, atoms []AID)
	// ConflictResolved is called for each conflict triple with the
	// SELECT decision and the groundings that were newly blocked.
	ConflictResolved(phase int, c Conflict, dec Decision, blocked []Grounding)
	// PhaseEnd is called when a phase ends; fixpoint is true when the
	// phase reached ω (no new facts), false when it was interrupted by
	// an inconsistency.
	PhaseEnd(phase, steps int, fixpoint bool)
}

// NopTracer ignores all events.
type NopTracer struct{}

// PhaseStart implements Tracer.
func (NopTracer) PhaseStart(int) {}

// StepApplied implements Tracer.
func (NopTracer) StepApplied(int, int, []MarkedAtom) {}

// Inconsistency implements Tracer.
func (NopTracer) Inconsistency(int, int, []AID) {}

// ConflictResolved implements Tracer.
func (NopTracer) ConflictResolved(int, Conflict, Decision, []Grounding) {}

// PhaseEnd implements Tracer.
func (NopTracer) PhaseEnd(int, int, bool) {}

// TextTracer writes a human-readable trace in the style of the
// paper's worked examples: after every step it prints the full
// i-interpretation {p, +q, -a, ...}.
type TextTracer struct {
	W       io.Writer
	U       *Universe
	P       *Program
	In      *Interp // set by the engine before the run starts
	Verbose bool    // also print conflict triples in full
}

// PhaseStart implements Tracer.
func (t *TextTracer) PhaseStart(phase int) {
	fmt.Fprintf(t.W, "phase %d: restart from I- = %s\n", phase, t.interpString())
}

// StepApplied implements Tracer.
func (t *TextTracer) StepApplied(phase, step int, added []MarkedAtom) {
	fmt.Fprintf(t.W, "  step %d: %s\n", step, t.interpString())
}

// Inconsistency implements Tracer. The atoms arrive ordered by atom
// id, which depends on interning order — the same program traced in a
// freshly parsed universe and in a WAL-replayed one would render the
// set in different orders. Sorting by name keeps golden traces stable.
func (t *TextTracer) Inconsistency(phase, step int, atoms []AID) {
	names := make([]string, len(atoms))
	for i, a := range atoms {
		names[i] = t.U.AtomString(a)
	}
	sort.Strings(names)
	fmt.Fprintf(t.W, "  step %d would be inconsistent on {%s}\n", step, strings.Join(names, ", "))
}

// ConflictResolved implements Tracer.
func (t *TextTracer) ConflictResolved(phase int, c Conflict, dec Decision, blocked []Grounding) {
	if t.Verbose {
		fmt.Fprintf(t.W, "  conflict %s -> %s\n", c.String(t.U, t.P), dec)
	} else {
		fmt.Fprintf(t.W, "  conflict on %s -> %s\n", t.U.AtomString(c.Atom), dec)
	}
	for _, g := range blocked {
		fmt.Fprintf(t.W, "    block %s\n", g.String(t.U, t.P))
	}
}

// PhaseEnd implements Tracer.
func (t *TextTracer) PhaseEnd(phase, steps int, fixpoint bool) {
	if fixpoint {
		fmt.Fprintf(t.W, "phase %d: fixpoint after %d step(s): %s\n", phase, steps, t.interpString())
	}
}

func (t *TextTracer) interpString() string {
	if t.In == nil {
		return "{}"
	}
	var parts []string
	base := append([]AID(nil), t.In.BaseAtoms()...)
	t.U.SortAtoms(base)
	for _, id := range base {
		parts = append(parts, t.U.AtomString(id))
	}
	plus, minus := t.In.Snapshot()
	for _, id := range plus {
		parts = append(parts, "+"+t.U.AtomString(id))
	}
	for _, id := range minus {
		parts = append(parts, "-"+t.U.AtomString(id))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// SetInterp lets the engine attach the live interpretation.
func (t *TextTracer) SetInterp(in *Interp) { t.In = in }

// interpAttacher is implemented by tracers that want access to the
// live interpretation (e.g. TextTracer).
type interpAttacher interface{ SetInterp(*Interp) }

// programAttacher is implemented by tracers that want access to P_U —
// the program extended with the transaction's update rules — whose
// rule indexes Conflict and Grounding values refer to. The engine
// calls it once per Run, before any other tracer method.
type programAttacher interface{ SetProgram(*Program) }

// CollectingTracer records every event for later inspection; used by
// tests and by strategies that need history.
type CollectingTracer struct {
	Phases     int
	StepsTotal int
	Events     []TraceEvent
}

// TraceEvent is one recorded engine event.
type TraceEvent struct {
	Kind     string // "phase", "step", "inconsistent", "conflict", "phase-end"
	Phase    int
	Step     int
	Added    []MarkedAtom
	Atoms    []AID
	Conflict Conflict
	Decision Decision
	Blocked  []Grounding
	Fixpoint bool
}

// PhaseStart implements Tracer.
func (c *CollectingTracer) PhaseStart(phase int) {
	c.Phases = phase
	c.Events = append(c.Events, TraceEvent{Kind: "phase", Phase: phase})
}

// StepApplied implements Tracer.
func (c *CollectingTracer) StepApplied(phase, step int, added []MarkedAtom) {
	c.StepsTotal++
	c.Events = append(c.Events, TraceEvent{Kind: "step", Phase: phase, Step: step, Added: append([]MarkedAtom(nil), added...)})
}

// Inconsistency implements Tracer.
func (c *CollectingTracer) Inconsistency(phase, step int, atoms []AID) {
	c.Events = append(c.Events, TraceEvent{Kind: "inconsistent", Phase: phase, Step: step, Atoms: append([]AID(nil), atoms...)})
}

// ConflictResolved implements Tracer.
func (c *CollectingTracer) ConflictResolved(phase int, cf Conflict, dec Decision, blocked []Grounding) {
	cp := Conflict{
		Atom: cf.Atom,
		Ins:  append([]Grounding(nil), cf.Ins...),
		Del:  append([]Grounding(nil), cf.Del...),
	}
	c.Events = append(c.Events, TraceEvent{Kind: "conflict", Phase: phase, Conflict: cp, Decision: dec, Blocked: append([]Grounding(nil), blocked...)})
}

// PhaseEnd implements Tracer.
func (c *CollectingTracer) PhaseEnd(phase, steps int, fixpoint bool) {
	c.Events = append(c.Events, TraceEvent{Kind: "phase-end", Phase: phase, Step: steps, Fixpoint: fixpoint})
}

// Conflicts returns the recorded conflict events.
func (c *CollectingTracer) Conflicts() []TraceEvent {
	var out []TraceEvent
	for _, e := range c.Events {
		if e.Kind == "conflict" {
			out = append(out, e)
		}
	}
	return out
}
