package core

import (
	"sync"
	"time"
)

// enumRulesParallel evaluates a full Γ step with Options.Parallel
// worker goroutines. Work is sharded below the rule level: for each
// rule the matcher's first enumerable body literal is identified and
// its matching rows become preset bindings, which are chunked across
// workers. Each chunk enumerates the remaining body under its presets
// and returns groundings; chunks are folded into the step in order,
// so the observable outcome is bit-identical to sequential
// evaluation (the sequential matcher enumerates exactly the same
// first literal in the same row order).
//
// Workers are pure readers: indexes are frozen up front (incremental,
// so repeated freezing costs only newly appended rows), no atom is
// interned and no engine state is touched off the main goroutine.
func (e *Engine) enumRulesParallel() {
	rs := e.run
	if rs.in.UseIndex {
		rs.in.Store().BuildAllIndexes()
	}

	type task struct {
		rule    int
		presets [][]Sym // nil element = match the whole rule unsharded
	}
	var tasks []task
	seed := newMatcher(rs.in)
	for ri := range rs.progU.Rules {
		r := &rs.progU.Rules[ri]
		li := shardLiteral(seed, r)
		if li < 0 {
			tasks = append(tasks, task{rule: ri, presets: [][]Sym{nil}})
			continue
		}
		presets := seed.presetsForLiteral(r, r.Body[li])
		if len(presets) == 0 {
			continue // the shard literal has no matching rows: rule cannot fire
		}
		// Chunk the presets so each worker gets substantial work but
		// the pool stays balanced.
		chunk := len(presets)/(e.opts.Parallel*4) + 1
		for lo := 0; lo < len(presets); lo += chunk {
			hi := lo + chunk
			if hi > len(presets) {
				hi = len(presets)
			}
			tasks = append(tasks, task{rule: ri, presets: presets[lo:hi]})
		}
	}

	rs.stats.Shards += int64(len(tasks))
	type shardResult struct {
		gs    []Grounding
		nanos int64
	}
	results := make([]shardResult, len(tasks))
	workers := e.opts.Parallel
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMatcher(rs.in)
			for {
				mu.Lock()
				ti := next
				next++
				mu.Unlock()
				if ti >= len(tasks) {
					return
				}
				t := tasks[ti]
				var gs []Grounding
				start := time.Now()
				for _, preset := range t.presets {
					m.Match(&rs.progU.Rules[t.rule], preset, func(binding []Sym) bool {
						gs = append(gs, Grounding{Rule: int32(t.rule), Args: append([]Sym(nil), binding...)})
						return true
					})
				}
				results[ti] = shardResult{gs: gs, nanos: time.Since(start).Nanoseconds()}
			}
		}()
	}
	wg.Wait()

	// Per-rule match nanos sum the shards' wall times, so under
	// parallel evaluation MatchNanos can exceed the run's wall clock
	// (documented on RuleStat).
	for ti, res := range results {
		rs.rules[tasks[ti].rule].MatchNanos += res.nanos
		for _, g := range res.gs {
			e.processGrounding(g)
		}
	}
}

// shardLiteral returns the body index of the literal the sequential
// matcher would enumerate first on an empty binding — mirroring
// matcher.pick, with fully bound (all-constant) literals consumed as
// filters — or -1 when the rule has no enumerable literal with
// variables (ground rules, body-less rules).
func shardLiteral(m *matcher, r *Rule) int {
	best, bestBound, bestSize := -1, -1, 0
	for li := range r.Body {
		lit := r.Body[li]
		if !lit.Kind.IsBinding() {
			continue
		}
		vars, consts := 0, 0
		for _, t := range lit.Atom.Args {
			if t.IsVar() {
				vars++
			} else {
				consts++
			}
		}
		if vars == 0 {
			continue // pure filter; evaluated inside Match either way
		}
		// Mirror matcher.pick on the empty binding exactly: the bound
		// count of a literal is its constant count, ties go to the
		// smaller relation, then to body order.
		size := m.literalSize(lit)
		if consts > bestBound || (consts == bestBound && size < bestSize) {
			best, bestBound, bestSize = li, consts, size
		}
	}
	return best
}

// presetsForLiteral enumerates the rows currently matching the
// literal and returns the distinct preset bindings they induce, in
// row order.
func (m *matcher) presetsForLiteral(r *Rule, lit Literal) [][]Sym {
	var presets [][]Sym
	seen := make(map[string]struct{})
	var args []Sym
	var key []byte
	for _, rel := range m.literalRelations(lit) {
		n := rel.Len()
		for row := 0; row < n; row++ {
			tuple := rel.Row(row)
			args = args[:0]
			for _, v := range tuple {
				args = append(args, Sym(v))
			}
			preset, ok := unifyAtomArgs(r, lit.Atom, args)
			if !ok {
				continue
			}
			key = key[:0]
			for _, s := range preset {
				key = append(key, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
			}
			if _, dup := seen[string(key)]; dup {
				continue
			}
			seen[string(key)] = struct{}{}
			presets = append(presets, preset)
		}
	}
	return presets
}
