package core_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// The §5 inertia example's full trace, in the paper's step-by-step
// style. This golden test pins both the trace format and the exact
// intermediate i-interpretations (1)–(7) the paper prints.
const sec5GoldenTrace = `phase 1: restart from I- = {p}
  step 1: {p, +a, +q}
  step 2 would be inconsistent on {q}
  conflict on q -> delete
    block (r2)
phase 2: restart from I- = {p}
  step 1: {p, +a}
  step 2: {p, +a, +b, -q}
  step 3 would be inconsistent on {q}
  conflict on q -> delete
    block (r5)
phase 3: restart from I- = {p}
  step 1: {p, +a}
  step 2: {p, +a, +b, -q}
phase 3: fixpoint after 2 step(s): {p, +a, +b, -q}
`

func TestTextTracerGoldenSec5(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", sec5Program)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", `p.`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr := &core.TextTracer{W: &sb, U: u, P: prog}
	eng, err := core.NewEngine(u, prog, nil, core.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, nil); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != sec5GoldenTrace {
		t.Fatalf("trace changed.\n--- got ---\n%s--- want ---\n%s", got, sec5GoldenTrace)
	}
}

// The paper prints the intermediate interpretations of the §4.2 graph
// example's first phase; check the I1 line verbatim.
func TestTextTracerGraphI1(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `
		rule r1: p(X), p(Y) -> +q(X, Y).
		rule r2: q(X, X) -> -q(X, X).
		rule r3: q(X, Y), q(X, Z), q(Z, Y) -> -q(X, Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", `p(a). p(b). p(c).`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr := &core.TextTracer{W: &sb, U: u, P: prog}
	strat := core.StrategyFunc{StrategyName: "g", Fn: func(in *core.SelectInput) (core.Decision, error) {
		args := in.Universe.AtomArgs(in.Conflict.Atom)
		x, y := in.Universe.Syms.Name(args[0]), in.Universe.Syms.Name(args[1])
		if x == y || (x == "a" && y == "c") || (x == "c" && y == "a") {
			return core.DecideDelete, nil
		}
		return core.DecideInsert, nil
	}}
	eng, err := core.NewEngine(u, prog, strat, core.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), db, nil); err != nil {
		t.Fatal(err)
	}
	wantI1 := "step 1: {p(a), p(b), p(c), +q(a, a), +q(a, b), +q(a, c), +q(b, a), +q(b, b), +q(b, c), +q(c, a), +q(c, b), +q(c, c)}"
	if !strings.Contains(sb.String(), wantI1) {
		t.Fatalf("I1 line missing from trace:\n%s", sb.String())
	}
	wantI2 := "step 1: {p(a), p(b), p(c), +q(a, b), +q(b, a), +q(b, c), +q(c, b)}"
	if !strings.Contains(sb.String(), wantI2) {
		t.Fatalf("I2 line missing from trace:\n%s", sb.String())
	}
}

// TestTextTracerInconsistencySorted pins the determinism fix for the
// inconsistency rendering: the engine hands Inconsistency atoms ordered
// by atom id, which is interning order — a WAL-replayed universe and a
// freshly parsed one can intern the same atoms in different orders. The
// tracer must sort by name so the rendered line is stable either way.
func TestTextTracerInconsistencySorted(t *testing.T) {
	u := core.NewUniverse()
	// Intern in reverse alphabetical order so id order != name order.
	var ids []core.AID
	for _, name := range []string{"zeta", "mid", "alpha"} {
		id, err := u.InternAtom(u.Syms.Intern(name), nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var sb strings.Builder
	tr := &core.TextTracer{W: &sb, U: u}
	tr.Inconsistency(2, 3, ids)
	want := "  step 3 would be inconsistent on {alpha, mid, zeta}\n"
	if sb.String() != want {
		t.Fatalf("rendered %q, want %q", sb.String(), want)
	}
}
