// Package core implements the PARK semantics for active rules as
// defined by Gottlob, Moerkotte and Subrahmanian (EDBT 1996).
//
// The package provides the full pipeline of the paper: the rule and
// atom model (§2), i-interpretations with literal validity and the
// incorporate operator (§4.2), the immediate consequence operator
// Γ_{P,B}, conflict detection and blocked rule instances, the
// bi-structure transition operator Δ and its fixpoint ω, the ECA
// extension with transaction updates (§4.3), and the pluggable
// conflict resolution interface SELECT (§3, §5).
package core

import (
	"fmt"
	"strconv"
	"sync"
)

// Sym is an interned constant or predicate symbol. Symbols are
// assigned densely from 0 by a SymbolTable.
type Sym int32

// NoSym is the sentinel for "no symbol"; it doubles as the unbound
// marker in substitutions and storage patterns.
const NoSym Sym = -1

// SymbolTable interns the constant and predicate symbols of one
// evaluation universe. The zero value is not usable; use NewSymbolTable.
// All methods are safe for concurrent use: symbols are only ever
// appended, and interning is idempotent, so concurrent parsers and
// engine runs over one universe observe a consistent table.
type SymbolTable struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]Sym
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]Sym)}
}

// Intern returns the symbol for name, assigning a fresh one if the
// name has not been seen before.
func (t *SymbolTable) Intern(name string) Sym {
	t.mu.RLock()
	s, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return s
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.ids[name]; ok {
		return s
	}
	s = Sym(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = s
	return s
}

// Lookup returns the symbol for name and whether it is known.
func (t *SymbolTable) Lookup(name string) (Sym, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.ids[name]
	return s, ok
}

// Name returns the string form of a symbol. Unknown symbols render as
// "#<n>" so diagnostics never panic.
func (t *SymbolTable) Name(s Sym) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if s < 0 || int(s) >= len(t.names) {
		return "#" + strconv.Itoa(int(s))
	}
	return t.names[s]
}

// Len returns the number of interned symbols.
func (t *SymbolTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names)
}

// Term is a constant or a variable occurring in a rule. A term is
// encoded in a single int32: values >= 0 are constant symbols, values
// < 0 are variables (variable i is encoded as -(i+1)). Variables are
// local to their rule and numbered densely from 0.
type Term struct{ v int32 }

// ConstTerm returns the term for a constant symbol.
func ConstTerm(s Sym) Term {
	if s < 0 {
		panic(fmt.Sprintf("core: invalid constant symbol %d", s))
	}
	return Term{int32(s)}
}

// VarTerm returns the term for rule variable index i.
func VarTerm(i int) Term {
	if i < 0 {
		panic(fmt.Sprintf("core: invalid variable index %d", i))
	}
	return Term{int32(-(i + 1))}
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.v < 0 }

// Var returns the variable index; it panics on constants.
func (t Term) Var() int {
	if t.v >= 0 {
		panic("core: Var on constant term")
	}
	return int(-t.v - 1)
}

// Const returns the constant symbol; it panics on variables.
func (t Term) Const() Sym {
	if t.v < 0 {
		panic("core: Const on variable term")
	}
	return Sym(t.v)
}
