package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func queryBindings(t *testing.T, dbSrc, qSrc string) [][]core.Sym {
	t.Helper()
	u := core.NewUniverse()
	d, err := parser.ParseDatabase(u, "", dbSrc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery(u, "", qSrc)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]core.Sym
	if err := core.EvalQuery(u, d, q, func(b []core.Sym) bool {
		out = append(out, append([]core.Sym(nil), b...))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestEvalQueryJoin(t *testing.T) {
	rows := queryBindings(t, `
		emp(tom). emp(ann).
		dept(tom, sales). dept(ann, dev).
	`, `emp(X), dept(X, D)`)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestEvalQueryNegation(t *testing.T) {
	rows := queryBindings(t, `
		emp(tom). emp(ann). active(ann).
	`, `emp(X), !active(X)`)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
}

func TestEvalQueryBuiltin(t *testing.T) {
	rows := queryBindings(t, `p(a). p(b).`, `p(X), p(Y), X != Y`)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestEvalQueryGround(t *testing.T) {
	if rows := queryBindings(t, `p(a).`, `p(a)`); len(rows) != 1 {
		t.Fatalf("ground true query rows = %d", len(rows))
	}
	if rows := queryBindings(t, `p(a).`, `p(b)`); len(rows) != 0 {
		t.Fatalf("ground false query rows = %d", len(rows))
	}
}

func TestQueryValidation(t *testing.T) {
	u := core.NewUniverse()
	d, _ := parser.ParseDatabase(u, "", `p(a).`)
	// Event literal rejected.
	if _, err := parser.ParseQuery(u, "", `+p(X)`); err == nil || !strings.Contains(err.Error(), "event") {
		t.Fatalf("event query err = %v", err)
	}
	// Unsafe negation rejected.
	if _, err := parser.ParseQuery(u, "", `!q(X)`); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("unsafe query err = %v", err)
	}
	// Arity mismatch rejected.
	if _, err := parser.ParseQuery(u, "", `p(X, Y)`); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity query err = %v", err)
	}
	_ = d
}

func TestEvalQueryEarlyStop(t *testing.T) {
	u := core.NewUniverse()
	d, _ := parser.ParseDatabase(u, "", `p(a). p(b). p(c).`)
	q, err := parser.ParseQuery(u, "", `p(X)`)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := core.EvalQuery(u, d, q, func([]core.Sym) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("yield called %d times after stop", calls)
	}
}

func TestOrderComparisons(t *testing.T) {
	rows := queryBindings(t, `sal(tom, 100). sal(ann, 250). sal(bob, 250).`,
		`sal(X, S), S > 100`)
	if len(rows) != 2 {
		t.Fatalf("S > 100 rows = %d, want 2", len(rows))
	}
	rows = queryBindings(t, `sal(tom, 100). sal(ann, 250).`, `sal(X, S), S <= 100`)
	if len(rows) != 1 {
		t.Fatalf("S <= 100 rows = %d, want 1", len(rows))
	}
	// Numeric, not lexicographic: 9 < 10.
	rows = queryBindings(t, `n(9). n(10).`, `n(X), X < 10`)
	if len(rows) != 1 {
		t.Fatalf("numeric compare rows = %d, want 1", len(rows))
	}
	// Non-numeric constants compare lexicographically.
	rows = queryBindings(t, `w(apple). w(pear).`, `w(X), X >= pear`)
	if len(rows) != 1 {
		t.Fatalf("lexicographic rows = %d, want 1", len(rows))
	}
	// Mixed numeric/non-numeric falls back to name comparison.
	rows = queryBindings(t, `m(5). m(apple).`, `m(X), X < zzz`)
	if len(rows) != 2 {
		t.Fatalf("mixed rows = %d, want 2", len(rows))
	}
}

func TestCompareConsts(t *testing.T) {
	u := core.NewUniverse()
	n9 := u.Syms.Intern("9")
	n10 := u.Syms.Intern("10")
	neg := u.Syms.Intern("-3")
	apple := u.Syms.Intern("apple")
	if u.CompareConsts(n9, n10) >= 0 {
		t.Fatal("9 >= 10 numerically")
	}
	if u.CompareConsts(neg, n9) >= 0 {
		t.Fatal("-3 >= 9")
	}
	if u.CompareConsts(n9, n9) != 0 {
		t.Fatal("9 != 9")
	}
	if u.CompareConsts(apple, n9) <= 0 {
		t.Fatal("apple <= 9 (mixed must be lexicographic: 'apple' > '9')")
	}
}
