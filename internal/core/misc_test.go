package core

import (
	"errors"
	"strings"
	"testing"
)

func TestLitKindStrings(t *testing.T) {
	want := map[LitKind]string{
		LitPos: "pos", LitNeg: "neg", LitEvIns: "event+", LitEvDel: "event-",
		LitEq: "eq", LitNeq: "neq", LitLt: "lt", LitLe: "le", LitGt: "gt", LitGe: "ge",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if LitKind(99).String() == "" {
		t.Fatal("unknown kind must render something")
	}
	if !strings.Contains(LitKind(99).String(), "99") {
		t.Fatalf("unknown kind rendering: %q", LitKind(99).String())
	}
}

func TestHeadOpAndDecisionStrings(t *testing.T) {
	if OpInsert.String() != "+" || OpDelete.String() != "-" {
		t.Fatal("HeadOp strings wrong")
	}
	if DecideInsert.String() != "insert" || DecideDelete.String() != "delete" {
		t.Fatal("Decision strings wrong")
	}
}

func TestAtomIsGround(t *testing.T) {
	g := Atom{Pred: 0, Args: []Term{ConstTerm(1), ConstTerm(2)}}
	if !g.IsGround() {
		t.Fatal("ground atom reported non-ground")
	}
	v := Atom{Pred: 0, Args: []Term{ConstTerm(1), VarTerm(0)}}
	if v.IsGround() {
		t.Fatal("non-ground atom reported ground")
	}
}

func TestUniverseArity(t *testing.T) {
	u := NewUniverse()
	p := u.Syms.Intern("p")
	if _, ok := u.Arity(p); ok {
		t.Fatal("unknown predicate has arity")
	}
	if err := u.PinArity(p, 2); err != nil {
		t.Fatal(err)
	}
	if a, ok := u.Arity(p); !ok || a != 2 {
		t.Fatalf("Arity = %d, %v", a, ok)
	}
}

func TestRuleValidateStructural(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string
	}{
		{"negative numvars", Rule{NumVars: -1}, "negative NumVars"},
		{"varnames mismatch", Rule{NumVars: 2, VarNames: []string{"X"}}, "variable names"},
		{"builtin arity", Rule{
			NumVars: 1, VarNames: []string{"X"},
			Body: []Literal{
				{Kind: LitPos, Atom: Atom{Pred: 0, Args: []Term{VarTerm(0)}}},
				{Kind: LitEq, Atom: Atom{Pred: NoSym, Args: []Term{VarTerm(0)}}},
			},
			Head: Atom{Pred: 1},
		}, "exactly 2 arguments"},
		{"var out of range body", Rule{
			NumVars: 1, VarNames: []string{"X"},
			Body: []Literal{{Kind: LitPos, Atom: Atom{Pred: 0, Args: []Term{VarTerm(5)}}}},
			Head: Atom{Pred: 1},
		}, "out of range"},
		{"var out of range head", Rule{
			NumVars: 1, VarNames: []string{"X"},
			Body: []Literal{{Kind: LitPos, Atom: Atom{Pred: 0, Args: []Term{VarTerm(0)}}}},
			Head: Atom{Pred: 1, Args: []Term{VarTerm(7)}},
		}, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rule.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestConflictAndGroundingStrings(t *testing.T) {
	u := NewUniverse()
	p := u.Syms.Intern("p")
	a := u.Syms.Intern("a")
	aid, err := u.InternAtom(p, []Sym{a})
	if err != nil {
		t.Fatal(err)
	}
	prog := &Program{Rules: []Rule{{
		Name: "r1", NumVars: 1, VarNames: []string{"X"},
		Body: []Literal{{Kind: LitPos, Atom: Atom{Pred: p, Args: []Term{VarTerm(0)}}}},
		Head: Atom{Pred: p, Args: []Term{VarTerm(0)}},
	}}}
	g := Grounding{Rule: 0, Args: []Sym{a}}
	if got := g.String(u, prog); got != "(r1, [X <- a])" {
		t.Fatalf("grounding string = %q", got)
	}
	c := Conflict{Atom: aid, Ins: []Grounding{g}, Del: []Grounding{g}}
	s := c.String(u, prog)
	if !strings.Contains(s, "p(a)") || !strings.Contains(s, "(r1, [X <- a])") {
		t.Fatalf("conflict string = %q", s)
	}
	// Anonymous rules render by index.
	if got := prog.RuleLabel(5); got != "rule#5" {
		t.Fatalf("RuleLabel = %q", got)
	}
}

func TestErrStrategy(t *testing.T) {
	inner := errors.New("boom")
	e := &ErrStrategy{Strategy: "s", Err: inner}
	if !strings.Contains(e.Error(), "s") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("Error = %q", e.Error())
	}
	if !errors.Is(e, inner) {
		t.Fatal("Unwrap broken")
	}
}

func TestAtomStringOutOfRange(t *testing.T) {
	u := NewUniverse()
	if got := u.AtomString(AID(42)); !strings.Contains(got, "42") {
		t.Fatalf("out-of-range AtomString = %q", got)
	}
}

func TestQueryVarNameFallback(t *testing.T) {
	q := &Query{NumVars: 2, VarNames: []string{"X"}}
	if q.varName(0) != "X" || q.varName(1) != "V1" {
		t.Fatalf("varName fallback = %q, %q", q.varName(0), q.varName(1))
	}
}
