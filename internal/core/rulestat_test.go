package core_test

import (
	"testing"

	"repro/internal/core"
)

// checkRuleStatSums asserts the RuleStat summation invariants: the
// per-rule counters must partition the run-wide totals exactly.
func checkRuleStatSums(t *testing.T, rs core.RunStats) {
	t.Helper()
	var st core.RuleStat
	for _, r := range rs.Rules {
		st.Groundings += r.Groundings
		st.Fires += r.Fires
		st.Blocked += r.Blocked
	}
	if st.Groundings != rs.Groundings {
		t.Fatalf("per-rule groundings sum %d != RunStats.Groundings %d", st.Groundings, rs.Groundings)
	}
	if st.Fires != rs.Derivations {
		t.Fatalf("per-rule fires sum %d != Stats.Derivations %d", st.Fires, rs.Derivations)
	}
	if st.Blocked != int64(rs.BlockedInstances) {
		t.Fatalf("per-rule blocked sum %d != Stats.BlockedInstances %d", st.Blocked, rs.BlockedInstances)
	}
}

func TestRuleStatsSumToRunTotals(t *testing.T) {
	res := runStatsFixture(t, core.Options{})
	rs := res.RunStats
	if len(rs.Rules) != 3 {
		t.Fatalf("got %d rule entries, want 3 (P_U with no updates)", len(rs.Rules))
	}
	checkRuleStatSums(t, rs)
	// RuleFirings is the legacy view of the same counters.
	for i, f := range res.RuleFirings {
		if f != rs.Rules[i].Fires {
			t.Fatalf("RuleFirings[%d] = %d, Rules[%d].Fires = %d", i, f, i, rs.Rules[i].Fires)
		}
	}
	// The fixture's conflict on atom a: q -> +a (rule 2) vs p -> -a
	// (rule 1), resolved by inertia to delete. Rule 1 wins, rule 2
	// loses and is blocked.
	if rs.Rules[1].ConflictWins != 1 || rs.Rules[1].ConflictLosses != 0 {
		t.Fatalf("rule 1 wins/losses = %d/%d, want 1/0",
			rs.Rules[1].ConflictWins, rs.Rules[1].ConflictLosses)
	}
	if rs.Rules[2].ConflictLosses != 1 || rs.Rules[2].Blocked != 1 {
		t.Fatalf("rule 2 losses/blocked = %d/%d, want 1/1",
			rs.Rules[2].ConflictLosses, rs.Rules[2].Blocked)
	}
	// Match timing must have been recorded for the fired rules.
	for i, r := range rs.Rules {
		if r.MatchNanos < 0 {
			t.Fatalf("rule %d has negative match nanos", i)
		}
	}
}

func TestRuleStatsParallelMatchesSequential(t *testing.T) {
	par := runStatsFixture(t, core.Options{Parallel: 4}).RunStats
	seq := runStatsFixture(t, core.Options{}).RunStats
	checkRuleStatSums(t, par)
	if len(par.Rules) != len(seq.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(par.Rules), len(seq.Rules))
	}
	for i := range par.Rules {
		p, s := par.Rules[i], seq.Rules[i]
		if p.Fires != s.Fires || p.Groundings != s.Groundings ||
			p.ConflictWins != s.ConflictWins || p.ConflictLosses != s.ConflictLosses ||
			p.Blocked != s.Blocked {
			t.Fatalf("rule %d diverged under parallel evaluation: %+v vs %+v", i, p, s)
		}
	}
}
