package core

import "fmt"

// Query is a conjunctive query over a database instance: a list of
// body literals (positive, negated or built-in — event literals make
// no sense against a plain database and are rejected). Queries share
// the rule layer's matcher and safety discipline.
type Query struct {
	NumVars  int
	VarNames []string
	Body     []Literal
}

// Validate enforces the query analogue of the §2 safety conditions:
// every variable of a negated or built-in literal must occur in some
// positive literal, and event literals are rejected.
func (q *Query) Validate() error {
	bound := make([]bool, q.NumVars)
	for i, lit := range q.Body {
		switch lit.Kind {
		case LitEvIns, LitEvDel:
			return fmt.Errorf("query literal %d: event literals are not allowed in queries", i)
		}
		for _, t := range lit.Atom.Args {
			if t.IsVar() {
				if t.Var() >= q.NumVars {
					return fmt.Errorf("query literal %d: variable index out of range", i)
				}
				if lit.Kind == LitPos {
					bound[t.Var()] = true
				}
			}
		}
	}
	for i, lit := range q.Body {
		if lit.Kind == LitPos {
			continue
		}
		for _, t := range lit.Atom.Args {
			if t.IsVar() && !bound[t.Var()] {
				return fmt.Errorf("query literal %d: unsafe: variable %s does not occur in a positive literal",
					i, q.varName(t.Var()))
			}
		}
	}
	return nil
}

func (q *Query) varName(i int) string {
	if i < len(q.VarNames) && q.VarNames[i] != "" {
		return q.VarNames[i]
	}
	return fmt.Sprintf("V%d", i)
}

// asRule adapts the query to the matcher's rule shape. The head is
// never used by Match.
func (q *Query) asRule() *Rule {
	return &Rule{
		Name:     "query",
		NumVars:  q.NumVars,
		VarNames: q.VarNames,
		Body:     q.Body,
	}
}

// EvalQuery enumerates every satisfying binding of the query against
// the database, calling yield with one symbol per query variable. The
// binding slice is reused; yield must copy it to retain it. Returning
// false stops the enumeration. Evaluation runs against the plain
// database (no marks), i.e. classical validity.
func EvalQuery(u *Universe, d *Database, q *Query, yield func(binding []Sym) bool) error {
	if err := q.Validate(); err != nil {
		return err
	}
	in := NewInterp(u, d)
	m := newMatcher(in)
	m.Match(q.asRule(), nil, yield)
	return nil
}
