package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// runStatsFixture evaluates a small conflicting program and returns
// the result. Rule 3 (q -> +a) and rule 2 (p -> -a) conflict on a;
// inertia deletes (a not in D), so the run restarts once.
func runStatsFixture(t *testing.T, opts core.Options) *core.Result {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "prog", `
		p -> +q.
		p -> -a.
		q -> +a.
	`)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "db", `p.`)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(u, prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The engine accessor must agree with the result.
	if got := eng.RunStats(); got.Phases != res.RunStats.Phases ||
		got.Groundings != res.RunStats.Groundings ||
		got.Conflicts != res.RunStats.Conflicts {
		t.Fatalf("Engine.RunStats() = %+v, result RunStats = %+v", got, res.RunStats)
	}
	return res
}

func TestRunStatsCounters(t *testing.T) {
	res := runStatsFixture(t, core.Options{})
	rs := res.RunStats
	if rs.Stats != res.Stats {
		t.Fatalf("embedded Stats %+v != result Stats %+v", rs.Stats, res.Stats)
	}
	if rs.Phases != 2 || rs.Restarts != 1 {
		t.Fatalf("phases=%d restarts=%d, want 2/1", rs.Phases, rs.Restarts)
	}
	if rs.Conflicts != 1 || rs.DeleteDecisions != 1 || rs.InsertDecisions != 0 {
		t.Fatalf("conflicts=%d ins=%d del=%d, want 1/0/1",
			rs.Conflicts, rs.InsertDecisions, rs.DeleteDecisions)
	}
	// Every phase starts with a full step; the semi-naive run also
	// takes incremental steps.
	if rs.FullSteps < rs.Phases {
		t.Fatalf("full steps = %d < phases = %d", rs.FullSteps, rs.Phases)
	}
	if rs.DeltaSteps == 0 {
		t.Fatal("no semi-naive steps recorded")
	}
	if rs.Groundings < rs.Derivations {
		t.Fatalf("groundings %d < derivations %d (dedup cannot add)", rs.Groundings, rs.Derivations)
	}
	if rs.Shards != 0 {
		t.Fatalf("sequential run dispatched %d shards", rs.Shards)
	}
	if len(rs.PhaseWall) != rs.Phases {
		t.Fatalf("phase wall entries = %d, want %d", len(rs.PhaseWall), rs.Phases)
	}
	var sum int64
	for _, d := range rs.PhaseWall {
		if d < 0 {
			t.Fatalf("negative phase duration %v", d)
		}
		sum += int64(d)
	}
	if int64(rs.Wall) < sum {
		t.Fatalf("wall %v < sum of phases %v", rs.Wall, sum)
	}
}

func TestRunStatsNaiveCountsOnlyFullSteps(t *testing.T) {
	res := runStatsFixture(t, core.Options{Naive: true})
	rs := res.RunStats
	if rs.DeltaSteps != 0 {
		t.Fatalf("naive run recorded %d delta steps", rs.DeltaSteps)
	}
	if rs.FullSteps == 0 {
		t.Fatal("naive run recorded no full steps")
	}
}

func TestRunStatsParallelShards(t *testing.T) {
	res := runStatsFixture(t, core.Options{Parallel: 4})
	if res.RunStats.Shards == 0 {
		t.Fatal("parallel run dispatched no shards")
	}
	// Parallel evaluation must not change the logical counters.
	seq := runStatsFixture(t, core.Options{})
	if res.RunStats.Derivations != seq.RunStats.Derivations ||
		res.RunStats.Groundings != seq.RunStats.Groundings {
		t.Fatalf("parallel run diverged: %+v vs %+v", res.RunStats, seq.RunStats)
	}
}
