package core

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Grounding is a rule grounding (r, θ) (§4.2): the rule index within
// the program and the substitution, encoded as one symbol per rule
// variable in variable order.
type Grounding struct {
	Rule int32
	Args []Sym
}

// Key returns a compact unique encoding of the grounding, used for
// set membership in the blocked set B and in provenance maps.
func (g Grounding) Key() string {
	b := make([]byte, 4+4*len(g.Args))
	binary.LittleEndian.PutUint32(b, uint32(g.Rule))
	for i, a := range g.Args {
		binary.LittleEndian.PutUint32(b[4+4*i:], uint32(a))
	}
	return string(b)
}

// String renders the grounding like the paper: (r1, [x <- a, y <- b]).
func (g Grounding) String(u *Universe, p *Program) string {
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteString(p.RuleLabel(int(g.Rule)))
	if len(g.Args) > 0 {
		sb.WriteString(", [")
		r := &p.Rules[g.Rule]
		for i, a := range g.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s <- %s", r.varName(i), u.Syms.Name(a))
		}
		sb.WriteByte(']')
	}
	sb.WriteByte(')')
	return sb.String()
}

// BlockedSet is the set B of blocked rule instances of a bi-structure
// <B, I>. It only ever grows during one PARK evaluation.
type BlockedSet struct {
	keys map[string]struct{}
	list []Grounding // insertion order, for traces and introspection
}

// NewBlockedSet returns an empty blocked set.
func NewBlockedSet() *BlockedSet {
	return &BlockedSet{keys: make(map[string]struct{})}
}

// Add inserts a grounding and reports whether it was new.
func (b *BlockedSet) Add(g Grounding) bool {
	k := g.Key()
	if _, ok := b.keys[k]; ok {
		return false
	}
	b.keys[k] = struct{}{}
	b.list = append(b.list, g)
	return true
}

// HasKey reports membership by pre-computed key.
func (b *BlockedSet) HasKey(k string) bool {
	_, ok := b.keys[k]
	return ok
}

// Has reports membership.
func (b *BlockedSet) Has(g Grounding) bool { return b.HasKey(g.Key()) }

// Len returns the number of blocked instances.
func (b *BlockedSet) Len() int { return len(b.list) }

// All returns the blocked groundings in insertion order; the slice
// must not be modified.
func (b *BlockedSet) All() []Grounding { return b.list }
