package repl

import (
	"time"

	"repro/internal/metrics"
)

// metricLabel renders a frame type as a metric label value.
func frameLabel(typ byte) string {
	switch typ {
	case FrameSnapshot:
		return "snapshot"
	case FrameTxn:
		return "txn"
	case FrameHeartbeat:
		return "heartbeat"
	}
	return "unknown"
}

// leaderMetrics holds the leader-side instruments. All fields are
// nil-safe (a bare Leader pays only nil checks), matching the
// convention of persist.storeMetrics.
type leaderMetrics struct {
	streams   *metrics.Gauge   // park_repl_streams
	snapshots *metrics.Counter // park_repl_snapshots_served_total
	frames    map[byte]*metrics.Counter
	bytes     *metrics.Counter // park_repl_bytes_sent_total
}

func (m *leaderMetrics) register(reg *metrics.Registry) {
	m.streams = reg.Gauge("park_repl_streams",
		"Replication streams currently connected to this leader.")
	m.snapshots = reg.Counter("park_repl_snapshots_served_total",
		"Snapshot bootstraps served to followers that could not resume from history.")
	m.frames = make(map[byte]*metrics.Counter)
	for _, typ := range []byte{FrameSnapshot, FrameTxn, FrameHeartbeat} {
		m.frames[typ] = reg.Counter("park_repl_frames_sent_total",
			"Replication frames sent to followers, by frame type.",
			metrics.L("type", frameLabel(typ)))
	}
	m.bytes = reg.Counter("park_repl_bytes_sent_total",
		"Replication stream bytes sent to followers (frames incl. headers).")
}

func (m *leaderMetrics) streamStart() {
	if m.streams != nil {
		m.streams.Inc()
	}
}

func (m *leaderMetrics) streamEnd() {
	if m.streams != nil {
		m.streams.Dec()
	}
}

func (m *leaderMetrics) snapshot() {
	if m.snapshots != nil {
		m.snapshots.Inc()
	}
}

func (m *leaderMetrics) frame(typ byte, n int) {
	if m.frames != nil {
		if c := m.frames[typ]; c != nil {
			c.Inc()
		}
	}
	if m.bytes != nil {
		m.bytes.Add(int64(n))
	}
}

// nodeMetrics holds the failover coordinator's instruments, nil-safe
// like the rest.
type nodeMetrics struct {
	leader     *metrics.Gauge   // park_node_is_leader
	suspendedG *metrics.Gauge   // park_node_suspended
	elections  *metrics.Counter // park_node_elections_total
	votes      *metrics.Counter // park_node_votes_granted_total
	promotions *metrics.Counter // park_node_promotions_total
	demotions  *metrics.Counter // park_node_demotions_total
}

func (m *nodeMetrics) register(reg *metrics.Registry) {
	m.leader = reg.Gauge("park_node_is_leader",
		"1 while this node leads the replica set, else 0.")
	m.suspendedG = reg.Gauge("park_node_suspended",
		"1 while this leader has lost majority contact and refuses writes.")
	m.elections = reg.Counter("park_node_elections_total",
		"Elections this node has campaigned in.")
	m.votes = reg.Counter("park_node_votes_granted_total",
		"Votes this node has granted to candidates.")
	m.promotions = reg.Counter("park_node_promotions_total",
		"Times this node promoted itself to leader.")
	m.demotions = reg.Counter("park_node_demotions_total",
		"Times this node was deposed while leading.")
}

func (m *nodeMetrics) setRole(r Role) {
	if m.leader == nil {
		return
	}
	if r == RoleLeader {
		m.leader.Set(1)
	} else {
		m.leader.Set(0)
		m.suspendedG.Set(0)
	}
}

func (m *nodeMetrics) setSuspended(s bool) {
	if m.suspendedG == nil {
		return
	}
	if s {
		m.suspendedG.Set(1)
	} else {
		m.suspendedG.Set(0)
	}
}

func (m *nodeMetrics) election() {
	if m.elections != nil {
		m.elections.Inc()
	}
}

func (m *nodeMetrics) voteGranted() {
	if m.votes != nil {
		m.votes.Inc()
	}
}

func (m *nodeMetrics) promotion() {
	if m.promotions != nil {
		m.promotions.Inc()
	}
}

func (m *nodeMetrics) demotion() {
	if m.demotions != nil {
		m.demotions.Inc()
	}
}

// followerMetrics holds the follower-side instruments. Counters are
// bumped inline as frames arrive; the sampled gauges (lag, sequences,
// connection state, last-frame age) are refreshed by
// Follower.RefreshMetrics, which /v1/metrics calls at scrape time.
type followerMetrics struct {
	reconnects *metrics.Counter // park_repl_follower_reconnects_total
	applied    *metrics.Counter // park_repl_follower_txns_applied_total
	snapshots  *metrics.Counter // park_repl_follower_snapshot_loads_total
	frames     map[byte]*metrics.Counter
	bytes      *metrics.Counter // park_repl_follower_bytes_received_total

	fencedC *metrics.Counter // park_repl_follower_fenced_frames_total

	lagSeq      *metrics.Gauge // park_repl_follower_lag_seq
	appliedSeq  *metrics.Gauge // park_repl_follower_applied_seq
	leaderSeq   *metrics.Gauge // park_repl_follower_leader_seq
	connected   *metrics.Gauge // park_repl_follower_connected
	frameAge    *metrics.Gauge // park_repl_follower_last_frame_age_ms
	stale       *metrics.Gauge // park_repl_follower_stale
	leaderEpoch *metrics.Gauge // park_repl_follower_leader_epoch
}

func (m *followerMetrics) register(reg *metrics.Registry) {
	m.reconnects = reg.Counter("park_repl_follower_reconnects_total",
		"Replication stream (re)connect attempts after a fault or leader restart.")
	m.applied = reg.Counter("park_repl_follower_txns_applied_total",
		"Leader transactions applied by this follower.")
	m.snapshots = reg.Counter("park_repl_follower_snapshot_loads_total",
		"Snapshot bootstraps this follower performed (resume window missed).")
	m.frames = make(map[byte]*metrics.Counter)
	for _, typ := range []byte{FrameSnapshot, FrameTxn, FrameHeartbeat} {
		m.frames[typ] = reg.Counter("park_repl_follower_frames_total",
			"Replication frames received, by frame type.",
			metrics.L("type", frameLabel(typ)))
	}
	m.bytes = reg.Counter("park_repl_follower_bytes_received_total",
		"Replication stream payload bytes received.")
	m.fencedC = reg.Counter("park_repl_follower_fenced_frames_total",
		"Transaction frames rejected because they carried a deposed leadership epoch.")
	m.lagSeq = reg.Gauge("park_repl_follower_lag_seq",
		"Replication lag in transactions: leader sequence minus applied sequence (sampled at scrape time).")
	m.appliedSeq = reg.Gauge("park_repl_follower_applied_seq",
		"Newest global transaction sequence applied locally.")
	m.leaderSeq = reg.Gauge("park_repl_follower_leader_seq",
		"Newest leader sequence observed (from heartbeats and transaction frames).")
	m.connected = reg.Gauge("park_repl_follower_connected",
		"1 while the replication stream is connected, 0 while reconnecting.")
	m.frameAge = reg.Gauge("park_repl_follower_last_frame_age_ms",
		"Milliseconds since the last frame arrived (wall-clock lag signal; sampled at scrape time).")
	m.stale = reg.Gauge("park_repl_follower_stale",
		"1 when no frame or heartbeat has arrived within the follower's staleness bound, else 0 (sampled at scrape time).")
	m.leaderEpoch = reg.Gauge("park_repl_follower_leader_epoch",
		"Newest leadership epoch observed in heartbeats (sampled at scrape time).")
}

func (m *followerMetrics) reconnect() {
	if m.reconnects != nil {
		m.reconnects.Inc()
	}
}

func (m *followerMetrics) txnApplied() {
	if m.applied != nil {
		m.applied.Inc()
	}
}

func (m *followerMetrics) snapshotLoad() {
	if m.snapshots != nil {
		m.snapshots.Inc()
	}
}

func (m *followerMetrics) fenced() {
	if m.fencedC != nil {
		m.fencedC.Inc()
	}
}

func (m *followerMetrics) frame(typ byte, n int) {
	if m.frames != nil {
		if c := m.frames[typ]; c != nil {
			c.Inc()
		}
	}
	if m.bytes != nil {
		m.bytes.Add(int64(n))
	}
}

func (m *followerMetrics) sample(st Status) {
	if m.lagSeq == nil {
		return
	}
	m.lagSeq.Set(int64(st.LagSeq()))
	m.appliedSeq.Set(int64(st.AppliedSeq))
	m.leaderSeq.Set(int64(st.LeaderSeq))
	if st.Connected {
		m.connected.Set(1)
	} else {
		m.connected.Set(0)
	}
	if !st.LastFrame.IsZero() {
		m.frameAge.Set(time.Since(st.LastFrame).Milliseconds())
	}
	if m.stale != nil {
		if st.Stale {
			m.stale.Set(1)
		} else {
			m.stale.Set(0)
		}
	}
	if m.leaderEpoch != nil {
		m.leaderEpoch.Set(st.LeaderEpoch)
	}
}
