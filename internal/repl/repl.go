// Package repl implements streaming WAL replication for the PARK
// store: a leader serves its committed transaction sequence over HTTP
// and followers replay it, giving horizontal read scaling — every
// replica answers queries locally from an identical database state.
//
// Replication leans on two properties the lower layers already
// guarantee:
//
//   - PARK(P, D, U) is a pure function (the paper's §4 determinism),
//     so a replica never re-evaluates rules: the leader ships the
//     fact-level *result* delta it committed, and applying deltas in
//     sequence order reproduces the leader's state bit for bit.
//   - Every committed transaction carries a dense, monotone global
//     sequence number persisted in WAL commit markers and snapshot
//     headers (internal/persist), so "the state at sequence N" is
//     well-defined on every node and across restarts.
//
// # Protocol shape
//
// A follower asks the leader for everything after its last applied
// sequence: GET /v1/repl/stream?from=N. The leader answers with a
// framed stream (see frame.go and docs/REPLICATION.md):
//
//	heartbeat(seq=S)                  current leader sequence
//	[snapshot chunks ... done]        only if N is outside the leader's
//	                                  retained window [BaseSeq, Seq]
//	txn(N+1), txn(N+2), ...           the tail, then live commits
//	heartbeat ... txn ... heartbeat   interleaved while connected
//
// The consistent cut under the leader's commit lock
// (persist.ReplicaCut) guarantees the concatenation
// snapshot+history+live covers the sequence with no gap and no
// reordering; the follower additionally verifies density (each
// transaction must be at exactly seq+1) and treats any gap as a signal
// to reconnect and re-resume. Frames are length- and CRC-prefixed, so
// a torn stream (proxy buffering, half-closed TCP) is detected rather
// than misapplied — the same discipline the WAL uses on disk.
//
// # Failure model
//
// The follower owns reconnection: exponential backoff with jitter,
// resuming from persist.Store.Seq() each attempt. Leader restarts,
// network faults and dropped subscriptions (a slow stream whose
// buffer overflowed) all funnel into the same resume path. Durability
// on the follower is batched (persist.SyncWAL at catch-up points):
// losing an un-synced tail in a crash only means re-requesting those
// transactions.
//
// Followers are sequentially consistent prefixes of the leader: a
// replica's state is always the leader's state at some earlier
// sequence, never a divergent one. See docs/REPLICATION.md for the
// full consistency and failure matrix, and docs/OPERATIONS.md for
// running leader/follower pairs.
package repl
