package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// Node is the failover coordinator of one replica-set member. It sits
// above the Leader/Follower streaming machinery and owns the lease
// and election protocol:
//
//   - A leader's heartbeats renew a lease of NodeConfig.Lease on every
//     follower (Heartbeat.LeaseMillis rides the existing stream).
//   - A follower that hears nothing for a full lease becomes a
//     candidate: it polls the member set's /v1/repl/status endpoints,
//     refuses to campaign unless it can reach a majority (a
//     partitioned minority must not elect) and defers to any member
//     with a longer applied prefix — the deterministic winner is the
//     highest applied sequence, ties broken by the smallest node ID.
//   - The winner campaigns under a fresh epoch: it durably votes for
//     itself (persist.RecordVote) and asks each reachable peer for a
//     vote (/v1/repl/vote). A peer grants at most one vote per epoch,
//     and only to candidates whose applied sequence is at least its
//     own — so a majority of grants proves the winner's prefix
//     contains every write that was ever acknowledged to a client
//     (acknowledged writes are replicated to a majority first; any
//     two majorities intersect). Granting a vote raises the voter's
//     store fencing floor to the voted epoch, so from the moment a
//     majority has voted, the old leader can no longer replicate to
//     (or collect acks from) a majority — a write racing the election
//     can never be acknowledged on the losing timeline.
//   - On a majority, the winner promotes itself: persist.BeginEpoch
//     stamps the new epoch into the WAL, and from then on every
//     commit marker and replication frame carries it. Stores reject
//     frames from older epochs (persist.ErrFenced), so a deposed
//     leader that comes back cannot overwrite the new timeline.
//   - A leader polls its peers every lease/3: it demotes itself the
//     moment it sees a higher epoch, and suspends writes while it
//     cannot reach a majority (a partitioned leader serves reads but
//     stops pretending writes will replicate).
//
// Promotion is safe at any applied prefix because replication ships
// fact-level result deltas of the pure PARK function — a follower is
// bit-for-bit the leader's state at its applied sequence, never a
// divergent one.
type Node struct {
	cfg   NodeConfig
	store *persist.Store
	f     *Follower
	hc    *http.Client
	// log carries the node's lifecycle records with node_id (and
	// per-record epoch/seq) attrs; built from NodeConfig.Logger, or a
	// forwarding handler over NodeConfig.Logf, or discard.
	log *slog.Logger
	// ev is the cluster event journal (nil-safe).
	ev *events.Log

	met nodeMetrics

	mu   sync.Mutex
	cond *sync.Cond // broadcast on role changes and ack progress
	// runCtx is Run's context; demotion restarts the follower under it.
	runCtx context.Context
	role   Role
	// leaderID/leaderURL identify the member currently believed to
	// lead (self when role == RoleLeader).
	leaderID, leaderURL string
	// contact is the last proof of a live leader (stream frame, granted
	// vote, retarget); candidacy triggers when it ages past the lease.
	contact time.Time
	// suspended is set on a leader that cannot reach a majority of the
	// member set: writes are refused until contact returns.
	suspended bool
	// peerSeq is the leader's view of each peer's applied position —
	// sequence AND the epoch of its applied tip — fed by /v1/repl/ack;
	// WaitReplicated blocks on it, counting only peers whose tip epoch
	// matches the leader's own (a peer still on a deposed leader's
	// divergent tail can report a high sequence that proves nothing
	// about THIS timeline). Entries are last-writer-wins so a peer
	// that re-bootstraps to a lower sequence regresses honestly.
	peerSeq map[string]peerAck
	// stopStream cancels the follower's streaming loop on promotion.
	stopStream context.CancelFunc
}

// peerAck is one peer's last reported replication position: the
// newest applied sequence and the epoch its applied tip was written
// under. Quorum counting requires the epoch to match the leader's —
// a sequence from another timeline is not progress on this one.
type peerAck struct {
	epoch int64
	seq   int
}

// Role is a node's position in the replica set.
type Role int

const (
	// RoleFollower replays the leader's stream and watches its lease.
	RoleFollower Role = iota
	// RoleCandidate is a follower running an election.
	RoleCandidate
	// RoleLeader accepts writes and serves the replication stream.
	RoleLeader
)

func (r Role) String() string {
	switch r {
	case RoleFollower:
		return "follower"
	case RoleCandidate:
		return "candidate"
	case RoleLeader:
		return "leader"
	}
	return "unknown"
}

// NodeConfig identifies one member of a replica set.
type NodeConfig struct {
	// ID is this node's unique name; elections tie-break on it (the
	// smallest ID among equally caught-up members wins).
	ID string
	// SelfURL is the base URL peers and clients reach this node at.
	SelfURL string
	// Peers maps every other member's ID to its base URL. The member
	// set is fixed for the life of the process; a majority of
	// len(Peers)+1 is required to elect or to keep leading.
	Peers map[string]string
	// Lease is the failure-detection horizon: a leader heartbeats well
	// inside it, a follower that hears nothing for a full lease starts
	// an election. Default 3s.
	Lease time.Duration
	// HTTPClient overrides the client used for status polls, votes and
	// acks.
	HTTPClient *http.Client
	// Logf receives lifecycle messages (elections, promotions,
	// demotions, suspensions) as rendered lines; silent by default.
	// Ignored when Logger is set.
	Logf func(format string, args ...any)
	// Logger receives the same lifecycle records structured (slog, with
	// node_id/epoch/seq attrs). Takes precedence over Logf.
	Logger *slog.Logger
	// Events is the cluster event journal lifecycle events are emitted
	// into (campaign started/won/lost, vote granted, leader demoted);
	// nil discards them.
	Events *events.Log
}

// ErrNotLeader is returned by WaitReplicated when the node lost
// leadership while a write waited for replication.
var ErrNotLeader = errors.New("repl: not the leader")

// DefaultLease is the failure-detection horizon used when NodeConfig
// leaves Lease zero.
const DefaultLease = 3 * time.Second

// NewNode builds the failover coordinator for one member. The
// follower must replicate into store and is owned by the node from
// here on: Run starts and stops its streaming loop across role
// changes. The node starts as a follower with no known leader;
// discovery (or the first election) finds one.
func NewNode(store *persist.Store, f *Follower, cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("repl: node ID is required")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	cfg.SelfURL = strings.TrimRight(cfg.SelfURL, "/")
	peers := make(map[string]string, len(cfg.Peers))
	for id, url := range cfg.Peers {
		if id == cfg.ID {
			continue
		}
		peers[id] = strings.TrimRight(url, "/")
	}
	cfg.Peers = peers
	n := &Node{
		cfg:     cfg,
		store:   store,
		f:       f,
		hc:      cfg.HTTPClient,
		ev:      cfg.Events,
		role:    RoleFollower,
		contact: time.Now(),
		peerSeq: make(map[string]peerAck),
	}
	if n.hc == nil {
		n.hc = http.DefaultClient
	}
	logger := cfg.Logger
	if logger == nil {
		if cfg.Logf != nil {
			logger = slog.New(logfHandler{logf: cfg.Logf})
		} else {
			logger = slog.New(slog.NewTextHandler(io.Discard, nil))
		}
	}
	n.log = logger.With("node_id", cfg.ID)
	n.cond = sync.NewCond(&n.mu)
	return n, nil
}

// logfHandler adapts a printf-style sink to slog so NodeConfig.Logf
// keeps working: each record is rendered as "msg key=val ...". Levels
// are not filtered (the legacy sink received everything).
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	})
	h.logf("repl: %s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// Lease returns the configured lease duration.
func (n *Node) Lease() time.Duration { return n.cfg.Lease }

// ID returns this node's member ID.
func (n *Node) ID() string { return n.cfg.ID }

// SelfURL returns the base URL this node advertises to peers.
func (n *Node) SelfURL() string { return n.cfg.SelfURL }

// members is the full replica-set size (peers plus self).
func (n *Node) members() int { return len(n.cfg.Peers) + 1 }

// majority is the quorum size over the member set.
func (n *Node) majority() int { return n.members()/2 + 1 }

// rpcTimeout bounds one status/vote/ack round trip: well inside a
// lease so a full election fits in one.
func (n *Node) rpcTimeout() time.Duration {
	d := n.cfg.Lease / 3
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// Instrument registers the node's failover metrics in reg.
func (n *Node) Instrument(reg *metrics.Registry) {
	n.met.register(reg)
	n.met.setRole(n.Role())
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// IsLeader reports whether this node currently leads and may accept
// writes (it may still be suspended; see Suspended).
func (n *Node) IsLeader() bool { return n.Role() == RoleLeader }

// Suspended reports whether a leader has lost contact with a majority
// and is refusing writes.
func (n *Node) Suspended() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == RoleLeader && n.suspended
}

// Leader returns the ID and URL of the member currently believed to
// lead ("", "" when unknown).
func (n *Node) Leader() (id, url string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leaderID, n.leaderURL
}

// Status reports this node's view of the replica set, served over
// GET /v1/repl/status and consumed by peers' discovery and
// pre-election polls.
func (n *Node) Status() StatusInfo {
	epoch := n.store.Epoch()
	fence := n.store.FenceEpoch()
	seq := n.store.Seq()
	n.mu.Lock()
	defer n.mu.Unlock()
	return StatusInfo{
		NodeID:      n.cfg.ID,
		Role:        n.role.String(),
		Epoch:       epoch,
		FenceEpoch:  fence,
		AppliedSeq:  seq,
		LeaderID:    n.leaderID,
		LeaderURL:   n.leaderURL,
		LeaseMillis: n.cfg.Lease.Milliseconds(),
		Suspended:   n.role == RoleLeader && n.suspended,
	}
}

// StatusInfo is the JSON body of GET /v1/repl/status.
type StatusInfo struct {
	NodeID string `json:"nodeId"`
	Role   string `json:"role"`
	Epoch  int64  `json:"epoch"`
	// FenceEpoch is the node's fencing floor: the highest epoch it has
	// committed under, voted in, or bootstrapped from. A leader that
	// sees a peer's FenceEpoch above its own epoch has been (or is
	// being) deposed and must step down, even before the new epoch's
	// winner announces itself.
	FenceEpoch int64 `json:"fenceEpoch,omitempty"`
	AppliedSeq int   `json:"appliedSeq"`
	// LeaderID/LeaderURL are this node's belief about the current
	// leader (itself when Role == "leader").
	LeaderID  string `json:"leaderId,omitempty"`
	LeaderURL string `json:"leaderUrl,omitempty"`
	// LeaseMillis is the configured failure-detection lease.
	LeaseMillis int64 `json:"leaseMillis,omitempty"`
	// Suspended marks a leader that has lost majority contact and is
	// refusing writes.
	Suspended bool `json:"suspended,omitempty"`
}

// VoteRequest is the JSON body of POST /v1/repl/vote.
type VoteRequest struct {
	// Epoch is the epoch the candidate campaigns for (strictly above
	// every epoch it has seen).
	Epoch int64 `json:"epoch"`
	// CandidateID/CandidateURL identify the campaigner.
	CandidateID  string `json:"candidateId"`
	CandidateURL string `json:"candidateUrl,omitempty"`
	// AppliedSeq is the candidate's applied sequence; voters refuse
	// candidates behind their own prefix.
	AppliedSeq int `json:"appliedSeq"`
	// Force skips the voter's leader-lease liveness check (manual
	// promotion via /v1/repl/promote); the epoch, prefix and
	// single-vote safety checks still apply.
	Force bool `json:"force,omitempty"`
}

// VoteResponse is the JSON reply to a vote request.
type VoteResponse struct {
	Granted bool `json:"granted"`
	// Epoch is the voter's current epoch (candidates learn how far
	// behind they are from rejections).
	Epoch int64 `json:"epoch"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
}

// AckRequest is the JSON body of POST /v1/repl/ack: a follower
// reporting its replication progress to the leader. WaitReplicated
// blocks writes on these. Epoch is the epoch of the follower's
// applied tip — the leader counts the ack toward quorum only when it
// matches its own epoch, because a sequence applied on another
// timeline proves nothing about this one. FenceEpoch is the
// follower's fencing floor; a leader seeing one above its own epoch
// learns it was deposed (e.g. its followers voted someone else in)
// and steps down.
type AckRequest struct {
	NodeID     string `json:"nodeId"`
	AppliedSeq int    `json:"appliedSeq"`
	Epoch      int64  `json:"epoch"`
	FenceEpoch int64  `json:"fenceEpoch,omitempty"`
}

// Run drives the failover loop until ctx is cancelled: the follower
// streaming loop runs underneath it, a ticker checks the lease (as a
// follower) or polls peers (as a leader) every lease/3, and an ack
// loop reports replication progress upstream. Returns ctx.Err().
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	n.runCtx = ctx
	n.mu.Unlock()
	// Wake WaitReplicated waiters on shutdown.
	defer context.AfterFunc(ctx, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})()
	n.startFollowing(ctx)
	go n.ackLoop(ctx)
	tick := n.cfg.Lease / 3
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			if n.Role() == RoleLeader {
				n.leaderTick(ctx)
			} else {
				n.followerTick(ctx)
			}
		}
	}
}

// startFollowing (re)spawns the follower streaming loop under a
// cancelable child of ctx; promotion cancels it.
func (n *Node) startFollowing(ctx context.Context) {
	fctx, cancel := context.WithCancel(ctx)
	n.mu.Lock()
	n.stopStream = cancel
	n.mu.Unlock()
	go n.f.Run(fctx)
}

// followerTick checks the leader's lease and, when it has lapsed,
// runs discovery and (as the deterministic winner) an election.
func (n *Node) followerTick(ctx context.Context) {
	st := n.f.Status()
	n.mu.Lock()
	if st.LastFrame.After(n.contact) {
		n.contact = st.LastFrame
	}
	contact := n.contact
	n.mu.Unlock()
	if time.Since(contact) <= n.cfg.Lease {
		return
	}
	n.campaign(ctx, false)
}

// campaign is one election attempt: discovery first, then the
// quorum-gated pre-poll, then (as the winner) the vote phase. force
// skips voters' leader-liveness checks (manual promotion).
func (n *Node) campaign(ctx context.Context, force bool) {
	n.setRole(RoleCandidate)
	statuses := n.pollPeers(ctx)

	// Discovery: if any reachable member leads at our fencing floor or
	// above, adopt it instead of electing. Prefer the highest epoch —
	// after a partition heals, both the new leader and the deposed one
	// may still answer "leader". Filtering against the FLOOR (not the
	// applied-tip epoch, which regresses mid-bootstrap) keeps a node
	// that voted in epoch e+1 from re-adopting the deposed epoch-e
	// leader.
	if !force {
		floor := n.store.FenceEpoch()
		var best *StatusInfo
		for id := range statuses {
			st := statuses[id]
			if st.Role != "leader" || st.Suspended || st.Epoch < floor {
				continue
			}
			if best == nil || st.Epoch > best.Epoch {
				best = &st
			}
		}
		if best != nil {
			n.adoptLeader(best.NodeID, best.LeaderURL)
			return
		}
	}

	reachable := len(statuses) + 1
	if reachable < n.majority() {
		n.log.Warn("election blocked: majority unreachable",
			"reachable", reachable, "members", n.members(), "need", n.majority(),
			"epoch", n.store.Epoch(), "seq", n.store.Seq())
		n.ev.Emit(events.Event{
			Type:   events.CampaignLost,
			Epoch:  n.store.Epoch(),
			Detail: fmt.Sprintf("blocked: %d/%d members reachable, need %d", reachable, n.members(), n.majority()),
		})
		n.setRole(RoleFollower)
		return
	}

	// Deterministic winner: the longest applied prefix, ties to the
	// smallest ID. Everyone else stands down and lets the winner
	// campaign (simultaneous candidacies still cannot both win an
	// epoch — votes are durable and single-grant — this just avoids
	// burning epochs on duels).
	selfSeq := n.store.Seq()
	// Campaign strictly above every epoch anyone has acknowledged: our
	// fencing floor already folds in our own votes and bootstraps, and
	// peers report theirs so we never burn a round on an epoch a voter
	// will refuse.
	maxEpoch := n.store.FenceEpoch()
	bestID, bestSeq := n.cfg.ID, selfSeq
	for id, st := range statuses {
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
		if st.FenceEpoch > maxEpoch {
			maxEpoch = st.FenceEpoch
		}
		if st.AppliedSeq > bestSeq || (st.AppliedSeq == bestSeq && id < bestID) {
			bestID, bestSeq = id, st.AppliedSeq
		}
	}
	// A forced (operator-chosen) campaign skips the stand-down: the
	// voters' applied-prefix check still refuses a candidate behind
	// the majority, so safety does not depend on this heuristic.
	if bestID != n.cfg.ID && !force {
		n.log.Info("standing down for better-placed candidate",
			"peer", bestID, "peerSeq", bestSeq, "seq", selfSeq)
		n.ev.Emit(events.Event{
			Type:     events.CampaignLost,
			StoreSeq: selfSeq,
			Peer:     bestID,
			Detail:   fmt.Sprintf("stood down: %s applied %d >= %d", bestID, bestSeq, selfSeq),
		})
		n.setRole(RoleFollower)
		return
	}

	epoch := maxEpoch + 1
	if err := n.store.RecordVote(epoch, n.cfg.ID); err != nil {
		n.log.Warn("cannot vote for self", "epoch", epoch, "seq", selfSeq, "err", err.Error())
		n.ev.Emit(events.Event{
			Type:     events.CampaignLost,
			Epoch:    epoch,
			StoreSeq: selfSeq,
			Detail:   fmt.Sprintf("self-vote failed: %v", err),
		})
		n.setRole(RoleFollower)
		return
	}
	n.met.election()
	n.log.Info("campaigning for leadership",
		"epoch", epoch, "seq", selfSeq, "reachable", reachable, "members", n.members())
	n.ev.Emit(events.Event{
		Type:     events.CampaignStarted,
		Epoch:    epoch,
		StoreSeq: selfSeq,
		Detail:   fmt.Sprintf("%d/%d members reachable", reachable, n.members()),
	})

	req := VoteRequest{
		Epoch:        epoch,
		CandidateID:  n.cfg.ID,
		CandidateURL: n.cfg.SelfURL,
		AppliedSeq:   selfSeq,
		Force:        force,
	}
	grants := 1 // own durable vote
	var gmu sync.Mutex
	var wg sync.WaitGroup
	for id, url := range n.cfg.Peers {
		if _, ok := statuses[id]; !ok {
			continue // unreachable in the pre-poll; don't wait on it
		}
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			resp, err := n.requestVote(ctx, url, req)
			if err != nil {
				n.log.Warn("vote request failed", "peer", id, "epoch", epoch, "err", err.Error())
				return
			}
			if resp.Granted {
				gmu.Lock()
				grants++
				gmu.Unlock()
			} else {
				n.log.Info("vote rejected", "peer", id, "epoch", epoch, "reason", resp.Reason)
			}
		}(id, url)
	}
	wg.Wait()
	if grants < n.majority() {
		n.log.Warn("election lost", "epoch", epoch, "votes", grants, "need", n.majority(), "seq", selfSeq)
		n.ev.Emit(events.Event{
			Type:     events.CampaignLost,
			Epoch:    epoch,
			StoreSeq: selfSeq,
			Detail:   fmt.Sprintf("%d/%d votes", grants, n.majority()),
		})
		n.setRole(RoleFollower)
		return
	}
	n.promote(epoch, grants)
}

// promote installs a new epoch and takes leadership.
func (n *Node) promote(epoch int64, grants int) {
	if err := n.store.BeginEpoch(epoch); err != nil {
		n.log.Warn("promotion failed", "epoch", epoch, "err", err.Error())
		n.ev.Emit(events.Event{
			Type:   events.CampaignLost,
			Epoch:  epoch,
			Detail: fmt.Sprintf("BeginEpoch failed: %v", err),
		})
		n.setRole(RoleFollower)
		return
	}
	n.mu.Lock()
	n.role = RoleLeader
	n.leaderID, n.leaderURL = n.cfg.ID, n.cfg.SelfURL
	n.suspended = false
	n.peerSeq = make(map[string]peerAck)
	stop := n.stopStream
	n.stopStream = nil
	n.cond.Broadcast()
	n.mu.Unlock()
	if stop != nil {
		stop()
	}
	n.met.setRole(RoleLeader)
	n.met.promotion()
	seq := n.store.Seq()
	n.log.Info("promoted to leader", "epoch", epoch, "votes", grants, "members", n.members(), "seq", seq)
	n.ev.Emit(events.Event{
		Type:     events.CampaignWon,
		Epoch:    epoch,
		StoreSeq: seq,
		Detail:   fmt.Sprintf("%d/%d votes", grants, n.members()),
	})
}

// demote steps down to follower, pointing the streaming loop at the
// new leader when known.
func (n *Node) demote(leaderID, leaderURL string) {
	n.mu.Lock()
	wasLeader := n.role == RoleLeader
	n.role = RoleFollower
	n.leaderID, n.leaderURL = leaderID, leaderURL
	n.contact = time.Now()
	n.suspended = false
	runCtx := n.runCtx
	n.cond.Broadcast()
	n.mu.Unlock()
	if wasLeader {
		n.met.demotion()
		if runCtx != nil && runCtx.Err() == nil {
			n.startFollowing(runCtx)
		}
	}
	n.met.setRole(RoleFollower)
	if leaderURL != "" {
		n.f.Retarget(leaderURL)
	}
	if wasLeader {
		epoch := n.store.Epoch()
		n.log.Warn("demoted to follower",
			"leader", leaderID, "leaderUrl", leaderURL, "epoch", epoch, "seq", n.store.Seq())
		n.ev.Emit(events.Event{
			Type:     events.LeaderDemoted,
			Epoch:    epoch,
			StoreSeq: n.store.Seq(),
			Peer:     leaderID,
			Detail:   "stepped down after seeing a higher epoch",
		})
	}
}

// adoptLeader records a discovered leader and retargets the stream.
func (n *Node) adoptLeader(leaderID, leaderURL string) {
	n.mu.Lock()
	n.role = RoleFollower
	n.leaderID, n.leaderURL = leaderID, leaderURL
	n.contact = time.Now()
	n.cond.Broadcast()
	n.mu.Unlock()
	n.met.setRole(RoleFollower)
	if leaderURL != "" {
		n.f.Retarget(leaderURL)
	}
	n.log.Info("adopted discovered leader", "leader", leaderID, "leaderUrl", leaderURL)
}

// leaderTick is the leader's self-check: demote on any higher epoch —
// including a peer whose fencing floor is higher because it voted in
// an election we lost track of — and suspend writes while a majority
// is unreachable.
func (n *Node) leaderTick(ctx context.Context) {
	statuses := n.pollPeers(ctx)
	epoch := n.store.Epoch()
	for id := range statuses {
		st := statuses[id]
		if st.Epoch > epoch || st.FenceEpoch > epoch {
			n.log.Warn("deposed: peer reports a higher epoch",
				"peer", id, "peerEpoch", st.Epoch, "peerFence", st.FenceEpoch, "epoch", epoch)
			n.demote(st.LeaderID, st.LeaderURL)
			return
		}
	}
	reachable := len(statuses) + 1
	n.mu.Lock()
	was := n.suspended
	n.suspended = reachable < n.majority()
	now := n.suspended
	n.mu.Unlock()
	if now != was {
		n.met.setSuspended(now)
		if now {
			n.log.Warn("suspended writes: majority unreachable",
				"reachable", reachable, "members", n.members(), "need", n.majority(), "epoch", epoch)
		} else {
			n.log.Info("majority contact restored; resuming writes",
				"reachable", reachable, "members", n.members(), "epoch", epoch)
		}
	}
}

// Promote forces an immediate election attempt regardless of lease
// state (the manual-failover override: POST /v1/repl/promote). The
// quorum, epoch and longest-prefix vote checks still apply — a
// partitioned minority node cannot be force-promoted.
func (n *Node) Promote(ctx context.Context) error {
	if n.IsLeader() {
		return nil
	}
	n.campaign(ctx, true)
	if !n.IsLeader() {
		return fmt.Errorf("repl: promotion failed (see node log); still %s", n.Role())
	}
	return nil
}

// HandleVote answers a candidate's vote request (POST /v1/repl/vote).
// Safety lives here: one durable vote per epoch, never for a
// candidate whose prefix is shorter than ours, never for a stale
// epoch. Liveness lives in the lease check: a voter that heard from
// a live leader within the lease refuses to depose it.
func (n *Node) HandleVote(req VoteRequest) VoteResponse {
	cur := n.store.Epoch()
	resp := VoteResponse{Epoch: cur}
	if ve, vf := n.store.LastVote(); ve == req.Epoch && vf == req.CandidateID {
		// Idempotent re-grant: our durable vote for this exact candidate
		// and epoch already exists (the previous response was lost).
		// Re-running the liveness or prefix checks could only produce an
		// inconsistent answer about a decision already made durable.
		n.mu.Lock()
		n.contact = time.Now()
		n.mu.Unlock()
		resp.Granted = true
		return resp
	}
	if req.Epoch <= cur {
		resp.Reason = fmt.Sprintf("stale epoch %d (current %d)", req.Epoch, cur)
		return resp
	}
	n.mu.Lock()
	role := n.role
	contact := n.contact
	suspended := n.suspended
	n.mu.Unlock()
	if !req.Force {
		if role == RoleLeader && !suspended {
			resp.Reason = "voter is a leader with majority contact"
			return resp
		}
		if role == RoleFollower && time.Since(contact) <= n.cfg.Lease {
			resp.Reason = "leader lease still live"
			return resp
		}
	}
	if seq := n.store.Seq(); req.AppliedSeq < seq {
		resp.Reason = fmt.Sprintf("candidate prefix %d behind voter %d", req.AppliedSeq, seq)
		return resp
	}
	if err := n.store.RecordVote(req.Epoch, req.CandidateID); err != nil {
		resp.Reason = err.Error()
		return resp
	}
	n.met.voteGranted()
	// Granting resets the election clock: give the candidate a lease
	// to win and announce itself before campaigning against it.
	n.mu.Lock()
	n.contact = time.Now()
	n.mu.Unlock()
	resp.Granted = true
	n.log.Info("vote granted", "peer", req.CandidateID, "epoch", req.Epoch, "seq", n.store.Seq())
	n.ev.Emit(events.Event{
		Type:     events.VoteGranted,
		Epoch:    req.Epoch,
		StoreSeq: n.store.Seq(),
		Peer:     req.CandidateID,
	})
	return resp
}

// HandleAck ingests a follower's replication progress report
// (POST /v1/repl/ack).
func (n *Node) HandleAck(req AckRequest) {
	epoch := n.store.Epoch()
	if (req.Epoch > epoch || req.FenceEpoch > epoch) && n.IsLeader() {
		// A follower ahead of our epoch — applied tip or fencing floor
		// (it may only have VOTED in the newer epoch, with no commits
		// under it yet) — means we were deposed and missed it; discovery
		// on the next tick finds the leader.
		n.log.Warn("deposed: follower ack carries a higher epoch",
			"peer", req.NodeID, "peerEpoch", req.Epoch, "peerFence", req.FenceEpoch, "epoch", epoch)
		n.demote("", "")
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleLeader || req.NodeID == "" {
		return
	}
	// Last-writer-wins, not max: a follower that re-bootstrapped from a
	// snapshot (or sat on a deposed leader's divergent tail) must be
	// allowed to regress its reported position. sendAck runs
	// sequentially per follower, so the newest report is the truth.
	pa := peerAck{epoch: req.Epoch, seq: req.AppliedSeq}
	if n.peerSeq[req.NodeID] != pa {
		n.peerSeq[req.NodeID] = pa
		n.cond.Broadcast()
	}
}

// WaitReplicated blocks until a majority of the member set (counting
// this leader) has applied sequence seq, the node loses leadership
// (ErrNotLeader) or ctx ends. The server calls it before
// acknowledging a write, making "acknowledged" mean "replicated to a
// majority" — the property the election's longest-prefix rule turns
// into "no acknowledged write is lost across failover".
func (n *Node) WaitReplicated(ctx context.Context, seq int) error {
	if n.majority() <= 1 {
		return nil
	}
	// The awaited sequence was committed under our current epoch, so a
	// peer whose applied TIP is at that epoch and at or past seq holds
	// the write. A peer reporting seq under an OLDER tip epoch is on a
	// deposed leader's timeline — its sequence numbers name different
	// writes and must not count. (Not a liveness hole: applying through
	// seq on this timeline adopts this epoch, so honest replication
	// always converges to a countable ack.)
	epoch := n.store.Epoch()
	defer context.AfterFunc(ctx, func() {
		n.mu.Lock()
		n.cond.Broadcast()
		n.mu.Unlock()
	})()
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if n.role != RoleLeader {
			return ErrNotLeader
		}
		count := 1
		for _, pa := range n.peerSeq {
			if pa.epoch == epoch && pa.seq >= seq {
				count++
			}
		}
		if count >= n.majority() {
			return nil
		}
		n.cond.Wait()
	}
}

// setRole transitions between follower and candidate (promote/demote
// own the leader transitions).
func (n *Node) setRole(r Role) {
	n.mu.Lock()
	changed := n.role != r
	n.role = r
	if changed {
		n.cond.Broadcast()
	}
	n.mu.Unlock()
	if changed {
		n.met.setRole(r)
	}
}

// ackLoop reports replication progress to the current leader: after
// every locally applied commit (the store re-notifies replicated
// transactions) and on a lease/3 heartbeat.
func (n *Node) ackLoop(ctx context.Context) {
	txns, cancel := n.store.Subscribe(64)
	defer cancel()
	tick := n.cfg.Lease / 3
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-txns:
			// Coalesce a burst into one ack for the newest sequence.
			for {
				select {
				case <-txns:
					continue
				default:
				}
				break
			}
			n.sendAck(ctx)
		case <-t.C:
			n.sendAck(ctx)
		}
	}
}

// sendAck posts this node's applied sequence to the leader (no-op
// while leading or with no leader known). Failures are silent: acks
// are periodic, the next one retries.
func (n *Node) sendAck(ctx context.Context) {
	n.mu.Lock()
	url := n.leaderURL
	leading := n.role == RoleLeader
	n.mu.Unlock()
	if leading || url == "" {
		return
	}
	body, err := json.Marshal(AckRequest{
		NodeID:     n.cfg.ID,
		AppliedSeq: n.store.Seq(),
		Epoch:      n.store.Epoch(),
		FenceEpoch: n.store.FenceEpoch(),
	})
	if err != nil {
		return
	}
	cctx, cancel := context.WithTimeout(ctx, n.rpcTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url+"/v1/repl/ack", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
}

// pollPeers fetches every peer's /v1/repl/status in parallel,
// returning the reachable ones.
func (n *Node) pollPeers(ctx context.Context) map[string]StatusInfo {
	var mu sync.Mutex
	out := make(map[string]StatusInfo)
	var wg sync.WaitGroup
	for id, url := range n.cfg.Peers {
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			st, err := n.fetchStatus(ctx, url)
			if err != nil {
				return
			}
			mu.Lock()
			out[id] = st
			mu.Unlock()
		}(id, url)
	}
	wg.Wait()
	return out
}

// fetchStatus fetches one peer's status.
func (n *Node) fetchStatus(ctx context.Context, url string) (StatusInfo, error) {
	cctx, cancel := context.WithTimeout(ctx, n.rpcTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url+"/v1/repl/status", nil)
	if err != nil {
		return StatusInfo{}, err
	}
	resp, err := n.hc.Do(req)
	if err != nil {
		return StatusInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return StatusInfo{}, fmt.Errorf("status HTTP %d", resp.StatusCode)
	}
	var st StatusInfo
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return StatusInfo{}, err
	}
	return st, nil
}

// requestVote posts one vote request.
func (n *Node) requestVote(ctx context.Context, url string, vreq VoteRequest) (VoteResponse, error) {
	body, err := json.Marshal(vreq)
	if err != nil {
		return VoteResponse{}, err
	}
	cctx, cancel := context.WithTimeout(ctx, n.rpcTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, url+"/v1/repl/vote", bytes.NewReader(body))
	if err != nil {
		return VoteResponse{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.hc.Do(req)
	if err != nil {
		return VoteResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return VoteResponse{}, fmt.Errorf("vote HTTP %d", resp.StatusCode)
	}
	var vr VoteResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&vr); err != nil {
		return VoteResponse{}, err
	}
	return vr, nil
}

// Members returns the full member roster (self included) as an
// ID-to-base-URL map. The server's /v1/cluster aggregation fans out
// over it.
func (n *Node) Members() map[string]string {
	out := make(map[string]string, len(n.cfg.Peers)+1)
	out[n.cfg.ID] = n.cfg.SelfURL
	for id, url := range n.cfg.Peers {
		out[id] = url
	}
	return out
}

// MemberIDs returns the sorted member set (self included), for logs
// and tests.
func (n *Node) MemberIDs() []string {
	ids := []string{n.cfg.ID}
	for id := range n.cfg.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
