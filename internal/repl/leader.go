package repl

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// Leader serves a store's committed-transaction sequence to followers
// over HTTP (GET /v1/repl/stream?from=<seq>). One Leader serves any
// number of concurrent streams; each stream holds a store
// subscription and costs the leader nothing on the commit path beyond
// the existing fan-out. A follower is itself a valid stream source
// (its store commits replicated transactions through the same
// notification path), so replicas can be chained.
type Leader struct {
	store *persist.Store

	// heartbeat is the idle keepalive interval; every heartbeat also
	// carries the leader's current sequence so followers measure lag
	// without extra round trips.
	heartbeat time.Duration
	// chunk is the number of facts per snapshot frame.
	chunk int
	// buffer is the per-stream subscription depth; a stream that
	// falls further behind than this is terminated (the follower
	// resumes from its sequence, served from history).
	buffer int

	// id/selfURL identify this leader in heartbeats, and lease is the
	// lease duration each heartbeat renews (zero outside cluster mode;
	// see NodeConfig). All three ride the Heartbeat frame so followers
	// learn who leads and how long its lease runs.
	id      string
	selfURL string
	lease   time.Duration

	met leaderMetrics
}

// LeaderOption configures NewLeader.
type LeaderOption func(*Leader)

// WithHeartbeat sets the stream keepalive interval (default 5s).
func WithHeartbeat(d time.Duration) LeaderOption {
	return func(l *Leader) {
		if d > 0 {
			l.heartbeat = d
		}
	}
}

// WithSnapshotChunk sets the facts-per-frame chunk size of snapshot
// bootstraps (default 4096).
func WithSnapshotChunk(n int) LeaderOption {
	return func(l *Leader) {
		if n > 0 {
			l.chunk = n
		}
	}
}

// WithStreamBuffer sets the per-stream subscription buffer (default
// 256 transactions).
func WithStreamBuffer(n int) LeaderOption {
	return func(l *Leader) {
		if n > 0 {
			l.buffer = n
		}
	}
}

// WithLeaderIdentity stamps heartbeats with this leader's node ID and
// advertised URL, and with the lease duration each heartbeat renews.
// Cluster mode (repl.Node) sets it; a standalone leader leaves
// heartbeats bare.
func WithLeaderIdentity(id, selfURL string, lease time.Duration) LeaderOption {
	return func(l *Leader) {
		l.id, l.selfURL = id, selfURL
		if lease > 0 {
			l.lease = lease
		}
	}
}

// SetIdentity is the post-construction form of WithLeaderIdentity,
// for servers that learn their cluster identity after building the
// leader. Call before serving streams.
func (l *Leader) SetIdentity(id, selfURL string, lease time.Duration) {
	l.id, l.selfURL = id, selfURL
	if lease > 0 {
		l.lease = lease
	}
}

// NewLeader wraps a store in a replication stream server.
func NewLeader(store *persist.Store, opts ...LeaderOption) *Leader {
	l := &Leader{
		store:     store,
		heartbeat: 5 * time.Second,
		chunk:     4096,
		buffer:    256,
	}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Instrument registers the leader-side replication metrics in reg.
func (l *Leader) Instrument(reg *metrics.Registry) {
	l.met.register(reg)
}

// ServeHTTP streams the snapshot (when needed) and transaction tail
// starting after the ?from= sequence, then live commits interleaved
// with heartbeats, until the client disconnects or falls too far
// behind.
func (l *Leader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad 'from' parameter %q", v), http.StatusBadRequest)
			return
		}
		from = n
	}
	// ?epoch= is the epoch of the follower's state at `from` (absent
	// from pre-epoch followers). It guards resume-after-failover: a
	// follower whose prefix was written by a deposed leader must not
	// be grafted onto the new leader's timeline at the same sequence.
	fromEpoch, haveEpoch := int64(0), false
	if v := r.URL.Query().Get("epoch"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad 'epoch' parameter %q", v), http.StatusBadRequest)
			return
		}
		fromEpoch, haveEpoch = n, true
	}

	// Take a consistent cut — without the snapshot first (the common
	// resume case), retaking it with the snapshot when the follower
	// cannot resume from history: its sequence predates the leader's
	// last checkpoint, lies beyond the leader's sequence (divergence —
	// e.g. the follower outlived a leader restore; the leader's state
	// wins), or was written under a different epoch than the leader's
	// own transaction at that sequence (divergence across a failover:
	// the fenced timeline is discarded by bootstrap).
	resumable := func(c *persist.ReplicaCut) bool {
		if from < c.BaseSeq || from > c.Seq {
			return false
		}
		if !haveEpoch {
			return true
		}
		epochAt := c.BaseEpoch
		if from > c.BaseSeq {
			epochAt = c.History[from-c.BaseSeq-1].Epoch
		}
		return epochAt == fromEpoch
	}
	cut, err := l.store.ReplicaCut(false, l.buffer)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if !resumable(cut) {
		cut.Cancel()
		if cut, err = l.store.ReplicaCut(true, l.buffer); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
	}
	defer cut.Cancel()

	l.met.streamStart()
	defer l.met.streamEnd()

	w.Header().Set("Content-Type", "application/x-park-repl")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(typ byte, payload any) error {
		n, err := writeFrame(w, typ, payload)
		l.met.frame(typ, n)
		return err
	}

	// Tell the follower where the leader is right away: lag is
	// observable before the first live commit arrives.
	if send(FrameHeartbeat, l.heartbeatFrame(cut.Seq, cut.Epoch)) != nil {
		return
	}
	last := from
	// A commit can land between the two cuts and make the resume
	// window reach `from` after all; prefer the cheaper history path.
	if cut.Snapshot != nil && !resumable(cut) {
		facts := factStrings(l.store.Universe(), cut.Snapshot)
		for i := 0; ; i += l.chunk {
			end := min(i+l.chunk, len(facts))
			done := end == len(facts)
			if send(FrameSnapshot, SnapshotChunk{Seq: cut.BaseSeq, Epoch: cut.BaseEpoch, Facts: facts[i:end], Done: done}) != nil {
				return
			}
			if done {
				break
			}
		}
		l.met.snapshot()
		last = cut.BaseSeq
	}
	for _, txn := range cut.History {
		if txn.Seq <= last {
			continue
		}
		if send(FrameTxn, l.txnFrame(txn)) != nil {
			return
		}
		last = txn.Seq
	}
	flusher.Flush()

	ticker := time.NewTicker(l.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case txn := <-cut.Events:
			// Drain whatever is queued before flushing once.
			for {
				if txn.Seq > last {
					if txn.Seq != last+1 {
						// The subscription dropped events (stream too
						// slow): this stream can no longer promise a
						// dense sequence. Terminate; the follower
						// resumes from its sequence and is served the
						// missed window from history.
						return
					}
					if send(FrameTxn, l.txnFrame(txn)) != nil {
						return
					}
					last = txn.Seq
				}
				select {
				case txn = <-cut.Events:
					continue
				default:
				}
				break
			}
			flusher.Flush()
		case <-ticker.C:
			if send(FrameHeartbeat, l.heartbeatFrame(l.store.Seq(), l.store.Epoch())) != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// heartbeatFrame builds a heartbeat carrying the leader's sequence,
// epoch, identity and lease (identity/lease only in cluster mode).
func (l *Leader) heartbeatFrame(seq int, epoch int64) Heartbeat {
	return Heartbeat{
		Seq:         seq,
		Epoch:       epoch,
		LeaderID:    l.id,
		LeaderURL:   l.selfURL,
		LeaseMillis: l.lease.Milliseconds(),
	}
}

// txnFrame builds the wire frame for one committed transaction,
// carrying the originating trace ID and — when the transaction is
// still inside the leader's flight ring — its full flight trace, so
// the follower can answer /v1/txns/{seq}/trace for replicated
// transactions too. A transaction already evicted from the ring ships
// without a trace; correlation by trace ID still works through the
// logs.
func (l *Leader) txnFrame(txn persist.TxnRecord) TxnFrame {
	f := TxnFrame{Seq: txn.Seq, Epoch: txn.Epoch, TraceID: txn.TraceID, Added: txn.Added, Removed: txn.Removed}
	if ring := l.store.Flight(); ring != nil {
		f.Trace = ring.Get(txn.Seq)
	}
	return f
}

// factStrings renders a database as sorted rule-language facts.
func factStrings(u *core.Universe, d *core.Database) []string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = u.AtomString(id)
	}
	return out
}
