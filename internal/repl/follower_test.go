package repl

import (
	"testing"
	"time"

	"repro/internal/persist"
)

func newTestFollower(t *testing.T) *Follower {
	t.Helper()
	s, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return NewFollower(s, "http://leader")
}

// TestFollowerJitterIndependence is the regression test for the
// clock-seeded jitter bug: followers constructed back-to-back (same
// wall-clock instant at any realistic resolution) must draw different
// reconnect jitter, or a flap storm reconnects the whole fleet in
// lockstep. With the old time.Now().UnixNano() seeding this failed
// whenever two constructions landed in the same nanosecond tick.
func TestFollowerJitterIndependence(t *testing.T) {
	const draws = 32
	a := newTestFollower(t)
	b := newTestFollower(t)

	same := 0
	for i := 0; i < draws; i++ {
		if a.jitter(time.Second) == b.jitter(time.Second) {
			same++
		}
	}
	// Two independent uniform draws over ~5e8 values collide with
	// negligible probability; identical streams mean shared seeding.
	if same == draws {
		t.Fatalf("two followers produced identical jitter sequences (%d draws) — rng seeding is not per-instance", draws)
	}
}

// TestFollowerJitterBounds pins the full-jitter contract: each draw
// lies in [backoff/2, backoff].
func TestFollowerJitterBounds(t *testing.T) {
	f := newTestFollower(t)
	for _, backoff := range []time.Duration{200 * time.Millisecond, time.Second, 10 * time.Second} {
		for i := 0; i < 100; i++ {
			d := f.jitter(backoff)
			if d < backoff/2 || d > backoff {
				t.Fatalf("jitter(%v) = %v, outside [%v, %v]", backoff, d, backoff/2, backoff)
			}
		}
	}
}
