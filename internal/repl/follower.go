package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/persist"
)

// Follower replays a leader's committed-transaction stream into a
// local store, keeping it a sequentially consistent prefix of the
// leader. Run drives the connect/apply/reconnect loop; the local
// store stays fully readable throughout (queries, snapshots, history)
// and must not be written by anyone else — the replication stream is
// its only writer.
type Follower struct {
	store *persist.Store
	hc    *http.Client

	// staleAfter bounds the silence the follower tolerates before it
	// declares the stream dead and reconnects; it must exceed the
	// leader's heartbeat interval.
	staleAfter time.Duration
	// backoffMin/backoffMax bound the jittered exponential reconnect
	// backoff.
	backoffMin, backoffMax time.Duration
	// syncEvery bounds how many applied transactions may precede one
	// WAL fsync during catch-up (the follower also syncs whenever it
	// reaches the leader's sequence and on heartbeats).
	syncEvery int
	logf      func(format string, args ...any)
	// ev is the cluster event journal (nil-safe): the follower emits
	// repl-stall when a stream that delivered frames ends and
	// repl-resume when a connection starts delivering again.
	ev *events.Log

	met followerMetrics
	// rng draws reconnect jitter. It is a per-instance source seeded
	// from math/rand/v2's auto-seeded generator, NOT from the clock:
	// followers built in the same instant (smoke drills, shard
	// bootstraps) must still jitter independently, or they reconnect
	// in lockstep and the jitter defeats itself.
	rng *rand.Rand

	mu     sync.Mutex
	st     Status
	leader string // current leader base URL, no trailing slash (Retarget swaps it)
	// snapEpoch/… accumulate an in-flight snapshot bootstrap.
	snapActive bool
	snapSeq    int
	snapEpoch  int64
	snapFacts  []string
	// streamEpoch is the highest epoch the CURRENT stream's leader has
	// advertised in its heartbeats (reset on every new connection). It
	// authorizes snapshot bootstraps: a leader whose own epoch is
	// behind the local store's is deposed and must not reset us.
	streamEpoch int64
	// applied-but-not-yet-fsynced transaction count
	unsynced int
	// streamCancel aborts the in-flight stream request; Retarget uses
	// it so a follower switches leaders without waiting out a stale
	// read.
	streamCancel context.CancelFunc
	// retargeted notes a leader switch so Run resets its backoff.
	retargeted bool
	// stalled notes that an established stream ended (repl-stall
	// emitted); the next established stream emits repl-resume.
	stalled bool
	// wake interrupts Run's backoff sleep after a Retarget: a failover
	// must not wait out a backoff accumulated against the dead leader.
	wake chan struct{}
}

// Status is a point-in-time view of a follower's replication state.
type Status struct {
	// Connected reports whether a stream is currently established.
	Connected bool
	// AppliedSeq is the newest global sequence applied locally.
	AppliedSeq int
	// LeaderSeq is the newest leader sequence observed (heartbeats
	// and transaction frames both advance it).
	LeaderSeq int
	// LastFrame is the arrival time of the most recent frame.
	LastFrame time.Time
	// Stale reports that no frame (heartbeat or transaction) has
	// arrived within the follower's staleness bound (WithStaleAfter):
	// the replica's data may lag the leader by more than the bound.
	// Computed at Status() time.
	Stale bool
	// StaleAfter is the staleness bound Stale was judged against.
	StaleAfter time.Duration
	// Reconnects counts stream (re)establishment attempts after the
	// initial connect.
	Reconnects int64
	// TxnsApplied counts transactions applied since construction.
	TxnsApplied int64
	// SnapshotLoads counts full snapshot bootstraps performed.
	SnapshotLoads int64
	// FencedFrames counts transaction frames the store rejected
	// because they carried a deposed leadership epoch — nonzero means
	// this follower was streaming from a fenced ex-leader.
	FencedFrames int64
	// LeaderURL is the base URL the follower currently streams from.
	LeaderURL string
	// Lease state learned from heartbeats: the leader's epoch and
	// identity, and the lease duration each heartbeat renews (zero
	// from leaders running outside cluster mode). The leader's lease
	// is considered expired when LastFrame is older than Lease.
	LeaderEpoch int64
	LeaderID    string
	Lease       time.Duration
}

// LeaseExpired reports whether the leader's lease has lapsed as of
// now: a lease was advertised and no frame arrived within it. The
// election coordinator (Node) uses this as its candidacy trigger.
func (st Status) LeaseExpired(now time.Time) bool {
	return st.Lease > 0 && !st.LastFrame.IsZero() && now.Sub(st.LastFrame) > st.Lease
}

// LagSeq is the replication lag in transactions (never negative).
func (st Status) LagSeq() int {
	if st.LeaderSeq > st.AppliedSeq {
		return st.LeaderSeq - st.AppliedSeq
	}
	return 0
}

// Option configures NewFollower.
type Option func(*Follower)

// WithHTTPClient overrides the HTTP client used for the stream.
func WithHTTPClient(hc *http.Client) Option {
	return func(f *Follower) {
		if hc != nil {
			f.hc = hc
		}
	}
}

// WithStaleAfter sets how long the follower waits for a frame before
// reconnecting (default 30s; set it above the leader's heartbeat).
func WithStaleAfter(d time.Duration) Option {
	return func(f *Follower) {
		if d > 0 {
			f.staleAfter = d
		}
	}
}

// WithBackoff bounds the jittered exponential reconnect backoff
// (defaults 200ms .. 10s).
func WithBackoff(min, max time.Duration) Option {
	return func(f *Follower) {
		if min > 0 && max >= min {
			f.backoffMin, f.backoffMax = min, max
		}
	}
}

// WithSyncEvery sets the catch-up fsync batch size (default 64).
func WithSyncEvery(n int) Option {
	return func(f *Follower) {
		if n > 0 {
			f.syncEvery = n
		}
	}
}

// WithLogger directs connection lifecycle messages (connect, fault,
// backoff) to logf; by default the follower is silent.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(f *Follower) { f.logf = logf }
}

// WithEvents emits replication-stream lifecycle events (stall/resume)
// into the given cluster event journal; nil discards them.
func WithEvents(ev *events.Log) Option {
	return func(f *Follower) { f.ev = ev }
}

// NewFollower builds a follower replaying leaderURL into store. Call
// Run to start replication.
func NewFollower(store *persist.Store, leaderURL string, opts ...Option) *Follower {
	f := &Follower{
		store:      store,
		leader:     strings.TrimRight(leaderURL, "/"),
		hc:         http.DefaultClient,
		staleAfter: 30 * time.Second,
		backoffMin: 200 * time.Millisecond,
		backoffMax: 10 * time.Second,
		syncEvery:  64,
		logf:       func(string, ...any) {},
		// Seed from the process-wide auto-seeded generator: unique per
		// instance even for followers built in the same nanosecond.
		rng:  rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64())),
		wake: make(chan struct{}, 1),
	}
	for _, o := range opts {
		o(f)
	}
	f.st.AppliedSeq = store.Seq()
	return f
}

// Retarget points the follower at a new leader base URL, aborting any
// in-flight stream so the switch takes effect immediately. The
// election coordinator calls it after a failover; it is safe at any
// time (a no-op when the URL is unchanged).
func (f *Follower) Retarget(leaderURL string) {
	leaderURL = strings.TrimRight(leaderURL, "/")
	f.mu.Lock()
	if leaderURL == "" || f.leader == leaderURL {
		f.mu.Unlock()
		return
	}
	f.leader = leaderURL
	f.retargeted = true
	cancel := f.streamCancel
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	// Wake Run out of any backoff sleep: the accumulated backoff was
	// earned against the old leader and must not delay the new one.
	select {
	case f.wake <- struct{}{}:
	default:
	}
	f.logf("repl: retargeted to leader %s", leaderURL)
}

// LeaderURL returns the base URL the follower currently streams from.
func (f *Follower) LeaderURL() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.leader
}

// Instrument registers the follower's replication metrics in reg.
// Counters accumulate inline; sampled gauges refresh on
// RefreshMetrics.
func (f *Follower) Instrument(reg *metrics.Registry) {
	f.met.register(reg)
	f.RefreshMetrics()
}

// Status returns the current replication status. Staleness is judged
// at call time: a follower is stale when no frame has arrived within
// its staleAfter bound (including before the first frame).
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	st.StaleAfter = f.staleAfter
	st.Stale = st.LastFrame.IsZero() || time.Since(st.LastFrame) > f.staleAfter
	st.LeaderURL = f.leader
	return st
}

// RefreshMetrics samples the status gauges (lag, sequences,
// connectedness, last-frame age). The server calls this on every
// /v1/metrics scrape.
func (f *Follower) RefreshMetrics() {
	f.met.sample(f.Status())
}

// Run replicates until ctx is cancelled, reconnecting with jittered
// exponential backoff after any fault (leader restart, network error,
// torn stream, sequence gap). It returns ctx.Err() on cancellation —
// replication itself never gives up.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.backoffMin
	// One reusable timer for the whole loop (the pacer's stopped-timer
	// idiom): time.After inside a long-lived loop would leak a pending
	// timer per reconnect, which adds up across a flap storm.
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			f.met.reconnect()
			f.mu.Lock()
			f.st.Reconnects++
			f.mu.Unlock()
		}
		frames, err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.mu.Lock()
		if frames > 0 || f.retargeted {
			// The connection made progress, or we were pointed at a new
			// leader: treat the fault as fresh.
			backoff = f.backoffMin
		}
		f.retargeted = false
		leader := f.leader
		f.mu.Unlock()
		f.logf("repl: stream to %s ended after %d frames (%v); reconnecting in ~%v",
			leader, frames, err, backoff)
		// Full jitter: sleep uniformly in [backoff/2, backoff).
		timer.Reset(f.jitter(backoff))
		select {
		case <-ctx.Done():
			if !timer.Stop() {
				<-timer.C
			}
			return ctx.Err()
		case <-f.wake:
			// Retargeted mid-sleep: connect to the new leader now.
			if !timer.Stop() {
				<-timer.C
			}
		case <-timer.C:
		}
		if backoff *= 2; backoff > f.backoffMax {
			backoff = f.backoffMax
		}
	}
}

// jitter draws the reconnect sleep for one backoff step, uniformly in
// [backoff/2, backoff).
func (f *Follower) jitter(backoff time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return backoff/2 + time.Duration(f.rng.Int64N(int64(backoff/2)+1))
}

// stream runs one connection: resume from the local sequence, apply
// frames until the stream breaks. It returns the number of frames
// processed (the caller uses progress to reset backoff).
func (f *Follower) stream(ctx context.Context) (int, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	f.mu.Lock()
	f.streamCancel = cancel
	f.streamEpoch = 0
	leader := f.leader
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		f.streamCancel = nil
		f.mu.Unlock()
	}()
	if leader == "" {
		// Cluster mode before the first election: no leader is known
		// yet; Retarget will point us somewhere and wake the loop.
		return 0, fmt.Errorf("repl: no leader known")
	}
	from := f.store.Seq()
	// The epoch of our state at `from` rides along so the leader can
	// detect a timeline written by a deposed leader and force a
	// snapshot bootstrap instead of grafting divergent histories.
	url := leader + "/v1/repl/stream?from=" + strconv.Itoa(from) +
		"&epoch=" + strconv.FormatInt(f.store.Epoch(), 10)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("repl: leader returned HTTP %d", resp.StatusCode)
	}
	f.setConnected(true)
	defer f.setConnected(false)
	f.mu.Lock()
	resumed := f.stalled
	f.stalled = false
	f.mu.Unlock()
	if resumed {
		f.ev.Emit(events.Event{
			Type:     events.ReplResume,
			StoreSeq: from,
			Detail:   "stream to " + leader + " reestablished",
		})
	}
	// Mark the outage when this established stream ends for any reason
	// other than our own shutdown or promotion (context cancelled).
	defer func() {
		if cctx.Err() != nil && ctx.Err() != nil {
			return
		}
		f.mu.Lock()
		f.stalled = true
		f.mu.Unlock()
		f.ev.Emit(events.Event{
			Type:     events.ReplStall,
			StoreSeq: f.store.Seq(),
			Detail:   "stream to " + leader + " ended",
		})
	}()
	f.logf("repl: streaming from %s (resume from seq %d)", leader, from)

	// Watchdog: a stream that goes silent past staleAfter is dead
	// (half-open TCP, wedged proxy); cancel the request to unblock
	// the read below.
	watchdog := time.AfterFunc(f.staleAfter, cancel)
	defer watchdog.Stop()

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	frames := 0
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return frames, err
		}
		watchdog.Reset(f.staleAfter)
		frames++
		f.met.frame(typ, frameHeader+1+len(payload))
		if err := f.handle(typ, payload); err != nil {
			return frames, err
		}
	}
}

// handle applies one frame.
func (f *Follower) handle(typ byte, payload []byte) error {
	now := time.Now()
	switch typ {
	case FrameHeartbeat:
		var hb Heartbeat
		if err := json.Unmarshal(payload, &hb); err != nil {
			return fmt.Errorf("repl: bad heartbeat: %w", err)
		}
		// Fence BEFORE the heartbeat renews anything: once this store has
		// acknowledged a newer epoch (commit, vote or bootstrap), a
		// deposed leader's heartbeats must not keep refreshing LastFrame
		// — that would renew its lease here and block the election that
		// replaces it. Epoch-0 heartbeats (leaders outside cluster mode)
		// only hit this if the store has real fencing state.
		if fence := f.store.FenceEpoch(); hb.Epoch < fence {
			f.met.fenced()
			f.mu.Lock()
			f.st.FencedFrames++
			f.mu.Unlock()
			return fmt.Errorf("repl: heartbeat from deposed leader: epoch %d below local fence %d", hb.Epoch, fence)
		}
		f.mu.Lock()
		if hb.Seq > f.st.LeaderSeq {
			f.st.LeaderSeq = hb.Seq
		}
		if hb.Epoch > f.st.LeaderEpoch {
			f.st.LeaderEpoch = hb.Epoch
		}
		if hb.Epoch > f.streamEpoch {
			f.streamEpoch = hb.Epoch
		}
		if hb.LeaderID != "" {
			f.st.LeaderID = hb.LeaderID
		}
		if hb.LeaseMillis > 0 {
			f.st.Lease = time.Duration(hb.LeaseMillis) * time.Millisecond
		}
		f.st.LastFrame = now
		f.mu.Unlock()
		// A heartbeat marks an idle point: flush batched durability.
		return f.syncIfUnsynced()

	case FrameSnapshot:
		var sc SnapshotChunk
		if err := json.Unmarshal(payload, &sc); err != nil {
			return fmt.Errorf("repl: bad snapshot chunk: %w", err)
		}
		f.mu.Lock()
		if !f.snapActive || f.snapSeq != sc.Seq {
			f.snapActive, f.snapSeq, f.snapEpoch, f.snapFacts = true, sc.Seq, sc.Epoch, nil
		}
		f.snapFacts = append(f.snapFacts, sc.Facts...)
		f.st.LastFrame = now
		facts, seq, epoch, done := f.snapFacts, f.snapSeq, f.snapEpoch, sc.Done
		// The leader always heartbeats before the snapshot, so by now
		// streamEpoch holds its current epoch — the authorization for
		// discarding our timeline (see persist.ResetToSnapshot).
		leaderEpoch := f.streamEpoch
		f.mu.Unlock()
		if !done {
			return nil
		}
		if err := f.store.ResetToSnapshot(seq, epoch, facts, leaderEpoch); err != nil {
			if errors.Is(err, persist.ErrFenced) {
				// A deposed leader tried to bootstrap us onto its stale
				// timeline: drop the connection, keep our state.
				f.met.fenced()
				f.mu.Lock()
				f.st.FencedFrames++
				f.mu.Unlock()
			}
			return err
		}
		f.met.snapshotLoad()
		f.mu.Lock()
		f.snapActive, f.snapFacts = false, nil
		f.st.AppliedSeq = seq
		if seq > f.st.LeaderSeq {
			f.st.LeaderSeq = seq
		}
		f.st.SnapshotLoads++
		f.unsynced = 0
		f.mu.Unlock()
		f.logf("repl: bootstrapped from snapshot at seq %d (%d facts)", seq, len(facts))
		return nil

	case FrameTxn:
		var tf TxnFrame
		if err := json.Unmarshal(payload, &tf); err != nil {
			return fmt.Errorf("repl: bad txn frame: %w", err)
		}
		applied := f.store.Seq()
		if tf.Seq > applied {
			if tf.Seq != applied+1 {
				// The stream skipped transactions (e.g. the leader
				// dropped subscription events): resume from our real
				// sequence on a fresh connection.
				return fmt.Errorf("repl: sequence gap: store at %d, stream sent %d", applied, tf.Seq)
			}
			// Authorize the frame with the SERVING leader's epoch (from
			// its heartbeats), not just the frame's own stamp: a live
			// leader legitimately relays history committed under older
			// epochs during catch-up, while a deposed leader's frames —
			// whatever epoch they claim — must be judged by who is
			// sending them.
			f.mu.Lock()
			authEpoch := f.streamEpoch
			f.mu.Unlock()
			if err := f.store.ApplyReplicatedFrom(persist.TxnRecord{Seq: tf.Seq, Epoch: tf.Epoch, TraceID: tf.TraceID, Added: tf.Added, Removed: tf.Removed}, authEpoch); err != nil {
				if errors.Is(err, persist.ErrFenced) {
					// The stream's leader was deposed: drop the
					// connection and let the coordinator (or the next
					// reconnect's heartbeats) point us at the new one.
					f.met.fenced()
					f.mu.Lock()
					f.st.FencedFrames++
					f.mu.Unlock()
				}
				return err
			}
			f.met.txnApplied()
			// Adopt the leader's flight trace so /v1/txns answers on the
			// replica too. The leader ships it only while the trace is in
			// its own ring; origin marks that the evaluation happened
			// there.
			if tf.Trace != nil {
				if ring := f.store.Flight(); ring != nil {
					tf.Trace.Origin = "leader"
					ring.Insert(tf.Trace)
				}
			}
		}
		f.mu.Lock()
		f.st.AppliedSeq = f.store.Seq()
		if tf.Seq > f.st.LeaderSeq {
			f.st.LeaderSeq = tf.Seq
		}
		f.st.TxnsApplied++
		f.st.LastFrame = now
		f.unsynced++
		caughtUp := f.st.AppliedSeq >= f.st.LeaderSeq
		batchFull := f.unsynced >= f.syncEvery
		f.mu.Unlock()
		if caughtUp || batchFull {
			return f.syncIfUnsynced()
		}
		return nil
	}
	return fmt.Errorf("repl: unknown frame type %q", typ)
}

// syncIfUnsynced flushes batched WAL durability if any applied
// transactions are pending.
func (f *Follower) syncIfUnsynced() error {
	f.mu.Lock()
	n := f.unsynced
	f.unsynced = 0
	f.mu.Unlock()
	if n == 0 {
		return nil
	}
	return f.store.SyncWAL()
}

func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	f.st.Connected = up
	f.mu.Unlock()
}
