package repl

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/persist"
)

// Follower replays a leader's committed-transaction stream into a
// local store, keeping it a sequentially consistent prefix of the
// leader. Run drives the connect/apply/reconnect loop; the local
// store stays fully readable throughout (queries, snapshots, history)
// and must not be written by anyone else — the replication stream is
// its only writer.
type Follower struct {
	store  *persist.Store
	leader string // leader base URL, no trailing slash
	hc     *http.Client

	// staleAfter bounds the silence the follower tolerates before it
	// declares the stream dead and reconnects; it must exceed the
	// leader's heartbeat interval.
	staleAfter time.Duration
	// backoffMin/backoffMax bound the jittered exponential reconnect
	// backoff.
	backoffMin, backoffMax time.Duration
	// syncEvery bounds how many applied transactions may precede one
	// WAL fsync during catch-up (the follower also syncs whenever it
	// reaches the leader's sequence and on heartbeats).
	syncEvery int
	logf      func(format string, args ...any)

	met followerMetrics
	rng *rand.Rand

	mu sync.Mutex
	st Status
	// snapshot bootstrap accumulation state
	snapActive bool
	snapSeq    int
	snapFacts  []string
	// applied-but-not-yet-fsynced transaction count
	unsynced int
}

// Status is a point-in-time view of a follower's replication state.
type Status struct {
	// Connected reports whether a stream is currently established.
	Connected bool
	// AppliedSeq is the newest global sequence applied locally.
	AppliedSeq int
	// LeaderSeq is the newest leader sequence observed (heartbeats
	// and transaction frames both advance it).
	LeaderSeq int
	// LastFrame is the arrival time of the most recent frame.
	LastFrame time.Time
	// Stale reports that no frame (heartbeat or transaction) has
	// arrived within the follower's staleness bound (WithStaleAfter):
	// the replica's data may lag the leader by more than the bound.
	// Computed at Status() time.
	Stale bool
	// StaleAfter is the staleness bound Stale was judged against.
	StaleAfter time.Duration
	// Reconnects counts stream (re)establishment attempts after the
	// initial connect.
	Reconnects int64
	// TxnsApplied counts transactions applied since construction.
	TxnsApplied int64
	// SnapshotLoads counts full snapshot bootstraps performed.
	SnapshotLoads int64
}

// LagSeq is the replication lag in transactions (never negative).
func (st Status) LagSeq() int {
	if st.LeaderSeq > st.AppliedSeq {
		return st.LeaderSeq - st.AppliedSeq
	}
	return 0
}

// Option configures NewFollower.
type Option func(*Follower)

// WithHTTPClient overrides the HTTP client used for the stream.
func WithHTTPClient(hc *http.Client) Option {
	return func(f *Follower) {
		if hc != nil {
			f.hc = hc
		}
	}
}

// WithStaleAfter sets how long the follower waits for a frame before
// reconnecting (default 30s; set it above the leader's heartbeat).
func WithStaleAfter(d time.Duration) Option {
	return func(f *Follower) {
		if d > 0 {
			f.staleAfter = d
		}
	}
}

// WithBackoff bounds the jittered exponential reconnect backoff
// (defaults 200ms .. 10s).
func WithBackoff(min, max time.Duration) Option {
	return func(f *Follower) {
		if min > 0 && max >= min {
			f.backoffMin, f.backoffMax = min, max
		}
	}
}

// WithSyncEvery sets the catch-up fsync batch size (default 64).
func WithSyncEvery(n int) Option {
	return func(f *Follower) {
		if n > 0 {
			f.syncEvery = n
		}
	}
}

// WithLogger directs connection lifecycle messages (connect, fault,
// backoff) to logf; by default the follower is silent.
func WithLogger(logf func(format string, args ...any)) Option {
	return func(f *Follower) { f.logf = logf }
}

// NewFollower builds a follower replaying leaderURL into store. Call
// Run to start replication.
func NewFollower(store *persist.Store, leaderURL string, opts ...Option) *Follower {
	f := &Follower{
		store:      store,
		leader:     strings.TrimRight(leaderURL, "/"),
		hc:         http.DefaultClient,
		staleAfter: 30 * time.Second,
		backoffMin: 200 * time.Millisecond,
		backoffMax: 10 * time.Second,
		syncEvery:  64,
		logf:       func(string, ...any) {},
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	for _, o := range opts {
		o(f)
	}
	f.st.AppliedSeq = store.Seq()
	return f
}

// Instrument registers the follower's replication metrics in reg.
// Counters accumulate inline; sampled gauges refresh on
// RefreshMetrics.
func (f *Follower) Instrument(reg *metrics.Registry) {
	f.met.register(reg)
	f.RefreshMetrics()
}

// Status returns the current replication status. Staleness is judged
// at call time: a follower is stale when no frame has arrived within
// its staleAfter bound (including before the first frame).
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	st.StaleAfter = f.staleAfter
	st.Stale = st.LastFrame.IsZero() || time.Since(st.LastFrame) > f.staleAfter
	return st
}

// RefreshMetrics samples the status gauges (lag, sequences,
// connectedness, last-frame age). The server calls this on every
// /v1/metrics scrape.
func (f *Follower) RefreshMetrics() {
	f.met.sample(f.Status())
}

// Run replicates until ctx is cancelled, reconnecting with jittered
// exponential backoff after any fault (leader restart, network error,
// torn stream, sequence gap). It returns ctx.Err() on cancellation —
// replication itself never gives up.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.backoffMin
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			f.met.reconnect()
			f.mu.Lock()
			f.st.Reconnects++
			f.mu.Unlock()
		}
		frames, err := f.stream(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if frames > 0 {
			// The connection made progress; treat the fault as fresh.
			backoff = f.backoffMin
		}
		f.logf("repl: stream to %s ended after %d frames (%v); reconnecting in ~%v",
			f.leader, frames, err, backoff)
		// Full jitter: sleep uniformly in [backoff/2, backoff).
		f.mu.Lock()
		d := backoff/2 + time.Duration(f.rng.Int63n(int64(backoff/2)+1))
		f.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
		if backoff *= 2; backoff > f.backoffMax {
			backoff = f.backoffMax
		}
	}
}

// stream runs one connection: resume from the local sequence, apply
// frames until the stream breaks. It returns the number of frames
// processed (the caller uses progress to reset backoff).
func (f *Follower) stream(ctx context.Context) (int, error) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	from := f.store.Seq()
	url := f.leader + "/v1/repl/stream?from=" + strconv.Itoa(from)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("repl: leader returned HTTP %d", resp.StatusCode)
	}
	f.setConnected(true)
	defer f.setConnected(false)
	f.logf("repl: streaming from %s (resume from seq %d)", f.leader, from)

	// Watchdog: a stream that goes silent past staleAfter is dead
	// (half-open TCP, wedged proxy); cancel the request to unblock
	// the read below.
	watchdog := time.AfterFunc(f.staleAfter, cancel)
	defer watchdog.Stop()

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	frames := 0
	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return frames, err
		}
		watchdog.Reset(f.staleAfter)
		frames++
		f.met.frame(typ, frameHeader+1+len(payload))
		if err := f.handle(typ, payload); err != nil {
			return frames, err
		}
	}
}

// handle applies one frame.
func (f *Follower) handle(typ byte, payload []byte) error {
	now := time.Now()
	switch typ {
	case FrameHeartbeat:
		var hb Heartbeat
		if err := json.Unmarshal(payload, &hb); err != nil {
			return fmt.Errorf("repl: bad heartbeat: %w", err)
		}
		f.mu.Lock()
		if hb.Seq > f.st.LeaderSeq {
			f.st.LeaderSeq = hb.Seq
		}
		f.st.LastFrame = now
		f.mu.Unlock()
		// A heartbeat marks an idle point: flush batched durability.
		return f.syncIfUnsynced()

	case FrameSnapshot:
		var sc SnapshotChunk
		if err := json.Unmarshal(payload, &sc); err != nil {
			return fmt.Errorf("repl: bad snapshot chunk: %w", err)
		}
		f.mu.Lock()
		if !f.snapActive || f.snapSeq != sc.Seq {
			f.snapActive, f.snapSeq, f.snapFacts = true, sc.Seq, nil
		}
		f.snapFacts = append(f.snapFacts, sc.Facts...)
		f.st.LastFrame = now
		facts, seq, done := f.snapFacts, f.snapSeq, sc.Done
		f.mu.Unlock()
		if !done {
			return nil
		}
		if err := f.store.ResetToSnapshot(seq, facts); err != nil {
			return err
		}
		f.met.snapshotLoad()
		f.mu.Lock()
		f.snapActive, f.snapFacts = false, nil
		f.st.AppliedSeq = seq
		if seq > f.st.LeaderSeq {
			f.st.LeaderSeq = seq
		}
		f.st.SnapshotLoads++
		f.unsynced = 0
		f.mu.Unlock()
		f.logf("repl: bootstrapped from snapshot at seq %d (%d facts)", seq, len(facts))
		return nil

	case FrameTxn:
		var tf TxnFrame
		if err := json.Unmarshal(payload, &tf); err != nil {
			return fmt.Errorf("repl: bad txn frame: %w", err)
		}
		applied := f.store.Seq()
		if tf.Seq > applied {
			if tf.Seq != applied+1 {
				// The stream skipped transactions (e.g. the leader
				// dropped subscription events): resume from our real
				// sequence on a fresh connection.
				return fmt.Errorf("repl: sequence gap: store at %d, stream sent %d", applied, tf.Seq)
			}
			if err := f.store.ApplyReplicated(persist.TxnRecord{Seq: tf.Seq, TraceID: tf.TraceID, Added: tf.Added, Removed: tf.Removed}); err != nil {
				return err
			}
			f.met.txnApplied()
			// Adopt the leader's flight trace so /v1/txns answers on the
			// replica too. The leader ships it only while the trace is in
			// its own ring; origin marks that the evaluation happened
			// there.
			if tf.Trace != nil {
				if ring := f.store.Flight(); ring != nil {
					tf.Trace.Origin = "leader"
					ring.Insert(tf.Trace)
				}
			}
		}
		f.mu.Lock()
		f.st.AppliedSeq = f.store.Seq()
		if tf.Seq > f.st.LeaderSeq {
			f.st.LeaderSeq = tf.Seq
		}
		f.st.TxnsApplied++
		f.st.LastFrame = now
		f.unsynced++
		caughtUp := f.st.AppliedSeq >= f.st.LeaderSeq
		batchFull := f.unsynced >= f.syncEvery
		f.mu.Unlock()
		if caughtUp || batchFull {
			return f.syncIfUnsynced()
		}
		return nil
	}
	return fmt.Errorf("repl: unknown frame type %q", typ)
}

// syncIfUnsynced flushes batched WAL durability if any applied
// transactions are pending.
func (f *Follower) syncIfUnsynced() error {
	f.mu.Lock()
	n := f.unsynced
	f.unsynced = 0
	f.mu.Unlock()
	if n == 0 {
		return nil
	}
	return f.store.SyncWAL()
}

func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	f.st.Connected = up
	f.mu.Unlock()
}
