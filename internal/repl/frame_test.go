package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		typ  byte
		body any
	}{
		{FrameHeartbeat, Heartbeat{Seq: 7}},
		{FrameTxn, TxnFrame{Seq: 8, Added: []string{"p(a)"}, Removed: []string{"q(b)"}}},
		{FrameSnapshot, SnapshotChunk{Seq: 3, Facts: []string{"r(c)"}, Done: true}},
	}
	for _, f := range frames {
		if _, err := writeFrame(&buf, f.typ, f.body); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	for i, f := range frames {
		typ, payload, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != f.typ {
			t.Fatalf("frame %d: type %q, want %q", i, typ, f.typ)
		}
		switch want := f.body.(type) {
		case TxnFrame:
			var got TxnFrame
			mustUnmarshal(t, payload, &got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("frame %d: %+v, want %+v", i, got, want)
			}
		}
	}
	if _, _, err := readFrame(r); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}
}

func TestFrameChecksumRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, FrameTxn, TxnFrame{Seq: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-2] ^= 0xff // flip a payload byte
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestFrameRejectsBadLength(t *testing.T) {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], maxFrame+1)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(hdr[:]))); err == nil {
		t.Fatal("zero frame length accepted")
	}
}

// TestFrameTornRead pins that a frame cut at any byte boundary
// surfaces as an error (ErrUnexpectedEOF), never as a bogus frame.
func TestFrameTornRead(t *testing.T) {
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, FrameTxn, TxnFrame{Seq: 1, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw[:cut])))
		if err == nil {
			t.Fatalf("torn frame (cut at %d/%d) accepted", cut, len(raw))
		}
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}
