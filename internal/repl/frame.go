package repl

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/flight"
)

// Frame types. The full wire protocol is documented in
// docs/REPLICATION.md; briefly, a stream is a sequence of frames
//
//	uint32 length | uint32 crc32(payload) | payload
//
// (both header fields little-endian) where payload is one type byte
// followed by a JSON body. The framing deliberately mirrors the WAL's
// record discipline: a torn or corrupted frame is detected by the
// checksum and terminates the stream, and the follower simply
// reconnects and resumes from its last applied sequence.
const (
	// FrameSnapshot carries one chunk of a snapshot bootstrap
	// (SnapshotChunk). The chunk with Done=true completes the
	// snapshot; the follower then atomically replaces its state.
	FrameSnapshot byte = 'S'
	// FrameTxn carries one committed transaction delta (TxnFrame),
	// in sequence order.
	FrameTxn byte = 'T'
	// FrameHeartbeat carries the leader's current committed sequence
	// (Heartbeat). Sent immediately on connect and periodically while
	// idle, so followers can compute lag and detect dead peers.
	FrameHeartbeat byte = 'H'
)

const (
	// frameHeader is payload length + CRC32, both little-endian.
	frameHeader = 8
	// maxFrame bounds a single frame (snapshot chunks are split well
	// below this; the guard is against garbage lengths from a
	// corrupted stream).
	maxFrame = 8 << 20
)

// SnapshotChunk is the JSON body of a FrameSnapshot frame. A snapshot
// at sequence Seq is shipped as one or more chunks with ascending fact
// ranges; the last has Done=true. Epoch is the leadership epoch of
// the state at Seq (0 from pre-epoch leaders).
type SnapshotChunk struct {
	Seq   int      `json:"seq"`
	Epoch int64    `json:"epoch,omitempty"`
	Facts []string `json:"facts"`
	Done  bool     `json:"done"`
}

// TxnFrame is the JSON body of a FrameTxn frame: one committed
// transaction's fact-level delta, rendered in rule-language syntax
// exactly as the WAL stores it. TraceID carries the correlation ID of
// the originating request so a follower's applied-transaction log
// lines up with the leader's access log; Trace, when present, is the
// leader's flight record of the evaluation (the follower serves it
// from its own /v1/txns API). Both fields are optional — old leaders
// simply omit them, old followers ignore them.
type TxnFrame struct {
	Seq int `json:"seq"`
	// Epoch is the leadership epoch the transaction committed under;
	// the follower's store fences the frame out if it has already seen
	// a newer epoch (a deposed leader cannot replicate). 0 from
	// pre-epoch leaders.
	Epoch   int64         `json:"epoch,omitempty"`
	TraceID string        `json:"traceId,omitempty"`
	Added   []string      `json:"added,omitempty"`
	Removed []string      `json:"removed,omitempty"`
	Trace   *flight.Trace `json:"trace,omitempty"`
}

// Heartbeat is the JSON body of a FrameHeartbeat frame. Beyond the
// leader's committed sequence it carries the lease/epoch state the
// failover protocol rides on: every heartbeat renews the leader's
// lease for LeaseMillis, and identifies the leader so followers (and
// their election coordinators) know who they are following. The
// lease/identity fields are absent from pre-epoch leaders and from
// leaders running without a cluster configuration.
type Heartbeat struct {
	Seq int `json:"seq"`
	// Epoch is the leader's current leadership epoch.
	Epoch int64 `json:"epoch,omitempty"`
	// LeaderID and LeaderURL identify the sending leader.
	LeaderID  string `json:"leaderId,omitempty"`
	LeaderURL string `json:"leaderUrl,omitempty"`
	// LeaseMillis is the lease duration this heartbeat renews: a
	// follower that hears nothing for LeaseMillis may consider the
	// leader dead and start an election.
	LeaseMillis int64 `json:"leaseMillis,omitempty"`
}

// writeFrame encodes and writes one frame, returning the bytes
// written.
func writeFrame(w io.Writer, typ byte, payload any) (int, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, frameHeader+1+len(body))
	binary.LittleEndian.PutUint32(buf, uint32(1+len(body)))
	buf[frameHeader] = typ
	copy(buf[frameHeader+1:], body)
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[frameHeader:]))
	return w.Write(buf)
}

// readFrame reads one frame, returning its type byte and JSON body. A
// clean end of stream is io.EOF; a header or checksum violation is an
// error (the stream is unusable past it — resume from sequence).
func readFrame(r *bufio.Reader) (byte, []byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[:4])
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if length == 0 || length > maxFrame {
		return 0, nil, fmt.Errorf("repl: bad frame length %d", length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, fmt.Errorf("repl: frame checksum mismatch")
	}
	return payload[0], payload[1:], nil
}
