package repl_test

// The failover harness. clusterMember spins up a full in-process
// replica-set member — persist store, streaming follower, election
// node and the cluster HTTP API on a real listener — with crash,
// inbound-partition, heal and restart controls, so the tests below
// exercise the same wire protocol parkd members speak.
//
// Deterministic coverage (table-driven over 3- and 5-member sets):
// single-leader convergence from simultaneous candidacy, promotion on
// leader death, a partitioned minority refusing to elect, and a
// deposed leader demoting and getting fenced.
//
// TestRandomFailoverSchedules is the randomized extension of the
// persist fault harness: each seeded schedule runs writers against
// the live leader while a disruptor crashes or partitions random
// members (including the leader), then heals everything and asserts
// the safety invariants — no acknowledged write lost, and no fenced
// write visible (all members converge to the identical database).
//
//	PARK_FAILOVER_SCHEDULES  number of schedules (default 6, 2 in -short)
//	PARK_FAILOVER_SEED       run exactly one schedule with this seed
//
// Every failure message includes the schedule's seed.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// testLease keeps elections fast without making -race runs flaky.
const testLease = 150 * time.Millisecond

// clusterMember is one in-process replica-set member.
type clusterMember struct {
	t     *testing.T
	id    string
	dir   string
	addr  string // fixed host:port, stable across restarts
	url   string
	peers map[string]string
	lease time.Duration

	mu          sync.Mutex
	store       *persist.Store
	srv         *server.Server
	node        *repl.Node
	hs          *http.Server
	cancel      context.CancelFunc
	down        bool // crashed: nothing runs
	partitioned bool // inbound blocked: node and store still run
}

// startCluster brings up an n-member replica set on loopback
// listeners and returns the members running (no leader elected yet).
func startCluster(t *testing.T, n int, lease time.Duration) []*clusterMember {
	t.Helper()
	// Bind the listeners first: every member needs the full roster's
	// URLs before any node starts.
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	members := make([]*clusterMember, n)
	for i := range members {
		peers := map[string]string{}
		for j := range urls {
			if j != i {
				peers[ids[j]] = urls[j]
			}
		}
		m := &clusterMember{
			t:     t,
			id:    ids[i],
			dir:   t.TempDir(),
			addr:  lns[i].Addr().String(),
			url:   urls[i],
			peers: peers,
			lease: lease,
		}
		if err := m.start(lns[i]); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.crash)
		members[i] = m
	}
	return members
}

// start builds the member's store/follower/node/server stack and
// serves on ln (nil: rebind the member's fixed address).
func (m *clusterMember) start(ln net.Listener) error {
	if ln == nil {
		var err error
		// The port was just freed by a crash; give the kernel a moment.
		for i := 0; ; i++ {
			ln, err = net.Listen("tcp", m.addr)
			if err == nil {
				break
			}
			if i == 50 {
				return fmt.Errorf("member %s: rebind %s: %w", m.id, m.addr, err)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	// Each incarnation gets a fresh event journal, like a restarted
	// parkd process would.
	ev := events.NewLog(0)
	ev.SetNodeID(m.id)
	store, err := persist.Open(m.dir, persist.WithEvents(ev))
	if err != nil {
		ln.Close()
		return err
	}
	logf := func(format string, args ...any) {
		m.t.Logf("[%s] "+format, append([]any{m.id}, args...)...)
	}
	f := repl.NewFollower(store, "",
		repl.WithBackoff(2*time.Millisecond, 25*time.Millisecond),
		repl.WithLogger(logf),
		repl.WithEvents(ev))
	node, err := repl.NewNode(store, f, repl.NodeConfig{
		ID: m.id, SelfURL: m.url, Peers: m.peers, Lease: m.lease, Logf: logf, Events: ev,
	})
	if err != nil {
		store.Close()
		ln.Close()
		return err
	}
	srv := server.NewClusterMember(store, f, node)
	srv.SetEvents(ev)
	ctx, cancel := context.WithCancel(context.Background())
	hs := &http.Server{Handler: srv.Handler()}
	go node.Run(ctx)
	go hs.Serve(ln)

	m.mu.Lock()
	m.store, m.srv, m.node, m.hs, m.cancel = store, srv, node, hs, cancel
	m.down, m.partitioned = false, false
	m.mu.Unlock()
	return nil
}

// crash stops everything: the node, open streams, the listener and
// the store. State on disk survives for restart.
func (m *clusterMember) crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return
	}
	m.cancel()
	m.srv.StopStreams()
	m.hs.Close()
	m.store.Close()
	m.down = true
	m.partitioned = false
}

// restart reopens a crashed member on its original address.
func (m *clusterMember) restart() error {
	m.mu.Lock()
	if !m.down {
		m.mu.Unlock()
		return fmt.Errorf("member %s: restart while running", m.id)
	}
	m.mu.Unlock()
	return m.start(nil)
}

// partition blocks inbound traffic: peers and clients cannot reach
// the member, but its node keeps running and can still poll peers —
// the asymmetric case where a deposed leader discovers the new epoch
// on its own.
func (m *clusterMember) partition() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down || m.partitioned {
		return
	}
	m.srv.StopStreams()
	m.hs.Close()
	m.partitioned = true
}

// healPartition restores inbound service on the original address.
func (m *clusterMember) healPartition() error {
	m.mu.Lock()
	if !m.partitioned {
		m.mu.Unlock()
		return nil
	}
	var (
		ln  net.Listener
		err error
	)
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", m.addr)
		if err == nil {
			break
		}
		if i == 50 {
			m.mu.Unlock()
			return fmt.Errorf("member %s: heal rebind %s: %w", m.id, m.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	hs := &http.Server{Handler: m.srv.Handler()}
	go hs.Serve(ln)
	m.hs = hs
	m.partitioned = false
	m.mu.Unlock()
	return nil
}

// reachable reports whether clients can talk to the member.
func (m *clusterMember) reachable() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.down && !m.partitioned
}

// status fetches the member's /v1/repl/status.
func (m *clusterMember) status() (repl.StatusInfo, error) {
	var st repl.StatusInfo
	c := &http.Client{Timeout: time.Second}
	resp, err := c.Get(m.url + "/v1/repl/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// client returns an API client for the member.
func (m *clusterMember) client() *server.Client {
	return &server.Client{BaseURL: m.url, HTTPClient: &http.Client{Timeout: 5 * time.Second}}
}

// waitLeader polls until some reachable member reports itself leader
// (not suspended) and returns it.
func waitLeader(t *testing.T, members []*clusterMember, timeout time.Duration) *clusterMember {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, m := range members {
			if !m.reachable() {
				continue
			}
			st, err := m.status()
			if err == nil && st.Role == "leader" && !st.Suspended {
				return m
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no leader elected within %v", timeout)
	return nil
}

// TestClusterElectsSingleLeader: from a cold start every member is a
// follower with an expired lease, so candidacy is simultaneous by
// construction; exactly one leader must emerge and every member must
// agree on it.
func TestClusterElectsSingleLeader(t *testing.T) {
	for _, size := range []int{3, 5} {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			t.Parallel()
			members := startCluster(t, size, testLease)
			leader := waitLeader(t, members, 20*testLease)

			// Convergence: everyone agrees on one leader in one epoch.
			deadline := time.Now().Add(20 * testLease)
			for _, m := range members {
				for {
					st, err := m.status()
					if err == nil && st.LeaderID == leader.id {
						if m == leader != (st.Role == "leader") {
							t.Fatalf("member %s: role %q but leaderId %s (self %s)",
								m.id, st.Role, st.LeaderID, m.id)
						}
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("member %s never converged on leader %s (status %+v, err %v)",
							m.id, leader.id, st, err)
					}
					time.Sleep(10 * time.Millisecond)
				}
			}
			// Exactly one member claims leadership.
			leaders := 0
			for _, m := range members {
				if st, err := m.status(); err == nil && st.Role == "leader" {
					leaders++
				}
			}
			if leaders != 1 {
				t.Fatalf("%d members claim leadership, want exactly 1", leaders)
			}
		})
	}
}

// TestClusterFailoverOnLeaderCrash: acked writes survive the leader's
// death, a new leader takes over under a higher epoch within the
// failover bound, writes resume, and the restarted ex-leader rejoins
// as a fenced follower that redirects writes to the new leader.
func TestClusterFailoverOnLeaderCrash(t *testing.T) {
	t.Parallel()
	members := startCluster(t, 3, testLease)
	leader := waitLeader(t, members, 20*testLease)
	st0, err := leader.status()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	c := leader.client()
	var acked []string
	for i := 0; i < 8; i++ {
		fact := fmt.Sprintf("w(a%d)", i)
		if _, err := c.Transact(ctx, "+"+fact+"."); err != nil {
			t.Fatalf("write %d on leader: %v", i, err)
		}
		acked = append(acked, fact)
	}

	leader.crash()
	var survivors []*clusterMember
	for _, m := range members {
		if m != leader {
			survivors = append(survivors, m)
		}
	}
	next := waitLeader(t, survivors, 20*testLease)
	if next == leader {
		t.Fatal("dead leader re-elected")
	}
	nst, err := next.status()
	if err != nil {
		t.Fatal(err)
	}
	if nst.Epoch <= st0.Epoch {
		t.Fatalf("new leader epoch %d, want > deposed epoch %d", nst.Epoch, st0.Epoch)
	}

	// Every acknowledged write is on the new leader: acked means
	// replicated to a majority, and any electable candidate's prefix
	// includes every majority-acknowledged write.
	db, err := next.client().Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, f := range db {
		have[f] = true
	}
	for _, f := range acked {
		if !have[f] {
			t.Fatalf("acked write %s lost across failover (new leader db: %v)", f, db)
		}
	}

	// Writes resume on the new leader.
	if _, err := next.client().Transact(ctx, "+w(after)."); err != nil {
		t.Fatalf("write after failover: %v", err)
	}

	// The restarted ex-leader rejoins as a follower and redirects
	// writes to the new leader.
	if err := leader.restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * testLease)
	for {
		st, err := leader.status()
		if err == nil && st.Role == "follower" && st.LeaderID == next.id && st.Epoch >= nst.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted ex-leader never rejoined as follower of %s (status %+v, err %v)",
				next.id, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, err = leader.client().Transact(ctx, "+w(fenced).")
	if err == nil || !strings.Contains(err.Error(), "HTTP 421") {
		t.Fatalf("write on rejoined ex-leader = %v, want HTTP 421 redirect", err)
	}
	if !strings.Contains(err.Error(), next.url) {
		t.Fatalf("421 error %q does not name the new leader %s", err, next.url)
	}
}

// TestClusterMinorityCannotElect: with a majority of the member set
// down, the surviving minority must refuse to elect (its writes would
// be unreplicatable); service resumes once a majority is back.
func TestClusterMinorityCannotElect(t *testing.T) {
	for _, tc := range []struct {
		size, kill int
	}{
		{size: 3, kill: 2},
		{size: 5, kill: 3},
	} {
		t.Run(fmt.Sprintf("size=%d", tc.size), func(t *testing.T) {
			t.Parallel()
			members := startCluster(t, tc.size, testLease)
			leader := waitLeader(t, members, 20*testLease)

			// Kill the leader plus enough followers to leave a minority.
			killed := []*clusterMember{leader}
			for _, m := range members {
				if len(killed) == tc.kill {
					break
				}
				if m != leader {
					killed = append(killed, m)
				}
			}
			for _, m := range killed {
				m.crash()
			}
			var survivors []*clusterMember
			for _, m := range members {
				if m.reachable() {
					survivors = append(survivors, m)
				}
			}

			// Across many leases, no survivor may claim leadership.
			until := time.Now().Add(8 * testLease)
			for time.Now().Before(until) {
				for _, m := range survivors {
					if st, err := m.status(); err == nil && st.Role == "leader" {
						t.Fatalf("minority member %s elected itself leader (%+v)", m.id, st)
					}
				}
				time.Sleep(testLease / 4)
			}
			// Writes on a survivor fail retryably (503: no leader).
			_, err := survivors[0].client().Transact(context.Background(), "+m(x).")
			if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
				t.Fatalf("leaderless write = %v, want HTTP 503", err)
			}

			// Restoring one member restores the majority and a leader.
			if err := killed[1].restart(); err != nil {
				t.Fatal(err)
			}
			alive := append(append([]*clusterMember{}, survivors...), killed[1])
			waitLeader(t, alive, 30*testLease)
		})
	}
}

// TestClusterManualPromotionDeposesLeader: a forced promotion on a
// healthy follower must raise the epoch, and the old leader must
// notice and demote itself without being killed.
func TestClusterManualPromotionDeposesLeader(t *testing.T) {
	t.Parallel()
	members := startCluster(t, 3, testLease)
	leader := waitLeader(t, members, 20*testLease)
	var target *clusterMember
	for _, m := range members {
		if m != leader {
			target = m
			break
		}
	}
	st0, err := leader.status()
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(target.url+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var promoted repl.StatusInfo
	if err := json.NewDecoder(resp.Body).Decode(&promoted); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote on %s: HTTP %d (%+v)", target.id, resp.StatusCode, promoted)
	}
	if promoted.Role != "leader" || promoted.Epoch <= st0.Epoch {
		t.Fatalf("promotion result %+v, want leader above epoch %d", promoted, st0.Epoch)
	}

	// The deposed leader sees the higher epoch and steps down.
	deadline := time.Now().Add(20 * testLease)
	for {
		st, err := leader.status()
		if err == nil && st.Role == "follower" && st.LeaderID == target.id {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old leader %s never demoted (status %+v, err %v)", leader.id, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And it redirects writes to the new leader.
	_, err = leader.client().Transact(context.Background(), "+d(x).")
	if err == nil || !strings.Contains(err.Error(), "HTTP 421") {
		t.Fatalf("write on deposed leader = %v, want HTTP 421", err)
	}
}

// TestClusterEventJournalAndAggregatedStatus: an election round lands
// its lifecycle events in the members' journals — campaign-won on the
// winner, leader-demoted on the deposed leader, a vote grant
// somewhere in the set — and /v1/cluster on every member reports the
// same leader with full agreement.
func TestClusterEventJournalAndAggregatedStatus(t *testing.T) {
	t.Parallel()
	members := startCluster(t, 3, testLease)
	leader := waitLeader(t, members, 20*testLease)
	ctx := context.Background()

	// The first winner's journal already has its campaign and win.
	evs, err := leader.client().Events(ctx, 0, []string{"campaign-started", "campaign-won"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	won := false
	for _, e := range evs.Events {
		if e.Type == events.CampaignWon {
			if e.NodeID != leader.id || e.Epoch <= 0 {
				t.Fatalf("campaign-won event %+v, want nodeId %s and a positive epoch", e, leader.id)
			}
			won = true
		}
	}
	if !won {
		t.Fatalf("leader %s's journal has no campaign-won event (%+v)", leader.id, evs.Events)
	}

	// Force a failover without killing anyone: promote a follower and
	// let the old leader demote itself on seeing the higher epoch.
	var target *clusterMember
	for _, m := range members {
		if m != leader {
			target = m
			break
		}
	}
	resp, err := http.Post(target.url+"/v1/repl/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var promoted repl.StatusInfo
	err = json.NewDecoder(resp.Body).Decode(&promoted)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("promote on %s: HTTP %d, err %v", target.id, resp.StatusCode, err)
	}
	deadline := time.Now().Add(20 * testLease)
	for {
		st, err := leader.status()
		if err == nil && st.Role == "follower" && st.LeaderID == target.id {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old leader %s never demoted (status %+v, err %v)", leader.id, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The new leader's journal has the win at the promoted epoch, the
	// deposed leader's has its demotion naming the successor.
	evs, err = target.client().Events(ctx, 0, []string{"campaign-won"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	won = false
	for _, e := range evs.Events {
		if e.Type == events.CampaignWon && e.Epoch == promoted.Epoch {
			won = true
		}
	}
	if !won {
		t.Fatalf("promoted leader %s's journal has no campaign-won at epoch %d (%+v)",
			target.id, promoted.Epoch, evs.Events)
	}
	evs, err = leader.client().Events(ctx, 0, []string{"leader-demoted"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs.Events) == 0 {
		t.Fatalf("deposed leader %s's journal has no leader-demoted event", leader.id)
	}
	// The successor is named when the demotion came from the peer poll;
	// a demotion triggered by a follower's ack (which only carries the
	// higher epoch, not who won it) legitimately leaves Peer empty.
	if got := evs.Events[len(evs.Events)-1].Peer; got != target.id && got != "" {
		t.Fatalf("leader-demoted names successor %q, want %q or unknown", got, target.id)
	}

	// A majority win means at least one member granted a vote (the
	// candidate's own is a fence-raised, a peer's is vote-granted).
	granted := false
	for _, m := range members {
		evs, err := m.client().Events(ctx, 0, []string{"vote-granted"}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(evs.Events) > 0 {
			granted = true
		}
	}
	if !granted {
		t.Fatal("no member's journal records a granted vote")
	}

	// Aggregated status: every member's /v1/cluster converges on the
	// new leader, full agreement, nobody unreachable.
	for _, m := range members {
		deadline := time.Now().Add(20 * testLease)
		for {
			cs, err := m.client().ClusterStatus(ctx)
			if err == nil && cs.LeaderAgreement && cs.LeaderID == target.id && !cs.Partial {
				if cs.ReportedBy != m.id || len(cs.Members) != 3 {
					t.Fatalf("cluster status from %s: %+v", m.id, cs)
				}
				for _, row := range cs.Members {
					if !row.Reachable {
						t.Fatalf("cluster status from %s marks %s unreachable: %+v", m.id, row.ID, cs)
					}
				}
				if cs.MaxEpoch < promoted.Epoch {
					t.Fatalf("cluster status from %s reports maxEpoch %d, want >= %d", m.id, cs.MaxEpoch, promoted.Epoch)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("member %s's /v1/cluster never agreed on leader %s (last %+v, err %v)",
					m.id, target.id, cs, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Incremental polling: a cursor at lastSeq sees nothing new and
	// misses nothing.
	last, err := target.client().Events(ctx, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := target.client().Events(ctx, last.LastSeq, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail.Missed != 0 {
		t.Fatalf("cursor at lastSeq %d missed %d events", last.LastSeq, tail.Missed)
	}
	for _, e := range tail.Events {
		// Anything new must be strictly after the cursor.
		if e.Seq <= last.LastSeq {
			t.Fatalf("cursor at %d returned event with seq %d", last.LastSeq, e.Seq)
		}
	}
}

// TestRandomFailoverSchedules is the randomized leader-crash/partition
// extension of the persist fault harness (see the package comment at
// the top of this file for the knobs).
func TestRandomFailoverSchedules(t *testing.T) {
	schedules := 6
	if testing.Short() {
		schedules = 2
	}
	if v := os.Getenv("PARK_FAILOVER_SCHEDULES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad PARK_FAILOVER_SCHEDULES %q", v)
		}
		schedules = n
	}
	baseSeed := time.Now().UnixNano()
	if v := os.Getenv("PARK_FAILOVER_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad PARK_FAILOVER_SEED %q", v)
		}
		baseSeed = n
		schedules = 1
	}
	t.Logf("failover harness: %d schedule(s), base seed %d; replay with PARK_FAILOVER_SEED=<seed>", schedules, baseSeed)
	for i := 0; i < schedules; i++ {
		seed := baseSeed + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runFailoverSchedule(t, seed)
		})
	}
}

// runFailoverSchedule executes one seeded schedule: writers chase the
// live leader while the disruptor crashes or partitions members, then
// everything heals and the safety invariants are checked.
func runFailoverSchedule(t *testing.T, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	members := startCluster(t, 3, testLease)
	waitLeader(t, members, 20*testLease)
	ctx := context.Background()

	// currentLeader finds the leader by asking reachable members, the
	// way a real client re-discovers it.
	currentLeader := func() *clusterMember {
		for _, m := range members {
			if !m.reachable() {
				continue
			}
			st, err := m.status()
			if err != nil || st.LeaderURL == "" {
				continue
			}
			for _, cand := range members {
				if cand.url == st.LeaderURL && cand.reachable() {
					return cand
				}
			}
		}
		return nil
	}

	// Writers: each op targets the leader of the moment; a 200 means
	// the write is acknowledged and must survive everything below.
	const writers = 2
	const opsPerWriter = 15
	var ackedMu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-writer rng: the shared one is not goroutine-safe.
			wrnd := rand.New(rand.NewSource(seed ^ int64(w+1)))
			for op := 0; op < opsPerWriter; op++ {
				time.Sleep(time.Duration(wrnd.Int63n(int64(testLease / 4))))
				m := currentLeader()
				if m == nil {
					continue // mid-election; the op is simply not acked
				}
				fact := fmt.Sprintf("f(w%dn%d)", w, op)
				if _, err := m.client().Transact(ctx, "+"+fact+"."); err == nil {
					ackedMu.Lock()
					acked = append(acked, fact)
					ackedMu.Unlock()
				}
			}
		}(w)
	}

	// The disruptor: a few rounds of crash/partition against random
	// members — the leader is the preferred victim — with heals in
	// between. It never takes down two members at once, so a majority
	// always exists and progress resumes.
	disruptions := 2 + rnd.Intn(2)
	for d := 0; d < disruptions; d++ {
		time.Sleep(time.Duration(rnd.Int63n(int64(2 * testLease))))
		victim := members[rnd.Intn(len(members))]
		if l := currentLeader(); l != nil && rnd.Intn(3) > 0 {
			victim = l // 2/3 of disruptions hit the leader
		}
		if !victim.reachable() {
			continue
		}
		if rnd.Intn(2) == 0 {
			victim.crash()
			time.Sleep(time.Duration(int64(2*testLease) + rnd.Int63n(int64(2*testLease))))
			if err := victim.restart(); err != nil {
				t.Fatalf("[seed %d] restart %s: %v", seed, victim.id, err)
			}
		} else {
			victim.partition()
			time.Sleep(time.Duration(int64(2*testLease) + rnd.Int63n(int64(2*testLease))))
			if err := victim.healPartition(); err != nil {
				t.Fatalf("[seed %d] heal %s: %v", seed, victim.id, err)
			}
		}
	}
	wg.Wait()

	// Heal: everyone reachable, a leader elected, one last write so
	// the cluster proves liveness.
	for _, m := range members {
		if m.reachable() {
			continue
		}
		m.mu.Lock()
		part := m.partitioned
		m.mu.Unlock()
		if part {
			if err := m.healPartition(); err != nil {
				t.Fatalf("[seed %d] final heal %s: %v", seed, m.id, err)
			}
		} else if err := m.restart(); err != nil {
			t.Fatalf("[seed %d] final restart %s: %v", seed, m.id, err)
		}
	}
	final := waitLeader(t, members, 40*testLease)
	if _, err := final.client().Transact(ctx, "+final(ok)."); err != nil {
		t.Fatalf("[seed %d] write after heal: %v", seed, err)
	}

	// Convergence: every member reaches the final leader's applied
	// sequence with the identical database — a fenced write surviving
	// anywhere would show up as divergence here.
	fst, err := final.status()
	if err != nil {
		t.Fatalf("[seed %d] final leader status: %v", seed, err)
	}
	leaderDB, err := final.client().Database(ctx)
	if err != nil {
		t.Fatalf("[seed %d] final leader db: %v", seed, err)
	}
	for _, m := range members {
		deadline := time.Now().Add(40 * testLease)
		for {
			st, err := m.status()
			if err == nil && st.AppliedSeq >= fst.AppliedSeq && st.Epoch == fst.Epoch {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("[seed %d] member %s never converged (status %+v, err %v; leader %+v)",
					seed, m.id, st, err, fst)
			}
			time.Sleep(10 * time.Millisecond)
		}
		db, err := m.client().Database(ctx)
		if err != nil {
			t.Fatalf("[seed %d] member %s db: %v", seed, m.id, err)
		}
		if got, want := strings.Join(db, " "), strings.Join(leaderDB, " "); got != want {
			t.Fatalf("[seed %d] member %s diverged from leader %s:\n  member: {%s}\n  leader: {%s}",
				seed, m.id, final.id, got, want)
		}
	}
	// No acked write lost: every 200-acknowledged fact is in the
	// converged database.
	have := map[string]bool{}
	for _, f := range leaderDB {
		have[f] = true
	}
	ackedMu.Lock()
	defer ackedMu.Unlock()
	for _, f := range acked {
		if !have[f] {
			t.Fatalf("[seed %d] acked write %s lost (converged db: %v)", seed, f, leaderDB)
		}
	}
}
