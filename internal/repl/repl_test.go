package repl_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/flight"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// openStore opens a store in a fresh temp dir.
func openStore(t *testing.T) *persist.Store {
	t.Helper()
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// apply commits one update-set transaction on the store.
func apply(t *testing.T, store *persist.Store, updates string) {
	t.Helper()
	ups, err := parser.ParseUpdates(store.Universe(), "test", updates)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Apply(context.Background(), &core.Program{}, ups, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
}

// facts renders a store's database as a sorted comma-joined string.
func facts(store *persist.Store) string {
	u, db := store.Universe(), store.Snapshot()
	ids := append([]core.AID(nil), db.Atoms()...)
	u.SortAtoms(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = u.AtomString(id)
	}
	return strings.Join(parts, ", ")
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// fastFollower builds a follower tuned for tests: tight backoff so
// reconnect storms finish within the test timeout.
func fastFollower(store *persist.Store, leaderURL string) *repl.Follower {
	return repl.NewFollower(store, leaderURL,
		repl.WithBackoff(5*time.Millisecond, 50*time.Millisecond),
		repl.WithStaleAfter(2*time.Second),
		repl.WithSyncEvery(4),
	)
}

// runFollower starts f.Run and returns a cancel that waits for exit.
func runFollower(t *testing.T, f *repl.Follower) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.Run(ctx)
	}()
	stop = func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return stop
}

func TestFollowerConvergesAndStaysLive(t *testing.T) {
	leaderStore := openStore(t)
	ts := httptest.NewServer(server.New(leaderStore).Handler())
	defer ts.Close()
	for i := 0; i < 5; i++ {
		apply(t, leaderStore, fmt.Sprintf("+p(a%d).", i))
	}

	followerStore := openStore(t)
	f := fastFollower(followerStore, ts.URL)
	runFollower(t, f)

	waitFor(t, 5*time.Second, "initial catch-up", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})
	if facts(followerStore) != facts(leaderStore) {
		t.Fatalf("follower = %q, leader = %q", facts(followerStore), facts(leaderStore))
	}

	// Live tail: new commits stream through without reconnecting.
	apply(t, leaderStore, "+p(live). -p(a0).")
	waitFor(t, 5*time.Second, "live commit", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})
	if facts(followerStore) != facts(leaderStore) {
		t.Fatalf("after live commit: follower = %q, leader = %q", facts(followerStore), facts(leaderStore))
	}
	st := f.Status()
	if !st.Connected || st.LagSeq() != 0 {
		t.Fatalf("status = %+v, want connected with zero lag", st)
	}
}

// TestFollowerSnapshotBootstrap pins the out-of-window path: a
// follower whose sequence predates the leader's checkpoint cannot be
// served from history and must bootstrap from the snapshot.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	leaderStore := openStore(t)
	ts := httptest.NewServer(server.New(leaderStore).Handler())
	defer ts.Close()
	for i := 0; i < 4; i++ {
		apply(t, leaderStore, fmt.Sprintf("+q(b%d).", i))
	}
	// Checkpoint truncates the WAL: history before seq 4 is gone.
	if err := leaderStore.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	apply(t, leaderStore, "+q(tail).")

	followerStore := openStore(t)
	f := fastFollower(followerStore, ts.URL)
	runFollower(t, f)
	waitFor(t, 5*time.Second, "snapshot bootstrap", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})
	if facts(followerStore) != facts(leaderStore) {
		t.Fatalf("follower = %q, leader = %q", facts(followerStore), facts(leaderStore))
	}
	if st := f.Status(); st.SnapshotLoads == 0 {
		t.Fatalf("status = %+v, want at least one snapshot load", st)
	}
}

// chokeProxy forwards bytes from the leader to the client but severs
// each connection after a byte budget, cutting the stream at
// arbitrary byte (hence frame) boundaries.
type chokeProxy struct {
	target string
	mu     sync.Mutex
	budget int64
	conns  int
}

func (p *chokeProxy) setBudget(n int64) {
	p.mu.Lock()
	p.budget = n
	p.mu.Unlock()
}

func (p *chokeProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	budget := p.budget
	p.conns++
	p.mu.Unlock()
	resp, err := http.Get(p.target + r.URL.Path + "?" + r.URL.RawQuery)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.WriteHeader(resp.StatusCode)
	flusher := w.(http.Flusher)
	buf := make([]byte, 113) // odd size so cuts land mid-frame
	var sent int64
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if budget > 0 && sent+int64(n) > budget {
				n = int(budget - sent)
			}
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				flusher.Flush()
				sent += int64(n)
			}
			if budget > 0 && sent >= budget {
				return // sever mid-stream
			}
		}
		if err != nil {
			return
		}
	}
}

// TestFollowerTornStreamResume kills the stream at arbitrary byte
// boundaries, over and over, and asserts the follower still converges
// exactly — the satellite mirror of the WAL's crash-during-commit
// test, at the wire layer.
func TestFollowerTornStreamResume(t *testing.T) {
	leaderStore := openStore(t)
	leader := httptest.NewServer(server.New(leaderStore).Handler())
	defer leader.Close()
	for i := 0; i < 20; i++ {
		apply(t, leaderStore, fmt.Sprintf("+r(c%d).", i))
	}

	proxy := &chokeProxy{target: leader.URL, budget: 97}
	proxied := httptest.NewServer(proxy)
	defer proxied.Close()

	followerStore := openStore(t)
	f := fastFollower(followerStore, proxied.URL)
	runFollower(t, f)

	// Grow the budget slowly so many reconnects cut at different
	// offsets before the follower is allowed to finish.
	for budget := int64(97); budget < 4000; budget += 211 {
		proxy.setBudget(budget)
		time.Sleep(10 * time.Millisecond)
	}
	proxy.setBudget(0) // unlimited
	waitFor(t, 10*time.Second, "torn-stream catch-up", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})
	if facts(followerStore) != facts(leaderStore) {
		t.Fatalf("follower = %q, leader = %q", facts(followerStore), facts(leaderStore))
	}
	proxy.mu.Lock()
	conns := proxy.conns
	proxy.mu.Unlock()
	if conns < 2 {
		t.Fatalf("proxy saw %d connections; the stream was never torn", conns)
	}
}

// TestFollowerRestartMidCatchUp stops the follower partway through
// replication (simulating a crash), reopens its store from disk, and
// asserts a fresh follower resumes from the durable sequence and
// catches up exactly.
func TestFollowerRestartMidCatchUp(t *testing.T) {
	leaderStore := openStore(t)
	ts := httptest.NewServer(server.New(leaderStore).Handler())
	defer ts.Close()
	for i := 0; i < 30; i++ {
		apply(t, leaderStore, fmt.Sprintf("+s(d%d).", i))
	}

	dir := t.TempDir()
	followerStore, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := fastFollower(followerStore, ts.URL)
	stop := runFollower(t, f)
	// Kill mid-catch-up: anywhere in (0, 30) exercises a partial
	// apply; losing the race (already done) still checks resume.
	waitFor(t, 5*time.Second, "some progress", func() bool { return followerStore.Seq() > 0 })
	stop()
	if err := followerStore.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	f2 := fastFollower(reopened, ts.URL)
	runFollower(t, f2)
	waitFor(t, 5*time.Second, "post-restart catch-up", func() bool {
		return reopened.Seq() == leaderStore.Seq()
	})
	if facts(reopened) != facts(leaderStore) {
		t.Fatalf("follower = %q, leader = %q", facts(reopened), facts(leaderStore))
	}
}

// TestFollowerSurvivesLeaderRestart restarts the leader process (same
// store directory, same address) under a running follower and asserts
// the follower reconnects and converges without intervention.
func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	leaderDir := t.TempDir()
	leaderStore, err := persist.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	hs := &http.Server{Handler: server.New(leaderStore).Handler()}
	go hs.Serve(ln)
	apply(t, leaderStore, "+t(e1). +t(e2).")

	followerStore := openStore(t)
	f := fastFollower(followerStore, "http://"+addr)
	runFollower(t, f)
	waitFor(t, 5*time.Second, "pre-restart catch-up", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})

	// Leader goes down hard (streams cut), then comes back on the
	// same address with the same durable state.
	hs.Close()
	if err := leaderStore.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := persist.Open(leaderDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	hs2 := &http.Server{Handler: server.New(reopened).Handler()}
	defer hs2.Close()
	go hs2.Serve(ln2)
	apply(t, reopened, "+t(after_restart).")

	waitFor(t, 10*time.Second, "post-restart catch-up", func() bool {
		return followerStore.Seq() == reopened.Seq()
	})
	if facts(followerStore) != facts(reopened) {
		t.Fatalf("follower = %q, leader = %q", facts(followerStore), facts(reopened))
	}
	if st := f.Status(); st.Reconnects == 0 {
		t.Fatalf("status = %+v, want at least one reconnect", st)
	}
}

// TestReplicaServerEndToEnd wires the full read-replica stack: leader
// server, follower replicating into a replica server, reads answered
// locally (including time travel), writes rejected with 421.
func TestReplicaServerEndToEnd(t *testing.T) {
	leaderStore := openStore(t)
	leader := httptest.NewServer(server.New(leaderStore).Handler())
	defer leader.Close()
	apply(t, leaderStore, "+u(f1).")
	apply(t, leaderStore, "+u(f2).")

	replicaStore := openStore(t)
	f := fastFollower(replicaStore, leader.URL)
	replica := httptest.NewServer(server.NewReplica(replicaStore, f, leader.URL).Handler())
	defer replica.Close()
	runFollower(t, f)

	c := &server.Client{BaseURL: replica.URL}
	ctx := context.Background()
	waitFor(t, 5*time.Second, "replica catch-up", func() bool {
		return replicaStore.Seq() == leaderStore.Seq()
	})
	db, err := c.Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(db, ", ") != facts(leaderStore) {
		t.Fatalf("replica database = %v, leader = %q", db, facts(leaderStore))
	}
	// Sequentially consistent time travel on the replica.
	at1, err := c.DatabaseAt(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(at1, ", ") != "u(f1)" {
		t.Fatalf("replica ?at=1 = %v, want [u(f1)]", at1)
	}
	// Writes are misdirected.
	if _, err := c.Transact(ctx, "+u(f3)."); err == nil || !strings.Contains(err.Error(), "HTTP 421") {
		t.Fatalf("replica write = %v, want HTTP 421", err)
	}
	// Replication metrics come out of /v1/metrics with zero lag.
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "park_repl_follower_lag_seq ") {
			found = true
			if !strings.HasSuffix(line, " 0") {
				t.Fatalf("lag metric = %q, want 0", line)
			}
		}
	}
	if !found {
		t.Fatal("park_repl_follower_lag_seq missing from /v1/metrics")
	}
}

// TestChainedReplicas pins that a follower's store re-notifies
// replicated commits, so a second-tier follower can replicate from a
// first-tier one.
func TestChainedReplicas(t *testing.T) {
	leaderStore := openStore(t)
	leader := httptest.NewServer(server.New(leaderStore).Handler())
	defer leader.Close()

	midStore := openStore(t)
	fMid := fastFollower(midStore, leader.URL)
	mid := httptest.NewServer(server.NewReplica(midStore, fMid, leader.URL).Handler())
	defer mid.Close()
	runFollower(t, fMid)

	tipStore := openStore(t)
	fTip := fastFollower(tipStore, mid.URL)
	runFollower(t, fTip)

	for i := 0; i < 5; i++ {
		apply(t, leaderStore, fmt.Sprintf("+v(g%d).", i))
	}
	waitFor(t, 10*time.Second, "tier-2 catch-up", func() bool {
		return tipStore.Seq() == leaderStore.Seq()
	})
	if facts(tipStore) != facts(leaderStore) {
		t.Fatalf("tip = %q, leader = %q", facts(tipStore), facts(leaderStore))
	}
}

// TestLeaderRejectsBadFrom pins stream-parameter validation.
func TestLeaderRejectsBadFrom(t *testing.T) {
	leaderStore := openStore(t)
	ts := httptest.NewServer(server.New(leaderStore).Handler())
	defer ts.Close()
	for _, q := range []string{"from=x", "from=-1"} {
		resp, err := http.Get(ts.URL + "/v1/repl/stream?" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTracePropagation checks the flight-recorder fields ride the
// stream: the follower's history keeps the leader's trace IDs, and its
// flight ring serves the leader-evaluated traces (origin "leader").
func TestTracePropagation(t *testing.T) {
	leaderStore := openStore(t)
	ts := httptest.NewServer(server.New(leaderStore).Handler())
	defer ts.Close()

	ctx := flight.WithTraceID(context.Background(), "req-42")
	ups, err := parser.ParseUpdates(leaderStore.Universe(), "test", "+p(a).")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := leaderStore.Apply(ctx, &core.Program{}, ups, nil, core.Options{}); err != nil {
		t.Fatal(err)
	}
	apply(t, leaderStore, "+p(b).") // no trace ID on this one

	followerStore := openStore(t)
	f := fastFollower(followerStore, ts.URL)
	runFollower(t, f)
	waitFor(t, 5*time.Second, "catch-up", func() bool {
		return followerStore.Seq() == leaderStore.Seq()
	})

	hist := followerStore.History()
	if len(hist) != 2 || hist[0].TraceID != "req-42" || hist[1].TraceID != "" {
		t.Fatalf("follower history trace IDs wrong: %+v", hist)
	}
	tr := followerStore.Flight().Get(hist[0].Seq)
	if tr == nil {
		t.Fatal("follower has no flight trace for the replicated transaction")
	}
	if tr.TraceID != "req-42" || tr.Origin != "leader" {
		t.Fatalf("follower trace = %+v; want traceId req-42, origin leader", tr)
	}
	// The leader's own copy stays marked local.
	if lt := leaderStore.Flight().Get(hist[0].Seq); lt == nil || lt.Origin != "local" {
		t.Fatalf("leader trace = %+v; want origin local", lt)
	}
}
