package repl

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/persist"
)

// White-box tests for the fencing protocol between the store's fencing
// floor and the node's ack/vote/heartbeat handling — the machinery
// that makes "no acked write lost" hold while an election races
// in-flight replication.

// newTestNode builds a three-member node (majority 2) around a fresh
// store, without running its HTTP loops.
func newTestNode(t *testing.T) (*Node, *persist.Store) {
	t.Helper()
	s, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	f := NewFollower(s, "")
	n, err := NewNode(s, f, NodeConfig{
		ID:      "a",
		SelfURL: "http://a",
		Peers:   map[string]string{"b": "http://b", "c": "http://c"},
		Lease:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n, s
}

// TestHandleAckEpochFiltering proves WaitReplicated counts only acks
// whose applied-tip epoch matches the leader's own: a high sequence
// reported from a deposed leader's timeline must not satisfy quorum
// for a write on this one.
func TestHandleAckEpochFiltering(t *testing.T) {
	n, s := newTestNode(t)
	if err := s.ApplyReplicated(persist.TxnRecord{Seq: 1, Epoch: 2, Added: []string{"p(a)"}}); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.role = RoleLeader
	n.mu.Unlock()

	// An ack for seq 5 at epoch 1: the peer sits on an old timeline
	// whose sequence numbers name different writes. Must not count.
	n.HandleAck(AckRequest{NodeID: "b", AppliedSeq: 5, Epoch: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	err := n.WaitReplicated(ctx, 1)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitReplicated with only an old-epoch ack = %v, want deadline exceeded", err)
	}

	// The same peer catches up on OUR timeline: seq 1 at epoch 2
	// counts, even though 1 < the 5 it reported before (last-writer-
	// wins lets a re-bootstrapped peer regress honestly).
	n.HandleAck(AckRequest{NodeID: "b", AppliedSeq: 1, Epoch: 2})
	n.mu.Lock()
	pa := n.peerSeq["b"]
	n.mu.Unlock()
	if pa.seq != 1 || pa.epoch != 2 {
		t.Fatalf("peerSeq[b] = %+v, want {epoch:2 seq:1} (regression must stick)", pa)
	}
	ctx, cancel = context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := n.WaitReplicated(ctx, 1); err != nil {
		t.Fatalf("WaitReplicated with a current-epoch ack: %v", err)
	}
}

// TestHandleAckFenceDemotes proves a leader steps down when a
// follower's ack reveals a higher fencing floor — the follower may
// only have VOTED in the newer epoch, with nothing committed under it
// yet, and that alone means this leader can no longer reach quorum.
func TestHandleAckFenceDemotes(t *testing.T) {
	n, s := newTestNode(t)
	if err := s.BeginEpoch(2); err != nil {
		t.Fatal(err)
	}
	n.mu.Lock()
	n.role = RoleLeader
	n.mu.Unlock()

	n.HandleAck(AckRequest{NodeID: "b", AppliedSeq: 0, Epoch: 2, FenceEpoch: 3})
	if got := n.Role(); got != RoleFollower {
		t.Fatalf("role after higher-fence ack = %v, want follower", got)
	}
}

// TestHandleVoteIdempotentRegrant proves a candidate whose granted
// vote's response was lost can reacquire the exact same vote on retry,
// while the epoch stays burned for everyone else.
func TestHandleVoteIdempotentRegrant(t *testing.T) {
	n, s := newTestNode(t)
	if err := s.RecordVote(5, "c"); err != nil {
		t.Fatal(err)
	}
	resp := n.HandleVote(VoteRequest{Epoch: 5, CandidateID: "c", AppliedSeq: 0})
	if !resp.Granted {
		t.Fatalf("exact re-vote not granted: %s", resp.Reason)
	}
	if resp := n.HandleVote(VoteRequest{Epoch: 5, CandidateID: "b", AppliedSeq: 100, Force: true}); resp.Granted {
		t.Fatal("epoch-5 vote granted to a second candidate")
	}
}

// TestFollowerHeartbeatFencing proves a deposed leader's heartbeats
// stop renewing the lease the moment the local store has acknowledged
// a newer epoch: the stream drops instead of refreshing LastFrame, so
// the election that replaces the old leader is not starved.
func TestFollowerHeartbeatFencing(t *testing.T) {
	s, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	f := NewFollower(s, "http://leader")
	if err := s.RecordVote(5, "c"); err != nil {
		t.Fatal(err)
	}

	hb, err := json.Marshal(Heartbeat{Seq: 9, Epoch: 3, LeaderID: "old", LeaseMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.handle(FrameHeartbeat, hb); err == nil {
		t.Fatal("heartbeat from epoch 3 accepted despite fence at 5")
	}
	st := f.Status()
	if !st.LastFrame.IsZero() {
		t.Fatal("fenced heartbeat renewed LastFrame — the dead leader's lease must not refresh")
	}
	if st.FencedFrames != 1 {
		t.Fatalf("FencedFrames = %d, want 1", st.FencedFrames)
	}

	// The epoch-5 winner's heartbeats pass.
	hb, err = json.Marshal(Heartbeat{Seq: 9, Epoch: 5, LeaderID: "c", LeaseMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.handle(FrameHeartbeat, hb); err != nil {
		t.Fatalf("current-leader heartbeat: %v", err)
	}
	if st := f.Status(); st.LastFrame.IsZero() || st.LeaderEpoch != 5 {
		t.Fatalf("status after current-leader heartbeat = %+v", st)
	}
}
