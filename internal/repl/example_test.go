package repl_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/server"
)

// ExampleFollower runs a leader and a read replica in one process:
// the leader commits transactions, the follower replays them and
// converges to the identical database.
func ExampleFollower() {
	leaderDir, _ := os.MkdirTemp("", "park-leader")
	defer os.RemoveAll(leaderDir)
	followerDir, _ := os.MkdirTemp("", "park-follower")
	defer os.RemoveAll(followerDir)

	// Leader: a normal parkd-style server over a durable store.
	leaderStore, _ := persist.Open(leaderDir)
	defer leaderStore.Close()
	leader := httptest.NewServer(server.New(leaderStore).Handler())
	defer leader.Close()

	// Commit two transactions on the leader.
	u := leaderStore.Universe()
	for _, src := range []string{"+loc(tom, paris).", "+loc(jim, lyon). -loc(tom, paris). +loc(tom, rome)."} {
		ups, _ := parser.ParseUpdates(u, "example", src)
		if _, err := leaderStore.Apply(context.Background(), &core.Program{}, ups, nil, core.Options{}); err != nil {
			fmt.Println("apply:", err)
			return
		}
	}

	// Follower: replicate the leader into a second store.
	followerStore, _ := persist.Open(followerDir)
	defer followerStore.Close()
	follower := repl.NewFollower(followerStore, leader.URL,
		repl.WithBackoff(10*time.Millisecond, 100*time.Millisecond))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go follower.Run(ctx)

	// Wait until the follower has applied everything the leader has.
	for follower.Status().AppliedSeq < leaderStore.Seq() {
		time.Sleep(5 * time.Millisecond)
	}

	fu, db := followerStore.Universe(), followerStore.Snapshot()
	ids := append([]core.AID(nil), db.Atoms()...)
	fu.SortAtoms(ids)
	for _, id := range ids {
		fmt.Println(fu.AtomString(id))
	}
	fmt.Println("lag:", follower.Status().LagSeq())
	// Output:
	// loc(jim, lyon)
	// loc(tom, rome)
	// lag: 0
}
