package events

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func TestEmitAssignsSequences(t *testing.T) {
	l := NewLog(8)
	l.SetNodeID("n1")
	l.Emit(Event{Type: CampaignStarted, Epoch: 2})
	l.Emit(Event{Type: CampaignWon, Epoch: 2, NodeID: "other"})
	evs, missed := l.Since(0, nil, 0)
	if missed != 0 {
		t.Fatalf("missed = %d, want 0", missed)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("sequences = %d, %d; want 1, 2", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].NodeID != "n1" {
		t.Fatalf("default node ID not stamped: %q", evs[0].NodeID)
	}
	if evs[1].NodeID != "other" {
		t.Fatalf("explicit node ID overwritten: %q", evs[1].NodeID)
	}
	if evs[0].Time.IsZero() {
		t.Fatal("wall time not stamped")
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l.LastSeq())
	}
}

func TestWraparoundDropsOldest(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 10; i++ {
		l.Emit(Event{Type: Checkpoint, StoreSeq: i})
	}
	if got := l.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs, missed := l.Since(0, nil, 0)
	if missed != 6 {
		t.Fatalf("missed = %d, want 6", missed)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want the 4 retained", len(evs))
	}
	// The retained window is the newest 4, oldest first.
	for i, e := range evs {
		if want := int64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestSinceCursorAcrossWrap(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 3; i++ {
		l.Emit(Event{Type: Checkpoint})
	}
	// Reader catches up fully at cursor 3.
	evs, missed := l.Since(3, nil, 0)
	if len(evs) != 0 || missed != 0 {
		t.Fatalf("caught-up reader got %d events, %d missed", len(evs), missed)
	}
	// Six more events wrap the ring past the cursor: seqs 4 and 5 are
	// gone (ring holds 6..9), so the reader must learn it missed 2.
	for i := 0; i < 6; i++ {
		l.Emit(Event{Type: FenceRaised})
	}
	evs, missed = l.Since(3, nil, 0)
	if missed != 2 {
		t.Fatalf("missed = %d, want 2", missed)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Seq != 6 || evs[3].Seq != 9 {
		t.Fatalf("retained window = [%d, %d], want [6, 9]", evs[0].Seq, evs[3].Seq)
	}
	// Resuming from the last returned sequence is gap-free.
	l.Emit(Event{Type: Checkpoint})
	evs, missed = l.Since(9, nil, 0)
	if missed != 0 || len(evs) != 1 || evs[0].Seq != 10 {
		t.Fatalf("resume: events=%v missed=%d", evs, missed)
	}
}

func TestSinceTypeFilterAndLimit(t *testing.T) {
	l := NewLog(16)
	for i := 0; i < 4; i++ {
		l.Emit(Event{Type: Checkpoint})
		l.Emit(Event{Type: VoteGranted})
	}
	evs, _ := l.Since(0, map[Type]bool{VoteGranted: true}, 0)
	if len(evs) != 4 {
		t.Fatalf("filtered got %d events, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Type != VoteGranted {
			t.Fatalf("filter leaked type %s", e.Type)
		}
	}
	evs, _ = l.Since(0, nil, 3)
	if len(evs) != 3 {
		t.Fatalf("limited got %d events, want 3", len(evs))
	}
}

// TestConcurrentEmitters exercises the journal under -race: many
// goroutines emitting while readers page through. Every assigned
// sequence must be unique and the final count exact.
func TestConcurrentEmitters(t *testing.T) {
	l := NewLog(64)
	const emitters, perEmitter = 8, 250
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEmitter; i++ {
				l.Emit(Event{Type: FenceRaised, NodeID: fmt.Sprintf("n%d", g), Epoch: int64(i)})
			}
		}(g)
	}
	// Concurrent readers must never observe a torn ring.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cursor int64
		for {
			evs, _ := l.Since(cursor, nil, 0)
			for i := 1; i < len(evs); i++ {
				if evs[i].Seq <= evs[i-1].Seq {
					t.Errorf("non-monotonic sequences: %d then %d", evs[i-1].Seq, evs[i].Seq)
					return
				}
			}
			if len(evs) > 0 {
				cursor = evs[len(evs)-1].Seq
			}
			if cursor >= emitters*perEmitter {
				return
			}
		}
	}()
	wg.Wait()
	<-done
	total := emitters * perEmitter
	if got := l.LastSeq(); got != int64(total) {
		t.Fatalf("LastSeq = %d, want %d", got, total)
	}
	if got := l.Dropped(); got != int64(total-64) {
		t.Fatalf("Dropped = %d, want %d", got, total-64)
	}
}

// TestInstrumentSeedsCounters verifies a late-attached registry agrees
// with the journal's full history, including drops.
func TestInstrumentSeedsCounters(t *testing.T) {
	l := NewLog(2)
	l.Emit(Event{Type: Checkpoint})
	l.Emit(Event{Type: Checkpoint})
	l.Emit(Event{Type: VoteGranted}) // overwrites one checkpoint
	reg := metrics.NewRegistry()
	l.Instrument(reg)
	if got := reg.Counter("park_events_total", "", metrics.L("type", string(Checkpoint))).Value(); got != 2 {
		t.Fatalf("seeded checkpoint count = %d, want 2", got)
	}
	if got := reg.Counter("park_events_dropped_total", "").Value(); got != 1 {
		t.Fatalf("seeded dropped count = %d, want 1", got)
	}
	l.Emit(Event{Type: VoteGranted})
	if got := reg.Counter("park_events_total", "", metrics.L("type", string(VoteGranted))).Value(); got != 2 {
		t.Fatalf("post-attach vote count = %d, want 2", got)
	}
}

// TestNilLogIsNoOp: emit sites hold a possibly-nil *Log without guards.
func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Emit(Event{Type: Checkpoint})
	l.SetNodeID("x")
	l.Instrument(metrics.NewRegistry())
	if evs, missed := l.Since(0, nil, 0); evs != nil || missed != 0 {
		t.Fatal("nil log returned data")
	}
	if l.Dropped() != 0 || l.LastSeq() != 0 {
		t.Fatal("nil log returned counts")
	}
}
