// Package events is the cluster event journal: a bounded,
// sequence-numbered, concurrency-safe ring of typed lifecycle events.
// Where the flight recorder (internal/flight) answers "what did
// transaction N do?", the journal answers "what happened to this
// NODE?": elections campaigned and won, votes granted, fencing floors
// raised, leaders demoted, the store degrading to read-only and
// recovering, checkpoints, snapshot bootstraps, replication streams
// stalling and resuming, timers failing to fire.
//
// The journal is deliberately small and dependency-light:
//
//   - Log.Emit stamps a monotonically increasing journal sequence and
//     wall time on each event and appends it behind one short mutex.
//     When the ring is full the oldest event is overwritten and the
//     drop is counted, so memory stays bounded on a flapping cluster.
//   - Log.Since(cursor) serves pagination: events with Seq > cursor,
//     oldest first, plus how many events in that range were already
//     overwritten — a client that polls too slowly learns it has a
//     gap instead of silently missing it.
//   - A nil *Log is a valid no-op sink, so emit sites in persist,
//     repl and server never need a guard (the same convention as the
//     nil-safe metric wrappers).
//
// internal/server serves the journal at GET /v1/events and registers
// park_events_total{type=} / park_events_dropped_total via Instrument.
// This is the monitoring view of the ECA literature (treating system
// transitions as first-class queryable events) applied to the PARK
// server's own lifecycle.
package events

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Type classifies a lifecycle event.
type Type string

// The journal's event vocabulary. Election events come from
// internal/repl (the Node coordinator), durability and timeline
// events from internal/persist, timer events from internal/server.
const (
	// CampaignStarted: this node began campaigning for an epoch.
	CampaignStarted Type = "campaign-started"
	// CampaignWon: the campaign reached a majority and the node
	// promoted itself to leader.
	CampaignWon Type = "campaign-won"
	// CampaignLost: the campaign ended without a majority (blocked,
	// stood down, or lost the vote).
	CampaignLost Type = "campaign-lost"
	// VoteGranted: this node durably granted its vote to a candidate.
	VoteGranted Type = "vote-granted"
	// FenceRaised: the store's fencing floor rose (commit under a new
	// epoch, granted vote, epoch begun, or snapshot bootstrap).
	FenceRaised Type = "fence-raised"
	// LeaderDemoted: a leader stepped down after seeing a higher epoch.
	LeaderDemoted Type = "leader-demoted"
	// DegradedEnter / DegradedExit bracket read-only mode after a
	// durability failure.
	DegradedEnter Type = "degraded-enter"
	DegradedExit  Type = "degraded-exit"
	// Checkpoint: the store snapshotted and truncated its WAL.
	Checkpoint Type = "checkpoint"
	// SnapshotBootstrap: the store discarded its timeline and reset to
	// a leader-shipped snapshot.
	SnapshotBootstrap Type = "snapshot-bootstrap"
	// ReplStall / ReplResume bracket replication-stream outages: a
	// stream that had delivered frames ended, and a (re)connection
	// started delivering again.
	ReplStall  Type = "repl-stall"
	ReplResume Type = "repl-resume"
	// TimerError: a registered interval timer's firing failed.
	TimerError Type = "timer-error"
)

// Event is one journal entry. Seq and Time are stamped by Emit; the
// emitter fills the rest. Exactly the fields meaningful for the Type
// are set; zero values are omitted from the JSON.
type Event struct {
	// Seq is the journal sequence (1, 2, ...), assigned by Emit. It
	// orders events within one process and is the /v1/events cursor.
	Seq int64 `json:"seq"`
	// Time is the wall-clock emission time (RFC 3339 in JSON).
	Time time.Time `json:"time"`
	// Type classifies the event.
	Type Type `json:"type"`
	// NodeID is the cluster member the event happened on (stamped from
	// the Log default when the emitter leaves it empty).
	NodeID string `json:"nodeId,omitempty"`
	// Epoch is the leadership epoch the event concerns, where one does.
	Epoch int64 `json:"epoch,omitempty"`
	// StoreSeq is the store's transaction sequence at the event, where
	// relevant (checkpoints, bootstraps, degradation).
	StoreSeq int `json:"storeSeq,omitempty"`
	// TraceID correlates the event with a request or timer firing,
	// where one is available.
	TraceID string `json:"traceId,omitempty"`
	// Peer names the other member involved (vote candidates, adopted
	// or succeeding leaders).
	Peer string `json:"peer,omitempty"`
	// Detail is a short human-readable summary.
	Detail string `json:"detail,omitempty"`
}

// DefaultCap is the ring capacity used when NewLog is given a value
// below 1. Lifecycle events are rare (an election emits a handful),
// so even a flap storm fits.
const DefaultCap = 1024

// Log is the bounded event journal. All methods are safe for
// concurrent use, and all methods on a nil *Log are no-ops, so a Log
// can be threaded through constructors unconditionally.
type Log struct {
	mu  sync.Mutex
	buf []Event // ring storage, len == cap once full
	cap int
	// next is the next journal sequence to assign; the ring holds
	// events [next-len(buf), next).
	next int64
	// head indexes the oldest retained event in buf.
	head    int
	dropped int64
	nodeID  string

	// byType accumulates per-type emission counts so Instrument can
	// seed freshly registered counters with pre-registration history.
	byType map[Type]int64

	// reg, once attached, receives park_events_total{type=} and
	// park_events_dropped_total.
	reg        *metrics.Registry
	droppedCtr *metrics.Counter
}

// NewLog returns a journal retaining up to capacity events (DefaultCap
// when capacity < 1).
func NewLog(capacity int) *Log {
	if capacity < 1 {
		capacity = DefaultCap
	}
	return &Log{cap: capacity, byType: make(map[Type]int64)}
}

// SetNodeID sets the node ID stamped on events whose emitter left
// NodeID empty. Call before wiring the log into emitters.
func (l *Log) SetNodeID(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.nodeID = id
	l.mu.Unlock()
}

// Instrument registers park_events_total{type=} and
// park_events_dropped_total in reg. Counters are seeded with the
// events already emitted, so they agree with the journal however late
// the registry attaches.
func (l *Log) Instrument(reg *metrics.Registry) {
	if l == nil || reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reg = reg
	l.droppedCtr = reg.Counter("park_events_dropped_total",
		"Journal events overwritten by ring wraparound before any reader saw them.")
	l.droppedCtr.Add(l.dropped)
	for typ, n := range l.byType {
		l.counterLocked(typ).Add(n)
	}
}

// counterLocked returns the per-type emission counter. Callers hold
// l.mu and have checked l.reg != nil is not required (Registry.Counter
// is get-or-create).
func (l *Log) counterLocked(typ Type) *metrics.Counter {
	return l.reg.Counter("park_events_total",
		"Lifecycle events recorded in the journal, by type.",
		metrics.L("type", string(typ)))
}

// Emit stamps and appends one event. The journal assigns Seq; Time is
// stamped unless the emitter set it (tests may). The Log's default
// node ID fills an empty NodeID.
func (l *Log) Emit(e Event) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	if e.NodeID == "" {
		e.NodeID = l.nodeID
	}
	l.next++
	e.Seq = l.next
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, e)
	} else {
		l.buf[l.head] = e
		l.head = (l.head + 1) % len(l.buf)
		l.dropped++
		if l.droppedCtr != nil {
			l.droppedCtr.Inc()
		}
	}
	l.byType[e.Type]++
	var ctr *metrics.Counter
	if l.reg != nil {
		ctr = l.counterLocked(e.Type)
	}
	l.mu.Unlock()
	if ctr != nil {
		ctr.Inc()
	}
}

// Dropped returns the number of events overwritten by wraparound
// since construction.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// LastSeq returns the newest assigned journal sequence (0 before the
// first event). A poller starts its cursor here to receive only
// events emitted after now.
func (l *Log) LastSeq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Since returns up to limit retained events with Seq > cursor, oldest
// first, optionally filtered to the given types (nil or empty means
// all). missed reports how many events in (cursor, first returned
// sequence] — before filtering — were already overwritten by
// wraparound: a nonzero value tells the poller its cursor fell behind
// the ring. limit < 1 means no bound.
func (l *Log) Since(cursor int64, types map[Type]bool, limit int) (evs []Event, missed int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.buf)
	if n == 0 {
		return nil, 0
	}
	oldest := l.next - int64(n) + 1
	if cursor+1 < oldest {
		missed = oldest - cursor - 1
		cursor = oldest - 1
	}
	for seq := cursor + 1; seq <= l.next; seq++ {
		e := l.buf[(l.head+int(seq-oldest))%n]
		if len(types) > 0 && !types[e.Type] {
			continue
		}
		evs = append(evs, e)
		if limit > 0 && len(evs) >= limit {
			break
		}
	}
	return evs, missed
}
