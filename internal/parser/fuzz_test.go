package parser

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// FuzzParseUnit checks that the parser never panics and that
// accepted rules round-trip through their printed form. The seed
// corpus covers every syntactic construct; `go test` runs the seeds,
// `go test -fuzz=FuzzParseUnit` explores further.
func FuzzParseUnit(f *testing.F) {
	seeds := []string{
		``,
		`p(a).`,
		`p(a). q(a, b). flag.`,
		`rule r1 priority 4: q(X) -> -a(X).`,
		`emp(X, S), !active(X) -> -payroll(X, S).`,
		`p(X), p(Y), X != Y -> +q(X, Y).`,
		`sal(X, S), S >= 200 -> +rich(X).`,
		`+r(X) -> -s(X).`,
		`-r(X), s(X) -> +t(X).`,
		`-> +q(b).`,
		`+q(b). -p(a).`,
		`not q(X), p(X) -> -p(X).`,
		`not(b). rule(a). priority(c).`,
		`name(1, "quoted \"string\"").`,
		`% comment
		p. // other comment`,
		`p(_, X) -> +q(X).`,
		`p(`,
		`p(X) -> `,
		`p(X) -> q(X).`,
		`"unterminated`,
		`p(1a).`,
		`rule : -> .`,
		`p(a) @`,
		`ä(ü).`,
		strings.Repeat("p(a). ", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u := core.NewUniverse()
		unit, err := ParseUnit(u, "fuzz", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted rules must round-trip: print -> parse -> print is a
		// fixpoint.
		for i := range unit.Program.Rules {
			printed := unit.Program.Rules[i].String(u) + "."
			u2 := core.NewUniverse()
			prog2, err := ParseProgram(u2, "fuzz2", printed)
			if err != nil {
				t.Fatalf("printed rule %q does not re-parse: %v", printed, err)
			}
			printed2 := prog2.Rules[0].String(u2) + "."
			if printed != printed2 {
				t.Fatalf("round trip: %q != %q", printed, printed2)
			}
		}
		// Accepted facts must be ground and re-parseable.
		for _, id := range unit.Database.Atoms() {
			text := u.AtomString(id) + "."
			u2 := core.NewUniverse()
			if _, err := ParseDatabase(u2, "fuzz2", text); err != nil {
				t.Fatalf("printed fact %q does not re-parse: %v", text, err)
			}
		}
	})
}

// FuzzParseTriggers: the trigger-DDL parser must never panic, and
// accepted programs must be valid (safety-checked) rule programs.
func FuzzParseTriggers(f *testing.F) {
	seeds := []string{
		`CREATE TRIGGER t AFTER INSERT ON p(X) DO INSERT q(X);`,
		`CREATE TRIGGER t PRIORITY 3 AFTER DELETE ON p(X, Y) WHEN q(Y), NOT r(X) DO DELETE p(X, Y), INSERT s(X);`,
		`CREATE RULE r WHEN p(X), X >= 10 DO INSERT big(X);`,
		`CREATE`,
		`CREATE TRIGGER`,
		`CREATE RULE r WHEN p(X) DO`,
		`CREATE INDEX i;`,
		`create trigger lower;`,
		strings.Repeat(`CREATE RULE r WHEN p(X) DO INSERT q(X);`, 20),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u := core.NewUniverse()
		prog, err := ParseTriggers(u, "fuzz", src)
		if err != nil {
			return
		}
		// Accepted programs re-validate and every rule renders and
		// re-parses in the rule language.
		if err := prog.Validate(u); err != nil {
			t.Fatalf("accepted program fails validation: %v", err)
		}
		for i := range prog.Rules {
			printed := prog.Rules[i].String(u) + "."
			u2 := core.NewUniverse()
			if _, err := ParseProgram(u2, "", printed); err != nil {
				t.Fatalf("trigger-compiled rule %q does not re-parse: %v", printed, err)
			}
		}
	})
}
