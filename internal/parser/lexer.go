// Package parser implements the textual rule language of the library:
// programs of active rules, database instances (ground facts) and
// transaction update sets. The concrete syntax follows the paper's
// notation as closely as ASCII allows:
//
//	% facts (database file)
//	p(a). p(b). emp(tom, 100).
//
//	% rules (program file)
//	rule r1 priority 4: q(X) -> -a(X).
//	emp(X, S), !active(X) -> -payroll(X, S).
//	+r(X) -> -s(X).          % event literal in the body (ECA)
//	-> +q(b).                % body-less rule
//
//	% updates (update file)
//	+q(b). -p(a).
//
// Identifiers starting with a lower-case letter, integers and quoted
// strings are constants; identifiers starting with an upper-case
// letter or '_' are variables; '!' (or the keyword 'not') is negation
// as failure; '==' and '!=' are built-in comparisons.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// SyntaxError reports a lexical or grammatical error with its source
// position (1-based line and column).
type SyntaxError struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	if e.File != "" {
		return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type tokKind uint8

const (
	tokEOF    tokKind = iota
	tokIdent          // lower-case identifier (constant or predicate)
	tokVar            // upper-case identifier or _
	tokInt            // integer literal
	tokString         // quoted string literal (text includes quotes)
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokColon
	tokSemi  // ;
	tokArrow // ->
	tokPlus
	tokMinus
	tokBang   // !
	tokEq     // ==
	tokNeq    // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
	tokKwRule // keyword "rule"
	tokKwPriority
	tokKwNot
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokColon:
		return "':'"
	case tokSemi:
		return "';'"
	case tokArrow:
		return "'->'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokBang:
		return "'!'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokKwRule:
		return "'rule'"
	case tokKwPriority:
		return "'priority'"
	case tokKwNot:
		return "'not'"
	}
	return "token"
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	file string
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errf(line, col int, format string, args ...any) error {
	return &SyntaxError{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case r == ':':
		l.advance()
		return token{tokColon, ":", line, col}, nil
	case r == ';':
		l.advance()
		return token{tokSemi, ";", line, col}, nil
	case r == '+':
		l.advance()
		return token{tokPlus, "+", line, col}, nil
	case r == '-':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return token{tokArrow, "->", line, col}, nil
		}
		return token{tokMinus, "-", line, col}, nil
	case r == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokNeq, "!=", line, col}, nil
		}
		return token{tokBang, "!", line, col}, nil
	case r == '=':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokEq, "==", line, col}, nil
		}
		return token{}, l.errf(line, col, "unexpected '='; did you mean '=='?")
	case r == '<':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokLe, "<=", line, col}, nil
		}
		return token{tokLt, "<", line, col}, nil
	case r == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token{tokGe, ">=", line, col}, nil
		}
		return token{tokGt, ">", line, col}, nil
	case r == '"':
		// The token text is the raw source form including quotes and
		// escape sequences, so printed constants re-parse to the same
		// symbol (string constants compare by source form).
		var sb strings.Builder
		sb.WriteRune(l.advance())
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			c := l.advance()
			if c == '\n' {
				return token{}, l.errf(line, col, "unterminated string literal")
			}
			sb.WriteRune(c)
			if c == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errf(line, col, "unterminated string literal")
				}
				sb.WriteRune(l.advance())
				continue
			}
			if c == '"' {
				return token{tokString, sb.String(), line, col}, nil
			}
		}
	case unicode.IsDigit(r):
		var sb strings.Builder
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			sb.WriteRune(l.advance())
		}
		if l.pos < len(l.src) && isIdentStart(l.peek()) {
			return token{}, l.errf(line, col, "malformed number")
		}
		return token{tokInt, sb.String(), line, col}, nil
	case isIdentStart(r):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentRune(l.peek()) {
			sb.WriteRune(l.advance())
		}
		text := sb.String()
		switch text {
		case "rule":
			return token{tokKwRule, text, line, col}, nil
		case "priority":
			return token{tokKwPriority, text, line, col}, nil
		case "not":
			return token{tokKwNot, text, line, col}, nil
		}
		first := []rune(text)[0]
		if unicode.IsUpper(first) || first == '_' {
			return token{tokVar, text, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	}
	return token{}, l.errf(line, col, "unexpected character %q", string(r))
}
