package parser

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// ParseTriggers parses a trigger-DDL source — the SQL-flavored
// frontend in the style of the systems the paper cites (Ariel,
// Postgres rules, Starburst) — and translates it to active rules.
//
//	CREATE TRIGGER audit PRIORITY 5
//	  AFTER DELETE ON active(X)
//	  WHEN dept(X, D)
//	  DO INSERT audit(X, D), DELETE payroll(X, _ignored);
//
//	CREATE RULE cleanup
//	  WHEN emp(X), NOT active(X), payroll(X, S)
//	  DO DELETE payroll(X, S);
//
// AFTER INSERT/DELETE ON p(...) becomes the event literal +p/-p; WHEN
// adds condition literals (NOT negates; comparisons are allowed); each
// DO action becomes one rule sharing the trigger's body (a trigger
// with n actions compiles to n rules named name, name#2, ...).
// Keywords are upper-case and therefore cannot be used as variable
// names inside trigger files.
func ParseTriggers(u *core.Universe, file, src string) (*core.Program, error) {
	p, err := newParser(u, file, src)
	if err != nil {
		return nil, err
	}
	prog := &core.Program{}
	for p.tok.kind != tokEOF {
		rules, err := p.parseTriggerStmt()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, rules...)
	}
	if err := prog.Validate(u); err != nil {
		return nil, err
	}
	return prog, nil
}

// kwIs reports whether the current token is the given upper-case
// keyword (lexed as a variable token).
func (p *parser) kwIs(word string) bool {
	return p.tok.kind == tokVar && p.tok.text == word
}

func (p *parser) expectKw(word string) error {
	if !p.kwIs(word) {
		return p.errf("expected %s, found %s %q", word, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseTriggerStmt() ([]core.Rule, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	isTrigger := p.kwIs("TRIGGER")
	if !isTrigger && !p.kwIs("RULE") {
		return nil, p.errf("expected TRIGGER or RULE, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if !p.identLike() {
		return nil, p.errf("expected trigger name, found %s %q", p.tok.kind, p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	priority := 0
	if p.kwIs("PRIORITY") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.expect(tokInt)
		if err != nil {
			return nil, err
		}
		priority, err = strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errf("bad priority %q", t.text)
		}
	}

	rb := &ruleBuilder{}
	var body []core.Literal

	if isTrigger {
		if err := p.expectKw("AFTER"); err != nil {
			return nil, err
		}
		var evKind core.LitKind
		switch {
		case p.kwIs("INSERT"):
			evKind = core.LitEvIns
		case p.kwIs("DELETE"):
			evKind = core.LitEvDel
		default:
			return nil, p.errf("expected INSERT or DELETE, found %s %q", p.tok.kind, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKw("ON"); err != nil {
			return nil, err
		}
		atom, err := p.parseAtom(rb)
		if err != nil {
			return nil, err
		}
		body = append(body, core.Literal{Kind: evKind, Atom: atom})
	}

	if p.kwIs("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for {
			lit, err := p.parseTriggerLiteral(rb)
			if err != nil {
				return nil, err
			}
			body = append(body, lit)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}

	if err := p.expectKw("DO"); err != nil {
		return nil, err
	}
	type action struct {
		op   core.HeadOp
		atom core.Atom
	}
	var actions []action
	for {
		var op core.HeadOp
		switch {
		case p.kwIs("INSERT"):
			op = core.OpInsert
		case p.kwIs("DELETE"):
			op = core.OpDelete
		default:
			return nil, p.errf("expected INSERT or DELETE, found %s %q", p.tok.kind, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		atom, err := p.parseAtom(rb)
		if err != nil {
			return nil, err
		}
		actions = append(actions, action{op: op, atom: atom})
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}

	rules := make([]core.Rule, 0, len(actions))
	for i, act := range actions {
		rname := name
		if i > 0 {
			rname = fmt.Sprintf("%s#%d", name, i+1)
		}
		rules = append(rules, core.Rule{
			Name:     rname,
			Priority: priority,
			NumVars:  len(rb.names),
			VarNames: rb.names,
			Body:     body,
			Head:     act.atom,
			Op:       act.op,
		})
	}
	return rules, nil
}

// parseTriggerLiteral parses one WHEN literal: an atom, NOT atom, or
// a comparison. The upper-case keywords that structure the statement
// (DO) terminate the literal list, so plain variables at literal
// start can only begin comparisons, as in the rule language.
func (p *parser) parseTriggerLiteral(rb *ruleBuilder) (core.Literal, error) {
	if p.kwIs("NOT") {
		if err := p.advance(); err != nil {
			return core.Literal{}, err
		}
		a, err := p.parseAtom(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return core.Literal{Kind: core.LitNeg, Atom: a}, nil
	}
	return p.parseLiteral(rb)
}
