package parser

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseQueryForms(t *testing.T) {
	u := core.NewUniverse()
	q, err := ParseQuery(u, "q", `emp(X), !active(X), sal(X, S), S >= 100, S <= 900, S != 500, S == S, X < zz, X > aa.`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 9 {
		t.Fatalf("literals = %d", len(q.Body))
	}
	kinds := []core.LitKind{
		core.LitPos, core.LitNeg, core.LitPos,
		core.LitGe, core.LitLe, core.LitNeq, core.LitEq, core.LitLt, core.LitGt,
	}
	for i, k := range kinds {
		if q.Body[i].Kind != k {
			t.Fatalf("literal %d kind = %v, want %v", i, q.Body[i].Kind, k)
		}
	}
	if q.NumVars != 2 {
		t.Fatalf("vars = %d", q.NumVars)
	}
}

func TestParseQueryTrailingGarbage(t *testing.T) {
	u := core.NewUniverse()
	if _, err := ParseQuery(u, "", `p(X) q(X)`); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParseQuery(u, "", `p(X), `); err == nil {
		t.Fatal("dangling comma accepted")
	}
}

func TestSyntaxErrorWithoutFile(t *testing.T) {
	e := &SyntaxError{Line: 3, Col: 7, Msg: "boom"}
	if got := e.Error(); got != "3:7: boom" {
		t.Fatalf("Error = %q", got)
	}
}

func TestFileLabel(t *testing.T) {
	if fileLabel("") != "<input>" || fileLabel("x.park") != "x.park" {
		t.Fatal("fileLabel wrong")
	}
}

func TestTokenKindStrings(t *testing.T) {
	// Every token kind renders something meaningful (used in errors).
	for k := tokEOF; k <= tokKwNot; k++ {
		if k.String() == "" || k.String() == "token" && k != tokKwNot+1 {
			if k.String() == "token" {
				t.Fatalf("kind %d has no rendering", k)
			}
		}
	}
	if tokArrow.String() != "'->'" || tokSemi.String() != "';'" {
		t.Fatal("specific token strings wrong")
	}
}

func TestParseProgramComparisonConstLeft(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseProgram(u, "", `p(X), 100 <= X -> +big(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Body[1].Kind != core.LitLe {
		t.Fatalf("const-left comparison kind = %v", prog.Rules[0].Body[1].Kind)
	}
	if !strings.Contains(prog.Rules[0].String(u), "100 <= X") {
		t.Fatalf("rendering = %q", prog.Rules[0].String(u))
	}
}
