package parser

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// Unit is the result of parsing a source file: any mix of rules,
// ground facts and ground updates, in source order.
type Unit struct {
	Program  *core.Program
	Database *core.Database
	Updates  []core.Update
}

type parser struct {
	lex *lexer
	tok token
	u   *core.Universe
}

func newParser(u *core.Universe, file, src string) (*parser, error) {
	p := &parser{lex: newLexer(file, src), u: u}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{File: p.lex.file, Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.tok.kind, p.tok.text)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// identLike reports whether the current token can serve as a
// lower-case identifier (predicate or constant); the keywords are
// contextual and usable as ordinary identifiers.
func (p *parser) identLike() bool {
	switch p.tok.kind {
	case tokIdent, tokKwRule, tokKwPriority, tokKwNot:
		return true
	}
	return false
}

// ruleBuilder accumulates the variables of one rule.
type ruleBuilder struct {
	names []string
	index map[string]int
}

func (rb *ruleBuilder) varIndex(name string) int {
	if name == "_" {
		// Each anonymous variable occurrence is a fresh variable.
		rb.names = append(rb.names, "_")
		return len(rb.names) - 1
	}
	if rb.index == nil {
		rb.index = make(map[string]int)
	}
	if i, ok := rb.index[name]; ok {
		return i
	}
	i := len(rb.names)
	rb.names = append(rb.names, name)
	rb.index[name] = i
	return i
}

// parseTerm parses a constant, integer, string or variable.
func (p *parser) parseTerm(rb *ruleBuilder) (core.Term, error) {
	switch {
	case p.identLike(), p.tok.kind == tokInt, p.tok.kind == tokString:
		s := p.u.Syms.Intern(p.tok.text)
		if err := p.advance(); err != nil {
			return core.Term{}, err
		}
		return core.ConstTerm(s), nil
	case p.tok.kind == tokVar:
		if rb == nil {
			return core.Term{}, p.errf("variable %s not allowed here (facts and updates must be ground)", p.tok.text)
		}
		i := rb.varIndex(p.tok.text)
		if err := p.advance(); err != nil {
			return core.Term{}, err
		}
		return core.VarTerm(i), nil
	}
	return core.Term{}, p.errf("expected term, found %s %q", p.tok.kind, p.tok.text)
}

// parseAtom parses pred or pred(t1, ..., tn).
func (p *parser) parseAtom(rb *ruleBuilder) (core.Atom, error) {
	if !p.identLike() {
		return core.Atom{}, p.errf("expected predicate name, found %s %q", p.tok.kind, p.tok.text)
	}
	pred := p.u.Syms.Intern(p.tok.text)
	if err := p.advance(); err != nil {
		return core.Atom{}, err
	}
	a := core.Atom{Pred: pred}
	if p.tok.kind != tokLParen {
		return a, nil
	}
	if err := p.advance(); err != nil {
		return core.Atom{}, err
	}
	for {
		t, err := p.parseTerm(rb)
		if err != nil {
			return core.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return core.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return core.Atom{}, err
	}
	return a, nil
}

// parseLiteral parses one body literal: an atom, a negated atom, an
// event literal, or a built-in comparison between two terms.
func (p *parser) parseLiteral(rb *ruleBuilder) (core.Literal, error) {
	switch p.tok.kind {
	case tokKwNot:
		// "not p(X)" is negation; "not(b)" is an atom whose predicate
		// is the identifier "not". Disambiguate by the next token.
		save := *p.lex
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return core.Literal{}, err
		}
		if p.tok.kind == tokLParen {
			*p.lex = save
			p.tok = saveTok
			break // fall through to the atom case below
		}
		a, err := p.parseAtom(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return core.Literal{Kind: core.LitNeg, Atom: a}, nil
	case tokBang:
		if err := p.advance(); err != nil {
			return core.Literal{}, err
		}
		a, err := p.parseAtom(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return core.Literal{Kind: core.LitNeg, Atom: a}, nil
	case tokPlus:
		if err := p.advance(); err != nil {
			return core.Literal{}, err
		}
		a, err := p.parseAtom(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return core.Literal{Kind: core.LitEvIns, Atom: a}, nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return core.Literal{}, err
		}
		a, err := p.parseAtom(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return core.Literal{Kind: core.LitEvDel, Atom: a}, nil
	case tokVar, tokInt, tokString:
		// Must be a comparison: term OP term (integers and strings
		// cannot head an atom, so "100 <= X" is unambiguous).
		left, err := p.parseTerm(rb)
		if err != nil {
			return core.Literal{}, err
		}
		return p.parseComparison(rb, left)
	}
	// Atom, possibly followed by a comparison operator when it is a
	// bare constant (e.g. "a != X" is legal but unusual).
	a, err := p.parseAtom(rb)
	if err != nil {
		return core.Literal{}, err
	}
	if isComparisonTok(p.tok.kind) && len(a.Args) == 0 {
		return p.parseComparison(rb, core.ConstTerm(a.Pred))
	}
	return core.Literal{Kind: core.LitPos, Atom: a}, nil
}

func isComparisonTok(k tokKind) bool {
	switch k {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return true
	}
	return false
}

func (p *parser) parseComparison(rb *ruleBuilder, left core.Term) (core.Literal, error) {
	var kind core.LitKind
	switch p.tok.kind {
	case tokEq:
		kind = core.LitEq
	case tokNeq:
		kind = core.LitNeq
	case tokLt:
		kind = core.LitLt
	case tokLe:
		kind = core.LitLe
	case tokGt:
		kind = core.LitGt
	case tokGe:
		kind = core.LitGe
	default:
		return core.Literal{}, p.errf("expected a comparison operator, found %s %q", p.tok.kind, p.tok.text)
	}
	if err := p.advance(); err != nil {
		return core.Literal{}, err
	}
	right, err := p.parseTerm(rb)
	if err != nil {
		return core.Literal{}, err
	}
	return core.Literal{Kind: kind, Atom: core.Atom{Pred: core.NoSym, Args: []core.Term{left, right}}}, nil
}

// groundAtom interns a parsed atom that must be ground.
func (p *parser) groundAtom(a core.Atom, what string) (core.AID, error) {
	args := make([]core.Sym, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			return -1, p.errf("%s must be ground", what)
		}
		args[i] = t.Const()
	}
	id, err := p.u.InternAtom(a.Pred, args)
	if err != nil {
		return -1, p.errf("%s: %v", what, err)
	}
	return id, nil
}

// parseRuleTail parses "body -> ±head ." after any "rule name:" prefix,
// with the body possibly empty (token stream starting at '->').
func (p *parser) parseRuleTail(name string, priority int, firstLit *core.Literal, rb *ruleBuilder) (core.Rule, error) {
	var body []core.Literal
	if firstLit != nil {
		body = append(body, *firstLit)
		for p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return core.Rule{}, err
			}
			lit, err := p.parseLiteral(rb)
			if err != nil {
				return core.Rule{}, err
			}
			body = append(body, lit)
		}
	}
	if _, err := p.expect(tokArrow); err != nil {
		return core.Rule{}, err
	}
	var op core.HeadOp
	switch p.tok.kind {
	case tokPlus:
		op = core.OpInsert
	case tokMinus:
		op = core.OpDelete
	default:
		return core.Rule{}, p.errf("rule head must start with '+' or '-'")
	}
	if err := p.advance(); err != nil {
		return core.Rule{}, err
	}
	head, err := p.parseAtom(rb)
	if err != nil {
		return core.Rule{}, err
	}
	if _, err := p.expect(tokDot); err != nil {
		return core.Rule{}, err
	}
	return core.Rule{
		Name:     name,
		Priority: priority,
		NumVars:  len(rb.names),
		VarNames: rb.names,
		Body:     body,
		Head:     head,
		Op:       op,
	}, nil
}

// parseStatement parses one statement into the unit. It returns false
// at end of input.
func (p *parser) parseStatement(unit *Unit) (bool, error) {
	switch p.tok.kind {
	case tokEOF:
		return false, nil

	case tokKwRule:
		// Contextual: "rule name [priority N]:" — but "rule" may also
		// start an unnamed rule whose first body atom is the predicate
		// "rule". Peek: a rule declaration has an identifier next.
		save := *p.lex
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return false, err
		}
		if p.identLike() {
			name := p.tok.text
			if err := p.advance(); err != nil {
				return false, err
			}
			priority := 0
			if p.tok.kind == tokKwPriority {
				if err := p.advance(); err != nil {
					return false, err
				}
				t, err := p.expect(tokInt)
				if err != nil {
					return false, err
				}
				priority, err = strconv.Atoi(t.text)
				if err != nil {
					return false, p.errf("bad priority %q", t.text)
				}
			}
			if _, err := p.expect(tokColon); err != nil {
				return false, err
			}
			rb := &ruleBuilder{}
			var first *core.Literal
			if p.tok.kind != tokArrow {
				lit, err := p.parseLiteral(rb)
				if err != nil {
					return false, err
				}
				first = &lit
			}
			r, err := p.parseRuleTail(name, priority, first, rb)
			if err != nil {
				return false, err
			}
			unit.Program.Rules = append(unit.Program.Rules, r)
			return true, nil
		}
		// Not a declaration: restore and fall through to the generic
		// statement forms ("rule" as a predicate).
		*p.lex = save
		p.tok = saveTok
	}

	switch p.tok.kind {
	case tokArrow:
		// Body-less rule.
		rb := &ruleBuilder{}
		r, err := p.parseRuleTail("", 0, nil, rb)
		if err != nil {
			return false, err
		}
		unit.Program.Rules = append(unit.Program.Rules, r)
		return true, nil

	case tokPlus, tokMinus:
		// Either a ground update "+a(b)." or a rule starting with an
		// event literal "+r(X), ... -> ...".
		op := core.OpInsert
		if p.tok.kind == tokMinus {
			op = core.OpDelete
		}
		rb := &ruleBuilder{}
		lit, err := p.parseLiteral(rb)
		if err != nil {
			return false, err
		}
		if p.tok.kind == tokDot {
			if err := p.advance(); err != nil {
				return false, err
			}
			id, err := p.groundAtom(lit.Atom, "update")
			if err != nil {
				return false, err
			}
			unit.Updates = append(unit.Updates, core.Update{Op: op, Atom: id})
			return true, nil
		}
		r, err := p.parseRuleTail("", 0, &lit, rb)
		if err != nil {
			return false, err
		}
		unit.Program.Rules = append(unit.Program.Rules, r)
		return true, nil

	default:
		// Either a ground fact "p(a)." or an unnamed rule whose body
		// starts with this literal.
		rb := &ruleBuilder{}
		lit, err := p.parseLiteral(rb)
		if err != nil {
			return false, err
		}
		if p.tok.kind == tokDot && lit.Kind == core.LitPos {
			if err := p.advance(); err != nil {
				return false, err
			}
			id, err := p.groundAtom(lit.Atom, "fact")
			if err != nil {
				return false, err
			}
			unit.Database.Add(id)
			return true, nil
		}
		r, err := p.parseRuleTail("", 0, &lit, rb)
		if err != nil {
			return false, err
		}
		unit.Program.Rules = append(unit.Program.Rules, r)
		return true, nil
	}
}

// ParseUnit parses a mixed source file of rules, facts and updates.
// All parsed rules are validated (safety conditions of §2) and all
// predicate arities are pinned in the universe.
func ParseUnit(u *core.Universe, file, src string) (*Unit, error) {
	p, err := newParser(u, file, src)
	if err != nil {
		return nil, err
	}
	unit := &Unit{Program: &core.Program{}, Database: core.NewDatabase()}
	for {
		more, err := p.parseStatement(unit)
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
	}
	if err := unit.Program.Validate(u); err != nil {
		return nil, err
	}
	return unit, nil
}

// ParseProgram parses a source containing only rules.
func ParseProgram(u *core.Universe, file, src string) (*core.Program, error) {
	unit, err := ParseUnit(u, file, src)
	if err != nil {
		return nil, err
	}
	if unit.Database.Len() > 0 {
		return nil, fmt.Errorf("%s: program source contains facts", fileLabel(file))
	}
	if len(unit.Updates) > 0 {
		return nil, fmt.Errorf("%s: program source contains updates", fileLabel(file))
	}
	return unit.Program, nil
}

// ParseDatabase parses a source containing only ground facts.
func ParseDatabase(u *core.Universe, file, src string) (*core.Database, error) {
	unit, err := ParseUnit(u, file, src)
	if err != nil {
		return nil, err
	}
	if len(unit.Program.Rules) > 0 {
		return nil, fmt.Errorf("%s: database source contains rules", fileLabel(file))
	}
	if len(unit.Updates) > 0 {
		return nil, fmt.Errorf("%s: database source contains updates", fileLabel(file))
	}
	return unit.Database, nil
}

// ParseUpdates parses a source containing only ground updates.
func ParseUpdates(u *core.Universe, file, src string) ([]core.Update, error) {
	unit, err := ParseUnit(u, file, src)
	if err != nil {
		return nil, err
	}
	if len(unit.Program.Rules) > 0 || unit.Database.Len() > 0 {
		return nil, fmt.Errorf("%s: update source contains rules or facts", fileLabel(file))
	}
	return unit.Updates, nil
}

func fileLabel(file string) string {
	if file == "" {
		return "<input>"
	}
	return file
}
