package parser

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseTriggersBasic(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseTriggers(u, "ddl", `
		CREATE TRIGGER audit PRIORITY 5
		  AFTER DELETE ON active(X)
		  WHEN dept(X, D)
		  DO INSERT audit(X, D);

		CREATE RULE cleanup
		  WHEN emp(X), NOT active(X), payroll(X, S)
		  DO DELETE payroll(X, S);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r0 := prog.Rules[0]
	if r0.Name != "audit" || r0.Priority != 5 || r0.Op != core.OpInsert {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Body[0].Kind != core.LitEvDel {
		t.Fatalf("trigger event literal = %v", r0.Body[0].Kind)
	}
	r1 := prog.Rules[1]
	if r1.Name != "cleanup" || r1.Op != core.OpDelete || r1.Body[1].Kind != core.LitNeg {
		t.Fatalf("r1 = %+v", r1)
	}
	// The translated rules render in the rule language.
	if got := r0.String(u); got != "-active(X), dept(X, D) -> +audit(X, D)" {
		t.Fatalf("r0 rendering = %q", got)
	}
}

func TestParseTriggersMultipleActions(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseTriggers(u, "", `
		CREATE TRIGGER cascade
		  AFTER DELETE ON customer(C)
		  WHEN order2(O, C)
		  DO DELETE order2(O, C), INSERT orphaned(O);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 2 {
		t.Fatalf("rules = %d, want 2 (one per action)", len(prog.Rules))
	}
	if prog.Rules[0].Name != "cascade" || prog.Rules[1].Name != "cascade#2" {
		t.Fatalf("names = %q, %q", prog.Rules[0].Name, prog.Rules[1].Name)
	}
	if prog.Rules[0].Op != core.OpDelete || prog.Rules[1].Op != core.OpInsert {
		t.Fatal("action ops wrong")
	}
}

func TestParseTriggersComparisons(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseTriggers(u, "", `
		CREATE TRIGGER bigorder
		  AFTER INSERT ON order2(O, Amount)
		  WHEN Amount >= 1000
		  DO INSERT review(O);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Body[1].Kind != core.LitGe {
		t.Fatalf("comparison literal = %v", prog.Rules[0].Body[1].Kind)
	}
}

func TestParseTriggersErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no create", `TRIGGER t AFTER INSERT ON p(X) DO INSERT q(X);`, "expected CREATE"},
		{"bad kind", `CREATE INDEX i;`, "expected TRIGGER or RULE"},
		{"no name", `CREATE TRIGGER AFTER INSERT ON p(X) DO INSERT q(X);`, "expected trigger name"},
		{"bad event", `CREATE TRIGGER t AFTER UPDATE ON p(X) DO INSERT q(X);`, "expected INSERT or DELETE"},
		{"missing semi", `CREATE RULE r WHEN p(X) DO INSERT q(X)`, "expected ';'"},
		{"unsafe", `CREATE RULE r WHEN p(X) DO INSERT q(Y);`, "unsafe"},
		{"bad action", `CREATE RULE r WHEN p(X) DO UPSERT q(X);`, "expected INSERT or DELETE"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := core.NewUniverse()
			_, err := ParseTriggers(u, "t.sql", tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not contain %q", err, tc.want)
			}
		})
	}
}

// End-to-end: a trigger program evaluated by the engine behaves like
// its hand-written rule-language equivalent.
func TestTriggersSemanticsEquivalence(t *testing.T) {
	ddl := `
		CREATE TRIGGER audit
		  AFTER DELETE ON active(X)
		  WHEN dept(X, D)
		  DO INSERT audit(X, D);
		CREATE RULE cleanup
		  WHEN emp(X), NOT active(X), payroll(X, S)
		  DO DELETE payroll(X, S);
	`
	rules := `
		rule audit: -active(X), dept(X, D) -> +audit(X, D).
		rule cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
	`
	dbSrc := `emp(tom). active(tom). dept(tom, sales). payroll(tom, 100).`
	updSrc := `-active(tom).`

	run := func(prog *core.Program, u *core.Universe) string {
		t.Helper()
		db, err := ParseDatabase(u, "", dbSrc)
		if err != nil {
			t.Fatal(err)
		}
		ups, err := ParseUpdates(u, "", updSrc)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(u, prog, nil, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(context.Background(), db, ups)
		if err != nil {
			t.Fatal(err)
		}
		ids := append([]core.AID(nil), res.Output.Atoms()...)
		u.SortAtoms(ids)
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = u.AtomString(id)
		}
		return strings.Join(out, ", ")
	}

	u1 := core.NewUniverse()
	p1, err := ParseTriggers(u1, "", ddl)
	if err != nil {
		t.Fatal(err)
	}
	u2 := core.NewUniverse()
	p2, err := ParseProgram(u2, "", rules)
	if err != nil {
		t.Fatal(err)
	}
	a, b := run(p1, u1), run(p2, u2)
	if a != b {
		t.Fatalf("trigger DDL {%s} != rule language {%s}", a, b)
	}
	if !strings.Contains(a, "audit(tom, sales)") || strings.Contains(a, "payroll") {
		t.Fatalf("unexpected result {%s}", a)
	}
}
