package parser

import "repro/internal/core"

// ParseQuery parses a conjunctive query: a comma-separated list of
// literals, optionally terminated by '.', e.g.
//
//	payroll(X, S), !active(X)
//
// Variables are shared across the whole query; '_' is anonymous.
func ParseQuery(u *core.Universe, file, src string) (*core.Query, error) {
	p, err := newParser(u, file, src)
	if err != nil {
		return nil, err
	}
	rb := &ruleBuilder{}
	var body []core.Literal
	for {
		lit, err := p.parseLiteral(rb)
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if p.tok.kind == tokDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s %q after query", p.tok.kind, p.tok.text)
	}
	q := &core.Query{
		NumVars:  len(rb.names),
		VarNames: rb.names,
		Body:     body,
	}
	// Pin arities for non-builtin literals so malformed queries fail
	// here rather than silently returning no rows.
	for _, lit := range body {
		if lit.Kind.Builtin() {
			continue
		}
		if err := u.PinArity(lit.Atom.Pred, len(lit.Atom.Args)); err != nil {
			return nil, err
		}
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}
