package parser

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestParseDatabase(t *testing.T) {
	u := core.NewUniverse()
	d, err := ParseDatabase(u, "db", `
		% a comment
		p(a). p(b).
		emp(tom, 100).  // another comment
		flag.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 4 {
		t.Fatalf("parsed %d facts, want 4", d.Len())
	}
	p, _ := u.Syms.Lookup("p")
	a, _ := u.Syms.Lookup("a")
	if id, ok := u.LookupAtom(p, []core.Sym{a}); !ok || !d.Contains(id) {
		t.Fatal("p(a) missing")
	}
}

func TestParseProgramBasic(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseProgram(u, "prog", `
		rule r1 priority 4: q2(X) -> -a(X).
		emp(X, S), !active(X) -> -payroll(X, S).
		p(X), p(Y), X != Y -> +q(X, Y).
		+r(X) -> -s(X).
		-> +w(b).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 5 {
		t.Fatalf("parsed %d rules, want 5", len(prog.Rules))
	}
	r1 := prog.Rules[0]
	if r1.Name != "r1" || r1.Priority != 4 || r1.Op != core.OpDelete {
		t.Fatalf("r1 = %+v", r1)
	}
	if len(r1.Body) != 1 || r1.Body[0].Kind != core.LitPos {
		t.Fatalf("r1 body = %+v", r1.Body)
	}
	r2 := prog.Rules[1]
	if r2.Body[1].Kind != core.LitNeg {
		t.Fatalf("r2 negation not parsed: %+v", r2.Body[1])
	}
	if r2.NumVars != 2 {
		t.Fatalf("r2 has %d vars", r2.NumVars)
	}
	r3 := prog.Rules[2]
	if r3.Body[2].Kind != core.LitNeq {
		t.Fatalf("r3 builtin = %+v", r3.Body[2])
	}
	r4 := prog.Rules[3]
	if r4.Body[0].Kind != core.LitEvIns || r4.Op != core.OpDelete {
		t.Fatalf("r4 = %+v", r4)
	}
	r5 := prog.Rules[4]
	if len(r5.Body) != 0 || r5.Op != core.OpInsert {
		t.Fatalf("r5 = %+v", r5)
	}
}

func TestParseUpdates(t *testing.T) {
	u := core.NewUniverse()
	ups, err := ParseUpdates(u, "", `+q(b). -p(a).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("parsed %d updates", len(ups))
	}
	if ups[0].Op != core.OpInsert || ups[1].Op != core.OpDelete {
		t.Fatalf("ops = %v %v", ups[0].Op, ups[1].Op)
	}
}

func TestParseUnitMixed(t *testing.T) {
	u := core.NewUniverse()
	unit, err := ParseUnit(u, "", `
		p(a).
		p(X) -> +q(X).
		+q(b).
		not q(X), p(X) -> -p(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if unit.Database.Len() != 1 || len(unit.Program.Rules) != 2 || len(unit.Updates) != 1 {
		t.Fatalf("unit = %d facts, %d rules, %d updates", unit.Database.Len(), len(unit.Program.Rules), len(unit.Updates))
	}
	if unit.Program.Rules[1].Body[0].Kind != core.LitNeg {
		t.Fatal("'not' keyword negation not parsed")
	}
}

func TestParseAnonymousVariable(t *testing.T) {
	u := core.NewUniverse()
	prog, err := ParseProgram(u, "", `emp(X, _), emp(X, _) -> +seen(X).`)
	if err != nil {
		t.Fatal(err)
	}
	// Two anonymous occurrences must be distinct variables.
	if prog.Rules[0].NumVars != 3 {
		t.Fatalf("NumVars = %d, want 3", prog.Rules[0].NumVars)
	}
}

func TestParseKeywordsAsIdentifiers(t *testing.T) {
	u := core.NewUniverse()
	unit, err := ParseUnit(u, "", `
		rule(a).
		not(b).
		priority(c).
		rule(X) -> +not(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if unit.Database.Len() != 3 || len(unit.Program.Rules) != 1 {
		t.Fatalf("unit = %d facts %d rules", unit.Database.Len(), len(unit.Program.Rules))
	}
}

func TestParseStringsAndInts(t *testing.T) {
	u := core.NewUniverse()
	d, err := ParseDatabase(u, "", `name(1, "Tom \"T\" Jones"). name(2, "x").`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if _, ok := u.Syms.Lookup(`"x"`); !ok {
		t.Fatal("string constant not interned with quotes")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"unterminated string", `p("abc`, "unterminated string"},
		{"bad char", `p(a) @ q`, "unexpected character"},
		{"single equals", `p(X), X = a -> +q(X).`, "did you mean"},
		{"missing dot", `p(X) -> +q(X)`, "expected '.'"},
		{"missing head sign", `p(X) -> q(X).`, "must start with '+' or '-'"},
		{"var in fact", `p(X).`, "must be ground"},
		{"unsafe head var", `p(X) -> +q(Y).`, "unsafe"},
		{"unsafe neg var", `p(X), !q(Y) -> +r(X).`, "unsafe"},
		{"unsafe builtin var", `p(X), X != Y -> +r(X).`, "unsafe"},
		{"arity conflict", `p(a). p(a, b).`, "arity"},
		{"malformed number", `p(1a).`, "malformed number"},
		{"update with var", `+p(X).`, "must be ground"},
		{"anonymous in head", `p(X) -> +q(_).`, "unsafe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := core.NewUniverse()
			_, err := ParseUnit(u, "test.park", tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	u := core.NewUniverse()
	_, err := ParseUnit(u, "f.park", "p(a).\n  q(@).\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 || se.Col != 5 || se.File != "f.park" {
		t.Fatalf("position = %s:%d:%d", se.File, se.Line, se.Col)
	}
	if !strings.Contains(se.Error(), "f.park:2:5") {
		t.Fatalf("rendered error %q", se.Error())
	}
}

func TestParseRestrictedEntryPoints(t *testing.T) {
	u := core.NewUniverse()
	if _, err := ParseProgram(u, "", `p(a).`); err == nil {
		t.Fatal("ParseProgram accepted a fact")
	}
	if _, err := ParseDatabase(u, "", `p(X) -> +q(X).`); err == nil {
		t.Fatal("ParseDatabase accepted a rule")
	}
	if _, err := ParseUpdates(u, "", `p(a).`); err == nil {
		t.Fatal("ParseUpdates accepted a fact")
	}
}

// Round trip: printing a parsed rule and re-parsing it yields the
// same printed form.
func TestRuleRoundTrip(t *testing.T) {
	srcs := []string{
		`q(X) -> -a(X).`,
		`emp(X, S), !active(X) -> -payroll(X, S).`,
		`p(X), p(Y), X != Y -> +q(X, Y).`,
		`+r(X) -> -s(X).`,
		`-r(X), s(X) -> +t(X).`,
		`-> +q(b).`,
		`p -> +q.`,
	}
	for _, src := range srcs {
		u := core.NewUniverse()
		prog, err := ParseProgram(u, "", src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := prog.Rules[0].String(u) + "."
		u2 := core.NewUniverse()
		prog2, err := ParseProgram(u2, "", printed)
		if err != nil {
			t.Fatalf("re-parse %q: %v", printed, err)
		}
		printed2 := prog2.Rules[0].String(u2) + "."
		if printed != printed2 {
			t.Fatalf("round trip: %q != %q", printed, printed2)
		}
	}
}
