// Package workload generates synthetic programs, database instances
// and update sets for the benchmark harness (experiments B1–B8 in
// DESIGN.md) and for randomized property tests. All generators are
// deterministic functions of their parameters (and seed), and emit
// sources in the library's rule language so they can also be dumped
// and replayed through the CLI.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Scenario is one generated workload.
type Scenario struct {
	Name     string
	Program  string // rule-language source
	Database string
	Updates  string
	// Notes documents what the scenario exercises.
	Notes string
}

// Chain produces a linear fact-propagation workload: a chain of n
// edges and a program copying reachability down the chain. It runs in
// Θ(n) steps with one derivation per step — the worst case for the
// per-step overhead of the engine.
func Chain(n int) Scenario {
	var db strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&db, "edge(n%d, n%d).\n", i, i+1)
	}
	prog := `
		rule seed: start(X) -> +reach(X).
		rule step: reach(X), edge(X, Y) -> +reach(Y).
	`
	db.WriteString("start(n0).\n")
	return Scenario{
		Name:     fmt.Sprintf("chain-%d", n),
		Program:  prog,
		Database: db.String(),
		Notes:    "linear propagation; Θ(n) steps, conflict-free",
	}
}

// TransitiveClosure produces a random directed graph with the given
// node count and edge probability (in percent), plus the classic
// recursive TC program. Conflict-free, recursion through insertion;
// output size is O(n²) and the run exercises joins heavily (B1).
func TransitiveClosure(nodes, edgePercent int, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	var db strings.Builder
	edges := 0
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if i != j && rng.Intn(100) < edgePercent {
				fmt.Fprintf(&db, "edge(n%d, n%d).\n", i, j)
				edges++
			}
		}
	}
	if edges == 0 {
		fmt.Fprintf(&db, "edge(n0, n%d).\n", nodes-1)
	}
	prog := `
		rule base: edge(X, Y) -> +tc(X, Y).
		rule trans: tc(X, Y), edge(Y, Z) -> +tc(X, Z).
	`
	return Scenario{
		Name:     fmt.Sprintf("tc-%d-%d", nodes, edgePercent),
		Program:  prog,
		Database: db.String(),
		Notes:    "transitive closure; conflict-free recursion, O(n^2) output",
	}
}

// ConflictLadder produces a program with k sequenced conflicts: a
// driver chain s0 -> s1 -> ... -> sk where reaching stage i fires
// both +c_i and -c_i. Each phase of the PARK computation runs into
// exactly one new conflict, so the evaluation performs k restarts —
// the workload behind B2 ("restarts grow with planted conflicts and
// never exceed the groundings bound").
func ConflictLadder(k int) Scenario {
	var prog strings.Builder
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&prog, "rule drive%d priority %d: s%d -> +s%d.\n", i, i, i-1, i)
		fmt.Fprintf(&prog, "rule ins%d priority %d: s%d -> +c%d.\n", i, 2*i, i, i)
		fmt.Fprintf(&prog, "rule del%d priority %d: s%d -> -c%d.\n", i, 2*i+1, i, i)
	}
	return Scenario{
		Name:     fmt.Sprintf("ladder-%d", k),
		Program:  prog.String(),
		Database: "s0.\n",
		Notes:    "k sequenced conflicts; k phase restarts under any SELECT",
	}
}

// WideConflicts produces k independent conflicts that all surface in
// the very first step (one restart resolves them all): the contrast
// case to ConflictLadder for the restart-count experiment.
func WideConflicts(k int) Scenario {
	var prog strings.Builder
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&prog, "rule ins%d priority %d: s0 -> +c%d.\n", i, 2*i, i)
		fmt.Fprintf(&prog, "rule del%d priority %d: s0 -> -c%d.\n", i, 2*i+1, i)
	}
	return Scenario{
		Name:     fmt.Sprintf("wide-%d", k),
		Program:  prog.String(),
		Database: "s0.\n",
		Notes:    "k simultaneous conflicts; a single restart resolves all",
	}
}

// Grid produces an n×n grid reachability workload: right/down edges
// plus the recursive reach program seeded at the origin. Unlike the
// chain it has many same-length derivation paths per atom, stressing
// the per-step dedup of the semi-naive evaluator.
func Grid(n int) Scenario {
	var db strings.Builder
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i+1 < n {
				fmt.Fprintf(&db, "edge(c%d_%d, c%d_%d).\n", i, j, i+1, j)
			}
			if j+1 < n {
				fmt.Fprintf(&db, "edge(c%d_%d, c%d_%d).\n", i, j, i, j+1)
			}
		}
	}
	db.WriteString("reach(c0_0).\n")
	prog := `
		rule step: reach(X), edge(X, Y) -> +reach(Y).
	`
	return Scenario{
		Name:     fmt.Sprintf("grid-%d", n),
		Program:  prog,
		Database: db.String(),
		Notes:    "grid reachability; many redundant derivation paths",
	}
}

// SelectiveJoin produces a workload dominated by index probes: a
// large binary relation big(X, Y) joined against a small set of probe
// keys. With hash indexes each probe costs O(matches); with linear
// scans it costs O(|big|) — the workload behind ablation B6.
func SelectiveJoin(bigRows, probes int, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	keys := max(16, bigRows/64)
	var db strings.Builder
	for i := 0; i < bigRows; i++ {
		fmt.Fprintf(&db, "big(k%d, v%d).\n", rng.Intn(keys), i)
	}
	for p := 0; p < probes; p++ {
		fmt.Fprintf(&db, "probe(k%d).\n", rng.Intn(keys))
	}
	prog := `rule join: probe(X), big(X, Y) -> +out(X, Y).`
	return Scenario{
		Name:     fmt.Sprintf("seljoin-%d-%d", bigRows, probes),
		Program:  prog,
		Database: db.String(),
		Notes:    "selective join; hash-index probes vs full scans",
	}
}

// RandomProgram produces a random safe program over unary and binary
// predicates together with a random database. Roughly half the head
// predicates get both inserting and deleting rules, so conflicts are
// common; used for the divergence experiment B4 and for randomized
// engine properties. All validity/safety invariants hold by
// construction.
func RandomProgram(rules, preds, consts int, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	if preds < 2 {
		preds = 2
	}
	if consts < 2 {
		consts = 2
	}
	var prog strings.Builder
	for r := 0; r < rules; r++ {
		// Body: 1-3 positive literals over variables X, Y; optionally
		// one negated literal over already-bound variables.
		nbody := 1 + rng.Intn(3)
		vars := []string{"X", "Y"}
		usedVars := map[string]bool{}
		var body []string
		for b := 0; b < nbody; b++ {
			pred := fmt.Sprintf("p%d", rng.Intn(preds))
			v := vars[rng.Intn(len(vars))]
			usedVars[v] = true
			body = append(body, fmt.Sprintf("%s(%s)", pred, v))
		}
		if rng.Intn(3) == 0 {
			// Negated literal over a bound variable.
			var bound []string
			for v := range usedVars {
				bound = append(bound, v)
			}
			v := bound[rng.Intn(len(bound))]
			body = append(body, fmt.Sprintf("!p%d(%s)", rng.Intn(preds), v))
		}
		var bound []string
		for _, v := range vars {
			if usedVars[v] {
				bound = append(bound, v)
			}
		}
		head := fmt.Sprintf("p%d(%s)", rng.Intn(preds), bound[rng.Intn(len(bound))])
		op := "+"
		if rng.Intn(2) == 0 {
			op = "-"
		}
		fmt.Fprintf(&prog, "rule r%d priority %d: %s -> %s%s.\n", r, rng.Intn(10), strings.Join(body, ", "), op, head)
	}
	var db strings.Builder
	nfacts := consts * 2
	for f := 0; f < nfacts; f++ {
		fmt.Fprintf(&db, "p%d(k%d).\n", rng.Intn(preds), rng.Intn(consts))
	}
	return Scenario{
		Name:     fmt.Sprintf("random-%d-%d-%d-%d", rules, preds, consts, seed),
		Program:  prog.String(),
		Database: db.String(),
		Notes:    "random safe unary program with conflict potential",
	}
}

// TriggerCascade produces an ECA workload: events propagate through a
// chain of depth event rules, seeded by width transaction updates
// (B7). Each update +l0(x_j) triggers a cascade of depth insertions
// and a final deletion of the matching guard fact.
func TriggerCascade(depth, width int) Scenario {
	var prog strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&prog, "rule step%d: +l%d(X) -> +l%d(X).\n", i, i, i+1)
	}
	fmt.Fprintf(&prog, "rule fin: +l%d(X), guard(X) -> -guard(X).\n", depth)
	var db, ups strings.Builder
	for j := 0; j < width; j++ {
		fmt.Fprintf(&db, "guard(x%d).\n", j)
		fmt.Fprintf(&ups, "+l0(x%d).\n", j)
	}
	return Scenario{
		Name:     fmt.Sprintf("cascade-%d-%d", depth, width),
		Program:  prog.String(),
		Database: db.String(),
		Updates:  ups.String(),
		Notes:    "ECA trigger cascade: depth event-rule chain, width updates",
	}
}

// HRPayroll produces the payroll scenario motivating the paper's §2
// example at scale: employees with salary records and active flags,
// a deactivation trigger cascade, and the paper's cleanup rule
// deleting payroll records of inactive employees. The updates
// deactivate every deactivatePercent-th employee.
func HRPayroll(employees int, deactivatePercent int, seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	var db strings.Builder
	for i := 0; i < employees; i++ {
		dept := rng.Intn(1 + employees/10)
		fmt.Fprintf(&db, "emp(e%d). dept(e%d, d%d). active(e%d). payroll(e%d, s%d).\n",
			i, i, dept, i, i, 1000+rng.Intn(4000))
	}
	prog := `
		% the paper's §2 example rule: drop salary records of
		% non-active employees
		rule cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
		% deactivation event cascades into an audit trail
		rule audit: -active(X), dept(X, D) -> +audit(X, D).
		% every audited employee loses the active flag (idempotent here)
		rule deact: audit(X, D) -> -active(X).
	`
	var ups strings.Builder
	step := 100 / max(1, deactivatePercent)
	for i := 0; i < employees; i += max(1, step) {
		fmt.Fprintf(&ups, "-active(e%d).\n", i)
	}
	return Scenario{
		Name:     fmt.Sprintf("hr-%d-%d", employees, deactivatePercent),
		Program:  prog,
		Database: db.String(),
		Updates:  ups.String(),
		Notes:    "HR payroll maintenance (the paper's motivating domain)",
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
