package workload

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

// runScenario parses and evaluates a scenario under inertia.
func runScenario(t *testing.T, sc Scenario) (*core.Universe, *core.Result) {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, sc.Name+"/prog", sc.Program)
	if err != nil {
		t.Fatalf("%s: program: %v", sc.Name, err)
	}
	db, err := parser.ParseDatabase(u, sc.Name+"/db", sc.Database)
	if err != nil {
		t.Fatalf("%s: database: %v", sc.Name, err)
	}
	var ups []core.Update
	if sc.Updates != "" {
		if ups, err = parser.ParseUpdates(u, sc.Name+"/upd", sc.Updates); err != nil {
			t.Fatalf("%s: updates: %v", sc.Name, err)
		}
	}
	eng, err := core.NewEngine(u, prog, nil, core.Options{})
	if err != nil {
		t.Fatalf("%s: engine: %v", sc.Name, err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		t.Fatalf("%s: run: %v", sc.Name, err)
	}
	return u, res
}

func TestChain(t *testing.T) {
	u, res := runScenario(t, Chain(10))
	// start + 11 reach atoms + 10 edges
	count := 0
	for _, id := range res.Output.Atoms() {
		if strings.HasPrefix(u.AtomString(id), "reach(") {
			count++
		}
	}
	if count != 11 {
		t.Fatalf("reach atoms = %d, want 11", count)
	}
	if res.Stats.Conflicts != 0 {
		t.Fatalf("conflicts = %d", res.Stats.Conflicts)
	}
}

func TestTransitiveClosureComplete(t *testing.T) {
	// A complete graph: tc must contain every ordered pair.
	sc := TransitiveClosure(5, 100, 1)
	u, res := runScenario(t, sc)
	tc := 0
	for _, id := range res.Output.Atoms() {
		if strings.HasPrefix(u.AtomString(id), "tc(") {
			tc++
		}
	}
	if tc != 5*5 { // includes tc(x,x) via cycles
		t.Fatalf("tc atoms = %d, want 25", tc)
	}
}

func TestTransitiveClosureSeedDeterminism(t *testing.T) {
	a := TransitiveClosure(8, 30, 42)
	b := TransitiveClosure(8, 30, 42)
	if a.Database != b.Database {
		t.Fatal("same seed generated different graphs")
	}
	c := TransitiveClosure(8, 30, 43)
	if a.Database == c.Database {
		t.Fatal("different seeds generated identical graphs")
	}
}

func TestConflictLadderRestarts(t *testing.T) {
	for _, k := range []int{1, 3, 7} {
		sc := ConflictLadder(k)
		_, res := runScenario(t, sc)
		if res.Stats.Conflicts != k {
			t.Fatalf("ladder-%d: conflicts = %d, want %d", k, res.Stats.Conflicts, k)
		}
		if res.Stats.Phases != k+1 {
			t.Fatalf("ladder-%d: phases = %d, want %d", k, res.Stats.Phases, k+1)
		}
	}
}

func TestWideConflictsSingleRestart(t *testing.T) {
	sc := WideConflicts(6)
	_, res := runScenario(t, sc)
	if res.Stats.Conflicts != 6 {
		t.Fatalf("conflicts = %d, want 6", res.Stats.Conflicts)
	}
	if res.Stats.Phases != 2 {
		t.Fatalf("phases = %d, want 2 (all conflicts resolved in one restart)", res.Stats.Phases)
	}
}

func TestRandomProgramAlwaysValidAndTerminates(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sc := RandomProgram(8, 4, 4, seed)
		_, res := runScenario(t, sc)
		if res == nil {
			t.Fatalf("seed %d: no result", seed)
		}
	}
}

func TestTriggerCascade(t *testing.T) {
	sc := TriggerCascade(5, 3)
	u, res := runScenario(t, sc)
	// All guards must be deleted, and l5 must hold for all 3 constants.
	for _, id := range res.Output.Atoms() {
		if strings.HasPrefix(u.AtomString(id), "guard(") {
			t.Fatalf("guard survived: %s", u.AtomString(id))
		}
	}
	l5 := 0
	for _, id := range res.Output.Atoms() {
		if strings.HasPrefix(u.AtomString(id), "l5(") {
			l5++
		}
	}
	if l5 != 3 {
		t.Fatalf("l5 atoms = %d, want 3", l5)
	}
}

func TestHRPayroll(t *testing.T) {
	sc := HRPayroll(20, 25, 7)
	u, res := runScenario(t, sc)
	// Every deactivated employee must have lost payroll and gained an
	// audit entry; employee e0 is always deactivated.
	var sawAuditE0 bool
	for _, id := range res.Output.Atoms() {
		s := u.AtomString(id)
		if strings.HasPrefix(s, "payroll(e0,") {
			t.Fatalf("payroll survived deactivation: %s", s)
		}
		if strings.HasPrefix(s, "audit(e0,") {
			sawAuditE0 = true
		}
		if s == "active(e0)" {
			t.Fatal("active flag survived")
		}
	}
	if !sawAuditE0 {
		t.Fatal("audit entry for e0 missing")
	}
}

func TestGrid(t *testing.T) {
	u, res := runScenario(t, Grid(4))
	// Every cell is reachable from the origin.
	reach := 0
	for _, id := range res.Output.Atoms() {
		if strings.HasPrefix(u.AtomString(id), "reach(") {
			reach++
		}
	}
	if reach != 16 {
		t.Fatalf("reach atoms = %d, want 16", reach)
	}
	// One applied Γ step per BFS frontier; the far corner is at
	// distance 2(n-1) from the seeded origin.
	if res.Stats.Steps != 2*(4-1) {
		t.Fatalf("steps = %d, want %d", res.Stats.Steps, 2*(4-1))
	}
}
