package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/persist"
)

// TestConcurrentMixedClients is the regression test for the universe
// data race: request handlers parse updates and queries against the
// shared core.Universe, so concurrent POSTs used to race on the
// intern tables. Eight writers and four readers hammer the server
// with requests that all intern fresh symbols; under -race (CI runs
// this test with -count=2) the pre-fix server fails immediately.
// It also exercises the full concurrent commit pipeline end to end:
// every transaction must land, and reads must stay consistent.
func TestConcurrentMixedClients(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `rule log: +item(X) -> +seen(X).`, ""); err != nil {
		t.Fatal(err)
	}

	const writers = 8
	const readers = 4
	const txnsPerWriter = 6
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				// Fresh constants every time: the parse path must
				// intern concurrently with other writers and readers.
				if _, err := c.Transact(ctx, fmt.Sprintf("+item(w%d_i%d).", w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < txnsPerWriter; i++ {
				// Queries also intern fresh symbols while parsing.
				if _, err := c.Query(ctx, fmt.Sprintf("item(Fresh%d_%d)", r, i)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Database(ctx); err != nil {
					errs <- err
					return
				}
				if _, err := c.History(ctx); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	facts, err := c.Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Every item plus its rule-derived seen twin.
	if want := 2 * writers * txnsPerWriter; len(facts) != want {
		t.Fatalf("facts = %d, want %d", len(facts), want)
	}
	hist, err := c.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != writers*txnsPerWriter {
		t.Fatalf("history = %d entries, want %d", len(hist), writers*txnsPerWriter)
	}
	for i, txn := range hist {
		if txn.Seq != i+1 {
			t.Fatalf("history[%d].Seq = %d, want dense sequences", i, txn.Seq)
		}
	}
	// The store metrics must be visible through the server registry.
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "park_store_fsyncs_total") ||
		!strings.Contains(text, "park_store_commit_batch_size") {
		t.Fatalf("metrics exposition missing store commit metrics:\n%s", text)
	}
	_ = srv
}

// TestTransactionErrorMapping pins the HTTP statuses for the
// non-engine failure modes of POST /v1/transaction: client
// cancellation is 499, deadline expiry is 504, a closed store is 503
// — and none of them increment the engine error counter, which is
// reserved for genuine evaluation failures (422).
func TestTransactionErrorMapping(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store)
	h := srv.Handler()

	do := func(ctx context.Context, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/transaction", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req = req.WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	baseline := srv.em.errors.Value()

	// Canceled client -> 499.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if rec := do(canceled, `{"updates": "+p(a)."}`); rec.Code != statusClientClosedRequest {
		t.Fatalf("canceled context: status = %d, want %d", rec.Code, statusClientClosedRequest)
	}

	// Expired deadline -> 504.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if rec := do(expired, `{"updates": "+p(a)."}`); rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status = %d, want 504", rec.Code)
	}

	// A genuine evaluation failure stays 422 and is counted (exercised
	// through the mapper directly: well-formed wire requests cannot
	// produce engine errors with the default options).
	rec422 := httptest.NewRecorder()
	srv.writeApplyErr(rec422, fmt.Errorf("park: phase limit 10 exceeded"))
	if rec422.Code != http.StatusUnprocessableEntity {
		t.Fatalf("engine error: status = %d, want 422", rec422.Code)
	}
	if got := srv.em.errors.Value(); got != baseline+1 {
		t.Fatalf("engine errors after engine failure = %d, want %d", got, baseline+1)
	}

	// Closed store (graceful shutdown) -> 503, not counted.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	if rec := do(context.Background(), `{"updates": "+q(a)."}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed store: status = %d, want 503", rec.Code)
	}
	// Checkpoint on a closed store is also 503.
	req := httptest.NewRequest(http.MethodPost, "/v1/checkpoint", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint on closed store: status = %d, want 503", rec.Code)
	}
	if got := srv.em.errors.Value(); got != baseline+1 {
		t.Fatalf("engine errors after transport failures = %d, want %d (transport conditions must not count)", got, baseline+1)
	}
}
