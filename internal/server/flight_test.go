package server

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/persist"
)

func TestTraceEndpoints(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `
		rule r1 priority 1: p -> +a.
		rule r2 priority 2: p -> +q.
		rule r3 priority 3: a -> -q.
	`, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, `+p.`); err != nil {
		t.Fatal(err)
	}

	txns, err := c.RecentTxns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns.Transactions) != 1 {
		t.Fatalf("recent window = %+v, want one entry", txns.Transactions)
	}
	sum := txns.Transactions[0]
	if sum.Seq != 1 || sum.Conflicts != 1 || sum.TraceID == "" || sum.Origin != "local" {
		t.Fatalf("summary = %+v", sum)
	}

	tr, err := c.TxnTrace(ctx, sum.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != sum.TraceID || tr.Conflicts != 1 || len(tr.Events) == 0 {
		t.Fatalf("trace = %+v", tr)
	}

	text, err := c.TxnTraceText(ctx, sum.Seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"txn 1 (trace " + sum.TraceID, "conflict on q:", "block (r2)"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text trace missing %q:\n%s", want, text)
		}
	}

	// Nothing was slow; the endpoint answers with an empty list.
	slow, err := c.SlowTxns(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(slow.Transactions) != 0 || slow.SlowThresholdSeconds <= 0 {
		t.Fatalf("slow = %+v", slow)
	}

	// Unknown sequence: a 404 with an explanatory body.
	if _, err := c.TxnTrace(ctx, 999); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("missing trace error = %v, want HTTP 404", err)
	}
}

func TestTraceEndpointsDisabled(t *testing.T) {
	store, err := persist.Open(t.TempDir(), persist.WithTraceBuffer(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	ts := httptest.NewServer(New(store).Handler())
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	if _, err := c.RecentTxns(context.Background()); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("disabled-recorder error = %v", err)
	}
}

func TestTraceIDMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	srv.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// A valid client-supplied ID is propagated and echoed.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/database", nil)
	req.Header.Set("X-Park-Trace-Id", "client-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Park-Trace-Id"); got != "client-id-1" {
		t.Fatalf("echoed trace ID = %q, want client-id-1", got)
	}
	if !strings.Contains(logBuf.String(), "traceId=client-id-1") {
		t.Fatalf("access log missing trace ID:\n%s", logBuf.String())
	}

	// An invalid ID (log-injection shape) is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/database", nil)
	req.Header.Set("X-Park-Trace-Id", "bad id;{}")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Park-Trace-Id")
	if got == "" || strings.Contains(got, " ") {
		t.Fatalf("invalid client ID echoed back as %q", got)
	}

	// No header at all: the server assigns one.
	resp, err = http.Get(ts.URL + "/v1/database")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Park-Trace-Id") == "" {
		t.Fatal("no trace ID assigned")
	}

	// The transaction's trace carries the request's ID end to end.
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/transaction",
		strings.NewReader(`{"updates": "+p(a)."}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Park-Trace-Id", "txn-trace-9")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tr, err := c.TxnTrace(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TraceID != "txn-trace-9" {
		t.Fatalf("trace ID = %q, want txn-trace-9", tr.TraceID)
	}
}

func TestVersionEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Module == "" || v.GoVersion == "" {
		t.Fatalf("version = %+v", v)
	}
	if v.UptimeSeconds < 0 {
		t.Fatalf("uptime = %f", v.UptimeSeconds)
	}
	// The build-info and uptime metrics exist.
	text, err := c.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"park_build_info{", "park_uptime_seconds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %s:\n%s", want, text[:min(len(text), 2000)])
		}
	}
}
