package server

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/parser"
)

// Timers are the server's minimal time-based event source: a named
// interval timer injects an update set through the normal transaction
// path every period, so active rules can react to the passage of time
// exactly the way they react to client transactions. This is the
// interval-event model of ECA-RuleML's temporal composition layer cut
// down to its core: each firing is an ordinary PARK transaction whose
// event literals (+tick(...) and friends) rules can match, compose
// with stored facts, and cascade from — no second event algebra, no
// out-of-band mutation path.
//
//	POST   /v1/timers          register a timer (leader only)
//	GET    /v1/timers          list timers and their firing stats
//	DELETE /v1/timers/{name}   stop and remove a timer
//
// The update template may reference ${n}, which is substituted with
// the firing index (0, 1, 2, ...) so each tick can mint a fresh
// constant, e.g. "+tick(t${n}).". Firings that fail (degraded store,
// evaluation error) are counted and remembered but do not stop the
// timer; a bounded timer (count > 0) goes inactive after its last
// firing and stays listed until deleted. All timers stop when the
// server shuts its streams down (graceful shutdown); timers are not
// durable state and do not survive a restart — an operator or init
// script re-registers them, exactly like the active program.

// timerName restricts names to a log- and URL-safe charset (also
// embedded in per-firing trace IDs).
var timerName = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// minTimerInterval bounds how hot a timer can spin; a write per
// millisecond through full PARK evaluation and a WAL fsync is already
// far past any temporal-rule use case.
const minTimerInterval = time.Millisecond

// TimerRequest registers an interval timer.
type TimerRequest struct {
	// Name identifies the timer (letters, digits, '_', '-').
	Name string `json:"name"`
	// Every is the firing period as a Go duration string ("500ms",
	// "1m"); minimum 1ms.
	Every string `json:"every"`
	// Updates is the update-set template applied on each firing, in
	// rule-language syntax; ${n} is replaced with the firing index.
	Updates string `json:"updates"`
	// Count bounds the number of firings; 0 means unbounded.
	Count int `json:"count,omitempty"`
	// Strategy overrides the server's default conflict resolution
	// strategy for this timer's transactions.
	Strategy string `json:"strategy,omitempty"`
}

// TimerInfo reports one timer's configuration and firing stats.
type TimerInfo struct {
	Name    string `json:"name"`
	Every   string `json:"every"`
	Updates string `json:"updates"`
	Count   int    `json:"count,omitempty"`
	// Fires is the number of completed firing attempts (successful or
	// not); Errors the number that failed. LastError remembers the
	// most recent failure, if any.
	Fires     int64  `json:"fires"`
	Errors    int64  `json:"errors"`
	LastError string `json:"lastError,omitempty"`
	// Active is false once a bounded timer has fired Count times or
	// the server is shutting down.
	Active bool `json:"active"`
}

// TimersResponse lists the registered timers.
type TimersResponse struct {
	Timers []TimerInfo `json:"timers"`
}

// timer is one registered interval event source.
type timer struct {
	name     string
	every    time.Duration
	updates  string
	count    int
	strategy string

	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	fires     int64
	errors    int64
	lastError string
	active    bool
}

func (t *timer) info() TimerInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TimerInfo{
		Name:      t.name,
		Every:     t.every.String(),
		Updates:   t.updates,
		Count:     t.count,
		Fires:     t.fires,
		Errors:    t.errors,
		LastError: t.lastError,
		Active:    t.active,
	}
}

// timerSet owns the server's timers. Lazily initialized behind the
// server mutex on first use.
type timerSet struct {
	mu     sync.Mutex
	timers map[string]*timer
}

// expandTimerTemplate substitutes ${n} with the firing index.
func expandTimerTemplate(tmpl string, n int64) string {
	return strings.ReplaceAll(tmpl, "${n}", strconv.FormatInt(n, 10))
}

// handleCreateTimer serves POST /v1/timers. Registration validates
// the whole spec up front — the name, the period, the strategy tag,
// and that the template parses with the index substituted — so a
// timer never starts ticking with an update set that can only fail.
func (s *Server) handleCreateTimer(w http.ResponseWriter, r *http.Request) {
	var req TimerRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !timerName.MatchString(req.Name) {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("bad timer name %q (want 1-64 of [a-zA-Z0-9_-])", req.Name))
		return
	}
	every, err := time.ParseDuration(req.Every)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad timer period %q: %w", req.Every, err))
		return
	}
	if every < minTimerInterval {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("timer period %v below the %v minimum", every, minTimerInterval))
		return
	}
	if req.Count < 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad timer count %d (want >= 0)", req.Count))
		return
	}
	if strings.TrimSpace(req.Updates) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("timer %q has an empty update set", req.Name))
		return
	}
	if _, err := strategyFor(req.Strategy, 0); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Parse-check the template at its first expansion; a template
	// that fails with one index fails with all (the substitution is a
	// decimal integer constant).
	if _, err := parser.ParseUpdates(s.store.Universe(), "timer "+req.Name,
		expandTimerTemplate(req.Updates, 0)); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("timer updates: %w", err))
		return
	}

	// The firing loop stops with the stream context (graceful
	// shutdown) or the timer's own cancel (DELETE).
	ctx, cancel := context.WithCancel(s.streamCtx)
	t := &timer{
		name:     req.Name,
		every:    every,
		updates:  req.Updates,
		count:    req.Count,
		strategy: req.Strategy,
		cancel:   cancel,
		done:     make(chan struct{}),
		active:   true,
	}
	s.timers.mu.Lock()
	if s.timers.timers == nil {
		s.timers.timers = make(map[string]*timer)
	}
	if _, exists := s.timers.timers[req.Name]; exists {
		s.timers.mu.Unlock()
		cancel()
		writeErr(w, http.StatusConflict, fmt.Errorf("timer %q already exists", req.Name))
		return
	}
	s.timers.timers[req.Name] = t
	s.timers.mu.Unlock()

	s.reg.Gauge("park_timers_active", "Interval timers currently registered and active.").Inc()
	go s.runTimer(ctx, t)

	writeJSON(w, http.StatusOK, t.info())
}

// runTimer is one timer's firing loop.
func (s *Server) runTimer(ctx context.Context, t *timer) {
	defer close(t.done)
	fires := s.reg.Counter("park_timer_fires_total",
		"Timer firings that committed a transaction, by timer.",
		metrics.L("timer", t.name))
	fireErrs := s.reg.Counter("park_timer_errors_total",
		"Timer firings that failed (parse, evaluation or degraded store), by timer.",
		metrics.L("timer", t.name))
	active := s.reg.Gauge("park_timers_active", "Interval timers currently registered and active.")
	defer func() {
		t.mu.Lock()
		t.active = false
		t.mu.Unlock()
		active.Dec()
	}()
	tick := time.NewTicker(t.every)
	defer tick.Stop()
	for n := int64(0); ; n++ {
		if t.count > 0 && n >= int64(t.count) {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		err := s.fireTimer(ctx, t, n)
		t.mu.Lock()
		t.fires++
		if err != nil {
			t.errors++
			t.lastError = err.Error()
		}
		t.mu.Unlock()
		if err != nil {
			fireErrs.Inc()
			s.logger.Warn("timer firing failed", "timer", t.name, "firing", n, "err", err)
			s.ev.Emit(events.Event{
				Type:     events.TimerError,
				StoreSeq: s.store.Seq(),
				Detail:   fmt.Sprintf("timer %q firing %d: %v", t.name, n, err),
			})
			if ctx.Err() != nil {
				return
			}
			continue
		}
		fires.Inc()
	}
}

// fireTimer applies one firing's update set through the same path a
// client transaction takes: current program, the timer's (or the
// server's) strategy, engine metrics, flight recorder and all. The
// trace ID "timer-<name>-<n>" correlates the firing across the
// commit log, /v1/txns and replication.
func (s *Server) fireTimer(ctx context.Context, t *timer, n int64) error {
	u := s.store.Universe()
	ups, err := parser.ParseUpdates(u, "timer "+t.name, expandTimerTemplate(t.updates, n))
	if err != nil {
		return err
	}
	s.mu.RLock()
	prog := s.program
	tag := s.strategyTag
	s.mu.RUnlock()
	if t.strategy != "" {
		tag = t.strategy
	}
	strat, err := strategyFor(tag, n)
	if err != nil {
		return err
	}
	ctx = flight.WithTraceID(ctx, fmt.Sprintf("timer-%s-%d", t.name, n))
	res, err := s.store.Apply(ctx, prog, ups, strat, core.Options{})
	if err != nil {
		return err
	}
	s.em.recordRun(res.RunStats)
	return nil
}

// handleListTimers serves GET /v1/timers.
func (s *Server) handleListTimers(w http.ResponseWriter, r *http.Request) {
	s.timers.mu.Lock()
	infos := make([]TimerInfo, 0, len(s.timers.timers))
	for _, t := range s.timers.timers {
		infos = append(infos, t.info())
	}
	s.timers.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, TimersResponse{Timers: infos})
}

// handleDeleteTimer serves DELETE /v1/timers/{name}: stop the firing
// loop, wait for an in-flight firing to finish, and forget the timer.
func (s *Server) handleDeleteTimer(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.timers.mu.Lock()
	t, ok := s.timers.timers[name]
	if ok {
		delete(s.timers.timers, name)
	}
	s.timers.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no timer %q", name))
		return
	}
	t.cancel()
	<-t.done
	writeJSON(w, http.StatusOK, t.info())
}
