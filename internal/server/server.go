// Package server exposes a persistent PARK active database over an
// HTTP/JSON API, together with a matching Go client. It turns the
// library into the kind of system the paper targets: a database that
// holds a rule set and reacts to transactions (update sets) by
// computing PARK(P, D, U) and durably installing the result.
//
// Endpoints (all JSON):
//
//	PUT  /v1/program       install the active rule program
//	GET  /v1/program       fetch the active rule program
//	POST /v1/transaction   apply an update set through the rules
//	GET  /v1/database      list the current facts
//	POST /v1/query         run a conjunctive query
//	POST /v1/analyze       static analysis of the active program
//	POST /v1/checkpoint    snapshot the store and truncate the WAL
//	GET  /v1/history       committed transactions since the checkpoint
//	GET  /v1/txns          flight-recorder trace summaries (recent window)
//	GET  /v1/txns/slow     retained traces over the slow threshold
//	GET  /v1/txns/{seq}/trace   full trace of one transaction (?format=text)
//	POST /v1/timers        register an interval event source (timer)
//	GET  /v1/timers        list timers and their firing stats
//	DELETE /v1/timers/{name}  stop and remove a timer
//	GET  /v1/watch         SSE stream of committed transactions
//	GET  /v1/repl/stream   framed replication stream for followers
//	GET  /v1/metrics       engine/HTTP/store metrics (JSON or Prometheus)
//	GET  /v1/version       build provenance and uptime
//	GET  /v1/healthz       write-readiness: 200 healthy, 503 degraded
//	GET  /v1/events        structured lifecycle event journal (?since=N&type=...)
//	GET  /v1/rules/stats   per-rule profiler, ranked by cumulative match cost
//	GET  /v1/cluster       aggregated replica-set view (fans out to peers)
//
// Every request is stamped with an X-Park-Trace-Id (propagated from
// the client when valid, assigned otherwise) that correlates the
// access log, the store's commit log, the flight trace and — across
// replication — the follower's applied-transaction log.
//
// A store that loses durability (failed fsync, full disk) degrades to
// read-only: the write endpoints answer 503 Service Unavailable with a
// Retry-After header while a background probe retests the disk, and
// /v1/healthz reports the degradation; reads, queries and replication
// streaming keep serving throughout. See docs/OPERATIONS.md.
//
// A server built with NewReplica runs in read-only follower mode:
// queries, history, watch and metrics are served from the local
// replicated store, while the write endpoints (PUT /v1/program,
// POST /v1/transaction) answer 421 Misdirected Request with an
// X-Park-Leader header naming the node that does accept writes. See
// docs/REPLICATION.md for the protocol and consistency model.
//
// Every endpoint is instrumented with request counters, latency
// histograms and an in-flight gauge; /v1/metrics exposes those
// together with the engine counters (phases, restarts, conflicts,
// Γ steps). See docs/OBSERVABILITY.md for the full catalogue.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/persist"
	"repro/internal/repl"
	"repro/internal/resolve"
)

// Server is the HTTP handler for one persistent store. The active
// program and default strategy are part of the server state.
type Server struct {
	store  *persist.Store
	reg    *metrics.Registry
	em     *engineMetrics
	leader *repl.Leader

	// follower is non-nil in read-only replica mode; leaderURL is the
	// write-endpoint hint returned with 421 responses.
	follower  *repl.Follower
	leaderURL string

	// node is the failover coordinator in cluster mode (NewClusterMember):
	// the writable gate consults it on every mutating request, because
	// the role changes at runtime as leases expire and elections run.
	node *repl.Node

	// ev is the structured event journal (SetEvents); nil disables
	// /v1/events. The events.Log methods are nil-safe, so emission
	// sites don't guard.
	ev *events.Log

	// faultFS is non-nil when EnableFailpoints has armed the
	// /v1/debug/failpoint endpoints (tests and operator drills only).
	faultFS *persist.FaultFS

	// watchKeepalive is the SSE comment-line heartbeat interval for
	// /v1/watch (default 15s; tests shrink it).
	watchKeepalive time.Duration

	// streamCtx is cancelled by StopStreams to abort long-lived
	// streaming responses during graceful shutdown.
	streamCtx   context.Context
	stopStreams context.CancelFunc

	// timers holds the interval event sources registered via
	// POST /v1/timers (see timer.go); their firing loops stop with
	// streamCtx.
	timers timerSet

	// logger receives the structured access log (one record per
	// request, with the trace ID); discarded unless SetLogger is
	// called. start anchors the uptime gauge and /v1/version.
	logger *slog.Logger
	start  time.Time

	mu          sync.RWMutex
	programSrc  string
	program     *core.Program
	strategyTag string
}

// New creates a server over the store. The initial program is empty
// and the default strategy is inertia. The store's commit-pipeline
// metrics (fsyncs, group-commit batch sizes, retries, queue waits)
// are registered into the server's registry.
func New(store *persist.Store) *Server {
	reg := metrics.NewRegistry()
	store.Instrument(reg)
	leader := repl.NewLeader(store)
	leader.Instrument(reg)
	streamCtx, stopStreams := context.WithCancel(context.Background())
	s := &Server{
		store:          store,
		reg:            reg,
		em:             newEngineMetrics(reg),
		leader:         leader,
		watchKeepalive: 15 * time.Second,
		streamCtx:      streamCtx,
		stopStreams:    stopStreams,
		program:        &core.Program{},
		strategyTag:    "inertia",
		logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
		start:          time.Now(),
	}
	registerBuildInfo(reg)
	return s
}

// StopStreams aborts the long-lived streaming responses (/v1/watch
// and /v1/repl/stream) and stops every registered timer's firing
// loop. Graceful shutdown should call this (e.g. via
// http.Server.RegisterOnShutdown) so open streams don't hold
// Shutdown for its whole grace period; watchers see EOF and
// followers reconnect and resume by design. Timers are not durable —
// re-register them after a restart, like the active program.
func (s *Server) StopStreams() { s.stopStreams() }

// NewReplica creates a read-only server over a replicated store. The
// follower (which the caller starts with follower.Run) is the store's
// only writer; its replication metrics are registered alongside the
// server's, and leaderURL is advertised to rejected writers. A
// replica still serves /v1/repl/stream — its store re-notifies every
// replicated commit, so replicas can be chained.
func NewReplica(store *persist.Store, follower *repl.Follower, leaderURL string) *Server {
	s := New(store)
	s.follower = follower
	s.leaderURL = leaderURL
	if follower != nil {
		follower.Instrument(s.reg)
	}
	return s
}

// Metrics returns the server's metric registry, for embedding callers
// that want to add their own instruments or render the metrics out of
// band.
func (s *Server) Metrics() *metrics.Registry { return s.reg }

// SetProgram installs a rule program from rule-language source.
func (s *Server) SetProgram(src string) error { return s.setProgram(src, "rules") }

// SetTriggerProgram installs a program from trigger-DDL source.
func (s *Server) SetTriggerProgram(src string) error { return s.setProgram(src, "triggers") }

// setProgram installs a program in the given format ("rules" or
// "triggers").
func (s *Server) setProgram(src, format string) error {
	var prog *core.Program
	var err error
	switch format {
	case "", "rules":
		prog, err = parser.ParseProgram(s.store.Universe(), "program", src)
	case "triggers":
		prog, err = parser.ParseTriggers(s.store.Universe(), "program", src)
	default:
		return fmt.Errorf("unknown program format %q (want rules or triggers)", format)
	}
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.programSrc = src
	s.program = prog
	return nil
}

// SetStrategy sets the server's default conflict resolution strategy
// tag, validating it.
func (s *Server) SetStrategy(tag string) error {
	if _, err := strategyFor(tag, 0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.strategyTag = tag
	return nil
}

// strategyFor resolves a strategy tag. Interactive strategies are not
// available over the wire.
func strategyFor(tag string, seed int64) (core.Strategy, error) {
	switch tag {
	case "", "inertia":
		return resolve.Inertia(), nil
	case "priority":
		return resolve.Priority{TieBreak: resolve.Inertia()}, nil
	case "specificity":
		return resolve.Fallback{Strategies: []core.Strategy{resolve.Specificity{}, resolve.Inertia()}}, nil
	case "random":
		return resolve.NewRandom(seed), nil
	case "protect-inertia":
		return resolve.ProtectUpdates{Inner: resolve.Inertia()}, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", tag)
}

// Handler returns the HTTP handler. Every route runs behind the
// metrics middleware (request counter, latency histogram, in-flight
// gauge), including /v1/metrics itself.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/program", s.instrument("/v1/program", s.writable(s.handleSetProgram)))
	mux.HandleFunc("GET /v1/program", s.instrument("/v1/program", s.handleGetProgram))
	mux.HandleFunc("POST /v1/transaction", s.instrument("/v1/transaction", s.writable(s.handleTransaction)))
	mux.HandleFunc("GET /v1/database", s.instrument("/v1/database", s.handleDatabase))
	mux.HandleFunc("POST /v1/query", s.instrument("/v1/query", s.handleQuery))
	mux.HandleFunc("POST /v1/analyze", s.instrument("/v1/analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/checkpoint", s.instrument("/v1/checkpoint", s.handleCheckpoint))
	mux.HandleFunc("GET /v1/history", s.instrument("/v1/history", s.handleHistory))
	mux.HandleFunc("GET /v1/txns", s.instrument("/v1/txns", s.handleTxns))
	mux.HandleFunc("GET /v1/txns/slow", s.instrument("/v1/txns/slow", s.handleSlowTxns))
	mux.HandleFunc("GET /v1/txns/{seq}/trace", s.instrument("/v1/txns/trace", s.handleTxnTrace))
	mux.HandleFunc("POST /v1/timers", s.instrument("/v1/timers", s.writable(s.handleCreateTimer)))
	mux.HandleFunc("GET /v1/timers", s.instrument("/v1/timers", s.handleListTimers))
	mux.HandleFunc("DELETE /v1/timers/{name}", s.instrument("/v1/timers", s.writable(s.handleDeleteTimer)))
	mux.HandleFunc("GET /v1/version", s.instrument("/v1/version", s.handleVersion))
	mux.HandleFunc("GET /v1/watch", s.instrument("/v1/watch", s.streaming(s.handleWatch)))
	mux.HandleFunc("GET /v1/repl/stream", s.instrument("/v1/repl/stream", s.streaming(s.leader.ServeHTTP)))
	mux.HandleFunc("GET /v1/repl/status", s.instrument("/v1/repl/status", s.handleReplStatus))
	mux.HandleFunc("POST /v1/repl/vote", s.instrument("/v1/repl/vote", s.handleReplVote))
	mux.HandleFunc("POST /v1/repl/ack", s.instrument("/v1/repl/ack", s.handleReplAck))
	mux.HandleFunc("POST /v1/repl/promote", s.instrument("/v1/repl/promote", s.handleReplPromote))
	mux.HandleFunc("GET /v1/metrics", s.instrument("/v1/metrics", s.handleMetrics))
	mux.HandleFunc("GET /v1/healthz", s.instrument("/v1/healthz", s.handleHealthz))
	mux.HandleFunc("GET /v1/events", s.instrument("/v1/events", s.handleEvents))
	mux.HandleFunc("GET /v1/rules/stats", s.instrument("/v1/rules/stats", s.handleRuleStats))
	mux.HandleFunc("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	if s.faultFS != nil {
		mux.HandleFunc("POST /v1/debug/failpoint", s.instrument("/v1/debug/failpoint", s.handleSetFailpoint))
		mux.HandleFunc("GET /v1/debug/failpoint", s.instrument("/v1/debug/failpoint", s.handleGetFailpoints))
	}
	return s.traced(mux)
}

// streaming ties a long-lived handler's request context to the
// server's stream context, so StopStreams aborts it.
func (s *Server) streaming(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		defer context.AfterFunc(s.streamCtx, cancel)()
		h(w, r.WithContext(ctx))
	}
}

// ReplicaRejection is the 421 body a replica returns for write
// requests. Error stays first and unchanged in shape so existing
// clients that decode ErrorResponse keep working; the extra fields
// tell a redirecting client where the leader is and how fresh this
// replica's data was when it said no.
type ReplicaRejection struct {
	Error  string `json:"error"`
	Leader string `json:"leader,omitempty"`
	// Epoch is this node's leadership epoch (cluster mode only):
	// clients following a chain of 421s can prefer the highest epoch
	// they have seen.
	Epoch int64 `json:"epoch,omitempty"`
	// Stale mirrors park_repl_follower_stale: no frame has arrived
	// within the follower's staleness bound, so local reads may lag
	// the leader arbitrarily.
	Stale bool `json:"stale"`
	// StaleAfterSeconds is the bound Stale was judged against.
	StaleAfterSeconds float64 `json:"staleAfterSeconds"`
	// AppliedSeq is the newest leader transaction applied locally.
	AppliedSeq int `json:"appliedSeq"`
	// LagSeq is the known replication lag in transactions.
	LagSeq int `json:"lagSeq"`
	// LastFrameAgeSeconds is the silence on the replication stream; 0
	// when no frame has arrived yet.
	LastFrameAgeSeconds float64 `json:"lastFrameAgeSeconds,omitempty"`
}

// writable gates a mutating handler: on a replica the logical state
// is owned by the replication stream, so writes are misdirected —
// answer 421 with the leader's address (header and body) plus the
// replica's staleness so clients can retry at the leader and judge
// what they just read here.
func (s *Server) writable(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// Cluster mode: the role is dynamic, ask the coordinator.
		if s.node != nil {
			switch {
			case !s.node.IsLeader():
				s.rejectNotLeader(w)
			case s.node.Suspended():
				s.rejectSuspended(w)
			default:
				h(w, r)
			}
			return
		}
		if s.follower != nil {
			if s.leaderURL != "" {
				w.Header().Set("X-Park-Leader", s.leaderURL)
			}
			st := s.follower.Status()
			resp := ReplicaRejection{
				Error:             fmt.Sprintf("read-only replica: send writes to the leader at %s", s.leaderURL),
				Leader:            s.leaderURL,
				Stale:             st.Stale,
				StaleAfterSeconds: st.StaleAfter.Seconds(),
				AppliedSeq:        st.AppliedSeq,
				LagSeq:            st.LagSeq(),
			}
			if !st.LastFrame.IsZero() {
				resp.LastFrameAgeSeconds = time.Since(st.LastFrame).Seconds()
			}
			writeJSON(w, http.StatusMisdirectedRequest, resp)
			return
		}
		h(w, r)
	}
}

// --- wire types ---

// ProgramRequest installs a program.
type ProgramRequest struct {
	Source string `json:"source"`
	// Format is "rules" (default) or "triggers" (the CREATE TRIGGER
	// DDL).
	Format string `json:"format,omitempty"`
	// Strategy optionally sets the server's default strategy tag.
	Strategy string `json:"strategy,omitempty"`
}

// ProgramResponse reports the active program.
type ProgramResponse struct {
	Source   string `json:"source"`
	Rules    int    `json:"rules"`
	Strategy string `json:"strategy"`
}

// TransactionRequest applies an update set.
type TransactionRequest struct {
	// Updates in rule-language syntax, e.g. "+q(b). -p(a).".
	Updates string `json:"updates"`
	// Strategy overrides the server default for this transaction.
	Strategy string `json:"strategy,omitempty"`
	// Seed parameterizes the random strategy.
	Seed int64 `json:"seed,omitempty"`
}

// ConflictInfo describes one resolved conflict.
type ConflictInfo struct {
	Atom     string `json:"atom"`
	Decision string `json:"decision"`
}

// TransactionResponse reports the outcome of a transaction.
type TransactionResponse struct {
	Facts     []string       `json:"facts"`
	Phases    int            `json:"phases"`
	Restarts  int            `json:"restarts"`
	Steps     int            `json:"steps"`
	Conflicts []ConflictInfo `json:"conflicts,omitempty"`
	Blocked   int            `json:"blocked"`
	// WallSeconds is the engine wall-clock time of this transaction.
	WallSeconds float64 `json:"wallSeconds"`
	// Seq is the committed global sequence (0 when the transaction was
	// a no-op and nothing was installed).
	Seq int `json:"seq,omitempty"`
	// Epoch is the leadership epoch the transaction committed under
	// (0 outside cluster mode).
	Epoch int64 `json:"epoch,omitempty"`
}

// DatabaseResponse lists the current facts.
type DatabaseResponse struct {
	Facts []string `json:"facts"`
}

// HistoryResponse lists the committed transactions since the last
// checkpoint.
type HistoryResponse struct {
	Transactions []TxnInfo `json:"transactions"`
}

// TxnInfo describes one committed transaction's delta.
type TxnInfo struct {
	Seq     int      `json:"seq"`
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
}

// QueryRequest runs a conjunctive query.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResponse returns variable names and answer rows.
type QueryResponse struct {
	Vars []string   `json:"vars"`
	Rows [][]string `json:"rows"`
}

// AnalyzeResponse reports static analysis of the active program.
type AnalyzeResponse struct {
	Rules              int      `json:"rules"`
	ConflictPredicates []string `json:"conflictPredicates"`
	Stratified         bool     `json:"stratified"`
	Recursive          bool     `json:"recursive"`
	UsesEvents         bool     `json:"usesEvents"`
	Warnings           []string `json:"warnings,omitempty"`
}

// ErrorResponse carries an error message.
type ErrorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// --- handlers ---

func (s *Server) handleSetProgram(w http.ResponseWriter, r *http.Request) {
	var req ProgramRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Strategy != "" {
		if _, err := strategyFor(req.Strategy, 0); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.setProgram(req.Source, req.Format); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if req.Strategy != "" {
		s.strategyTag = req.Strategy
	}
	s.mu.Unlock()
	s.handleGetProgram(w, r)
}

func (s *Server) handleGetProgram(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, http.StatusOK, ProgramResponse{
		Source:   s.programSrc,
		Rules:    len(s.program.Rules),
		Strategy: s.strategyTag,
	})
}

func (s *Server) handleTransaction(w http.ResponseWriter, r *http.Request) {
	var req TransactionRequest
	if !readJSON(w, r, &req) {
		return
	}
	u := s.store.Universe()
	var ups []core.Update
	if req.Updates != "" {
		var err error
		ups, err = parser.ParseUpdates(u, "transaction", req.Updates)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	s.mu.RLock()
	prog := s.program
	tag := s.strategyTag
	s.mu.RUnlock()
	if req.Strategy != "" {
		tag = req.Strategy
	}
	strat, err := strategyFor(tag, req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, info, err := s.store.ApplyTxn(r.Context(), prog, ups, strat, core.Options{})
	if err != nil {
		s.writeApplyErr(w, err)
		return
	}
	// In cluster mode a write is acknowledged only once a majority of
	// the replica set has applied it — the invariant failover leans on
	// ("acked" implies "survives leader loss"). A commit that cannot
	// reach quorum in time is reported 503: it is durable locally but
	// its fate is decided by the next election.
	if err := s.waitReplicated(r.Context(), info); err != nil {
		s.setRetryAfterSecs(w, 1)
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("committed locally as seq %d but not yet replicated to a majority: %w", info.Seq, err))
		return
	}
	s.em.recordRun(res.RunStats)
	resp := TransactionResponse{
		Facts:       factStrings(u, res.Output),
		Phases:      res.Stats.Phases,
		Restarts:    res.RunStats.Restarts,
		Steps:       res.Stats.Steps,
		Blocked:     res.Stats.BlockedInstances,
		WallSeconds: res.RunStats.Wall.Seconds(),
		Seq:         info.Seq,
		Epoch:       info.Epoch,
	}
	for _, rc := range res.Conflicts {
		resp.Conflicts = append(resp.Conflicts, ConflictInfo{
			Atom:     u.AtomString(rc.Conflict.Atom),
			Decision: rc.Decision.String(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusClientClosedRequest is nginx's non-standard 499 "client
// closed request": the client went away before the transaction
// finished. Neither a client error we can report to anyone nor an
// engine failure.
const statusClientClosedRequest = 499

// writeApplyErr maps store.Apply failures to HTTP statuses. Only
// genuine evaluation failures are 422s and counted as engine errors;
// client disconnects, server timeouts and shutdown are transport
// conditions and must not pollute the engine error counter.
func (s *Server) writeApplyErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeErr(w, statusClientClosedRequest, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, persist.ErrDegraded):
		// The store lost durability (failed fsync, disk full) and is
		// read-only while a background probe retests the disk; advertise
		// the probe interval as the retry horizon.
		s.setRetryAfter(w)
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, persist.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err)
	default:
		s.em.errors.Inc()
		writeErr(w, http.StatusUnprocessableEntity, err)
	}
}

func (s *Server) handleDatabase(w http.ResponseWriter, r *http.Request) {
	db := s.store.Snapshot()
	// ?at=N time-travels to the state after global transaction
	// sequence N (the earliest reachable value is the last
	// checkpoint's sequence).
	if at := r.URL.Query().Get("at"); at != "" {
		seq, err := strconv.Atoi(at)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad 'at' parameter %q", at))
			return
		}
		db, err = s.store.StateAt(seq)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, DatabaseResponse{Facts: factStrings(s.store.Universe(), db)})
}

// handleWatch streams committed transactions as server-sent events
// ("data: {json}\n\n" frames) until the client disconnects. While the
// store is idle it emits an SSE comment line (": keepalive") every
// watchKeepalive, so intermediaries with idle timeouts don't sever
// quiet streams and clients can detect dead connections. Slow
// consumers may miss events (the store drops rather than blocks); use
// /v1/history for a complete log.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	events, cancel := s.store.Subscribe(64)
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	keepalive := time.NewTicker(s.watchKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			// SSE comment line: ignored by event parsers, but keeps
			// the connection demonstrably alive.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case txn, ok := <-events:
			if !ok {
				return
			}
			data, err := json.Marshal(TxnInfo{Seq: txn.Seq, Added: txn.Added, Removed: txn.Removed})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	resp := HistoryResponse{Transactions: []TxnInfo{}}
	for _, txn := range s.store.History() {
		resp.Transactions = append(resp.Transactions, TxnInfo{Seq: txn.Seq, Added: txn.Added, Removed: txn.Removed})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !readJSON(w, r, &req) {
		return
	}
	u := s.store.Universe()
	q, err := parser.ParseQuery(u, "query", req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var keep []int
	resp := QueryResponse{Rows: [][]string{}}
	for i, n := range q.VarNames {
		if n != "_" {
			keep = append(keep, i)
			resp.Vars = append(resp.Vars, n)
		}
	}
	seen := make(map[string]struct{})
	err = s.store.Query(q, func(binding []core.Sym) bool {
		row := make([]string, len(keep))
		key := ""
		for j, i := range keep {
			row[j] = u.Syms.Name(binding[i])
			key += row[j] + "\x00"
		}
		if _, dup := seen[key]; dup {
			return true
		}
		seen[key] = struct{}{}
		resp.Rows = append(resp.Rows, row)
		return true
	})
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	prog := s.program
	s.mu.RUnlock()
	u := s.store.Universe()
	rep := analysis.Analyze(u, prog)
	resp := AnalyzeResponse{
		Rules:      len(prog.Rules),
		Stratified: rep.Stratified,
		Recursive:  rep.Recursive,
		UsesEvents: rep.UsesEvents,
		Warnings:   rep.Warnings,
	}
	for _, p := range rep.ConflictPredicates {
		resp.ConflictPredicates = append(resp.ConflictPredicates, u.Syms.Name(p))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Checkpoint(); err != nil {
		if errors.Is(err, persist.ErrDegraded) {
			s.setRetryAfter(w)
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		if errors.Is(err, persist.ErrClosed) {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func factStrings(u *core.Universe, d *core.Database) []string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = u.AtomString(id)
	}
	return out
}
