package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/persist"
)

func newTestServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, srv
}

func TestEndToEndTransaction(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()

	prog, err := c.SetProgram(ctx, `
		rule cleanup: emp(X), !active(X), payroll(X, S) -> -payroll(X, S).
		rule audit: -active(X) -> +audit(X).
	`, "")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules != 2 || prog.Strategy != "inertia" {
		t.Fatalf("program = %+v", prog)
	}

	// Seed data via a plain transaction.
	if _, err := c.Transact(ctx, `+emp(tom). +active(tom). +payroll(tom, 100).`); err != nil {
		t.Fatal(err)
	}
	// Deactivate tom; the cleanup rule fires and the audit event rule
	// records it.
	resp, err := c.Transact(ctx, `-active(tom).`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"audit(tom)", "emp(tom)"}
	if !reflect.DeepEqual(resp.Facts, want) {
		t.Fatalf("facts = %v, want %v", resp.Facts, want)
	}

	facts, err := c.Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(facts, want) {
		t.Fatalf("database = %v", facts)
	}
}

func TestQueryEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+p(a). +p(b). +q(a).`); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(ctx, `p(X), !q(X)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Vars) != 1 || resp.Vars[0] != "X" {
		t.Fatalf("vars = %v", resp.Vars)
	}
	if len(resp.Rows) != 1 || resp.Rows[0][0] != "b" {
		t.Fatalf("rows = %v", resp.Rows)
	}
	// Bad query is a 400 with a useful message.
	if _, err := c.Query(ctx, `+p(X)`); err == nil || !strings.Contains(err.Error(), "event") {
		t.Fatalf("bad query err = %v", err)
	}
}

func TestConflictReporting(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `
		p(X) -> +a(X).
		p(X) -> -a(X).
	`, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Transact(ctx, `+p(x).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Conflicts) != 1 || resp.Conflicts[0].Atom != "a(x)" || resp.Conflicts[0].Decision != "delete" {
		t.Fatalf("conflicts = %+v", resp.Conflicts)
	}
	if resp.Blocked != 1 {
		t.Fatalf("blocked = %d", resp.Blocked)
	}
}

func TestStrategyOverride(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `
		rule low priority 1: p(X) -> -a(X).
		rule high priority 9: p(X) -> +a(X).
	`, ""); err != nil {
		t.Fatal(err)
	}
	// Default inertia deletes (a not in D).
	resp, err := c.Transact(ctx, `+p(x).`)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range resp.Facts {
		if f == "a(x)" {
			t.Fatalf("inertia kept a(x): %v", resp.Facts)
		}
	}
	// Priority override inserts.
	resp, err = c.TransactWith(ctx, TransactionRequest{Updates: ``, Strategy: "priority"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range resp.Facts {
		if f == "a(x)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("priority did not insert a(x): %v", resp.Facts)
	}
	// Unknown strategy rejected.
	if _, err := c.TransactWith(ctx, TransactionRequest{Strategy: "nope"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `
		a(X) -> +f(X).
		b(X) -> -f(X).
		+e(X) -> +g(X).
	`, ""); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rules != 3 || !rep.UsesEvents {
		t.Fatalf("analyze = %+v", rep)
	}
	if len(rep.ConflictPredicates) != 1 || rep.ConflictPredicates[0] != "f" {
		t.Fatalf("conflict preds = %v", rep.ConflictPredicates)
	}
}

func TestBadProgramRejected(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `p(X) -> +q(Y).`, ""); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.SetProgram(ctx, `p -> +q.`, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckpointAndDurability(t *testing.T) {
	dir := t.TempDir()
	store, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	c := &Client{BaseURL: ts.URL}
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+p(a). +p(b).`); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	store.Close()

	// Reopen the same directory: state survives.
	store2, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Len() != 2 {
		t.Fatalf("recovered %d facts", store2.Len())
	}
}

func TestConcurrentTransactions(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i%26))
			if _, err := c.Transact(ctx, "+item("+name+"_"+itoa(i)+")."); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	facts, err := c.Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 20 {
		t.Fatalf("facts = %d, want 20", len(facts))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestHistoryAndTimeTravel(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Transact(ctx, `+p(a).`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, `+p(b). -p(a).`); err != nil {
		t.Fatal(err)
	}
	hist, err := c.History(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Seq != 1 || len(hist[1].Removed) != 1 {
		t.Fatalf("history = %+v", hist)
	}
	facts, err := c.DatabaseAt(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0] != "p(a)" {
		t.Fatalf("DatabaseAt(1) = %v", facts)
	}
	if _, err := c.DatabaseAt(ctx, 99); err == nil {
		t.Fatal("out-of-range seq accepted")
	}
}

func TestTriggerDDLOverTheWire(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	resp, err := c.SetProgramWith(ctx, ProgramRequest{
		Source: `CREATE TRIGGER audit AFTER DELETE ON active(X) DO INSERT audit(X);`,
		Format: "triggers",
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rules != 1 {
		t.Fatalf("rules = %d", resp.Rules)
	}
	if _, err := c.Transact(ctx, `+active(tom).`); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Transact(ctx, `-active(tom).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Facts) != 1 || tx.Facts[0] != "audit(tom)" {
		t.Fatalf("facts = %v", tx.Facts)
	}
	// Unknown format rejected.
	if _, err := c.SetProgramWith(ctx, ProgramRequest{Source: ``, Format: "sql"}); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestWatchStream(t *testing.T) {
	c, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	events, err := c.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, `+p(a).`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, `-p(a). +p(b).`); err != nil {
		t.Fatal(err)
	}
	e1 := <-events
	if e1.Seq != 1 || len(e1.Added) != 1 || e1.Added[0] != "p(a)" {
		t.Fatalf("event 1 = %+v", e1)
	}
	e2 := <-events
	if e2.Seq != 2 || len(e2.Removed) != 1 {
		t.Fatalf("event 2 = %+v", e2)
	}
	cancel()
	// The channel must close after cancellation.
	for range events {
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Connection refused.
	bad := &Client{BaseURL: "http://127.0.0.1:1"}
	if _, err := bad.Database(context.Background()); err == nil {
		t.Fatal("dead server produced no error")
	}
	// Non-JSON error body.
	ts := httptest.NewServer(httptestHandler(500, "boom"))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Database(context.Background()); err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Fatalf("err = %v", err)
	}
	// JSON error body surfaces the message.
	ts2 := httptest.NewServer(httptestHandler(400, `{"error":"nope"}`))
	defer ts2.Close()
	c2 := &Client{BaseURL: ts2.URL}
	if _, err := c2.Database(context.Background()); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
	// Watch against a non-SSE endpoint errors cleanly.
	if _, err := c2.Watch(context.Background()); err == nil {
		t.Fatal("watch on failing server produced no error")
	}
}

func httptestHandler(status int, body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
		w.Write([]byte(body))
	})
}

func TestBadRequestBodies(t *testing.T) {
	c, _ := newTestServer(t)
	// Unknown fields are rejected (DisallowUnknownFields).
	req, _ := http.NewRequest(http.MethodPost, c.BaseURL+"/v1/transaction",
		strings.NewReader(`{"bogus": 1}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Malformed updates are a 400 with position info.
	if _, err := c.Transact(context.Background(), `+p(`); err == nil {
		t.Fatal("bad updates accepted")
	}
}
