package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/flight"
	"repro/internal/metrics"
)

// Client is a Go client for the HTTP API.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7474".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, req, resp any) error {
	var body io.Reader
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	httpReq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if req != nil {
		httpReq.Header.Set("Content-Type", "application/json")
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<20))
	if err != nil {
		return err
	}
	if httpResp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, httpResp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", httpResp.StatusCode)
	}
	if resp != nil {
		return json.Unmarshal(data, resp)
	}
	return nil
}

// SetProgram installs the active rule program (and optionally the
// default strategy tag).
func (c *Client) SetProgram(ctx context.Context, source, strategy string) (*ProgramResponse, error) {
	return c.SetProgramWith(ctx, ProgramRequest{Source: source, Strategy: strategy})
}

// SetProgramWith installs a program with explicit options (e.g.
// Format: "triggers" for the CREATE TRIGGER DDL).
func (c *Client) SetProgramWith(ctx context.Context, req ProgramRequest) (*ProgramResponse, error) {
	var resp ProgramResponse
	if err := c.do(ctx, http.MethodPut, "/v1/program", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Program fetches the active program.
func (c *Client) Program(ctx context.Context) (*ProgramResponse, error) {
	var resp ProgramResponse
	if err := c.do(ctx, http.MethodGet, "/v1/program", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Transact applies an update set through the active rules.
func (c *Client) Transact(ctx context.Context, updates string) (*TransactionResponse, error) {
	return c.TransactWith(ctx, TransactionRequest{Updates: updates})
}

// TransactWith applies an update set with explicit options.
func (c *Client) TransactWith(ctx context.Context, req TransactionRequest) (*TransactionResponse, error) {
	var resp TransactionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/transaction", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Database lists the current facts.
func (c *Client) Database(ctx context.Context) ([]string, error) {
	var resp DatabaseResponse
	if err := c.do(ctx, http.MethodGet, "/v1/database", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Facts, nil
}

// Query runs a conjunctive query.
func (c *Client) Query(ctx context.Context, query string) (*QueryResponse, error) {
	var resp QueryResponse
	if err := c.do(ctx, http.MethodPost, "/v1/query", QueryRequest{Query: query}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Analyze runs static analysis on the active program.
func (c *Client) Analyze(ctx context.Context) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// History lists committed transactions since the last checkpoint.
func (c *Client) History(ctx context.Context) ([]TxnInfo, error) {
	var resp HistoryResponse
	if err := c.do(ctx, http.MethodGet, "/v1/history", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Transactions, nil
}

// DatabaseAt lists the facts as of transaction seq (0 = last
// checkpoint).
func (c *Client) DatabaseAt(ctx context.Context, seq int) ([]string, error) {
	var resp DatabaseResponse
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/database?at=%d", seq), nil, &resp); err != nil {
		return nil, err
	}
	return resp.Facts, nil
}

// Watch subscribes to committed transactions via the server's SSE
// stream. Events arrive on the returned channel until ctx is
// cancelled or the connection drops, after which the channel closes.
// Slow consumers may miss events; use History for a complete log.
func (c *Client) Watch(ctx context.Context) (<-chan TxnInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/watch", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	out := make(chan TxnInfo, 16)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var txn TxnInfo
			if err := json.Unmarshal([]byte(line[len("data: "):]), &txn); err != nil {
				return
			}
			select {
			case out <- txn:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// RecentTxns lists the flight recorder's recent-trace window.
func (c *Client) RecentTxns(ctx context.Context) (*TxnsResponse, error) {
	var resp TxnsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/txns", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SlowTxns lists the retained traces that met the slow threshold.
func (c *Client) SlowTxns(ctx context.Context) (*TxnsResponse, error) {
	var resp TxnsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/txns/slow", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TxnTrace fetches the full flight trace of one transaction.
func (c *Client) TxnTrace(ctx context.Context, seq int) (*flight.Trace, error) {
	var resp flight.Trace
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/txns/%d/trace", seq), nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TxnTraceText fetches one transaction's trace in the paper-style
// text rendering.
func (c *Client) TxnTraceText(ctx context.Context, seq int) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/txns/%d/trace?format=text", c.BaseURL, seq), nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return "", fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return "", fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}

// CreateTimer registers an interval event source: every req.Every the
// server applies the (possibly ${n}-templated) update set through the
// active rules. Leader only; replicas answer 421.
func (c *Client) CreateTimer(ctx context.Context, req TimerRequest) (*TimerInfo, error) {
	var resp TimerInfo
	if err := c.do(ctx, http.MethodPost, "/v1/timers", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Timers lists the registered timers and their firing stats.
func (c *Client) Timers(ctx context.Context) ([]TimerInfo, error) {
	var resp TimersResponse
	if err := c.do(ctx, http.MethodGet, "/v1/timers", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Timers, nil
}

// DeleteTimer stops and removes a timer, returning its final stats.
func (c *Client) DeleteTimer(ctx context.Context, name string) (*TimerInfo, error) {
	var resp TimerInfo
	if err := c.do(ctx, http.MethodDelete, "/v1/timers/"+name, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Version fetches the server's build provenance and uptime.
func (c *Client) Version(ctx context.Context) (*VersionResponse, error) {
	var resp VersionResponse
	if err := c.do(ctx, http.MethodGet, "/v1/version", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz fetches /v1/healthz. The endpoint answers 503 while the
// store is degraded (and the body says why), so unlike the other
// calls the response is returned whenever a body decodes, regardless
// of the HTTP status. Cluster clients use the Cluster section to
// re-discover the leader after a failover.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var resp HealthResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("server: healthz: HTTP %d: %w", httpResp.StatusCode, err)
	}
	return &resp, nil
}

// Events fetches the structured event journal: entries with sequence
// number > since, optionally filtered by type, at most limit entries
// (0 = no bound). Pass the response's LastSeq back as since to poll
// incrementally.
func (c *Client) Events(ctx context.Context, since int64, types []string, limit int) (*EventsResponse, error) {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatInt(since, 10))
	}
	if len(types) > 0 {
		q.Set("type", strings.Join(types, ","))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/events"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp EventsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// RuleStats fetches the per-rule profile, ranked by cumulative match
// cost.
func (c *Client) RuleStats(ctx context.Context) (*RuleStatsResponse, error) {
	var resp RuleStatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/rules/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ClusterStatus fetches this member's aggregated view of the replica
// set (/v1/cluster).
func (c *Client) ClusterStatus(ctx context.Context) (*ClusterResponse, error) {
	var resp ClusterResponse
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Checkpoint snapshots the store.
func (c *Client) Checkpoint(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/checkpoint", nil, nil)
}

// Metrics fetches the server's metrics snapshot (JSON form of
// /v1/metrics).
func (c *Client) Metrics(ctx context.Context) (*metrics.Snapshot, error) {
	var resp metrics.Snapshot
	if err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// MetricsText fetches the server's metrics in the Prometheus text
// exposition format.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics?format=prometheus", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
