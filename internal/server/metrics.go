package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// engineMetrics are the pre-registered instruments fed by transaction
// results. Every counter accumulates across transactions since
// process start (or the last registry reset); the paper-semantics
// meaning of each is documented in docs/OBSERVABILITY.md.
type engineMetrics struct {
	txns       *metrics.Counter
	errors     *metrics.Counter
	phases     *metrics.Counter
	restarts   *metrics.Counter
	fullSteps  *metrics.Counter
	deltaSteps *metrics.Counter
	insWins    *metrics.Counter
	delWins    *metrics.Counter
	stale      *metrics.Counter
	groundings *metrics.Counter
	derivs     *metrics.Counter
	shards     *metrics.Counter
	newFacts   *metrics.Counter
	blocked    *metrics.Gauge
	runSeconds *metrics.Histogram

	storeFacts *metrics.Gauge
	storeWAL   *metrics.Gauge
	inFlight   *metrics.Gauge
	uptime     *metrics.Gauge
}

// newEngineMetrics registers the engine and store instruments.
func newEngineMetrics(reg *metrics.Registry) *engineMetrics {
	return &engineMetrics{
		txns: reg.Counter("park_engine_transactions_total",
			"Transactions evaluated successfully (PARK(P, D, U) computed and committed)."),
		errors: reg.Counter("park_engine_errors_total",
			"Transactions that failed evaluation (bad updates, strategy errors, phase limits)."),
		phases: reg.Counter("park_engine_phases_total",
			"Inflationary phases run (1 + restarts per transaction; Δ operator iterations from <∅, D>)."),
		restarts: reg.Counter("park_engine_restarts_total",
			"Bi-structure restarts: phases re-run from D after a conflict resolution grew the blocked set."),
		fullSteps: reg.Counter("park_engine_gamma_steps_total",
			"Γ evaluations by kind: full re-evaluates every rule, delta only instances triggered by the previous step.",
			metrics.L("kind", "full")),
		deltaSteps: reg.Counter("park_engine_gamma_steps_total",
			"Γ evaluations by kind: full re-evaluates every rule, delta only instances triggered by the previous step.",
			metrics.L("kind", "delta")),
		insWins: reg.Counter("park_engine_conflicts_total",
			"Conflict triples resolved, labeled by the SELECT outcome that won.",
			metrics.L("decision", "insert")),
		delWins: reg.Counter("park_engine_conflicts_total",
			"Conflict triples resolved, labeled by the SELECT outcome that won.",
			metrics.L("decision", "delete")),
		stale: reg.Counter("park_engine_stale_conflicts_total",
			"Conflicts whose stale side was recovered from provenance (the DESIGN.md extension)."),
		groundings: reg.Counter("park_engine_groundings_total",
			"Rule groundings enumerated, before per-step dedup and blocked-set filtering."),
		derivs: reg.Counter("park_engine_derivations_total",
			"Rule-instance derivations that produced a head (after dedup and blocked filtering)."),
		shards: reg.Counter("park_engine_shards_total",
			"Preset-binding chunks dispatched to the parallel Γ worker pool."),
		newFacts: reg.Counter("park_engine_new_facts_total",
			"Marked atoms added to interpretations, summed over phases."),
		blocked: reg.Gauge("park_engine_blocked_instances",
			"Final size of the blocked set B of the most recent transaction."),
		runSeconds: reg.Histogram("park_engine_run_seconds",
			"Wall-clock duration of engine runs (one observation per transaction).", nil),
		storeFacts: reg.Gauge("park_store_facts",
			"Facts in the current database instance (sampled at scrape time)."),
		storeWAL: reg.Gauge("park_store_wal_records",
			"Write-ahead-log records appended since the last checkpoint (sampled at scrape time)."),
		inFlight: reg.Gauge("park_http_in_flight",
			"HTTP requests currently being served."),
		uptime: reg.Gauge("park_uptime_seconds",
			"Whole seconds since this server started (sampled at scrape time)."),
	}
}

// recordRun folds one engine run's statistics into the counters.
func (m *engineMetrics) recordRun(rs core.RunStats) {
	m.txns.Inc()
	m.phases.Add(int64(rs.Phases))
	m.restarts.Add(int64(rs.Restarts))
	m.fullSteps.Add(int64(rs.FullSteps))
	m.deltaSteps.Add(int64(rs.DeltaSteps))
	m.insWins.Add(int64(rs.InsertDecisions))
	m.delWins.Add(int64(rs.DeleteDecisions))
	m.stale.Add(int64(rs.StaleConflicts))
	m.groundings.Add(rs.Groundings)
	m.derivs.Add(rs.Derivations)
	m.shards.Add(rs.Shards)
	m.newFacts.Add(rs.NewFacts)
	m.blocked.Set(int64(rs.BlockedInstances))
	m.runSeconds.Observe(rs.Wall.Seconds())
}

// statusWriter records the response status code; it forwards Flush so
// the SSE stream (/v1/watch) keeps working through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader implements http.ResponseWriter.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush implements http.Flusher when the underlying writer does; on
// writers without flush support it is a no-op.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the per-endpoint middleware: a
// request counter (labeled by endpoint, method and status code), a
// latency histogram (labeled by endpoint), the in-flight gauge, and a
// pprof goroutine label so CPU profile samples taken while the
// request runs (including the engine work it triggers — child
// goroutines inherit the label set) attribute to the endpoint.
// parkload's per-endpoint CPU attribution reads these labels out of
// /debug/pprof/profile; see docs/BENCHMARKING.md.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("park_http_request_seconds",
		"HTTP request latency by endpoint.", nil, metrics.L("endpoint", endpoint))
	labels := pprof.Labels("endpoint", endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		s.em.inFlight.Inc()
		defer s.em.inFlight.Dec()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		pprof.Do(r.Context(), labels, func(ctx context.Context) {
			h(sw, r.WithContext(ctx))
		})
		hist.Observe(time.Since(start).Seconds())
		s.reg.Counter("park_http_requests_total",
			"HTTP requests served, by endpoint, method and status code.",
			metrics.L("endpoint", endpoint),
			metrics.L("method", r.Method),
			metrics.L("code", strconv.Itoa(sw.status)),
		).Inc()
	}
}

// handleMetrics serves GET /v1/metrics. The default response is the
// JSON snapshot (metrics.Snapshot); ?format=prometheus — or an Accept
// header asking for text/plain — selects the Prometheus text
// exposition format instead.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Store gauges are sampled at scrape time: they describe current
	// state, not an accumulation.
	s.em.storeFacts.Set(int64(s.store.Len()))
	s.em.storeWAL.Set(int64(s.store.WALRecords()))
	s.em.uptime.Set(int64(time.Since(s.start).Seconds()))
	if s.follower != nil {
		// Replication lag, sequences and connectedness likewise.
		s.follower.RefreshMetrics()
	}
	format := r.URL.Query().Get("format")
	if format == "prometheus" ||
		(format == "" && strings.Contains(r.Header.Get("Accept"), "text/plain")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
		return
	}
	if format != "" && format != "json" {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("unknown metrics format %q (want json or prometheus)", format))
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}
