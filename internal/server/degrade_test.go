package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/repl"
)

// newFaultyServer starts a server over a store whose filesystem is
// fault-injectable, with a fast disk re-probe so heal tests don't
// wait.
func newFaultyServer(t *testing.T) (*httptest.Server, *Client, *Server, *persist.FaultFS, string) {
	t.Helper()
	dir := t.TempDir()
	ffs := persist.NewFaultFS(persist.OSFS())
	store, err := persist.Open(dir,
		persist.WithFS(ffs),
		persist.WithProbeInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	srv.EnableFailpoints(ffs)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, &Client{BaseURL: ts.URL}, srv, ffs, dir
}

// postJSON posts a JSON body and returns the raw response (caller
// closes it).
func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// awaitWrites polls until a transaction succeeds (the probe healed the
// store) or the deadline passes.
func awaitWrites(t *testing.T, c *Client, updates string) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := c.Transact(ctx, updates); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("store did not heal: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDegradedStoreServesReadsAnd503sWrites is the end-to-end
// acceptance path for disk-fault degradation: a sticky fsync failure
// turns writes into 503 + Retry-After while reads, the replication
// stream, metrics and healthz keep working; clearing the fault lets
// the background probe restore writes with no restart; and no acked
// transaction is lost across a subsequent clean reopen.
func TestDegradedStoreServesReadsAnd503sWrites(t *testing.T) {
	ts, c, _, ffs, dir := newFaultyServer(t)
	ctx := context.Background()

	if _, err := c.Transact(ctx, "+p(a)."); err != nil {
		t.Fatal(err)
	}

	ffs.Fail("sync:wal.log", persist.ErrInjected)
	resp := postJSON(t, ts.URL+"/v1/transaction", TransactionRequest{Updates: "+p(b)."})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded write: HTTP %d, want 503", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	var eresp ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&eresp); err != nil || eresp.Error == "" {
		t.Fatalf("503 body = %+v (%v), want an error message", eresp, err)
	}

	// Reads still serve while degraded.
	facts, err := c.Database(ctx)
	if err != nil {
		t.Fatalf("read while degraded: %v", err)
	}
	if len(facts) == 0 || facts[0] != "p(a)" {
		t.Fatalf("database while degraded = %v", facts)
	}

	// The replication stream still serves: a follower resuming from 0
	// gets bytes immediately.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(sctx, http.MethodGet, ts.URL+"/v1/repl/stream?from=0", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("repl stream while degraded: %v", err)
	}
	if sresp.StatusCode != http.StatusOK {
		sresp.Body.Close()
		t.Fatalf("repl stream while degraded: HTTP %d", sresp.StatusCode)
	}
	one := make([]byte, 1)
	if _, err := sresp.Body.Read(one); err != nil {
		t.Fatalf("repl stream produced no bytes while degraded: %v", err)
	}
	sresp.Body.Close()

	// The degradation is visible: park_store_degraded = 1 and healthz
	// answers 503 with a degraded body.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snapValue(snap, "park_store_degraded"); v != 1 {
		t.Fatalf("park_store_degraded = %d, want 1", v)
	}
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || !health.Degraded {
		t.Fatalf("healthz while degraded: HTTP %d, body %+v", hresp.StatusCode, health)
	}
	if health.Status != "degraded" || health.Reason == "" || health.Since == "" {
		t.Fatalf("healthz degraded body incomplete: %+v", health)
	}

	// Heal the disk; the background probe restores writes without a
	// restart.
	ffs.ClearAll()
	awaitWrites(t, c, "+p(c).")
	hresp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var healed HealthResponse
	if err := json.NewDecoder(hresp2.Body).Decode(&healed); err != nil {
		t.Fatal(err)
	}
	hresp2.Body.Close()
	if hresp2.StatusCode != http.StatusOK || healed.Degraded || healed.Status != "ok" {
		t.Fatalf("healthz after heal: HTTP %d, body %+v", hresp2.StatusCode, healed)
	}
	snap, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := snapValue(snap, "park_store_degraded"); v != 0 {
		t.Fatalf("park_store_degraded after heal = %d, want 0", v)
	}
	if v, _ := snapValue(snap, "park_store_degrade_events_total"); v < 1 {
		t.Fatalf("park_store_degrade_events_total = %d, want >= 1", v)
	}

	// No acked transaction is lost: a clean reopen of the same
	// directory sees every fact a 200 acknowledged.
	ts.Close()
	reopened, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	got := strings.Join(factStrings(reopened.Universe(), reopened.Snapshot()), " ")
	for _, want := range []string{"p(a)", "p(c)"} {
		if !strings.Contains(got, want) {
			t.Fatalf("reopened database %q is missing acked fact %s", got, want)
		}
	}
}

// TestCheckpointWhileDegraded asserts the checkpoint endpoint gets the
// same 503 + Retry-After mapping as transactions.
func TestCheckpointWhileDegraded(t *testing.T) {
	ts, c, _, ffs, _ := newFaultyServer(t)
	ctx := context.Background()
	if _, err := c.Transact(ctx, "+p(a)."); err != nil {
		t.Fatal(err)
	}
	ffs.Fail("sync:wal.log", persist.ErrInjected)
	if resp := postJSON(t, ts.URL+"/v1/transaction", TransactionRequest{Updates: "+x."}); true {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("poisoning write: HTTP %d, want 503", resp.StatusCode)
		}
	}
	resp := postJSON(t, ts.URL+"/v1/checkpoint", struct{}{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("checkpoint while degraded: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("checkpoint 503 is missing Retry-After")
	}
	ffs.ClearAll()
	awaitWrites(t, c, "+p(b).")
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatalf("checkpoint after heal: %v", err)
	}
}

// TestHealthzHealthyLeader asserts the happy-path healthz shape.
func TestHealthzHealthyLeader(t *testing.T) {
	c, _ := newTestServer(t)
	resp, err := http.Get(c.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Degraded {
		t.Fatalf("healthz: HTTP %d, body %+v", resp.StatusCode, health)
	}
	if health.Role != "leader" || health.Replication != nil {
		t.Fatalf("healthz leader body: %+v", health)
	}
	if health.ProbeSeconds <= 0 {
		t.Fatalf("healthz probeSeconds = %v, want > 0", health.ProbeSeconds)
	}
}

// TestReplicaRejectionBody asserts the 421 body carries the leader
// URL and the replica's staleness alongside the legacy error field,
// and that healthz reports the replica role with a replication
// section.
func TestReplicaRejectionBody(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	const leaderURL = "http://leader.example:7070"
	// The follower is never run: no frames ever arrive, so the replica
	// is stale by definition.
	f := repl.NewFollower(store, leaderURL, repl.WithStaleAfter(time.Second))
	srv := NewReplica(store, f, leaderURL)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp := postJSON(t, ts.URL+"/v1/transaction", TransactionRequest{Updates: "+p."})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("replica write: HTTP %d, want 421", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Park-Leader"); got != leaderURL {
		t.Fatalf("X-Park-Leader = %q, want %q", got, leaderURL)
	}
	var rej ReplicaRejection
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rej.Error, leaderURL) {
		t.Fatalf("421 error %q does not name the leader", rej.Error)
	}
	if rej.Leader != leaderURL || !rej.Stale || rej.StaleAfterSeconds != 1 {
		t.Fatalf("421 body = %+v", rej)
	}

	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Role != "replica" || health.Replication == nil || !health.Replication.Stale {
		t.Fatalf("replica healthz = %+v", health)
	}
}

// TestFailpointDebugEndpoints exercises the /v1/debug/failpoint
// admin surface end to end: arm over HTTP, observe the 503, list,
// clear, heal. It also asserts the endpoints are absent on a server
// without EnableFailpoints.
func TestFailpointDebugEndpoints(t *testing.T) {
	ts, c, _, _, _ := newFaultyServer(t)
	ctx := context.Background()
	if _, err := c.Transact(ctx, "+p(a)."); err != nil {
		t.Fatal(err)
	}

	arm := postJSON(t, ts.URL+"/v1/debug/failpoint", FailpointRequest{Name: "sync:wal.log"})
	defer arm.Body.Close()
	if arm.StatusCode != http.StatusOK {
		t.Fatalf("arm failpoint: HTTP %d", arm.StatusCode)
	}
	var listed FailpointsResponse
	if err := json.NewDecoder(arm.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	if len(listed.Active) != 1 || listed.Active[0].Name != "sync:wal.log" || listed.Active[0].Remaining != -1 {
		t.Fatalf("armed failpoints = %+v", listed)
	}

	wr := postJSON(t, ts.URL+"/v1/transaction", TransactionRequest{Updates: "+p(b)."})
	wr.Body.Close()
	if wr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write with armed failpoint: HTTP %d, want 503", wr.StatusCode)
	}

	get, err := http.Get(ts.URL + "/v1/debug/failpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var again FailpointsResponse
	if err := json.NewDecoder(get.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if len(again.Active) != 1 {
		t.Fatalf("GET failpoints = %+v", again)
	}

	clear := postJSON(t, ts.URL+"/v1/debug/failpoint", FailpointRequest{Action: "clear-all"})
	defer clear.Body.Close()
	var cleared FailpointsResponse
	if err := json.NewDecoder(clear.Body).Decode(&cleared); err != nil {
		t.Fatal(err)
	}
	if len(cleared.Active) != 0 {
		t.Fatalf("failpoints after clear-all = %+v", cleared)
	}
	awaitWrites(t, c, "+p(c).")

	bad := postJSON(t, ts.URL+"/v1/debug/failpoint", FailpointRequest{Name: "sync:wal.log", Error: "eio"})
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad error kind: HTTP %d, want 400", bad.StatusCode)
	}

	// A server without EnableFailpoints must not expose the surface.
	plain, _ := newTestServer(t)
	resp, err := http.Get(plain.BaseURL + "/v1/debug/failpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug endpoint on plain server: HTTP %d, want 404", resp.StatusCode)
	}
}
