package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/flight"
	"repro/internal/metrics"
)

// This file is the HTTP face of the transaction flight recorder
// (internal/flight) plus the request-correlation middleware: every
// request gets an X-Park-Trace-Id (propagated when the client sent a
// valid one, assigned otherwise), the ID rides the request context
// into the store's commit path, and /v1/txns serves the recorded
// traces back out.

// SetLogger directs the server's structured access log to l. By
// default access logging is discarded; cmd/parkd wires its process
// logger here.
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.logger = l
	}
}

// traceHeader is the request/response header carrying the correlation
// ID.
const traceHeader = "X-Park-Trace-Id"

// traced is the outermost middleware: it assigns or propagates the
// trace ID, echoes it on the response, stores it in the request
// context (flight.TraceID), and emits one structured access-log
// record per request. A client-supplied ID is accepted only when it
// passes flight.ValidTraceID — anything else is replaced, so
// arbitrary client bytes never reach logs or replication frames.
func (s *Server) traced(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(traceHeader)
		if !flight.ValidTraceID(id) {
			id = flight.NewTraceID()
		}
		w.Header().Set(traceHeader, id)
		r = r.WithContext(flight.WithTraceID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, r)
		s.logger.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"traceId", id,
			"durMs", float64(time.Since(start).Microseconds())/1000,
		)
	})
}

// TxnTraceSummary is one retained trace's header, as listed by
// GET /v1/txns and /v1/txns/slow.
type TxnTraceSummary struct {
	Seq         int     `json:"seq"`
	TraceID     string  `json:"traceId,omitempty"`
	Origin      string  `json:"origin,omitempty"`
	WallSeconds float64 `json:"wallSeconds"`
	Slow        bool    `json:"slow,omitempty"`
	Phases      int     `json:"phases"`
	Steps       int     `json:"steps"`
	Conflicts   int     `json:"conflicts"`
}

// TxnsResponse lists retained traces, newest first.
type TxnsResponse struct {
	// SlowThresholdSeconds is the ring's slow-trace threshold.
	SlowThresholdSeconds float64           `json:"slowThresholdSeconds"`
	Transactions         []TxnTraceSummary `json:"transactions"`
}

func summarize(traces []*flight.Trace) []TxnTraceSummary {
	out := make([]TxnTraceSummary, len(traces))
	for i, t := range traces {
		out[i] = TxnTraceSummary{
			Seq:         t.Seq,
			TraceID:     t.TraceID,
			Origin:      t.Origin,
			WallSeconds: t.WallSeconds,
			Slow:        t.Slow,
			Phases:      t.Phases,
			Steps:       t.Steps,
			Conflicts:   t.Conflicts,
		}
	}
	return out
}

// ring returns the store's flight ring or writes the 404 explaining
// that recording is off.
func (s *Server) ring(w http.ResponseWriter) *flight.Ring {
	ring := s.store.Flight()
	if ring == nil {
		writeErr(w, http.StatusNotFound,
			fmt.Errorf("flight recording is disabled (trace buffer 0)"))
	}
	return ring
}

// handleTxns serves GET /v1/txns: the recent-trace window.
func (s *Server) handleTxns(w http.ResponseWriter, r *http.Request) {
	ring := s.ring(w)
	if ring == nil {
		return
	}
	writeJSON(w, http.StatusOK, TxnsResponse{
		SlowThresholdSeconds: ring.SlowThreshold().Seconds(),
		Transactions:         summarize(ring.Recent()),
	})
}

// handleSlowTxns serves GET /v1/txns/slow: every retained trace that
// met the slow threshold.
func (s *Server) handleSlowTxns(w http.ResponseWriter, r *http.Request) {
	ring := s.ring(w)
	if ring == nil {
		return
	}
	writeJSON(w, http.StatusOK, TxnsResponse{
		SlowThresholdSeconds: ring.SlowThreshold().Seconds(),
		Transactions:         summarize(ring.Slow()),
	})
}

// handleTxnTrace serves GET /v1/txns/{seq}/trace: the full flight
// record of one transaction, as JSON or (?format=text) in the paper's
// step-by-step rendering.
func (s *Server) handleTxnTrace(w http.ResponseWriter, r *http.Request) {
	ring := s.ring(w)
	if ring == nil {
		return
	}
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil || seq < 1 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad transaction sequence %q", r.PathValue("seq")))
		return
	}
	tr := ring.Get(seq)
	if tr == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf(
			"no trace retained for txn %d (outside the last-%d window and not slow, or committed before this process started)",
			seq, ring.Cap()))
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, tr)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, tr.Text())
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown trace format %q (want json or text)", format))
	}
}

// VersionResponse reports build provenance and process uptime
// (GET /v1/version).
type VersionResponse struct {
	// Module is the main module path; Version its module version
	// ("(devel)" for source builds).
	Module  string `json:"module"`
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"goVersion"`
	// Revision and RevisionTime identify the VCS commit when the build
	// embedded one; Dirty reports uncommitted changes at build time.
	Revision     string `json:"revision,omitempty"`
	RevisionTime string `json:"revisionTime,omitempty"`
	Dirty        bool   `json:"dirty,omitempty"`
	// UptimeSeconds is the time since the server object was created.
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// buildVersion extracts build provenance from the binary itself.
func buildVersion() VersionResponse {
	v := VersionResponse{Module: "unknown", Version: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.Module = info.Main.Path
	v.Version = info.Main.Version
	v.GoVersion = info.GoVersion
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			v.Revision = kv.Value
		case "vcs.time":
			v.RevisionTime = kv.Value
		case "vcs.modified":
			v.Dirty = kv.Value == "true"
		}
	}
	return v
}

// registerBuildInfo publishes park_build_info: the conventional
// constant-1 gauge whose labels carry the build provenance, so
// dashboards can join any other series against the running version.
func registerBuildInfo(reg *metrics.Registry) {
	v := buildVersion()
	reg.Gauge("park_build_info",
		"Build provenance of the running binary (constant 1; the labels are the data).",
		metrics.L("module", v.Module),
		metrics.L("version", v.Version),
		metrics.L("goversion", v.GoVersion),
		metrics.L("revision", v.Revision),
	).Set(1)
}

// handleVersion serves GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	v := buildVersion()
	v.UptimeSeconds = time.Since(s.start).Seconds()
	writeJSON(w, http.StatusOK, v)
}
