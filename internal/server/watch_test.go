package server

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
)

// TestWatchKeepalive pins the SSE heartbeat: an idle /v1/watch stream
// emits comment lines at the keepalive interval, and real events still
// come through between them.
func TestWatchKeepalive(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	srv.watchKeepalive = 20 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// With no commits at all, the first lines on the wire must be
	// keepalive comments.
	r := bufio.NewReader(resp.Body)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, ": keepalive") {
		t.Fatalf("first idle line = %q, want keepalive comment", line)
	}

	// An event interleaves with the heartbeats and is still parseable.
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Transact(context.Background(), `+p(a).`); err != nil {
		t.Fatal(err)
	}
	sawData := false
	for i := 0; i < 20 && !sawData; i++ {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case strings.HasPrefix(line, "data: "):
			if !strings.Contains(line, "p(a)") {
				t.Fatalf("event line = %q, want p(a)", line)
			}
			sawData = true
		case strings.HasPrefix(line, ": keepalive"), line == "\n":
		default:
			t.Fatalf("unexpected line %q", line)
		}
	}
	if !sawData {
		t.Fatal("no data event seen among keepalives")
	}
}

// TestWatchClientSkipsKeepalives pins that the Go client's Watch
// tolerates comment heartbeats transparently.
func TestWatchClientSkipsKeepalives(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	srv.watchKeepalive = 10 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	c := &Client{BaseURL: ts.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	events, err := c.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Let several keepalives pass before the first real event.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Transact(context.Background(), `+q(b).`); err != nil {
		t.Fatal(err)
	}
	select {
	case txn := <-events:
		if len(txn.Added) != 1 || txn.Added[0] != "q(b)" {
			t.Fatalf("event = %+v, want +q(b)", txn)
		}
	case <-ctx.Done():
		t.Fatal("no event received through keepalives")
	}
}

// TestStopStreamsEndsWatch pins the graceful-shutdown hook: an open
// SSE stream terminates promptly when StopStreams is called, instead
// of holding shutdown for the whole grace period.
func TestStopStreamsEndsWatch(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/v1/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				done <- err
				return
			}
		}
	}()
	srv.StopStreams()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream still open after StopStreams")
	}
}
