package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/persist"
)

// This file is the server's durability-health surface: the /v1/healthz
// readiness endpoint, the Retry-After/503 mapping for a store degraded
// to read-only after a disk fault, and the /v1/debug/failpoint
// endpoints that drive the persist fault-injection seam in a live
// process (enabled explicitly via EnableFailpoints — e.g. parkd
// -failpoints — and absent otherwise).

// HealthResponse is the /v1/healthz body. Status is "ok" or
// "degraded"; the HTTP status mirrors it (200 / 503), so load
// balancers can use the endpoint as a write-readiness probe without
// parsing the body. A degraded store still serves reads, so read-only
// routing may keep a degraded node in rotation.
type HealthResponse struct {
	Status string `json:"status"`
	// Degraded mirrors park_store_degraded: true while the store is in
	// read-only mode after a durability failure.
	Degraded bool `json:"degraded"`
	// Reason and Cause describe the failing operation while degraded.
	Reason string `json:"reason,omitempty"`
	Cause  string `json:"cause,omitempty"`
	// Since is when the store degraded (RFC 3339).
	Since string `json:"since,omitempty"`
	// ProbeSeconds is the disk re-probe interval: a useful Retry-After
	// hint for clients that want to poll.
	ProbeSeconds float64 `json:"probeSeconds"`
	// Role is "leader" or "replica"; in cluster mode it is the node's
	// live role: "leader", "follower" or "candidate".
	Role string `json:"role"`
	// Replication reports follower staleness in replica mode.
	Replication *ReplicationHealth `json:"replication,omitempty"`
	// Cluster reports failover state in cluster mode: clients that get
	// a connection failure or 421 elsewhere re-discover the leader
	// through LeaderURL here.
	Cluster *ClusterHealth `json:"cluster,omitempty"`
}

// ClusterHealth is the cluster-mode section of /v1/healthz.
type ClusterHealth struct {
	NodeID string `json:"nodeId"`
	// Epoch is the leadership epoch this node's state is at.
	Epoch int64 `json:"epoch"`
	// LeaderID/LeaderURL name the member this node believes leads
	// (itself while leading; empty mid-election).
	LeaderID  string `json:"leaderId,omitempty"`
	LeaderURL string `json:"leaderUrl,omitempty"`
	// LeaseSeconds is the failure-detection lease.
	LeaseSeconds float64 `json:"leaseSeconds"`
	// Suspended marks a leader refusing writes for lack of majority
	// contact.
	Suspended bool `json:"suspended,omitempty"`
}

// ReplicationHealth is the replica section of /v1/healthz.
type ReplicationHealth struct {
	Connected  bool `json:"connected"`
	Stale      bool `json:"stale"`
	AppliedSeq int  `json:"appliedSeq"`
	LeaderSeq  int  `json:"leaderSeq"`
	LagSeq     int  `json:"lagSeq"`
	// LastFrameAgeSeconds is the silence on the replication stream; 0
	// when no frame has arrived yet.
	LastFrameAgeSeconds float64 `json:"lastFrameAgeSeconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.store.Health()
	resp := HealthResponse{
		Status:       "ok",
		Degraded:     h.Degraded,
		ProbeSeconds: h.ProbeEvery.Seconds(),
		Role:         "leader",
	}
	status := http.StatusOK
	if h.Degraded {
		resp.Status = "degraded"
		resp.Reason = h.Reason
		resp.Cause = h.Cause
		resp.Since = h.Since.Format(time.RFC3339)
		status = http.StatusServiceUnavailable
		s.setRetryAfter(w)
	}
	if s.node != nil {
		nst := s.node.Status()
		resp.Role = nst.Role
		resp.Cluster = &ClusterHealth{
			NodeID:       nst.NodeID,
			Epoch:        nst.Epoch,
			LeaderID:     nst.LeaderID,
			LeaderURL:    nst.LeaderURL,
			LeaseSeconds: (time.Duration(nst.LeaseMillis) * time.Millisecond).Seconds(),
			Suspended:    nst.Suspended,
		}
	}
	if s.follower != nil {
		if s.node == nil {
			resp.Role = "replica"
		}
		st := s.follower.Status()
		rh := &ReplicationHealth{
			Connected:  st.Connected,
			Stale:      st.Stale,
			AppliedSeq: st.AppliedSeq,
			LeaderSeq:  st.LeaderSeq,
			LagSeq:     st.LagSeq(),
		}
		if !st.LastFrame.IsZero() {
			rh.LastFrameAgeSeconds = time.Since(st.LastFrame).Seconds()
		}
		resp.Replication = rh
	}
	writeJSON(w, status, resp)
}

// setRetryAfter advertises the store's disk re-probe interval as the
// earliest moment a degraded-mode 503 is worth retrying.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	s.setRetryAfterSecs(w, int(s.store.Health().ProbeEvery/time.Second))
}

// setRetryAfterSecs sets a Retry-After of at least one second.
func (s *Server) setRetryAfterSecs(w http.ResponseWriter, secs int) {
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// EnableFailpoints exposes the given fault-injection filesystem over
// POST/GET /v1/debug/failpoint. The store must have been opened with
// persist.WithFS(ffs). Call before Handler; intended for tests and
// operator drills (parkd -failpoints), never for regular production
// serving.
func (s *Server) EnableFailpoints(ffs *persist.FaultFS) { s.faultFS = ffs }

// FailpointRequest arms or clears one failpoint.
type FailpointRequest struct {
	// Name is the callsite, e.g. "sync:wal.log" or "append:*".
	Name string `json:"name,omitempty"`
	// Action: "fail" (sticky), "fail-once", "clear", "clear-all".
	// Default "fail".
	Action string `json:"action,omitempty"`
	// Error: "io" (default) or "enospc".
	Error string `json:"error,omitempty"`
	// ShortWrite lets this many payload bytes through before a write
	// fails (a torn write).
	ShortWrite int `json:"shortWrite,omitempty"`
	// Remaining overrides the failure count (<0 sticky).
	Remaining int `json:"remaining,omitempty"`
}

// FailpointInfo describes one armed failpoint.
type FailpointInfo struct {
	Name       string `json:"name"`
	Error      string `json:"error"`
	Remaining  int    `json:"remaining"`
	ShortWrite int    `json:"shortWrite,omitempty"`
}

// FailpointsResponse lists the armed failpoints.
type FailpointsResponse struct {
	Active []FailpointInfo `json:"active"`
}

func (s *Server) handleSetFailpoint(w http.ResponseWriter, r *http.Request) {
	var req FailpointRequest
	if !readJSON(w, r, &req) {
		return
	}
	switch req.Action {
	case "clear-all":
		s.faultFS.ClearAll()
	case "clear":
		if req.Name == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("clear needs a failpoint name"))
			return
		}
		s.faultFS.Clear(req.Name)
	case "", "fail", "fail-once":
		if req.Name == "" {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("failpoint name is required"))
			return
		}
		fp := persist.Failpoint{ShortWrite: req.ShortWrite}
		switch req.Error {
		case "", "io":
			fp.Err = persist.ErrInjected
		case "enospc":
			fp.Err = persist.ErrDiskFull
		default:
			writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown error kind %q (want io or enospc)", req.Error))
			return
		}
		switch {
		case req.Remaining != 0:
			fp.Remaining = req.Remaining
		case req.Action == "fail-once":
			fp.Remaining = 1
		default:
			fp.Remaining = -1
		}
		s.faultFS.SetFailpoint(req.Name, fp)
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown action %q", req.Action))
		return
	}
	s.handleGetFailpoints(w, r)
}

func (s *Server) handleGetFailpoints(w http.ResponseWriter, r *http.Request) {
	resp := FailpointsResponse{Active: []FailpointInfo{}}
	for name, fp := range s.faultFS.Active() {
		kind := "io"
		if errors.Is(fp.Err, persist.ErrDiskFull) {
			kind = "enospc"
		}
		resp.Active = append(resp.Active, FailpointInfo{
			Name:       name,
			Error:      kind,
			Remaining:  fp.Remaining,
			ShortWrite: fp.ShortWrite,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
