package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/persist"
	"repro/internal/repl"
)

// This file is the server's cluster-observability surface: the
// structured event journal (GET /v1/events), the per-rule profiler
// (GET /v1/rules/stats) and the aggregated replica-set view
// (GET /v1/cluster). The first two read local state; the third fans
// out to every member's /v1/repl/status and /v1/healthz with a
// bounded timeout, so one curl against any member answers "who leads,
// who lags, who is degraded" even while part of the set is down.

// SetEvents attaches the structured event journal. Lifecycle events
// (elections, fences, demotions, degraded transitions, checkpoints,
// replication stalls, timer errors) land in it and are served over
// GET /v1/events; its counters (park_events_total{type=},
// park_events_dropped_total) are registered into the server's
// registry. Call before Handler.
func (s *Server) SetEvents(ev *events.Log) {
	s.ev = ev
	ev.Instrument(s.reg)
}

// EventsResponse is the body of GET /v1/events.
type EventsResponse struct {
	// Events are the matching journal entries, oldest first, each with
	// a monotone per-node sequence number.
	Events []events.Event `json:"events"`
	// Missed counts events after the requested cursor that the bounded
	// journal has already evicted: the reader's cursor fell behind.
	Missed int64 `json:"missed"`
	// LastSeq is the newest sequence in the journal — pass it back as
	// ?since= to poll incrementally.
	LastSeq int64 `json:"lastSeq"`
	// Dropped is the lifetime count of events evicted by the ring.
	Dropped int64 `json:"dropped"`
}

// handleEvents serves GET /v1/events?since=N&type=a,b&limit=K: the
// events with sequence > N (all, when since is absent), optionally
// filtered by type, oldest first.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.ev == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("event journal disabled"))
		return
	}
	q := r.URL.Query()
	var since int64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad 'since' parameter %q", v))
			return
		}
		since = n
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad 'limit' parameter %q", v))
			return
		}
		limit = n
	}
	var types map[events.Type]bool
	// ?type= repeats and accepts comma-separated lists; both forms
	// compose.
	for _, v := range q["type"] {
		for _, t := range strings.Split(v, ",") {
			t = strings.TrimSpace(t)
			if t == "" {
				continue
			}
			if types == nil {
				types = make(map[events.Type]bool)
			}
			types[events.Type(t)] = true
		}
	}
	evs, missed := s.ev.Since(since, types, limit)
	if evs == nil {
		evs = []events.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{
		Events:  evs,
		Missed:  missed,
		LastSeq: s.ev.LastSeq(),
		Dropped: s.ev.Dropped(),
	})
}

// RuleStatsResponse is the body of GET /v1/rules/stats.
type RuleStatsResponse struct {
	// Txns is the number of committed transactions profiled since the
	// server started (the profile is in-memory and resets on restart).
	Txns int64 `json:"txns"`
	// Rules is the per-rule profile, ranked by cumulative match cost
	// (MatchNanos, descending). The label "(updates)" aggregates the
	// per-transaction update rules.
	Rules []persist.RuleProfileEntry `json:"rules"`
}

// handleRuleStats serves GET /v1/rules/stats: the per-rule profile
// accumulated across every transaction committed by this process —
// groundings, fires, cumulative match time, conflicts won and lost,
// blocked instances — ranked most-expensive first.
func (s *Server) handleRuleStats(w http.ResponseWriter, r *http.Request) {
	rules, txns := s.store.RuleProfile()
	if rules == nil {
		rules = []persist.RuleProfileEntry{}
	}
	writeJSON(w, http.StatusOK, RuleStatsResponse{Txns: txns, Rules: rules})
}

// ClusterMemberInfo is one member's row in GET /v1/cluster.
type ClusterMemberInfo struct {
	ID  string `json:"id"`
	URL string `json:"url,omitempty"`
	// Self marks the member that answered the aggregation request.
	Self bool `json:"self,omitempty"`
	// Reachable is false when the member could not be polled within
	// the deadline; Error says why.
	Reachable bool   `json:"reachable"`
	Error     string `json:"error,omitempty"`
	// Role/Epoch/FenceEpoch/AppliedSeq/LeaderID mirror the member's
	// /v1/repl/status.
	Role       string `json:"role,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	FenceEpoch int64  `json:"fenceEpoch,omitempty"`
	AppliedSeq int    `json:"appliedSeq"`
	LeaderID   string `json:"leaderId,omitempty"`
	LeaderURL  string `json:"leaderUrl,omitempty"`
	Suspended  bool   `json:"suspended,omitempty"`
	// Degraded/Stale/LagSeq mirror the member's /v1/healthz.
	Degraded bool `json:"degraded,omitempty"`
	Stale    bool `json:"stale,omitempty"`
	LagSeq   int  `json:"lagSeq,omitempty"`
}

// ClusterResponse is the body of GET /v1/cluster: one member's
// aggregated view of the whole replica set.
type ClusterResponse struct {
	// ReportedBy is the member that served this aggregation.
	ReportedBy string `json:"reportedBy"`
	// LeaderID/LeaderURL are the consensus leader when every reachable
	// member agrees on one; empty otherwise.
	LeaderID  string `json:"leaderId,omitempty"`
	LeaderURL string `json:"leaderUrl,omitempty"`
	// LeaderAgreement is true when every reachable member names the
	// same, non-empty leader.
	LeaderAgreement bool `json:"leaderAgreement"`
	// MaxEpoch is the highest leadership epoch any reachable member
	// reported.
	MaxEpoch int64 `json:"maxEpoch"`
	// Partial is true when at least one member could not be polled:
	// the view may be incomplete and LeaderAgreement only covers the
	// members that answered.
	Partial bool `json:"partial"`
	// Members lists every configured member, sorted by ID.
	Members []ClusterMemberInfo `json:"members"`
}

// clusterPollTimeout bounds one member poll during the /v1/cluster
// fan-out: a lease is how long the set tolerates silence, so a member
// that cannot answer within one is reported unreachable rather than
// holding the aggregation.
func (s *Server) clusterPollTimeout() time.Duration {
	d := 2 * time.Second
	if s.node != nil {
		d = s.node.Lease()
	}
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

// handleCluster serves GET /v1/cluster. In cluster mode it fans out
// to every member's /v1/repl/status and /v1/healthz concurrently
// (bounded by clusterPollTimeout) and merges the answers; outside
// cluster mode it reports the single local node, so the endpoint is
// uniform across deployment shapes.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.node == nil {
		m := s.localMemberInfo()
		resp := ClusterResponse{
			ReportedBy:      m.ID,
			MaxEpoch:        m.Epoch,
			LeaderAgreement: m.LeaderID != "",
			LeaderID:        m.LeaderID,
			LeaderURL:       m.LeaderURL,
			Members:         []ClusterMemberInfo{m},
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	members := s.node.Members()
	infos := make([]ClusterMemberInfo, 0, len(members))
	var mu sync.Mutex
	var wg sync.WaitGroup
	timeout := s.clusterPollTimeout()
	for id, url := range members {
		if id == s.node.ID() {
			// Answer for ourselves locally: no self-HTTP round trip, and
			// the row stays correct even if our own listener is wedged.
			m := s.localMemberInfo()
			m.URL = url
			mu.Lock()
			infos = append(infos, m)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(id, url string) {
			defer wg.Done()
			m := s.pollMember(r, id, url, timeout)
			mu.Lock()
			infos = append(infos, m)
			mu.Unlock()
		}(id, url)
	}
	wg.Wait()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })

	resp := ClusterResponse{ReportedBy: s.node.ID(), Members: infos}
	agreement := true
	leader := ""
	for _, m := range infos {
		if !m.Reachable {
			resp.Partial = true
			continue
		}
		if m.Epoch > resp.MaxEpoch {
			resp.MaxEpoch = m.Epoch
		}
		switch {
		case m.LeaderID == "":
			agreement = false
		case leader == "":
			leader = m.LeaderID
		case m.LeaderID != leader:
			agreement = false
		}
	}
	if agreement && leader != "" {
		resp.LeaderAgreement = true
		resp.LeaderID = leader
		resp.LeaderURL = members[leader]
		for _, m := range infos {
			if m.Reachable && m.LeaderURL != "" {
				resp.LeaderURL = m.LeaderURL
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// localMemberInfo builds this node's own /v1/cluster row from local
// state — the same facts /v1/repl/status and /v1/healthz would serve.
func (s *Server) localMemberInfo() ClusterMemberInfo {
	m := ClusterMemberInfo{Self: true, Reachable: true}
	if s.node != nil {
		st := s.node.Status()
		m.ID = st.NodeID
		m.Role = st.Role
		m.Epoch = st.Epoch
		m.FenceEpoch = st.FenceEpoch
		m.AppliedSeq = st.AppliedSeq
		m.LeaderID = st.LeaderID
		m.LeaderURL = st.LeaderURL
		m.Suspended = st.Suspended
	} else {
		epoch, _ := s.store.Epochs()
		m.ID = "local"
		m.Role = "leader"
		m.Epoch = epoch
		m.FenceEpoch = s.store.FenceEpoch()
		m.AppliedSeq = s.store.Seq()
		if s.follower == nil {
			m.LeaderID = m.ID
		}
	}
	if s.follower != nil {
		fst := s.follower.Status()
		m.Stale = fst.Stale
		if s.node == nil {
			m.Role = "follower"
			m.LeaderURL = s.leaderURL
			m.AppliedSeq = fst.AppliedSeq
			m.LagSeq = fst.LagSeq()
		}
	}
	m.Degraded = s.store.Health().Degraded
	return m
}

// pollMember fetches one peer's /v1/repl/status and /v1/healthz for
// the /v1/cluster aggregation. Any transport failure marks the member
// unreachable; a healthz failure after a good status poll degrades
// gracefully (the status fields still fill the row).
func (s *Server) pollMember(r *http.Request, id, url string, timeout time.Duration) ClusterMemberInfo {
	m := ClusterMemberInfo{ID: id, URL: url}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	var st repl.StatusInfo
	if err := fetchJSON(ctx, url+"/v1/repl/status", &st); err != nil {
		m.Error = err.Error()
		return m
	}
	m.Reachable = true
	m.Role = st.Role
	m.Epoch = st.Epoch
	m.FenceEpoch = st.FenceEpoch
	m.AppliedSeq = st.AppliedSeq
	m.LeaderID = st.LeaderID
	m.LeaderURL = st.LeaderURL
	m.Suspended = st.Suspended
	var h HealthResponse
	if err := fetchJSON(ctx, url+"/v1/healthz", &h); err == nil {
		m.Degraded = h.Degraded
		if h.Replication != nil {
			m.Stale = h.Replication.Stale
			m.LagSeq = h.Replication.LagSeq
		}
	}
	return m
}

// fetchJSON GETs url and decodes the body regardless of HTTP status
// (healthz answers 503 while degraded and the body still matters);
// only transport and decode failures are errors.
func fetchJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("HTTP %d: %w", resp.StatusCode, err)
	}
	return nil
}
