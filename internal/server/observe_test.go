package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/persist"
)

// newObserveTestServer starts a server with the event journal wired
// end to end: the store, timers and server all emit into ev.
func newObserveTestServer(t *testing.T) (*Client, *events.Log) {
	t.Helper()
	ev := events.NewLog(0)
	ev.SetNodeID("t1")
	store, err := persist.Open(t.TempDir(), persist.WithEvents(ev))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	srv.SetEvents(ev)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &Client{BaseURL: ts.URL}, ev
}

func TestEventsEndpointFiltersAndCursor(t *testing.T) {
	c, ev := newObserveTestServer(t)
	ctx := context.Background()
	ev.Emit(events.Event{Type: events.CampaignStarted, Epoch: 1})
	ev.Emit(events.Event{Type: events.CampaignWon, Epoch: 1})
	ev.Emit(events.Event{Type: events.Checkpoint, StoreSeq: 3})
	ev.Emit(events.Event{Type: events.CampaignWon, Epoch: 2})

	all, err := c.Events(ctx, 0, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Events) != 4 || all.Missed != 0 || all.LastSeq != 4 {
		t.Fatalf("all events = %+v", all)
	}
	for _, e := range all.Events {
		if e.NodeID != "t1" {
			t.Fatalf("event %+v missing journal node ID", e)
		}
	}

	// Type filter, including the comma-separated form.
	wins, err := c.Events(ctx, 0, []string{"campaign-won", "checkpoint"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins.Events) != 3 {
		t.Fatalf("filtered events = %+v", wins.Events)
	}

	// Cursor: only events after the given sequence.
	tail, err := c.Events(ctx, all.Events[1].Seq, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail.Events) != 2 || tail.Events[0].Type != events.Checkpoint {
		t.Fatalf("tail events = %+v", tail.Events)
	}

	// Limit keeps the oldest matches.
	first, err := c.Events(ctx, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Events) != 1 || first.Events[0].Type != events.CampaignStarted {
		t.Fatalf("limited events = %+v", first.Events)
	}

	// A checkpoint flows from the store into the journal.
	if _, err := c.Transact(ctx, "+p."); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	cps, err := c.Events(ctx, all.LastSeq, []string{"checkpoint"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cps.Events) != 1 || cps.Events[0].StoreSeq != 1 {
		t.Fatalf("checkpoint events after txn = %+v", cps.Events)
	}
}

func TestEventsEndpointDisabled(t *testing.T) {
	c, _ := newTestServer(t)
	_, err := c.Events(context.Background(), 0, nil, 0)
	if err == nil || !strings.Contains(err.Error(), "HTTP 404") {
		t.Fatalf("events on a server without a journal = %v, want HTTP 404", err)
	}
}

func TestRuleStatsEndpoint(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	// The conflict fixture: +p grounds all three rules, a is both
	// derived (via q) and deleted, so every transaction carrying +p
	// resolves a conflict.
	if err := srv.SetProgram("rule derive_q: p -> +q.\nrule drop_a: p -> -a.\nrule derive_a: q -> +a.\n"); err != nil {
		t.Fatal(err)
	}
	tx, err := c.Transact(ctx, "+p.")
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Conflicts) == 0 {
		t.Fatalf("fixture transaction did not conflict: %+v", tx)
	}

	stats, err := c.RuleStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Txns != 1 {
		t.Fatalf("profiled txns = %d, want 1", stats.Txns)
	}
	byRule := map[string]persist.RuleProfileEntry{}
	for i, e := range stats.Rules {
		byRule[e.Rule] = e
		if i > 0 && e.MatchNanos > stats.Rules[i-1].MatchNanos {
			t.Fatalf("rules not ranked by match cost: %+v", stats.Rules)
		}
	}
	for _, name := range []string{"derive_q", "drop_a", "derive_a", persist.UpdateRulesLabel} {
		if _, ok := byRule[name]; !ok {
			t.Fatalf("profile missing %q: %+v", name, stats.Rules)
		}
	}
	// The update rule (+p) and derive_q fired; the a-conflict was
	// resolved between drop_a and derive_a.
	if byRule[persist.UpdateRulesLabel].Fires == 0 || byRule["derive_q"].Fires == 0 {
		t.Fatalf("fire counts: %+v", stats.Rules)
	}
	wins, losses := int64(0), int64(0)
	for _, e := range stats.Rules {
		wins += e.ConflictWins
		losses += e.ConflictLosses
	}
	if wins == 0 || losses == 0 {
		t.Fatalf("conflict counts: wins %d losses %d (%+v)", wins, losses, stats.Rules)
	}

	// A second transaction accumulates.
	if _, err := c.Transact(ctx, "-p."); err != nil {
		t.Fatal(err)
	}
	stats, err = c.RuleStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Txns != 2 {
		t.Fatalf("profiled txns = %d, want 2", stats.Txns)
	}
}

func TestClusterEndpointSingleNode(t *testing.T) {
	c, _ := newTestServer(t)
	cs, err := c.ClusterStatus(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Members) != 1 {
		t.Fatalf("single-node cluster status = %+v", cs)
	}
	m := cs.Members[0]
	if !m.Self || !m.Reachable || m.Role != "leader" || cs.Partial {
		t.Fatalf("single-node member row = %+v (partial %v)", m, cs.Partial)
	}
	if cs.ReportedBy != m.ID {
		t.Fatalf("reportedBy %q, want %q", cs.ReportedBy, m.ID)
	}
}
