package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/persist"
)

// newMetricsTestServer starts a server whose program conflicts on
// atom a whenever p holds: +p triggers both +q -> +a and p -> -a, so
// every such transaction resolves at least one conflict and restarts.
func newMetricsTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	srv := New(store)
	if err := srv.SetProgram("p -> +q.\np -> -a.\nq -> +a.\n"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, &Client{BaseURL: ts.URL}
}

// snapValue returns the summed value of all children of a counter or
// gauge family, and the subset matching the given labels.
func snapValue(snap *metrics.Snapshot, name string, want ...metrics.Label) (total, matched int64) {
	all := append(append([]metrics.MetricValue(nil), snap.Counters...), snap.Gauges...)
	for _, mv := range all {
		if mv.Name != name {
			continue
		}
		total += mv.Value
		has := func(l metrics.Label) bool {
			for _, got := range mv.Labels {
				if got == l {
					return true
				}
			}
			return false
		}
		ok := true
		for _, l := range want {
			if !has(l) {
				ok = false
				break
			}
		}
		if ok && len(want) > 0 {
			matched += mv.Value
		}
	}
	return total, matched
}

func TestMetricsJSONAfterConflictTransaction(t *testing.T) {
	_, c := newMetricsTestServer(t)
	ctx := context.Background()
	tx, err := c.Transact(ctx, "+p.")
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Conflicts) == 0 || tx.Restarts == 0 {
		t.Fatalf("fixture transaction did not conflict: %+v", tx)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{
		"park_engine_transactions_total",
		"park_engine_phases_total",
		"park_engine_restarts_total",
		"park_engine_groundings_total",
		"park_engine_derivations_total",
		"park_engine_new_facts_total",
	} {
		if total, _ := snapValue(snap, name); total == 0 {
			t.Errorf("%s = 0 after a conflicting transaction", name)
		}
	}
	if total, full := snapValue(snap, "park_engine_gamma_steps_total", metrics.L("kind", "full")); total == 0 || full == 0 {
		t.Errorf("gamma steps total=%d full=%d, want both nonzero", total, full)
	}
	if total, del := snapValue(snap, "park_engine_conflicts_total", metrics.L("decision", "delete")); total != 1 || del != 1 {
		t.Errorf("conflicts total=%d delete=%d, want 1/1 (inertia deletes a ∉ D)", total, del)
	}
	if _, txn := snapValue(snap, "park_http_requests_total",
		metrics.L("endpoint", "/v1/transaction"), metrics.L("code", "200")); txn != 1 {
		t.Errorf("/v1/transaction 200-count = %d, want 1", txn)
	}
	if total, _ := snapValue(snap, "park_store_facts"); total == 0 {
		t.Errorf("park_store_facts = 0, want facts after the transaction")
	}

	// Per-endpoint latency histogram recorded the transaction.
	var reqHist *metrics.HistogramValue
	for i := range snap.Histograms {
		hv := &snap.Histograms[i]
		if hv.Name != "park_http_request_seconds" {
			continue
		}
		for _, l := range hv.Labels {
			if l == metrics.L("endpoint", "/v1/transaction") {
				reqHist = hv
			}
		}
	}
	if reqHist == nil || reqHist.Count != 1 {
		t.Fatalf("request histogram for /v1/transaction = %+v, want count 1", reqHist)
	}
	if len(reqHist.Buckets) != len(metrics.DefBuckets) {
		t.Fatalf("histogram buckets = %d, want %d", len(reqHist.Buckets), len(metrics.DefBuckets))
	}
	var runHist *metrics.HistogramValue
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "park_engine_run_seconds" {
			runHist = &snap.Histograms[i]
		}
	}
	if runHist == nil || runHist.Count != 1 {
		t.Fatalf("engine run histogram = %+v, want count 1", runHist)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	_, c := newMetricsTestServer(t)
	ctx := context.Background()
	if _, err := c.Transact(ctx, "+p."); err != nil {
		t.Fatal(err)
	}
	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE park_engine_transactions_total counter",
		"park_engine_transactions_total 1",
		"# TYPE park_engine_conflicts_total counter",
		`park_engine_conflicts_total{decision="delete"} 1`,
		"# TYPE park_engine_restarts_total counter",
		"park_engine_restarts_total 1",
		`park_engine_gamma_steps_total{kind="full"}`,
		"# TYPE park_http_request_seconds histogram",
		`park_http_request_seconds_bucket{endpoint="/v1/transaction",le="+Inf"} 1`,
		`park_http_request_seconds_count{endpoint="/v1/transaction"} 1`,
		"# TYPE park_engine_run_seconds histogram",
		"park_engine_run_seconds_count 1",
		"# TYPE park_store_facts gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

func TestMetricsAcceptHeaderAndBadFormat(t *testing.T) {
	ts, _ := newMetricsTestServer(t)
	req, err := http.NewRequest("GET", ts.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	viaAccept, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer viaAccept.Body.Close()
	if ct := viaAccept.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Accept: text/plain content type = %q", ct)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	bad, err := ts.Client().Get(ts.URL + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != 400 {
		t.Fatalf("format=xml status = %d, want 400", bad.StatusCode)
	}
}

func TestMetricsRequestCounterOnErrors(t *testing.T) {
	_, c := newMetricsTestServer(t)
	ctx := context.Background()
	if _, err := c.TransactWith(ctx, TransactionRequest{Updates: "+p.", Strategy: "bogus"}); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The bogus strategy fails before Apply, so engine errors stay 0
	// but the 400 is visible in the request counter.
	if _, code400 := snapValue(snap, "park_http_requests_total",
		metrics.L("endpoint", "/v1/transaction"), metrics.L("code", "400")); code400 != 1 {
		t.Fatalf("transaction 400-count = %d, want 1", code400)
	}
}
