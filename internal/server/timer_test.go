package server

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/persist"
	"repro/internal/repl"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTimerFiresThroughRules registers an interval event source and
// verifies each firing runs as an ordinary PARK transaction: the
// +tick event literal matches an active rule, the derived facts land
// in the database, and the firing stats and metrics advance.
func TestTimerFiresThroughRules(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	if _, err := c.SetProgram(ctx, `rule obs: +tick(X) -> +seen(X).`, ""); err != nil {
		t.Fatal(err)
	}
	info, err := c.CreateTimer(ctx, TimerRequest{
		Name:    "hb",
		Every:   "10ms",
		Updates: "+tick(t${n}).",
		Count:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.Name != "hb" || info.Every != "10ms" {
		t.Fatalf("created timer = %+v", info)
	}
	// A bounded timer fires exactly Count times, then goes inactive.
	waitFor(t, 5*time.Second, "3 firings", func() bool {
		timers, err := c.Timers(ctx)
		if err != nil || len(timers) != 1 {
			return false
		}
		return timers[0].Fires == 3 && !timers[0].Active
	})
	facts, err := c.Database(ctx)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(facts, " ")
	for _, want := range []string{"tick(t0)", "seen(t0)", "tick(t1)", "seen(t2)"} {
		if !strings.Contains(joined, want) {
			t.Errorf("database %v missing %s", facts, want)
		}
	}
	// Firings feed the ordinary engine metrics and the timer counter.
	snap := srv.reg.Snapshot()
	found := false
	for _, mv := range snap.Counters {
		if mv.Name == "park_timer_fires_total" && mv.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("park_timer_fires_total != 3 in %+v", snap.Counters)
	}
	// Deleting a finished timer reports its final stats.
	final, err := c.DeleteTimer(ctx, "hb")
	if err != nil {
		t.Fatal(err)
	}
	if final.Fires != 3 || final.Errors != 0 || final.Active {
		t.Fatalf("final timer stats = %+v", final)
	}
	if timers, _ := c.Timers(ctx); len(timers) != 0 {
		t.Fatalf("timer list after delete = %+v", timers)
	}
}

// TestTimerDeleteStopsFiring removes an unbounded timer and verifies
// no further transactions arrive afterwards.
func TestTimerDeleteStopsFiring(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateTimer(ctx, TimerRequest{Name: "drip", Every: "5ms", Updates: "+tick(t${n})."}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first firing", func() bool { return srv.store.Seq() > 0 })
	if _, err := c.DeleteTimer(ctx, "drip"); err != nil {
		t.Fatal(err)
	}
	seq := srv.store.Seq()
	time.Sleep(50 * time.Millisecond)
	if got := srv.store.Seq(); got != seq {
		t.Fatalf("store advanced from %d to %d after timer delete", seq, got)
	}
	// Deleting again is a 404.
	if _, err := c.DeleteTimer(ctx, "drip"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("second delete err = %v, want 404", err)
	}
}

// TestTimerValidation exercises the up-front spec checks.
func TestTimerValidation(t *testing.T) {
	c, _ := newTestServer(t)
	ctx := context.Background()
	cases := []struct {
		name string
		req  TimerRequest
		want string
	}{
		{"bad name", TimerRequest{Name: "a b", Every: "10ms", Updates: "+t."}, "bad timer name"},
		{"empty name", TimerRequest{Name: "", Every: "10ms", Updates: "+t."}, "bad timer name"},
		{"bad period", TimerRequest{Name: "x", Every: "soon", Updates: "+t."}, "bad timer period"},
		{"too fast", TimerRequest{Name: "x", Every: "10µs", Updates: "+t."}, "below the"},
		{"negative count", TimerRequest{Name: "x", Every: "10ms", Updates: "+t.", Count: -1}, "bad timer count"},
		{"empty updates", TimerRequest{Name: "x", Every: "10ms", Updates: "  "}, "empty update set"},
		{"unparseable updates", TimerRequest{Name: "x", Every: "10ms", Updates: "tick("}, "timer updates"},
		{"bad strategy", TimerRequest{Name: "x", Every: "10ms", Updates: "+t.", Strategy: "psychic"}, "unknown strategy"},
	}
	for _, tc := range cases {
		if _, err := c.CreateTimer(ctx, tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Duplicate names conflict.
	if _, err := c.CreateTimer(ctx, TimerRequest{Name: "dup", Every: "1h", Updates: "+t."}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTimer(ctx, TimerRequest{Name: "dup", Every: "1h", Updates: "+t."}); err == nil ||
		!strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate create err = %v, want conflict", err)
	}
}

// TestTimerRejectedOnReplica: a replica's logical state belongs to
// the replication stream, so timer registration is misdirected like
// any other write.
func TestTimerRejectedOnReplica(t *testing.T) {
	store, err := persist.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	f := repl.NewFollower(store, "http://leader.example:7474")
	ts := httptest.NewServer(NewReplica(store, f, "http://leader.example:7474").Handler())
	t.Cleanup(ts.Close)
	c := &Client{BaseURL: ts.URL}
	_, err = c.CreateTimer(context.Background(), TimerRequest{Name: "x", Every: "10ms", Updates: "+t."})
	if err == nil || !strings.Contains(err.Error(), "421") {
		t.Fatalf("replica timer create err = %v, want 421", err)
	}
}

// TestTimerStopsWithStreams: StopStreams (graceful shutdown) must end
// every firing loop.
func TestTimerStopsWithStreams(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	if _, err := c.CreateTimer(ctx, TimerRequest{Name: "s", Every: "5ms", Updates: "+tick(t${n})."}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first firing", func() bool { return srv.store.Seq() > 0 })
	srv.StopStreams()
	waitFor(t, 5*time.Second, "timer inactive", func() bool {
		timers, err := c.Timers(ctx)
		return err == nil && len(timers) == 1 && !timers[0].Active
	})
	seq := srv.store.Seq()
	time.Sleep(30 * time.Millisecond)
	if got := srv.store.Seq(); got != seq {
		t.Fatalf("store advanced after StopStreams: %d -> %d", seq, got)
	}
}
