package server

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// This file round-trips our own /v1/metrics Prometheus text
// exposition through a strict parser: every sample line must parse,
// every family must carry HELP/TYPE headers before its first sample,
// histogram buckets must be cumulative and end at le="+Inf" matching
// _count, and label escaping (backslash, quote, newline) must
// round-trip. A scrape-side regression here is invisible to the JSON
// tests, so the exposition gets its own.

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromValue handles the exposition's number forms, including the
// signed infinities Prometheus spells +Inf/-Inf.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parsePromLine parses `name{k="v",...} value` (labels optional),
// undoing the text-format label escapes.
func parsePromLine(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no name/value separator in %q", line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return s, fmt.Errorf("bad label in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			j := 0
			for ; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					j++
					if j >= len(rest) {
						return s, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return s, fmt.Errorf("unknown escape \\%c in %q", rest[j], line)
					}
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if j >= len(rest) {
				return s, fmt.Errorf("unterminated label value in %q", line)
			}
			s.labels[key] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			return s, fmt.Errorf("bad label separator in %q", line)
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := parsePromValue(rest)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.value = v
	return s, nil
}

// familyOf strips the histogram series suffixes so samples map back
// to their TYPE/HELP family.
func familyOf(name string, kinds map[string]string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name && kinds[base] == "histogram" {
			return base
		}
	}
	return name
}

// labelKeyWithoutLe canonicalizes a sample's labels minus le, to
// group one histogram child's bucket series.
func labelKeyWithoutLe(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%q;", k, labels[k])
	}
	return sb.String()
}

func TestPrometheusExpositionRoundTrips(t *testing.T) {
	c, srv := newTestServer(t)
	ctx := context.Background()
	// The conflict fixture from the metrics tests, so engine counters
	// and latency histograms all have observations.
	if err := srv.SetProgram("p -> +q.\np -> -a.\nq -> +a.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transact(ctx, "+p."); err != nil {
		t.Fatal(err)
	}
	// A counter whose label value needs every escape the format
	// defines.
	nasty := "a\\b\"c\nd"
	srv.Metrics().Counter("park_test_escape_total",
		"Escaping canary.", metrics.L("v", nasty)).Inc()

	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}

	helps := map[string]string{}
	kinds := map[string]string{}
	var samples []promSample
	seenBeforeHeader := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.SplitN(line[len("# HELP "):], " ", 2)
			if len(rest) != 2 || strings.Contains(rest[1], "\n") {
				t.Fatalf("bad HELP line %q", line)
			}
			helps[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.SplitN(line[len("# TYPE "):], " ", 2)
			if len(rest) != 2 {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch rest[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			kinds[rest[0]] = rest[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		s, err := parsePromLine(line)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s)
		fam := familyOf(s.name, kinds)
		if _, ok := kinds[fam]; !ok {
			seenBeforeHeader[s.name] = true
		}
	}
	if len(samples) == 0 {
		t.Fatal("no samples in exposition")
	}
	for name := range seenBeforeHeader {
		t.Errorf("sample %s appeared before its TYPE header", name)
	}

	// Every family with samples has a non-empty HELP.
	for _, s := range samples {
		fam := familyOf(s.name, kinds)
		if helps[fam] == "" {
			t.Errorf("family %s has no HELP line", fam)
		}
	}

	// The escape canary round-trips exactly.
	found := false
	for _, s := range samples {
		if s.name == "park_test_escape_total" {
			found = true
			if s.labels["v"] != nasty {
				t.Fatalf("escaped label round-trip = %q, want %q", s.labels["v"], nasty)
			}
		}
	}
	if !found {
		t.Fatal("escape canary counter missing from exposition")
	}

	// Histogram series: cumulative buckets ending at +Inf == _count,
	// with a _sum for every child.
	type child struct {
		les    []float64
		counts map[float64]float64
		sum    bool
		count  float64
		hasCnt bool
	}
	children := map[string]*child{}
	key := func(fam string, labels map[string]string) string {
		return fam + "|" + labelKeyWithoutLe(labels)
	}
	for _, s := range samples {
		fam := familyOf(s.name, kinds)
		if kinds[fam] != "histogram" {
			continue
		}
		ch := children[key(fam, s.labels)]
		if ch == nil {
			ch = &child{counts: map[float64]float64{}}
			children[key(fam, s.labels)] = ch
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, err := parsePromValue(s.labels["le"])
			if err != nil {
				t.Fatalf("bad le label %q", s.labels["le"])
			}
			ch.les = append(ch.les, le)
			ch.counts[le] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			ch.sum = true
		case strings.HasSuffix(s.name, "_count"):
			ch.hasCnt = true
			ch.count = s.value
		}
	}
	if len(children) == 0 {
		t.Fatal("no histogram series in exposition")
	}
	for k, ch := range children {
		if !ch.sum || !ch.hasCnt {
			t.Errorf("histogram %s missing _sum or _count", k)
			continue
		}
		sort.Float64s(ch.les)
		if len(ch.les) == 0 || !math.IsInf(ch.les[len(ch.les)-1], 1) {
			t.Errorf("histogram %s has no le=\"+Inf\" bucket", k)
			continue
		}
		prev := 0.0
		for _, le := range ch.les {
			if ch.counts[le] < prev {
				t.Errorf("histogram %s buckets not cumulative at le=%v", k, le)
			}
			prev = ch.counts[le]
		}
		if inf := ch.counts[ch.les[len(ch.les)-1]]; inf != ch.count {
			t.Errorf("histogram %s: +Inf bucket %v != count %v", k, inf, ch.count)
		}
	}
}
