package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/persist"
	"repro/internal/repl"
)

// This file is the server's failover surface: the cluster-member
// constructor and the /v1/repl/{status,vote,ack,promote} endpoints
// that the repl.Node election protocol rides on. In cluster mode the
// node's role is dynamic — the same process serves writes while it
// leads and answers 421 with the current leader's address while it
// follows — so the writable gate (server.go) consults the node on
// every mutating request.

// NewClusterMember creates a server for one member of a replica set.
// The follower and node are owned by the caller (parkd runs
// node.Run, which drives the follower); the server wires them into
// the writable gate, /v1/healthz, the metrics registry and the
// /v1/repl endpoints, and stamps the replication stream's heartbeats
// with this node's identity and lease so followers track it.
func NewClusterMember(store *persist.Store, follower *repl.Follower, node *repl.Node) *Server {
	s := New(store)
	s.follower = follower
	if follower != nil {
		follower.Instrument(s.reg)
	}
	s.node = node
	node.Instrument(s.reg)
	s.leader.SetIdentity(node.ID(), node.SelfURL(), node.Lease())
	return s
}

// Node returns the failover coordinator (nil outside cluster mode).
func (s *Server) Node() *repl.Node { return s.node }

// handleReplStatus answers GET /v1/repl/status: this node's view of
// the replica set. Peers poll it for discovery and pre-election
// checks; outside cluster mode it reports the static role.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	if s.node != nil {
		writeJSON(w, http.StatusOK, s.node.Status())
		return
	}
	epoch, _ := s.store.Epochs()
	st := repl.StatusInfo{
		Role:       "leader",
		Epoch:      epoch,
		FenceEpoch: s.store.FenceEpoch(),
		AppliedSeq: s.store.Seq(),
	}
	if s.follower != nil {
		st.Role = "follower"
		st.LeaderURL = s.follower.LeaderURL()
	}
	writeJSON(w, http.StatusOK, st)
}

// handleReplVote answers POST /v1/repl/vote: a candidate asking this
// node for its (durable, single-per-epoch) vote.
func (s *Server) handleReplVote(w http.ResponseWriter, r *http.Request) {
	if s.node == nil {
		writeErr(w, http.StatusConflict, errors.New("not a replica-set member (no cluster configuration)"))
		return
	}
	var req repl.VoteRequest
	if !readJSON(w, r, &req) {
		return
	}
	writeJSON(w, http.StatusOK, s.node.HandleVote(req))
}

// handleReplAck answers POST /v1/repl/ack: a follower reporting its
// applied sequence so the leader can acknowledge quorum-replicated
// writes.
func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	if s.node == nil {
		writeErr(w, http.StatusConflict, errors.New("not a replica-set member (no cluster configuration)"))
		return
	}
	var req repl.AckRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.node.HandleAck(req)
	writeJSON(w, http.StatusOK, struct{}{})
}

// handleReplPromote answers POST /v1/repl/promote: the manual
// failover override. It forces an immediate election attempt without
// waiting out the lease; the quorum, epoch and longest-prefix vote
// checks still apply, so it cannot create a second leader — it can
// only fail.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if s.node == nil {
		writeErr(w, http.StatusConflict, errors.New("not a replica-set member (no cluster configuration)"))
		return
	}
	if err := s.node.Promote(r.Context()); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, s.node.Status())
}

// rejectNotLeader answers a write sent to a non-leader cluster
// member: 421 with the current leader's address in the X-Park-Leader
// header and body (when known), or 503 with Retry-After while an
// election is in flight and no leader is known yet.
func (s *Server) rejectNotLeader(w http.ResponseWriter) {
	_, leaderURL := s.node.Leader()
	st := s.node.Status()
	if leaderURL == "" {
		// Mid-election: no leader to redirect to. Retry after roughly
		// an election round.
		secs := int(s.node.Lease() / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("no leader elected yet (this node is a %s in epoch %d); retry shortly", st.Role, st.Epoch))
		return
	}
	w.Header().Set("X-Park-Leader", leaderURL)
	resp := ReplicaRejection{
		Error:  fmt.Sprintf("read-only replica: send writes to the leader at %s", leaderURL),
		Leader: leaderURL,
		Epoch:  st.Epoch,
	}
	if s.follower != nil {
		fst := s.follower.Status()
		resp.Stale = fst.Stale
		resp.StaleAfterSeconds = fst.StaleAfter.Seconds()
		resp.AppliedSeq = fst.AppliedSeq
		resp.LagSeq = fst.LagSeq()
		if !fst.LastFrame.IsZero() {
			resp.LastFrameAgeSeconds = time.Since(fst.LastFrame).Seconds()
		}
	}
	writeJSON(w, http.StatusMisdirectedRequest, resp)
}

// rejectSuspended answers a write on a leader that has lost majority
// contact: committing it could not replicate, so refuse up front.
func (s *Server) rejectSuspended(w http.ResponseWriter) {
	secs := int(s.node.Lease() / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeErr(w, http.StatusServiceUnavailable,
		errors.New("leader suspended: no contact with a majority of the replica set"))
}

// waitReplicated blocks a committed write until a majority of the
// replica set has applied it, bounding the wait at two leases. The
// outcome decides the client's acknowledgment: only writes that
// reached a majority are answered 200, which is exactly the set of
// writes the election protocol guarantees to survive a failover.
func (s *Server) waitReplicated(ctx context.Context, info persist.CommitInfo) error {
	if s.node == nil || info.Seq == 0 {
		return nil
	}
	wctx, cancel := context.WithTimeout(ctx, 2*s.node.Lease())
	defer cancel()
	return s.node.WaitReplicated(wctx, info.Seq)
}
