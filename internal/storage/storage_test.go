package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation(2)
	if r.Arity() != 2 || r.Len() != 0 {
		t.Fatalf("fresh relation: arity=%d len=%d", r.Arity(), r.Len())
	}
	row := r.Append([]int32{1, 2}, 10)
	if row != 0 {
		t.Fatalf("first row index = %d, want 0", row)
	}
	r.Append([]int32{1, 3}, 11)
	r.Append([]int32{2, 3}, 12)
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if got := r.Row(1); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Fatalf("Row(1) = %v", got)
	}
	if r.ID(2) != 12 {
		t.Fatalf("ID(2) = %d", r.ID(2))
	}
	if got := r.IDs(); !reflect.DeepEqual(got, []int32{10, 11, 12}) {
		t.Fatalf("IDs = %v", got)
	}
}

func TestRelationZeroArity(t *testing.T) {
	r := NewRelation(0)
	r.Append(nil, 7)
	if r.Len() != 1 {
		t.Fatalf("len = %d, want 1", r.Len())
	}
	seen := 0
	r.Scan(nil, true, func(row int) bool { seen++; return true })
	if seen != 1 {
		t.Fatalf("scanned %d rows, want 1", seen)
	}
	r.Truncate()
	if r.Len() != 0 {
		t.Fatalf("len after truncate = %d", r.Len())
	}
}

func TestRelationNegativeArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRelation(-1) did not panic")
		}
	}()
	NewRelation(-1)
}

func TestAppendArityMismatchPanics(t *testing.T) {
	r := NewRelation(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Append with wrong arity did not panic")
		}
	}()
	r.Append([]int32{1}, 0)
}

func TestProbe(t *testing.T) {
	r := NewRelation(2)
	r.Append([]int32{1, 2}, 0)
	r.Append([]int32{1, 3}, 1)
	r.Append([]int32{2, 3}, 2)
	if got := r.Probe(0, 1); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("Probe(0,1) = %v", got)
	}
	// Appending after an index is built must extend it.
	r.Append([]int32{1, 9}, 3)
	if got := r.Probe(0, 1); !reflect.DeepEqual(got, []int32{0, 1, 3}) {
		t.Fatalf("Probe(0,1) after append = %v", got)
	}
	if got := r.Probe(1, 3); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("Probe(1,3) = %v", got)
	}
	if got := r.Probe(1, 42); len(got) != 0 {
		t.Fatalf("Probe(1,42) = %v, want empty", got)
	}
}

func TestTruncateDropsIndexes(t *testing.T) {
	r := NewRelation(1)
	r.Append([]int32{5}, 0)
	if got := r.Probe(0, 5); len(got) != 1 {
		t.Fatalf("Probe = %v", got)
	}
	r.Truncate()
	if got := r.Probe(0, 5); len(got) != 0 {
		t.Fatalf("Probe after truncate = %v", got)
	}
	r.Append([]int32{5}, 1)
	if got := r.Probe(0, 5); !reflect.DeepEqual(got, []int32{0}) {
		t.Fatalf("Probe after re-append = %v", got)
	}
	if r.ID(0) != 1 {
		t.Fatalf("ID(0) = %d, want 1", r.ID(0))
	}
}

func scanRows(r *Relation, pattern []int32, useIndex bool) []int {
	var rows []int
	r.Scan(pattern, useIndex, func(row int) bool {
		rows = append(rows, row)
		return true
	})
	return rows
}

func TestScanIndexedVsLinearAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRelation(3)
	for i := 0; i < 500; i++ {
		r.Append([]int32{int32(rng.Intn(5)), int32(rng.Intn(5)), int32(rng.Intn(5))}, int32(i))
	}
	patterns := [][]int32{
		{Unbound, Unbound, Unbound},
		{2, Unbound, Unbound},
		{Unbound, 3, Unbound},
		{1, Unbound, 4},
		{0, 0, 0},
		{4, 4, Unbound},
	}
	for _, p := range patterns {
		a := scanRows(r, p, true)
		b := scanRows(r, p, false)
		sort.Ints(a)
		sort.Ints(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("pattern %v: indexed %v != linear %v", p, a, b)
		}
	}

	// Selection heuristic: a skewed relation where column 0 is almost
	// useless (all rows share one value) and column 1 is selective.
	// The scan must probe the shortest posting list regardless of which
	// bound column comes first in the pattern, and must still agree
	// with the linear scan.
	skew := NewRelation(3)
	for i := 0; i < 400; i++ {
		skew.Append([]int32{7, int32(i % 100), int32(i % 2)}, int32(i))
	}
	skewPatterns := [][]int32{
		{7, 42, Unbound},       // col 0 matches 400 rows, col 1 only 4
		{7, Unbound, 1},        // col 2's list (200) still beats col 0's (400)
		{7, 42, 0},             // all three bound, middle one wins
		{7, 999, Unbound},      // selective column matches nothing: empty result
		{Unbound, 42, Unbound}, // single bound column unchanged
	}
	for _, p := range skewPatterns {
		a := scanRows(skew, p, true)
		b := scanRows(skew, p, false)
		sort.Ints(a)
		sort.Ints(b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("skew pattern %v: indexed %v != linear %v", p, a, b)
		}
	}
	// White-box check that the heuristic consults the selective
	// column at all: pre-heuristic Scan probed only the FIRST bound
	// column, so column 1's index was never built for a {bound,
	// bound, _} pattern. With the smallest-list selection every bound
	// column is probed (to compare list lengths), which is observable
	// through the lazily built indexes.
	fresh := NewRelation(3)
	for i := 0; i < 400; i++ {
		fresh.Append([]int32{7, int32(i % 100), int32(i % 2)}, int32(i))
	}
	fresh.Scan([]int32{7, 42, Unbound}, true, func(int) bool { return true })
	if fresh.builtUpTo[1] != 400 {
		t.Fatalf("selective column index built up to %d rows, want 400 (heuristic never considered column 1)", fresh.builtUpTo[1])
	}
	// And the probe sizes confirm which list the heuristic favors.
	if c0, c1 := len(fresh.Probe(0, 7)), len(fresh.Probe(1, 42)); c0 != 400 || c1 != 4 {
		t.Fatalf("posting lists = %d/%d, want 400/4", c0, c1)
	}
}

func TestScanEarlyStop(t *testing.T) {
	r := NewRelation(1)
	for i := 0; i < 10; i++ {
		r.Append([]int32{1}, int32(i))
	}
	calls := 0
	r.Scan([]int32{1}, true, func(int) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
	calls = 0
	r.Scan([]int32{1}, false, func(int) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("linear fn called %d times, want 1", calls)
	}
}

func TestContains(t *testing.T) {
	r := NewRelation(2)
	r.Append([]int32{1, 2}, 0)
	if !r.Contains([]int32{1, Unbound}, true) {
		t.Fatal("Contains(1,_) = false")
	}
	if r.Contains([]int32{2, 2}, true) {
		t.Fatal("Contains(2,2) = true")
	}
	if r.Contains([]int32{2, 2}, false) {
		t.Fatal("linear Contains(2,2) = true")
	}
}

func TestStorePredStore(t *testing.T) {
	s := NewStore()
	ps := s.Pred(1, 2)
	if ps == nil || ps.Base.Arity() != 2 {
		t.Fatal("Pred did not create store")
	}
	if s.Pred(1, 2) != ps {
		t.Fatal("Pred not idempotent")
	}
	if s.Lookup(1) != ps {
		t.Fatal("Lookup mismatch")
	}
	if s.Lookup(99) != nil {
		t.Fatal("Lookup(99) should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity conflict did not panic")
		}
	}()
	s.Pred(1, 3)
}

func TestStoreResetPhase(t *testing.T) {
	s := NewStore()
	ps := s.Pred(1, 1)
	ps.Base.Append([]int32{1}, 0)
	ps.Plus.Append([]int32{2}, 1)
	ps.Minus.Append([]int32{3}, 2)
	st := s.Stats()
	if st.BaseRows != 1 || st.PlusRows != 1 || st.MinusRows != 1 || st.Predicates != 1 {
		t.Fatalf("stats before reset: %+v", st)
	}
	s.ResetPhase()
	st = s.Stats()
	if st.BaseRows != 1 || st.PlusRows != 0 || st.MinusRows != 0 {
		t.Fatalf("stats after reset: %+v", st)
	}
}

// Property: Probe(c,v) returns exactly the rows whose column c is v,
// in ascending order, regardless of interleaved appends and probes.
func TestProbeQuick(t *testing.T) {
	f := func(vals []uint8, probeCol uint8, probeVal uint8) bool {
		r := NewRelation(2)
		for i, v := range vals {
			r.Append([]int32{int32(v % 7), int32(v / 7 % 7)}, int32(i))
			if i == len(vals)/2 {
				r.Probe(0, int32(probeVal%7)) // force index build mid-stream
			}
		}
		c := int(probeCol % 2)
		v := int32(probeVal % 7)
		got := r.Probe(c, v)
		var want []int32
		for row := 0; row < r.Len(); row++ {
			if r.Row(row)[c] == v {
				want = append(want, int32(row))
			}
		}
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
