// Package storage implements the tuple storage layer used by the PARK
// evaluation engine.
//
// The engine works on i-interpretations: a fixed set of unmarked base
// facts (the original database instance D) plus atoms marked "+" or
// "-" that accumulate during one inflationary phase and are discarded
// wholesale when a conflict forces the phase to restart. Storage
// mirrors that life cycle: every predicate owns three relations
// (base, plus, minus); base is immutable once the phase structure is
// frozen, while plus and minus are append-only within a phase and are
// truncated in O(1) amortized time on restart.
//
// Relations keep their tuples in a flat column-major-free int32 array
// (arity columns per row) and build per-column hash indexes lazily on
// first use. Indexes over the immutable base survive phase restarts;
// indexes over plus/minus are dropped on reset.
//
// The package is deliberately independent of the rule layer: symbols
// and atom identifiers are plain int32 values assigned by the caller.
package storage

import "fmt"

// Relation stores fixed-arity tuples of interned symbols together
// with the caller-assigned atom identifier of each row.
type Relation struct {
	arity int
	flat  []int32 // len = rows*arity
	ids   []int32 // atom id per row
	// cols[c] maps a symbol to the list of row indexes whose c-th
	// column holds that symbol. Built lazily; builtUpTo[c] records how
	// many rows the index covers so appends extend it incrementally.
	cols      []map[int32][]int32
	builtUpTo []int
}

// NewRelation returns an empty relation with the given arity.
// Arity zero is valid and models propositional predicates.
func NewRelation(arity int) *Relation {
	if arity < 0 {
		panic(fmt.Sprintf("storage: negative arity %d", arity))
	}
	return &Relation{
		arity:     arity,
		cols:      make([]map[int32][]int32, arity),
		builtUpTo: make([]int, arity),
	}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of rows.
func (r *Relation) Len() int {
	if r.arity == 0 {
		return len(r.ids)
	}
	return len(r.flat) / r.arity
}

// Append adds one tuple with its atom id and returns its row index.
// The tuple length must equal the relation arity.
func (r *Relation) Append(tuple []int32, id int32) int {
	if len(tuple) != r.arity {
		panic(fmt.Sprintf("storage: appending tuple of arity %d to relation of arity %d", len(tuple), r.arity))
	}
	row := r.Len()
	r.flat = append(r.flat, tuple...)
	r.ids = append(r.ids, id)
	return row
}

// Row returns the tuple at the given row index. The returned slice
// aliases internal storage and must not be modified.
func (r *Relation) Row(row int) []int32 {
	return r.flat[row*r.arity : (row+1)*r.arity]
}

// ID returns the atom id recorded for the given row.
func (r *Relation) ID(row int) int32 { return r.ids[row] }

// IDs returns all atom ids in insertion order. The slice aliases
// internal storage and must not be modified.
func (r *Relation) IDs() []int32 { return r.ids }

// ensureIndex extends (building if necessary) the hash index for
// column c to cover all current rows. When the index is already
// current the method performs no writes, so concurrent readers are
// safe after EnsureAllIndexes has frozen the relation.
func (r *Relation) ensureIndex(c int) map[int32][]int32 {
	idx := r.cols[c]
	n := r.Len()
	if idx != nil && r.builtUpTo[c] == n {
		return idx
	}
	if idx == nil {
		idx = make(map[int32][]int32)
		r.cols[c] = idx
	}
	for row := r.builtUpTo[c]; row < n; row++ {
		v := r.flat[row*r.arity+c]
		idx[v] = append(idx[v], int32(row))
	}
	r.builtUpTo[c] = n
	return idx
}

// EnsureAllIndexes brings every column index up to date. After this,
// Probe and Scan perform no writes until the next Append or Truncate,
// making the relation safe for concurrent readers.
func (r *Relation) EnsureAllIndexes() {
	for c := 0; c < r.arity; c++ {
		r.ensureIndex(c)
	}
}

// Probe returns the row indexes whose column c equals v, using (and
// lazily maintaining) the hash index for that column.
func (r *Relation) Probe(c int, v int32) []int32 {
	return r.ensureIndex(c)[v]
}

// Truncate discards all rows, keeping allocated capacity, and drops
// all indexes. Used when a plus/minus relation is reset at a phase
// restart.
func (r *Relation) Truncate() {
	r.flat = r.flat[:0]
	r.ids = r.ids[:0]
	for c := range r.cols {
		r.cols[c] = nil
		r.builtUpTo[c] = 0
	}
}

// PredStore groups the three relations of one predicate.
type PredStore struct {
	// Base holds the unmarked atoms of the original database instance.
	// It is immutable during evaluation, so its indexes survive phase
	// restarts.
	Base *Relation
	// Plus and Minus hold the atoms marked "+" and "-" within the
	// current phase.
	Plus  *Relation
	Minus *Relation
}

// Store is the full storage for one evaluation: one PredStore per
// predicate symbol.
type Store struct {
	preds map[int32]*PredStore
	// arity pins the arity of each predicate the store has seen.
	arity map[int32]int
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		preds: make(map[int32]*PredStore),
		arity: make(map[int32]int),
	}
}

// Pred returns the PredStore for the predicate, creating it with the
// given arity on first use. It panics if the predicate was previously
// used with a different arity; the rule loader validates arities
// before evaluation, so this indicates a bug.
func (s *Store) Pred(pred int32, arity int) *PredStore {
	ps, ok := s.preds[pred]
	if !ok {
		ps = &PredStore{
			Base:  NewRelation(arity),
			Plus:  NewRelation(arity),
			Minus: NewRelation(arity),
		}
		s.preds[pred] = ps
		s.arity[pred] = arity
		return ps
	}
	if got := s.arity[pred]; got != arity {
		panic(fmt.Sprintf("storage: predicate %d used with arity %d and %d", pred, got, arity))
	}
	return ps
}

// Lookup returns the PredStore for the predicate, or nil if the store
// has never seen it.
func (s *Store) Lookup(pred int32) *PredStore { return s.preds[pred] }

// BuildAllIndexes freezes every relation for concurrent readers (see
// Relation.EnsureAllIndexes). Index maintenance is incremental, so
// calling this repeatedly costs only the newly appended rows.
func (s *Store) BuildAllIndexes() {
	for _, ps := range s.preds {
		ps.Base.EnsureAllIndexes()
		ps.Plus.EnsureAllIndexes()
		ps.Minus.EnsureAllIndexes()
	}
}

// ResetPhase truncates every plus and minus relation, restoring the
// store to the base snapshot. Base relations and their indexes are
// untouched.
func (s *Store) ResetPhase() {
	for _, ps := range s.preds {
		ps.Plus.Truncate()
		ps.Minus.Truncate()
	}
}

// Stats describes the current size of a store.
type Stats struct {
	Predicates int
	BaseRows   int
	PlusRows   int
	MinusRows  int
}

// Stats returns current row counts, mostly for tracing and tests.
func (s *Store) Stats() Stats {
	st := Stats{Predicates: len(s.preds)}
	for _, ps := range s.preds {
		st.BaseRows += ps.Base.Len()
		st.PlusRows += ps.Plus.Len()
		st.MinusRows += ps.Minus.Len()
	}
	return st
}
