package storage

// Pattern describes a selection over a relation: for each column
// either a bound symbol or Unbound.
const Unbound int32 = -1

// MatchRow reports whether the given row matches the pattern.
func MatchRow(row []int32, pattern []int32) bool {
	for i, p := range pattern {
		if p != Unbound && row[i] != p {
			return false
		}
	}
	return true
}

// Scan calls fn for every row of r that matches pattern, in row
// order, until fn returns false. If useIndex is true and at least one
// pattern column is bound, the scan probes the (lazily built) hash
// index of the most selective bound column — the one whose posting
// list is shortest — instead of scanning linearly; the rows of the
// other bound columns would all be re-checked by MatchRow anyway, so
// probing the smallest list minimizes the work. The useIndex=false
// path exists for the indexing ablation benchmark.
func (r *Relation) Scan(pattern []int32, useIndex bool, fn func(row int) bool) {
	if len(pattern) != r.arity {
		panic("storage: pattern arity mismatch")
	}
	if useIndex {
		var best []int32
		found := false
		for c, p := range pattern {
			if p == Unbound {
				continue
			}
			rows := r.Probe(c, p)
			if !found || len(rows) < len(best) {
				best, found = rows, true
			}
			if len(best) == 0 {
				break // no rows can match; also the cheapest possible probe
			}
		}
		if found {
			for _, row := range best {
				if MatchRow(r.Row(int(row)), pattern) {
					if !fn(int(row)) {
						return
					}
				}
			}
			return
		}
	}
	n := r.Len()
	for row := 0; row < n; row++ {
		if MatchRow(r.Row(row), pattern) {
			if !fn(row) {
				return
			}
		}
	}
}

// Contains reports whether any row matches the fully or partially
// bound pattern.
func (r *Relation) Contains(pattern []int32, useIndex bool) bool {
	found := false
	r.Scan(pattern, useIndex, func(int) bool {
		found = true
		return false
	})
	return found
}
