package flight

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Trace IDs correlate one request across the stack: the HTTP layer
// assigns (or propagates) an X-Park-Trace-Id header, stores it in the
// request context, persist stamps it onto the committed TxnRecord and
// the flight trace, and replication ships it to followers. An ID is an
// opaque token; the only structure callers may rely on is the
// ValidTraceID character set.

type traceIDKey struct{}

var traceSeq atomic.Uint64

// NewTraceID returns a fresh 16-hex-character random trace ID. If the
// system randomness source fails it falls back to a process-local
// counter — uniqueness within the process is all the recorder needs.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// ValidTraceID reports whether id is safe to propagate: non-empty, at
// most 64 characters, and drawn from [A-Za-z0-9._-]. The HTTP layer
// regenerates anything else rather than echoing arbitrary client bytes
// into logs and replication frames.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
