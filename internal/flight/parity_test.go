package flight

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestParallelTraceParity checks that the recorder sees the identical
// event stream under the parallel evaluator as under the sequential
// one: parallel Γ steps fold their chunks in submission order, so the
// semantics — and therefore the trace — must not depend on the shard
// count. Run with -race this also exercises the recorder under the
// parallel evaluator's worker pool.
func TestParallelTraceParity(t *testing.T) {
	// A cyclic graph: transitive closure derives path(X, X) around the
	// ring, which r3 wants deleted while r2 keeps deriving it — a
	// conflict on every node, resolved by inertia, with restarts. Rich
	// enough that a scheduling difference would show up in the stream.
	const program = `
		rule r1 priority 1: edge(X, Y) -> +path(X, Y).
		rule r2 priority 2: path(X, Y), edge(Y, Z) -> +path(X, Z).
		rule r3 priority 3: path(X, X) -> -path(X, X).
	`
	var facts strings.Builder
	const n = 8
	for i := 0; i < n; i++ {
		fmt.Fprintf(&facts, "edge(n%d, n%d).\n", i, (i+1)%n)
	}

	sequential := recordRun(t, program, facts.String(), core.Options{})
	parallel := recordRun(t, program, facts.String(), core.Options{Parallel: 4})

	if sequential.Conflicts == 0 {
		t.Fatal("workload produced no conflicts; parity check is vacuous")
	}
	if sequential.Phases != parallel.Phases ||
		sequential.Steps != parallel.Steps ||
		sequential.Conflicts != parallel.Conflicts {
		t.Fatalf("totals diverge: sequential %d/%d/%d, parallel %d/%d/%d (phases/steps/conflicts)",
			sequential.Phases, sequential.Steps, sequential.Conflicts,
			parallel.Phases, parallel.Steps, parallel.Conflicts)
	}
	if !reflect.DeepEqual(sequential.Events, parallel.Events) {
		limit := len(sequential.Events)
		if len(parallel.Events) < limit {
			limit = len(parallel.Events)
		}
		for i := 0; i < limit; i++ {
			if !reflect.DeepEqual(sequential.Events[i], parallel.Events[i]) {
				t.Fatalf("event %d diverges:\nsequential: %+v\nparallel:   %+v",
					i, sequential.Events[i], parallel.Events[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d",
			len(sequential.Events), len(parallel.Events))
	}
}
