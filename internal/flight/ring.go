package flight

import (
	"sync"
	"time"
)

// Default retention parameters; cmd/parkd exposes them as -trace-buffer
// and -slow-txn.
const (
	// DefaultRecent is the default last-K window.
	DefaultRecent = 64
	// DefaultSlowThreshold marks traces at least this slow for the
	// separate slow window.
	DefaultSlowThreshold = 250 * time.Millisecond
)

// entry wraps an indexed trace with a reference count: a trace can sit
// in the recent window and the slow window at once, and leaves the
// index only when evicted from both.
type entry struct {
	t    *Trace
	refs int
}

// Ring retains a bounded window of transaction traces: the most recent
// K, plus — separately, so a burst of fast transactions cannot flush
// the interesting ones — the most recent K traces that met the slow
// threshold. Lookups are by global transaction sequence. All methods
// are safe for concurrent use; the critical sections are a few map and
// slice operations, never name resolution or rendering (the inserted
// traces are already resolved), so insertion stays cheap on the commit
// path.
type Ring struct {
	mu     sync.Mutex
	cap    int
	thresh time.Duration
	recent []*Trace // oldest first, len <= cap
	slow   []*Trace // oldest first, len <= cap
	index  map[int]*entry
	seen   int64 // traces ever inserted
}

// NewRing builds a ring keeping the last k traces and the last k slow
// traces (k < 1 selects DefaultRecent). A thresh of 0 selects
// DefaultSlowThreshold; a negative thresh marks every trace slow
// (useful in tests and drills).
func NewRing(k int, thresh time.Duration) *Ring {
	if k < 1 {
		k = DefaultRecent
	}
	if thresh == 0 {
		thresh = DefaultSlowThreshold
	}
	return &Ring{cap: k, thresh: thresh, index: make(map[int]*entry)}
}

// SlowThreshold returns the ring's slow-trace threshold.
func (r *Ring) SlowThreshold() time.Duration { return r.thresh }

// Cap returns the per-window retention bound K.
func (r *Ring) Cap() int { return r.cap }

// Inserted returns how many traces have ever been inserted.
func (r *Ring) Inserted() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}

// Insert publishes a trace, evicting the oldest entries past the
// retention bounds. It stamps t.Slow when the wall time meets the
// threshold; a trace already marked slow (one shipped from a leader
// with a different threshold) stays slow. The trace must not be
// mutated after insertion.
func (r *Ring) Insert(t *Trace) {
	if t == nil {
		return
	}
	slow := t.Slow || r.thresh < 0 || t.WallSeconds >= r.thresh.Seconds()
	t.Slow = slow

	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	// Replace a same-sequence trace in place (idempotent replication
	// overlap): drop the old entry entirely, then insert fresh.
	if old, ok := r.index[t.Seq]; ok {
		r.recent = remove(r.recent, old.t)
		r.slow = remove(r.slow, old.t)
		delete(r.index, t.Seq)
	}
	e := &entry{t: t}
	r.index[t.Seq] = e
	r.recent = r.push(r.recent, e)
	if slow {
		r.slow = r.push(r.slow, e)
	}
}

// push appends e.t to w, evicting the oldest entry when w is full;
// callers hold r.mu.
func (r *Ring) push(w []*Trace, e *entry) []*Trace {
	if len(w) >= r.cap {
		evicted := w[0]
		copy(w, w[1:])
		w = w[:len(w)-1]
		if old := r.index[evicted.Seq]; old != nil && old.t == evicted {
			old.refs--
			if old.refs <= 0 {
				delete(r.index, evicted.Seq)
			}
		}
	}
	e.refs++
	return append(w, e.t)
}

// remove deletes t from w preserving order; callers hold r.mu.
func remove(w []*Trace, t *Trace) []*Trace {
	for i, x := range w {
		if x == t {
			return append(w[:i], w[i+1:]...)
		}
	}
	return w
}

// Get returns the trace for the transaction at seq, or nil when it was
// never recorded or has been evicted.
func (r *Ring) Get(seq int) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[seq]; ok {
		return e.t
	}
	return nil
}

// Recent returns the retained recent traces, newest first.
func (r *Ring) Recent() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return reversed(r.recent)
}

// Slow returns the retained slow traces, newest first.
func (r *Ring) Slow() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	return reversed(r.slow)
}

func reversed(w []*Trace) []*Trace {
	out := make([]*Trace, len(w))
	for i, t := range w {
		out[len(w)-1-i] = t
	}
	return out
}
