// Package flight is the transaction flight recorder: it adapts the
// engine's core.Tracer callbacks into a compact, structured record of
// how one PARK evaluation ran — the phases of Γ steps, the
// inconsistencies that interrupted them, the conflict triples and
// their SELECT decisions, the groundings that were blocked — and keeps
// a bounded window of those records in memory so "what did transaction
// N do, and why was it slow?" can be answered on a live server after
// the fact.
//
// The paper defines PARK behaviorally: the result database is the
// fixpoint of the Δ operator over bi-structures, and everything an
// operator would ask about (why did rule X fire? why was this
// insertion dropped?) is a question about the run, not the result.
// Aggregate metrics (internal/metrics) lose exactly that information;
// the flight recorder retains it per transaction at bounded cost.
//
// Three pieces:
//
//   - Recorder implements core.Tracer. During the run it appends raw
//     events holding atom ids, not strings — the hot path does no
//     name resolution and no formatting. Finish resolves names and
//     produces an immutable, JSON-marshalable Trace.
//   - Trace is the resolved record. Text renders it in the style of
//     the paper's worked examples (the same vocabulary TextTracer
//     uses interactively).
//   - Ring retains the last K traces plus every trace slower than a
//     threshold, indexed by transaction sequence, behind one short
//     mutex. internal/persist owns a Ring and inserts on commit;
//     internal/server serves it as /v1/txns.
//
// The package also carries the per-request trace-ID plumbing
// (NewTraceID, WithTraceID, TraceID): the HTTP layer stamps each
// request, persist stamps the committed transaction, and replication
// ships the ID to followers, so one identifier correlates the access
// log, the commit log, the flight trace and the follower's applied
// log.
package flight

import (
	"fmt"
	"strings"
)

// Event kinds, in the order the engine emits them.
const (
	// KindPhase marks the start of an inflationary phase (a restart
	// from the unmarked kernel D, for phases after the first).
	KindPhase = "phase"
	// KindStep is one consistent Γ step with the marked atoms it added.
	KindStep = "step"
	// KindInconsistency is a Γ step that would mark some atom both +
	// and -; conflict resolution follows.
	KindInconsistency = "inconsistency"
	// KindConflict is one resolved conflict triple with its SELECT
	// decision and the groundings newly blocked by it.
	KindConflict = "conflict"
	// KindPhaseEnd closes a phase: either the ω fixpoint was reached or
	// the phase was interrupted by an inconsistency (fixpoint=false).
	KindPhaseEnd = "phase-end"
)

// Event is one resolved engine event. Exactly the fields meaningful
// for its Kind are set; everything else is omitted from the JSON.
type Event struct {
	Kind  string `json:"kind"`
	Phase int    `json:"phase"`
	// Step is the Γ step within the phase (steps and inconsistencies).
	Step int `json:"step,omitempty"`
	// Added lists the marked atoms a step added, rendered like the
	// paper ("+q(a)", "-p(b)"), in derivation order.
	Added []string `json:"added,omitempty"`
	// Atoms lists the atoms an inconsistent step would have marked both
	// ways, sorted by name.
	Atoms []string `json:"atoms,omitempty"`
	// Atom is the conflicted atom of a conflict event.
	Atom string `json:"atom,omitempty"`
	// Decision is the SELECT outcome ("insert" or "delete").
	Decision string `json:"decision,omitempty"`
	// Ins and Del are the conflict triple's requesting groundings,
	// rendered like the paper: (rule, [X <- a]).
	Ins []string `json:"ins,omitempty"`
	Del []string `json:"del,omitempty"`
	// Blocked lists the groundings newly added to the blocked set B by
	// this conflict's resolution.
	Blocked []string `json:"blocked,omitempty"`
	// Steps is the phase's applied step count (phase-end only).
	Steps int `json:"steps,omitempty"`
	// Fixpoint reports whether the phase reached ω (phase-end only).
	Fixpoint bool `json:"fixpoint,omitempty"`
}

// Trace is the flight record of one committed transaction. It is
// immutable once published to a Ring; consumers share the pointer.
type Trace struct {
	// Seq is the transaction's global sequence number.
	Seq int `json:"seq"`
	// TraceID is the request-scoped correlation ID that committed this
	// transaction (empty when the caller provided none).
	TraceID string `json:"traceId,omitempty"`
	// Origin is "local" for transactions evaluated by this process and
	// "leader" for traces shipped over a replication stream.
	Origin string `json:"origin,omitempty"`
	// WallSeconds is the engine wall-clock time of the evaluation.
	WallSeconds float64 `json:"wallSeconds"`
	// Slow reports that the trace met the ring's slow threshold (set at
	// insertion; shipped traces keep the leader's verdict).
	Slow bool `json:"slow,omitempty"`
	// Phases, Steps and Conflicts are run totals; they stay accurate
	// even when Events was truncated.
	Phases    int `json:"phases"`
	Steps     int `json:"steps"`
	Conflicts int `json:"conflicts"`
	// DroppedEvents counts events beyond the recorder's cap that were
	// counted but not retained.
	DroppedEvents int `json:"droppedEvents,omitempty"`
	// Events is the resolved event stream, in engine order.
	Events []Event `json:"events"`
}

// Text renders the trace in the style of the paper's worked examples,
// matching the vocabulary of core.TextTracer: one line per phase
// start, step, inconsistency, conflict and blocked grounding.
func (t *Trace) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "txn %d", t.Seq)
	switch {
	case t.TraceID != "" && t.Origin != "" && t.Origin != "local":
		fmt.Fprintf(&sb, " (trace %s, %s)", t.TraceID, t.Origin)
	case t.TraceID != "":
		fmt.Fprintf(&sb, " (trace %s)", t.TraceID)
	case t.Origin != "" && t.Origin != "local":
		fmt.Fprintf(&sb, " (%s)", t.Origin)
	}
	fmt.Fprintf(&sb, ": %d phase(s), %d step(s), %d conflict(s), %.3fms",
		t.Phases, t.Steps, t.Conflicts, t.WallSeconds*1000)
	if t.Slow {
		sb.WriteString(" [slow]")
	}
	sb.WriteByte('\n')
	for _, e := range t.Events {
		switch e.Kind {
		case KindPhase:
			fmt.Fprintf(&sb, "phase %d: restart from the unmarked kernel D\n", e.Phase)
		case KindStep:
			fmt.Fprintf(&sb, "  step %d: %s\n", e.Step, strings.Join(e.Added, ", "))
		case KindInconsistency:
			fmt.Fprintf(&sb, "  step %d would be inconsistent on {%s}\n",
				e.Step, strings.Join(e.Atoms, ", "))
		case KindConflict:
			fmt.Fprintf(&sb, "  conflict on %s: ins {%s} vs del {%s} -> %s\n",
				e.Atom, strings.Join(e.Ins, " "), strings.Join(e.Del, " "), e.Decision)
			for _, g := range e.Blocked {
				fmt.Fprintf(&sb, "    block %s\n", g)
			}
		case KindPhaseEnd:
			if e.Fixpoint {
				fmt.Fprintf(&sb, "phase %d: fixpoint after %d step(s)\n", e.Phase, e.Steps)
			} else {
				fmt.Fprintf(&sb, "phase %d: interrupted after %d step(s); blocked set grew, restarting\n",
					e.Phase, e.Steps)
			}
		}
	}
	if t.DroppedEvents > 0 {
		fmt.Fprintf(&sb, "(%d further event(s) dropped by the recorder's event cap)\n", t.DroppedEvents)
	}
	return sb.String()
}
