package flight

import (
	"sort"
	"strconv"

	"repro/internal/core"
)

// DefaultEventCap bounds the events one Recorder retains. A restart
// storm can emit thousands of steps; everything past the cap is
// counted (Trace totals stay exact) but not retained, keeping the
// worst-case memory per transaction bounded.
const DefaultEventCap = 1024

// rawEvent is one engine event in unresolved form: atom ids and
// grounding values, no strings. Recording one is a slice append plus
// the copies the Tracer contract requires (the engine reuses the
// slices it passes).
type rawEvent struct {
	kind     byte // 'P' phase, 'S' step, 'I' inconsistency, 'C' conflict, 'E' phase-end
	phase    int
	step     int
	added    []core.MarkedAtom
	atoms    []core.AID
	conflict core.Conflict
	decision core.Decision
	blocked  []core.Grounding
	fixpoint bool
}

// Recorder implements core.Tracer by buffering raw events for one
// engine run. It is not safe for concurrent use, matching the Tracer
// contract: the engine calls all hooks from its single evaluation
// goroutine (the parallel evaluator folds in on that goroutine too).
// Finish resolves the buffer into an immutable Trace.
type Recorder struct {
	u        *core.Universe
	prog     *core.Program // P_U, attached by the engine via SetProgram
	eventCap int

	events  []rawEvent
	dropped int

	phases    int
	steps     int
	conflicts int
}

// NewRecorder returns a Recorder resolving names against u, with the
// default event cap.
func NewRecorder(u *core.Universe) *Recorder {
	return &Recorder{u: u, eventCap: DefaultEventCap}
}

// SetEventCap overrides the retained-event bound (values below 1 keep
// the default). Call before the run starts.
func (r *Recorder) SetEventCap(n int) {
	if n >= 1 {
		r.eventCap = n
	}
}

// SetProgram implements the engine's program-attacher hook: it hands
// the recorder P_U, whose rule indexes the run's Conflict and
// Grounding values refer to. Update rules are part of P_U, so update
// groundings resolve to their "update:+q(a)" labels.
func (r *Recorder) SetProgram(p *core.Program) { r.prog = p }

// record appends ev unless the cap is reached.
func (r *Recorder) record(ev rawEvent) {
	if len(r.events) >= r.eventCap {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// PhaseStart implements core.Tracer.
func (r *Recorder) PhaseStart(phase int) {
	r.phases = phase
	r.record(rawEvent{kind: 'P', phase: phase})
}

// StepApplied implements core.Tracer.
func (r *Recorder) StepApplied(phase, step int, added []core.MarkedAtom) {
	r.steps++
	r.record(rawEvent{kind: 'S', phase: phase, step: step,
		added: append([]core.MarkedAtom(nil), added...)})
}

// Inconsistency implements core.Tracer.
func (r *Recorder) Inconsistency(phase, step int, atoms []core.AID) {
	r.record(rawEvent{kind: 'I', phase: phase, step: step,
		atoms: append([]core.AID(nil), atoms...)})
}

// ConflictResolved implements core.Tracer.
func (r *Recorder) ConflictResolved(phase int, c core.Conflict, dec core.Decision, blocked []core.Grounding) {
	r.conflicts++
	cp := core.Conflict{
		Atom: c.Atom,
		Ins:  append([]core.Grounding(nil), c.Ins...),
		Del:  append([]core.Grounding(nil), c.Del...),
	}
	r.record(rawEvent{kind: 'C', phase: phase, conflict: cp, decision: dec,
		blocked: append([]core.Grounding(nil), blocked...)})
}

// PhaseEnd implements core.Tracer.
func (r *Recorder) PhaseEnd(phase, steps int, fixpoint bool) {
	r.record(rawEvent{kind: 'E', phase: phase, step: steps, fixpoint: fixpoint})
}

// Finish resolves the buffered run into a Trace for the committed
// transaction seq. Name resolution happens here — once, off the
// engine's critical path — against the append-only universe, so the
// recorded ids are still valid however late Finish runs.
func (r *Recorder) Finish(seq int, traceID string, wallSeconds float64) *Trace {
	t := &Trace{
		Seq:           seq,
		TraceID:       traceID,
		Origin:        "local",
		WallSeconds:   wallSeconds,
		Phases:        r.phases,
		Steps:         r.steps,
		Conflicts:     r.conflicts,
		DroppedEvents: r.dropped,
		Events:        make([]Event, 0, len(r.events)),
	}
	for _, ev := range r.events {
		switch ev.kind {
		case 'P':
			t.Events = append(t.Events, Event{Kind: KindPhase, Phase: ev.phase})
		case 'S':
			added := make([]string, len(ev.added))
			for i, ma := range ev.added {
				added[i] = ma.Op.String() + r.u.AtomString(ma.Atom)
			}
			t.Events = append(t.Events, Event{Kind: KindStep, Phase: ev.phase, Step: ev.step, Added: added})
		case 'I':
			atoms := make([]string, len(ev.atoms))
			for i, a := range ev.atoms {
				atoms[i] = r.u.AtomString(a)
			}
			// The engine orders these by atom id (interning order);
			// sort by name so traces compare across processes.
			sort.Strings(atoms)
			t.Events = append(t.Events, Event{Kind: KindInconsistency, Phase: ev.phase, Step: ev.step, Atoms: atoms})
		case 'C':
			t.Events = append(t.Events, Event{
				Kind:     KindConflict,
				Phase:    ev.phase,
				Atom:     r.u.AtomString(ev.conflict.Atom),
				Decision: ev.decision.String(),
				Ins:      r.groundings(ev.conflict.Ins),
				Del:      r.groundings(ev.conflict.Del),
				Blocked:  r.groundings(ev.blocked),
			})
		case 'E':
			t.Events = append(t.Events, Event{Kind: KindPhaseEnd, Phase: ev.phase, Steps: ev.step, Fixpoint: ev.fixpoint})
		}
	}
	return t
}

// groundings renders a grounding list in paper style, falling back to
// a bare rule index when the engine never attached P_U (a recorder
// used outside Engine.Run).
func (r *Recorder) groundings(gs []core.Grounding) []string {
	if len(gs) == 0 {
		return nil
	}
	out := make([]string, len(gs))
	for i, g := range gs {
		if r.prog != nil {
			out[i] = g.String(r.u, r.prog)
		} else {
			out[i] = "(rule#" + strconv.Itoa(int(g.Rule)) + ")"
		}
	}
	return out
}
