package flight

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parser"
)

// The §5 inertia example: three phases, two conflicts on q, final
// database {p, a, b}. Mirrors the golden TextTracer test in core.
const sec5Program = `
	rule r1 priority 1: p -> +a.
	rule r2 priority 2: p -> +q.
	rule r3 priority 3: a -> +b.
	rule r4 priority 4: a -> -q.
	rule r5 priority 5: b -> +q.
`

// recordRun evaluates program over facts with a Recorder attached and
// returns the finished trace.
func recordRun(t *testing.T, program, facts string, opts core.Options) *Trace {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", program)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", facts)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(u)
	opts.Tracer = rec
	eng, err := core.NewEngine(u, prog, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Finish(1, "t-0001", res.RunStats.Wall.Seconds())
}

func TestRecorderSec5(t *testing.T) {
	tr := recordRun(t, sec5Program, `p.`, core.Options{})
	if tr.Phases != 3 || tr.Conflicts != 2 {
		t.Fatalf("got %d phases, %d conflicts; want 3 and 2", tr.Phases, tr.Conflicts)
	}
	if tr.Seq != 1 || tr.TraceID != "t-0001" || tr.Origin != "local" {
		t.Fatalf("bad header fields: %+v", tr)
	}
	var conflicts, phaseEnds int
	for _, e := range tr.Events {
		switch e.Kind {
		case KindConflict:
			conflicts++
			if e.Atom != "q" || e.Decision != "delete" {
				t.Fatalf("conflict event = %+v; want atom q decided delete", e)
			}
			if len(e.Blocked) != 1 {
				t.Fatalf("conflict blocked %v; want exactly one grounding", e.Blocked)
			}
		case KindPhaseEnd:
			phaseEnds++
			if e.Phase == 3 && !e.Fixpoint {
				t.Fatalf("phase 3 should end in fixpoint: %+v", e)
			}
		}
	}
	if conflicts != 2 || phaseEnds != 3 {
		t.Fatalf("event stream has %d conflicts, %d phase ends; want 2 and 3", conflicts, phaseEnds)
	}
	// The blocked groundings must carry resolved rule labels: the first
	// conflict blocks r2, the second r5 (P_U was attached by the
	// engine's program-attacher hook).
	text := tr.Text()
	for _, want := range []string{
		"txn 1 (trace t-0001): 3 phase(s),",
		"block (r2)",
		"block (r5)",
		"conflict on q:",
		"phase 3: fixpoint after 2 step(s)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text rendering missing %q:\n%s", want, text)
		}
	}
	// The trace must round-trip through JSON (the API serves it raw).
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Phases != tr.Phases || len(back.Events) != len(tr.Events) {
		t.Fatalf("JSON round trip changed the trace: %+v vs %+v", back, tr)
	}
}

func TestRecorderEventCap(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", sec5Program)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", `p.`)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(u)
	rec.SetEventCap(3)
	eng, err := core.NewEngine(u, prog, nil, core.Options{Tracer: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish(1, "", res.RunStats.Wall.Seconds())
	if len(tr.Events) != 3 {
		t.Fatalf("retained %d events; cap was 3", len(tr.Events))
	}
	if tr.DroppedEvents == 0 {
		t.Fatal("expected dropped events past the cap")
	}
	// Totals stay exact even when events were dropped.
	if tr.Phases != 3 || tr.Conflicts != 2 {
		t.Fatalf("truncation corrupted totals: %d phases, %d conflicts", tr.Phases, tr.Conflicts)
	}
	if !strings.Contains(tr.Text(), "dropped by the recorder's event cap") {
		t.Fatal("text rendering does not mention truncation")
	}
}

func TestRingRetentionAndLookup(t *testing.T) {
	r := NewRing(3, 10*time.Millisecond)
	mk := func(seq int, wall float64) *Trace {
		return &Trace{Seq: seq, WallSeconds: wall}
	}
	for seq := 1; seq <= 5; seq++ {
		r.Insert(mk(seq, 0.001)) // all fast
	}
	if got := r.Get(1); got != nil {
		t.Fatalf("seq 1 should have been evicted, got %+v", got)
	}
	if got := r.Get(5); got == nil || got.Seq != 5 {
		t.Fatalf("seq 5 missing: %+v", got)
	}
	recent := r.Recent()
	if len(recent) != 3 || recent[0].Seq != 5 || recent[2].Seq != 3 {
		t.Fatalf("recent window wrong: %+v", recent)
	}
	if len(r.Slow()) != 0 {
		t.Fatalf("no trace was slow, got %+v", r.Slow())
	}

	// A slow trace survives eviction from the recent window.
	r.Insert(mk(6, 0.5))
	for seq := 7; seq <= 12; seq++ {
		r.Insert(mk(seq, 0.001))
	}
	if got := r.Get(6); got == nil || !got.Slow {
		t.Fatalf("slow trace 6 evicted or unmarked: %+v", got)
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0].Seq != 6 {
		t.Fatalf("slow window wrong: %+v", slow)
	}
	if r.Inserted() != 12 {
		t.Fatalf("inserted = %d, want 12", r.Inserted())
	}

	// Re-inserting the same sequence replaces the entry (replication
	// overlap), and a negative threshold marks everything slow.
	r2 := NewRing(2, -1)
	r2.Insert(mk(1, 0))
	if got := r2.Get(1); got == nil || !got.Slow {
		t.Fatalf("negative threshold should mark every trace slow: %+v", got)
	}
	repl := mk(1, 0)
	repl.TraceID = "replaced"
	r2.Insert(repl)
	if got := r2.Get(1); got == nil || got.TraceID != "replaced" {
		t.Fatalf("same-seq insert did not replace: %+v", got)
	}
	if len(r2.Recent()) != 1 {
		t.Fatalf("replacement duplicated the entry: %+v", r2.Recent())
	}
}

func TestTraceIDHelpers(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("trace IDs collided: %s", a)
	}
	if !ValidTraceID(a) || !ValidTraceID(b) {
		t.Fatalf("generated IDs must validate: %s %s", a, b)
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "with space", "nl\n", "semi;colon"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true", bad)
		}
	}
	ctx := WithTraceID(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID round trip: got %q want %q", got, a)
	}
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("empty context yielded trace ID %q", got)
	}
}
