package resolve

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/parser"
)

func run(t *testing.T, progSrc, dbSrc, updSrc string, strat core.Strategy) (*core.Universe, *core.Result) {
	t.Helper()
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", progSrc)
	if err != nil {
		t.Fatal(err)
	}
	db, err := parser.ParseDatabase(u, "", dbSrc)
	if err != nil {
		t.Fatal(err)
	}
	var ups []core.Update
	if updSrc != "" {
		if ups, err = parser.ParseUpdates(u, "", updSrc); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := core.NewEngine(u, prog, strat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background(), db, ups)
	if err != nil {
		t.Fatal(err)
	}
	return u, res
}

func resultString(u *core.Universe, d *core.Database) string {
	ids := append([]core.AID(nil), d.Atoms()...)
	u.SortAtoms(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = u.AtomString(id)
	}
	return strings.Join(parts, ", ")
}

const sec5Program = `
	rule r1 priority 1: p -> +a.
	rule r2 priority 2: p -> +q.
	rule r3 priority 3: a -> +b.
	rule r4 priority 4: a -> -q.
	rule r5 priority 5: b -> +q.
`

func TestInertia(t *testing.T) {
	u, res := run(t, sec5Program, `p.`, "", Inertia())
	if got := resultString(u, res.Output); got != "a, b, p" {
		t.Fatalf("result = {%s}", got)
	}
}

func TestPriority(t *testing.T) {
	u, res := run(t, sec5Program, `p.`, "", Priority{})
	if got := resultString(u, res.Output); got != "a, b, p, q" {
		t.Fatalf("result = {%s}", got)
	}
}

func TestPriorityTieBreak(t *testing.T) {
	prog := `
		rule r1 priority 7: p -> +a.
		rule r2 priority 7: p -> -a.
	`
	// Default tie: insert wins.
	u, res := run(t, prog, `p.`, "", Priority{})
	if got := resultString(u, res.Output); got != "a, p" {
		t.Fatalf("default tie result = {%s}", got)
	}
	// Custom tie-break: inertia (a not in D, so delete).
	u2, res2 := run(t, prog, `p.`, "", Priority{TieBreak: Inertia()})
	if got := resultString(u2, res2.Output); got != "p" {
		t.Fatalf("inertia tie result = {%s}", got)
	}
}

func TestSubsumes(t *testing.T) {
	u := core.NewUniverse()
	prog, err := parser.ParseProgram(u, "", `
		bird(X) -> +flies(X).
		penguin(X), bird(X) -> -flies(X).
		bird(tweety) -> +flies(tweety).
	`)
	if err != nil {
		t.Fatal(err)
	}
	general, specific, constant := &prog.Rules[0], &prog.Rules[1], &prog.Rules[2]
	if !Subsumes(general, specific) {
		t.Fatal("bird rule must subsume penguin rule")
	}
	if Subsumes(specific, general) {
		t.Fatal("penguin rule must not subsume bird rule")
	}
	if !Subsumes(general, constant) {
		t.Fatal("bird(X) must subsume bird(tweety)")
	}
	if Subsumes(constant, general) {
		t.Fatal("bird(tweety) must not subsume bird(X)")
	}
	if !Subsumes(general, general) {
		t.Fatal("subsumption must be reflexive")
	}
}

func TestSpecificityPenguin(t *testing.T) {
	// The paper's §5 example: penguins do not fly even though birds
	// do — the more specific rule wins.
	prog := `
		rule birds: bird(X) -> +flies(X).
		rule penguins: penguin(X), bird(X) -> -flies(X).
	`
	db := `bird(tweety). bird(pingu). penguin(pingu).`
	strat := Fallback{Strategies: []core.Strategy{Specificity{}, Inertia()}}
	u, res := run(t, prog, db, "", strat)
	want := "bird(pingu), bird(tweety), flies(tweety), penguin(pingu)"
	if got := resultString(u, res.Output); got != want {
		t.Fatalf("result = {%s}, want {%s}", got, want)
	}
}

func TestSpecificityUndecided(t *testing.T) {
	// Incomparable rules: specificity alone must abstain, and the
	// whole run must fail without a fallback.
	prog := `
		rule r1: p -> +a.
		rule r2: q -> -a.
	`
	u := core.NewUniverse()
	p, err := parser.ParseProgram(u, "", prog)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := parser.ParseDatabase(u, "", `p. q.`)
	eng, err := core.NewEngine(u, p, Specificity{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Run(context.Background(), db, nil)
	if !errors.Is(err, ErrUndecided) {
		t.Fatalf("err = %v, want ErrUndecided", err)
	}
}

func TestInteractive(t *testing.T) {
	prog := `p -> +a. p -> -a. p -> +b. p -> -b.`
	var out strings.Builder
	strat := &Interactive{R: strings.NewReader("i\nd\n"), W: &out}
	u, res := run(t, prog, `p.`, "", strat)
	// First conflict (a): insert; second (b): delete.
	if got := resultString(u, res.Output); got != "a, p" {
		t.Fatalf("result = {%s}", got)
	}
	if !strings.Contains(out.String(), "insert or delete a?") {
		t.Fatalf("prompt missing:\n%s", out.String())
	}
}

func TestInteractiveRetryAndEOF(t *testing.T) {
	prog := `p -> +a. p -> -a.`
	var out strings.Builder
	// Garbage then a valid answer.
	strat := &Interactive{R: strings.NewReader("what\nok\ninsert\n"), W: &out}
	u, res := run(t, prog, `p.`, "", strat)
	if got := resultString(u, res.Output); got != "a, p" {
		t.Fatalf("result = {%s}", got)
	}
	if !strings.Contains(out.String(), "please answer") {
		t.Fatal("retry prompt missing")
	}

	// EOF before any answer must error out.
	u2 := core.NewUniverse()
	p2, _ := parser.ParseProgram(u2, "", prog)
	db2, _ := parser.ParseDatabase(u2, "", `p.`)
	eng, _ := core.NewEngine(u2, p2, &Interactive{R: strings.NewReader(""), W: &out}, core.Options{})
	if _, err := eng.Run(context.Background(), db2, nil); err == nil {
		t.Fatal("EOF did not produce an error")
	}
}

func TestVoting(t *testing.T) {
	insert := CriticFunc{CriticName: "optimist", Fn: func(*core.SelectInput) (core.Decision, error) {
		return core.DecideInsert, nil
	}}
	del := CriticFunc{CriticName: "pessimist", Fn: func(*core.SelectInput) (core.Decision, error) {
		return core.DecideDelete, nil
	}}
	strat := Voting{Critics: []Critic{insert, insert, del}}
	u, res := run(t, `p -> +a. p -> -a.`, `p.`, "", strat)
	if got := resultString(u, res.Output); got != "a, p" {
		t.Fatalf("2:1 insert vote gave {%s}", got)
	}

	// Tie abstains; Fallback picks inertia.
	tie := Fallback{Strategies: []core.Strategy{
		Voting{Critics: []Critic{insert, del}},
		Inertia(),
	}}
	u2, res2 := run(t, `p -> +a. p -> -a.`, `p.`, "", tie)
	if got := resultString(u2, res2.Output); got != "p" {
		t.Fatalf("tie + inertia gave {%s}", got)
	}
}

func TestVotingErrors(t *testing.T) {
	u := core.NewUniverse()
	p, _ := parser.ParseProgram(u, "", `p -> +a. p -> -a.`)
	db, _ := parser.ParseDatabase(u, "", `p.`)

	eng, _ := core.NewEngine(u, p, Voting{}, core.Options{})
	if _, err := eng.Run(context.Background(), db, nil); err == nil || !strings.Contains(err.Error(), "no critics") {
		t.Fatalf("err = %v, want no-critics error", err)
	}

	boom := errors.New("boom")
	bad := CriticFunc{CriticName: "bad", Fn: func(*core.SelectInput) (core.Decision, error) { return 0, boom }}
	eng2, _ := core.NewEngine(u, p, Voting{Critics: []Critic{bad}}, core.Options{})
	if _, err := eng2.Run(context.Background(), db, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped critic error", err)
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	prog := `p -> +a. p -> -a. p -> +b. p -> -b. p -> +c. p -> -c.`
	results := func(seed int64) string {
		u, res := run(t, prog, `p.`, "", NewRandom(seed))
		return resultString(u, res.Output)
	}
	if results(1) != results(1) {
		t.Fatal("same seed diverged")
	}
	// Some seed pair must differ (3 conflicts, 8 outcomes).
	diff := false
	for seed := int64(2); seed < 12; seed++ {
		if results(seed) != results(1) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("random strategy never varied across seeds")
	}
}

func TestFallbackAllUndecided(t *testing.T) {
	u := core.NewUniverse()
	p, _ := parser.ParseProgram(u, "", `p -> +a. p -> -a.`)
	db, _ := parser.ParseDatabase(u, "", `p.`)
	eng, _ := core.NewEngine(u, p, Fallback{Strategies: []core.Strategy{Specificity{}}}, core.Options{})
	if _, err := eng.Run(context.Background(), db, nil); !errors.Is(err, ErrUndecided) {
		t.Fatalf("err = %v, want ErrUndecided", err)
	}
}

func TestFallbackName(t *testing.T) {
	f := Fallback{Strategies: []core.Strategy{Specificity{}, Inertia()}}
	if f.Name() != "fallback(specificity,inertia)" {
		t.Fatalf("Name = %q", f.Name())
	}
}

func TestProtectUpdates(t *testing.T) {
	// The rule tries to delete what the transaction inserts. Plain
	// inertia would delete (a ∉ D); ProtectUpdates keeps the update.
	prog := `+a(X) -> -a(X).`
	u, res := run(t, prog, ``, `+a(x).`, ProtectUpdates{Inner: Inertia()})
	if got := resultString(u, res.Output); got != "a(x)" {
		t.Fatalf("result = {%s}, want {a(x)}", got)
	}
	// Without protection, inertia removes it.
	u2, res2 := run(t, prog, ``, `+a(x).`, Inertia())
	if res2.Output.Len() != 0 {
		t.Fatalf("unprotected result = {%s}, want empty", resultString(u2, res2.Output))
	}
}

func TestProtectUpdatesBothSidesFallThrough(t *testing.T) {
	// Conflicting updates on both sides: inner strategy decides.
	u, res := run(t, ``, `p(x).`, `+p(x). -p(x).`, ProtectUpdates{Inner: Inertia()})
	if got := resultString(u, res.Output); got != "p(x)" {
		t.Fatalf("result = {%s}", got)
	}
}

func TestCriticLibrary(t *testing.T) {
	prog := `
		rule keep priority 9: p -> +a.
		rule drop priority 1: p -> -a.
	`
	// Standard panel: recency=insert, reliability=insert (9 >= 1),
	// conservative=delete (a not in D) -> 2:1 insert.
	strat := Fallback{Strategies: []core.Strategy{
		Voting{Critics: StandardPanel()},
		Inertia(),
	}}
	u, res := run(t, prog, `p.`, "", strat)
	if got := resultString(u, res.Output); got != "a, p" {
		t.Fatalf("standard panel gave {%s}", got)
	}

	// MajorityCritic: two deleting rules vs one inserting.
	prog2 := `
		rule i1: p -> +b.
		rule d1: p -> -b.
		rule d2: q -> -b.
	`
	strat2 := Fallback{Strategies: []core.Strategy{
		Voting{Critics: []Critic{MajorityCritic()}},
		Inertia(),
	}}
	u2, res2 := run(t, prog2, `p. q. b.`, "", strat2)
	if got := resultString(u2, res2.Output); got != "p, q" {
		t.Fatalf("majority critic gave {%s}", got)
	}
}

func TestCriticNames(t *testing.T) {
	for _, c := range StandardPanel() {
		if c.Name() == "" {
			t.Fatal("unnamed critic")
		}
	}
	if MajorityCritic().Name() != "majority" {
		t.Fatal("majority name wrong")
	}
}
